package dohpool

import "time"

// This file is the grouped configuration surface. Config historically
// grew ~35 flat fields spanning six concerns; the grouped sub-structs
// below (CacheConfig, RefreshConfig, HealthConfig, TrustConfig,
// ChaosConfig, ServeConfig) organize the same knobs by layer. Every
// flat field remains as a deprecated alias so existing callers compile
// and behave identically.
//
// Precedence, uniformly: the grouped field wins when it is set (any
// non-zero value — including negative sentinels like CacheConfig.Size
// = -1, which mean "disable", not "unset"); otherwise the flat alias
// applies. Boolean knobs cannot express "explicitly false versus
// unset", so they merge with OR: either spelling turning a behaviour
// on turns it on. The one three-way chain is stale serving:
// Cache.StaleWhileRevalidate beats the flat StaleWhileRevalidate,
// which beats the older MaxStale.

// CacheConfig groups the consensus-cache knobs (the grouped spelling of
// CacheSize, CacheShards and StaleWhileRevalidate/MaxStale).
type CacheConfig struct {
	// Size bounds the TTL-aware consensus cache (entries). 0 uses the
	// default capacity; negative disables caching.
	Size int
	// Shards splits the cache into this many lock domains (rounded up
	// to a power of two). 0 sizes automatically from GOMAXPROCS.
	Shards int
	// StaleWhileRevalidate serves an expired pool for up to this long
	// past its TTL while a background refresh runs.
	StaleWhileRevalidate time.Duration
}

// RefreshConfig groups the always-warm refresh-ahead pipeline knobs
// (the grouped spelling of RefreshAhead and RefreshMinHits).
type RefreshConfig struct {
	// Ahead, when in (0, 1], regenerates cached pools in the background
	// once they have lived this fraction of their TTL.
	Ahead float64
	// MinHits is the popularity threshold for staying on the pipeline
	// (0 uses the default of 1).
	MinHits uint64
}

// HealthConfig groups resolver-health knobs: straggler hedging and the
// per-resolver circuit breaker (the grouped spelling of HedgeDelay,
// DisableHedging, BreakerThreshold and BreakerCooldown).
type HealthConfig struct {
	// HedgeDelay is the straggler-hedge trigger. Positive = fixed;
	// 0 = adaptive (2× EWMA RTT, clamped).
	HedgeDelay time.Duration
	// DisableHedging turns straggler hedging off entirely.
	DisableHedging bool
	// BreakerThreshold is the consecutive-failure count that opens a
	// resolver's breaker (0 = default of 3; negative disables).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects attempts
	// before admitting a probe (default 10s).
	BreakerCooldown time.Duration
}

// TrustConfig groups resolver trust-scoring knobs (the grouped spelling
// of TrustWindow and TrustMinScore).
type TrustConfig struct {
	// Window is how many recent generations feed each resolver's trust
	// score (0 = default of 16; negative disables tracking).
	Window int
	// MinScore, when in (0, 1], enforces trust by quarantining
	// resolvers scoring below it (0 keeps scoring observational).
	MinScore float64
}

// NetChaosConfig configures network-level fault injection on the
// engine's resolver exchanges: packet loss, added delay, partition
// windows and resolver churn. Unlike the payload adversary it has no
// flat aliases — it is new API, reachable only as ChaosConfig.Net. The
// zero value injects nothing. Like payload chaos, it is a
// resilience-testing tool, never a production setting.
type NetChaosConfig struct {
	// DropProb is the probability in [0, 1] that an exchange is
	// dropped (blocks until the exchange's context expires, like a
	// lost datagram).
	DropProb float64
	// Delay is added to every non-dropped exchange; Jitter adds a
	// uniform random extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
	// PartitionEvery/PartitionFor cycle a hard partition: for the
	// first PartitionFor of every PartitionEvery window every targeted
	// exchange is dropped. Both must be set to engage.
	PartitionEvery time.Duration
	PartitionFor   time.Duration
	// ChurnEvery/ChurnDowntime cycle resolver restarts: each
	// ChurnEvery window one targeted resolver (rotating) refuses
	// exchanges for the first ChurnDowntime.
	ChurnEvery    time.Duration
	ChurnDowntime time.Duration
	// Resolvers selects which resolvers (indices into
	// Config.Resolvers) the network faults hit. Empty means all of
	// them — network weather, unlike the payload adversary, is not a
	// per-resolver compromise.
	Resolvers []int
}

// Active reports whether the config injects any network fault.
func (n NetChaosConfig) Active() bool {
	return n.DropProb > 0 ||
		n.Delay > 0 || n.Jitter > 0 ||
		(n.PartitionEvery > 0 && n.PartitionFor > 0) ||
		(n.ChurnEvery > 0 && n.ChurnDowntime > 0)
}

// ChaosConfig groups attack-injection knobs (the grouped spelling of
// ChaosPayload, ChaosResolvers, ChaosProb and ChaosSeed), plus the
// network-fault layer under Net.
type ChaosConfig struct {
	// Payload, when non-empty, interposes the payload adversary:
	// "replace", "inflate" or "empty".
	Payload string
	// Resolvers selects the compromised resolver indices (empty =
	// resolver 0 only).
	Resolvers []int
	// Prob is the per-exchange forge probability (outside (0, 1] =
	// always).
	Prob float64
	// Seed drives chaos randomness (0 uses seed 1). Shared by the
	// payload and network layers.
	Seed int64
	// Net injects network-level faults (loss, delay, partition,
	// churn) on resolver exchanges — independently of Payload, so a
	// run can have bad weather, bad answers, or both.
	Net NetChaosConfig
}

// ServeConfig groups the serving-plane knobs (the grouped spelling of
// UDPWorkers, UDPBatch, MaxTCPConns, DoHAddr, DoTAddr, TLSCert, TLSKey,
// TLSSelfSigned and AdminAddr).
type ServeConfig struct {
	// UDPWorkers bounds the frontend's UDP worker pool (0 sizes from
	// GOMAXPROCS).
	UDPWorkers int
	// UDPBatch is how many UDP datagrams move per syscall (0 = default
	// of 16).
	UDPBatch int
	// UDPSockets is how many SO_REUSEPORT UDP sockets share the serving
	// port, each with its own reader loop and batch state (0 sizes from
	// NumCPU, 1 = classic single-socket serving; clamped to 1 on
	// platforms without SO_REUSEPORT). Grouped-only knob — it has no
	// flat alias.
	UDPSockets int
	// MaxTCPConns bounds concurrently served TCP connections (0 =
	// default of 256; DoT shares the bound).
	MaxTCPConns int
	// DoHAddr serves RFC 8484 DNS-over-HTTPS on this address.
	DoHAddr string
	// DoTAddr serves RFC 7858 DNS-over-TLS on this address.
	DoTAddr string
	// TLSCert/TLSKey are PEM paths for the encrypted listeners'
	// identity.
	TLSCert string
	TLSKey  string
	// TLSSelfSigned generates an ephemeral dev identity instead.
	TLSSelfSigned bool
	// AdminAddr starts the observability HTTP server on this address.
	AdminAddr string
}

// pick helpers: grouped wins when set (non-zero — negative sentinels
// count as set); otherwise the flat alias applies.

func pickInt(grouped, flat int) int {
	if grouped != 0 {
		return grouped
	}
	return flat
}

func pickUint64(grouped, flat uint64) uint64 {
	if grouped != 0 {
		return grouped
	}
	return flat
}

func pickFloat(grouped, flat float64) float64 {
	if grouped != 0 {
		return grouped
	}
	return flat
}

func pickInt64(grouped, flat int64) int64 {
	if grouped != 0 {
		return grouped
	}
	return flat
}

func pickDuration(grouped, flat time.Duration) time.Duration {
	if grouped != 0 {
		return grouped
	}
	return flat
}

func pickString(grouped, flat string) string {
	if grouped != "" {
		return grouped
	}
	return flat
}

func pickInts(grouped, flat []int) []int {
	if len(grouped) > 0 {
		return grouped
	}
	return flat
}

// resolved folds every deprecated flat alias and its grouped field into
// one effective value, written to *both* spellings of the returned copy
// — so the rest of the package (and Client.Serve) reads grouped fields
// only, while a caller inspecting the flat fields of Client state sees
// the same truth.
func (c Config) resolved() Config {
	out := c

	// Cache. The stale chain is three-deep: grouped beats the flat
	// StaleWhileRevalidate, which beats the legacy MaxStale.
	out.Cache.Size = pickInt(c.Cache.Size, c.CacheSize)
	out.Cache.Shards = pickInt(c.Cache.Shards, c.CacheShards)
	out.Cache.StaleWhileRevalidate = pickDuration(c.Cache.StaleWhileRevalidate,
		pickDuration(c.StaleWhileRevalidate, c.MaxStale))
	out.CacheSize = out.Cache.Size
	out.CacheShards = out.Cache.Shards
	out.StaleWhileRevalidate = out.Cache.StaleWhileRevalidate
	out.MaxStale = out.Cache.StaleWhileRevalidate

	// Refresh.
	out.Refresh.Ahead = pickFloat(c.Refresh.Ahead, c.RefreshAhead)
	out.Refresh.MinHits = pickUint64(c.Refresh.MinHits, c.RefreshMinHits)
	out.RefreshAhead = out.Refresh.Ahead
	out.RefreshMinHits = out.Refresh.MinHits

	// Health. DisableHedging is a bool: OR semantics.
	out.Health.HedgeDelay = pickDuration(c.Health.HedgeDelay, c.HedgeDelay)
	out.Health.DisableHedging = c.Health.DisableHedging || c.DisableHedging
	out.Health.BreakerThreshold = pickInt(c.Health.BreakerThreshold, c.BreakerThreshold)
	out.Health.BreakerCooldown = pickDuration(c.Health.BreakerCooldown, c.BreakerCooldown)
	out.HedgeDelay = out.Health.HedgeDelay
	out.DisableHedging = out.Health.DisableHedging
	out.BreakerThreshold = out.Health.BreakerThreshold
	out.BreakerCooldown = out.Health.BreakerCooldown

	// Trust.
	out.Trust.Window = pickInt(c.Trust.Window, c.TrustWindow)
	out.Trust.MinScore = pickFloat(c.Trust.MinScore, c.TrustMinScore)
	out.TrustWindow = out.Trust.Window
	out.TrustMinScore = out.Trust.MinScore

	// Chaos. Net has no flat aliases; it passes through untouched.
	out.Chaos.Payload = pickString(c.Chaos.Payload, c.ChaosPayload)
	out.Chaos.Resolvers = pickInts(c.Chaos.Resolvers, c.ChaosResolvers)
	out.Chaos.Prob = pickFloat(c.Chaos.Prob, c.ChaosProb)
	out.Chaos.Seed = pickInt64(c.Chaos.Seed, c.ChaosSeed)
	out.ChaosPayload = out.Chaos.Payload
	out.ChaosResolvers = out.Chaos.Resolvers
	out.ChaosProb = out.Chaos.Prob
	out.ChaosSeed = out.Chaos.Seed

	// Serve. TLSSelfSigned is a bool: OR semantics.
	out.Serve.UDPWorkers = pickInt(c.Serve.UDPWorkers, c.UDPWorkers)
	out.Serve.UDPBatch = pickInt(c.Serve.UDPBatch, c.UDPBatch)
	out.Serve.MaxTCPConns = pickInt(c.Serve.MaxTCPConns, c.MaxTCPConns)
	out.Serve.DoHAddr = pickString(c.Serve.DoHAddr, c.DoHAddr)
	out.Serve.DoTAddr = pickString(c.Serve.DoTAddr, c.DoTAddr)
	out.Serve.TLSCert = pickString(c.Serve.TLSCert, c.TLSCert)
	out.Serve.TLSKey = pickString(c.Serve.TLSKey, c.TLSKey)
	out.Serve.TLSSelfSigned = c.Serve.TLSSelfSigned || c.TLSSelfSigned
	out.Serve.AdminAddr = pickString(c.Serve.AdminAddr, c.AdminAddr)
	out.UDPWorkers = out.Serve.UDPWorkers
	out.UDPBatch = out.Serve.UDPBatch
	out.MaxTCPConns = out.Serve.MaxTCPConns
	out.DoHAddr = out.Serve.DoHAddr
	out.DoTAddr = out.Serve.DoTAddr
	out.TLSCert = out.Serve.TLSCert
	out.TLSKey = out.Serve.TLSKey
	out.TLSSelfSigned = out.Serve.TLSSelfSigned
	out.AdminAddr = out.Serve.AdminAddr

	return out
}
