package zone

import (
	"errors"
	"testing"

	"dohpool/internal/dnswire"
)

const sampleZone = `
$ORIGIN ntppool.test.
$TTL 3600
@       IN SOA ns1 hostmaster 2020101901 7200 3600 1209600 300
@       IN NS  ns1
@       IN NS  ns2.ntpns.test.
ns1     IN A   198.51.100.1
pool    150 IN A 192.0.2.1
        150 IN A 192.0.2.2
        150 IN A 192.0.2.3
pool    150 IN AAAA 2001:db8::1
www     IN CNAME pool
info    IN TXT "secure pool" "generation"
mail    IN MX 10 mx.ntppool.test.
`

func TestParseSampleZone(t *testing.T) {
	z, err := ParseString(sampleZone, "ntppool.test.")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := z.SOA(); !ok {
		t.Error("SOA missing")
	}

	res, err := z.Lookup("pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 {
		t.Fatalf("pool A records = %d, want 3 (owner inheritance broken?)", len(res.Records))
	}
	if res.Records[0].TTL != 150 {
		t.Errorf("TTL = %d, want 150", res.Records[0].TTL)
	}

	res, err = z.Lookup("pool.ntppool.test.", dnswire.TypeAAAA)
	if err != nil || len(res.Records) != 1 {
		t.Fatalf("AAAA lookup: %v / %d records", err, len(res.Records))
	}

	res, err = z.Lookup("www.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.CNAME == nil || res.CNAME.Target != "pool.ntppool.test." {
		t.Errorf("www CNAME = %v", res.CNAME)
	}

	res, err = z.Lookup("ntppool.test.", dnswire.TypeNS)
	if err != nil || len(res.Records) != 2 {
		t.Fatalf("NS lookup: %v / %d", err, len(res.Records))
	}
	ns, ok := res.Records[1].Data.(*dnswire.NSRecord)
	if !ok || ns.Host != "ns2.ntpns.test." {
		t.Errorf("absolute NS host = %v", res.Records[1].Data)
	}

	res, err = z.Lookup("info.ntppool.test.", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	txt, ok := res.Records[0].Data.(*dnswire.TXTRecord)
	if !ok || len(txt.Strings) != 2 || txt.Strings[0] != "secure pool" {
		t.Errorf("TXT = %v", res.Records[0].Data)
	}

	res, err = z.Lookup("mail.ntppool.test.", dnswire.TypeMX)
	if err != nil {
		t.Fatal(err)
	}
	mx, ok := res.Records[0].Data.(*dnswire.MXRecord)
	if !ok || mx.Preference != 10 || mx.Host != "mx.ntppool.test." {
		t.Errorf("MX = %v", res.Records[0].Data)
	}
}

func TestParseComments(t *testing.T) {
	z, err := ParseString(`
; leading comment
pool IN A 192.0.2.9 ; trailing comment
`, "x.test.")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.Lookup("pool.x.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad type":      "pool IN BOGUS 1.2.3.4",
		"bad ipv4":      "pool IN A not-an-ip",
		"bad ipv6":      "pool IN AAAA 192.0.2.1",
		"short soa":     "@ IN SOA ns1 hostmaster 1 2",
		"bad mx pref":   "pool IN MX ten mx.example.",
		"origin noval":  "$ORIGIN",
		"ttl noval":     "$TTL",
		"bad ttl":       "$TTL soon",
		"missing rdata": "pool IN A",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseString(text, "x.test."); !errors.Is(err, ErrParse) {
				t.Fatalf("err = %v, want ErrParse", err)
			}
		})
	}
}

func TestParseRespectsOptions(t *testing.T) {
	text := `
pool IN A 192.0.2.1
pool IN A 192.0.2.2
pool IN A 192.0.2.3
`
	z, err := ParseString(text, "x.test.", WithMaxAnswers(1), WithRotation(RotateRoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := z.Lookup("pool.x.test.", dnswire.TypeA)
	b, _ := z.Lookup("pool.x.test.", dnswire.TypeA)
	if len(a.Records) != 1 || len(b.Records) != 1 {
		t.Fatalf("cap not applied: %d/%d", len(a.Records), len(b.Records))
	}
	ipA := a.Records[0].Data.(*dnswire.ARecord).Addr
	ipB := b.Records[0].Data.(*dnswire.ARecord).Addr
	if ipA == ipB {
		t.Fatalf("rotation not applied: both %v", ipA)
	}
}

func TestAbsoluteName(t *testing.T) {
	tests := []struct {
		give, origin, want string
	}{
		{"@", "example.test.", "example.test."},
		{"abs.example.", "x.test.", "abs.example."},
		{"rel", "x.test.", "rel.x.test."},
	}
	for _, tt := range tests {
		if got := absoluteName(tt.give, tt.origin); got != tt.want {
			t.Errorf("absoluteName(%q,%q) = %q, want %q", tt.give, tt.origin, got, tt.want)
		}
	}
}
