package zone

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"dohpool/internal/dnswire"
)

// ErrParse is wrapped by every parser error.
var ErrParse = errors.New("zone parse error")

// Parse reads a zone in a practical subset of the RFC 1035 master-file
// format. Supported:
//
//   - $ORIGIN and $TTL directives
//   - comments introduced by ';'
//   - owner inheritance (blank owner column repeats the previous owner)
//   - '@' as the origin
//   - record types A, AAAA, NS, CNAME, SOA, TXT, MX, PTR
//   - SOA on a single line (no parenthesised continuation)
//
// Names without a trailing dot are made relative to the origin.
func Parse(r io.Reader, origin string, opts ...Option) (*Zone, error) {
	origin = dnswire.CanonicalName(origin)
	z := New(origin, opts...)
	defaultTTL := uint32(3600)
	lastOwner := origin

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		ownerInherited := line[0] == ' ' || line[0] == '\t'
		fields := splitFields(line)
		if len(fields) == 0 {
			continue
		}

		switch strings.ToUpper(fields[0]) {
		case "$ORIGIN":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: $ORIGIN needs a name: %w", lineNo, ErrParse)
			}
			origin = dnswire.CanonicalName(fields[1])
			continue
		case "$TTL":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: $TTL needs a value: %w", lineNo, ErrParse)
			}
			v, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("line %d: $TTL %q: %w", lineNo, fields[1], ErrParse)
			}
			defaultTTL = uint32(v)
			continue
		}

		var owner string
		if ownerInherited {
			owner = lastOwner
		} else {
			owner = absoluteName(fields[0], origin)
			fields = fields[1:]
			lastOwner = owner
		}
		if len(fields) == 0 {
			return nil, fmt.Errorf("line %d: owner without record: %w", lineNo, ErrParse)
		}

		ttl := defaultTTL
		// Optional TTL, optional class "IN", then type.
		if v, err := strconv.ParseUint(fields[0], 10, 32); err == nil {
			ttl = uint32(v)
			fields = fields[1:]
		}
		if len(fields) > 0 && strings.EqualFold(fields[0], "IN") {
			fields = fields[1:]
		}
		if len(fields) == 0 {
			return nil, fmt.Errorf("line %d: missing record type: %w", lineNo, ErrParse)
		}
		typ, ok := dnswire.ParseType(strings.ToUpper(fields[0]))
		if !ok {
			return nil, fmt.Errorf("line %d: unknown type %q: %w", lineNo, fields[0], ErrParse)
		}
		rdFields := fields[1:]

		rec := dnswire.Record{Name: owner, Type: typ, Class: dnswire.ClassINET, TTL: ttl}
		data, err := parseRData(typ, rdFields, origin)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v: %w", lineNo, err, ErrParse)
		}
		rec.Data = data
		if err := z.Add(rec); err != nil {
			return nil, fmt.Errorf("line %d: %v: %w", lineNo, err, ErrParse)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("read zone: %w", err)
	}
	return z, nil
}

// ParseString is Parse over a string.
func ParseString(s, origin string, opts ...Option) (*Zone, error) {
	return Parse(strings.NewReader(s), origin, opts...)
}

func parseRData(typ dnswire.Type, fields []string, origin string) (dnswire.RData, error) {
	need := func(n int) error {
		if len(fields) < n {
			return fmt.Errorf("%v rdata needs %d fields, have %d", typ, n, len(fields))
		}
		return nil
	}
	switch typ {
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad IPv4 %q", fields[0])
		}
		return &dnswire.ARecord{Addr: addr}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return nil, fmt.Errorf("bad IPv6 %q", fields[0])
		}
		return &dnswire.AAAARecord{Addr: addr}, nil
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		return &dnswire.NSRecord{Host: absoluteName(fields[0], origin)}, nil
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		return &dnswire.CNAMERecord{Target: absoluteName(fields[0], origin)}, nil
	case dnswire.TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		return &dnswire.PTRRecord{Target: absoluteName(fields[0], origin)}, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", fields[0])
		}
		return &dnswire.MXRecord{Preference: uint16(pref), Host: absoluteName(fields[1], origin)}, nil
	case dnswire.TypeTXT:
		if err := need(1); err != nil {
			return nil, err
		}
		strs := make([]string, 0, len(fields))
		for _, f := range fields {
			strs = append(strs, strings.Trim(f, `"`))
		}
		return &dnswire.TXTRecord{Strings: strs}, nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		nums := make([]uint32, 5)
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(fields[2+i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", fields[2+i])
			}
			nums[i] = uint32(v)
		}
		return &dnswire.SOARecord{
			MName: absoluteName(fields[0], origin), RName: absoluteName(fields[1], origin),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4],
		}, nil
	default:
		return nil, fmt.Errorf("type %v not supported in master files", typ)
	}
}

// splitFields splits a master-file line on whitespace while keeping
// double-quoted strings (as used in TXT rdata) as single fields, quotes
// retained.
func splitFields(line string) []string {
	var fields []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case (r == ' ' || r == '\t') && !inQuote:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return fields
}

// absoluteName resolves a master-file name against the origin: '@' means
// the origin, names with a trailing dot are absolute, everything else is
// relative.
func absoluteName(s, origin string) string {
	if s == "@" {
		return dnswire.CanonicalName(origin)
	}
	if strings.HasSuffix(s, ".") {
		return dnswire.CanonicalName(s)
	}
	return dnswire.CanonicalName(s + "." + origin)
}
