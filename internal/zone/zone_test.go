package zone

import (
	"errors"
	"net/netip"
	"testing"

	"dohpool/internal/dnswire"
)

func poolZone(t *testing.T, opts ...Option) *Zone {
	t.Helper()
	z := New("ntppool.test.", opts...)
	for _, ip := range []string{"192.0.2.1", "192.0.2.2", "192.0.2.3", "192.0.2.4"} {
		if err := z.AddAddress("pool.ntppool.test.", netip.MustParseAddr(ip), 150); err != nil {
			t.Fatal(err)
		}
	}
	return z
}

func answerIPs(t *testing.T, res Result) []string {
	t.Helper()
	ips := make([]string, 0, len(res.Records))
	for _, r := range res.Records {
		a, ok := r.Data.(*dnswire.ARecord)
		if !ok {
			t.Fatalf("non-A record %v", r)
		}
		ips = append(ips, a.Addr.String())
	}
	return ips
}

func TestLookupBasic(t *testing.T) {
	z := poolZone(t)
	res, err := z.Lookup("pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := answerIPs(t, res); len(got) != 4 || got[0] != "192.0.2.1" {
		t.Fatalf("answers = %v", got)
	}
}

func TestLookupNXDomainVsNoData(t *testing.T) {
	z := poolZone(t)
	if _, err := z.Lookup("missing.ntppool.test.", dnswire.TypeA); !errors.Is(err, ErrNXDomain) {
		t.Errorf("missing name: %v, want ErrNXDomain", err)
	}
	if _, err := z.Lookup("pool.ntppool.test.", dnswire.TypeAAAA); !errors.Is(err, ErrNoData) {
		t.Errorf("missing type: %v, want ErrNoData", err)
	}
	if _, err := z.Lookup("other.example.", dnswire.TypeA); !errors.Is(err, ErrOutOfZone) {
		t.Errorf("out of zone: %v, want ErrOutOfZone", err)
	}
}

func TestRoundRobinRotation(t *testing.T) {
	z := poolZone(t, WithRotation(RotateRoundRobin))
	first, err := z.Lookup("pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	second, err := z.Lookup("pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	a, b := answerIPs(t, first), answerIPs(t, second)
	if a[0] != "192.0.2.1" || b[0] != "192.0.2.2" {
		t.Fatalf("rotation heads = %s then %s", a[0], b[0])
	}
	// After len(set) queries the cursor wraps.
	for i := 0; i < 2; i++ {
		if _, err := z.Lookup("pool.ntppool.test.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	fifth, err := z.Lookup("pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := answerIPs(t, fifth); got[0] != "192.0.2.1" {
		t.Fatalf("wrap head = %s, want 192.0.2.1", got[0])
	}
}

func TestRandomRotationIsPermutation(t *testing.T) {
	z := poolZone(t, WithRotation(RotateRandom), WithSeed(7))
	for i := 0; i < 10; i++ {
		res, err := z.Lookup("pool.ntppool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		for _, ip := range answerIPs(t, res) {
			seen[ip] = true
		}
		if len(seen) != 4 {
			t.Fatalf("iteration %d: permutation lost records: %v", i, seen)
		}
	}
}

func TestMaxAnswersCap(t *testing.T) {
	z := poolZone(t, WithMaxAnswers(2), WithRotation(RotateRoundRobin))
	res, err := z.Lookup("pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("%d answers, want 2", len(res.Records))
	}
	// Rotation plus cap must still cycle through all records over time.
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		res, err := z.Lookup("pool.ntppool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		for _, ip := range answerIPs(t, res) {
			seen[ip] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("cap+rotation covered %d of 4 records", len(seen))
	}
}

func TestCNAMEPrecedence(t *testing.T) {
	z := New("example.test.")
	if err := z.Add(dnswire.Record{
		Name: "www.example.test.", Type: dnswire.TypeCNAME, Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.CNAMERecord{Target: "host.example.test."},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := z.Lookup("www.example.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.CNAME == nil || res.CNAME.Target != "host.example.test." {
		t.Fatalf("CNAME = %v", res.CNAME)
	}
	if len(res.Records) != 1 || res.Records[0].Type != dnswire.TypeCNAME {
		t.Fatalf("records = %v", res.Records)
	}
}

func TestWildcard(t *testing.T) {
	z := New("pool.test.")
	if err := z.AddAddress("*.pool.test.", netip.MustParseAddr("203.0.113.1"), 60); err != nil {
		t.Fatal(err)
	}
	res, err := z.Lookup("anything.pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Name != "anything.pool.test." {
		t.Fatalf("wildcard answer owner = %q", res.Records[0].Name)
	}
}

func TestRemoveName(t *testing.T) {
	z := poolZone(t)
	if !z.RemoveName("pool.ntppool.test.") {
		t.Fatal("RemoveName reported nothing removed")
	}
	if z.RemoveName("pool.ntppool.test.") {
		t.Fatal("second RemoveName reported removal")
	}
	if _, err := z.Lookup("pool.ntppool.test.", dnswire.TypeA); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("after removal: %v", err)
	}
}

func TestAddRejectsOutOfZone(t *testing.T) {
	z := New("a.test.")
	err := z.AddAddress("b.other.", netip.MustParseAddr("192.0.2.1"), 60)
	if !errors.Is(err, ErrOutOfZone) {
		t.Fatalf("err = %v, want ErrOutOfZone", err)
	}
}

func TestSOAAndCounts(t *testing.T) {
	z := New("example.test.")
	if _, ok := z.SOA(); ok {
		t.Fatal("SOA present in empty zone")
	}
	if err := z.Add(dnswire.Record{
		Name: "example.test.", Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.SOARecord{MName: "ns.example.test.", RName: "admin.example.test.",
			Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5},
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := z.SOA(); !ok {
		t.Fatal("SOA not found")
	}
	if z.RecordCount() != 1 {
		t.Fatalf("RecordCount = %d", z.RecordCount())
	}
	if names := z.Names(); len(names) != 1 || names[0] != "example.test." {
		t.Fatalf("Names = %v", names)
	}
}
