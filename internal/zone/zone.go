// Package zone implements an in-memory authoritative zone store with a
// parser for a practical subset of the RFC 1035 master-file format. It
// backs the authoritative nameservers of the testbed (the c/d/e.ntpns.org
// servers of the paper's Figure 1) and supports the per-query answer
// rotation that pool.ntp.org-style zones rely on.
package zone

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"dohpool/internal/dnswire"
)

// Lookup errors.
var (
	// ErrNXDomain reports that the name does not exist in the zone.
	ErrNXDomain = errors.New("name does not exist")
	// ErrNoData reports that the name exists but holds no records of the
	// requested type.
	ErrNoData = errors.New("name exists but holds no records of this type")
	// ErrOutOfZone reports that the query name is not within the zone.
	ErrOutOfZone = errors.New("name is outside this zone")
)

// RotationPolicy selects how a Zone orders the records of an RRset across
// successive queries. pool.ntp.org hands out a rotating subset, which is
// what makes "which addresses did your resolver see" resolver-dependent —
// the property Algorithm 1 must cope with.
type RotationPolicy int

// Rotation policies.
const (
	// RotateNone returns records in insertion order.
	RotateNone RotationPolicy = iota + 1
	// RotateRoundRobin cyclically shifts the RRset by one on every query.
	RotateRoundRobin
	// RotateRandom returns an independent random permutation per query.
	RotateRandom
)

// String returns the policy name.
func (p RotationPolicy) String() string {
	switch p {
	case RotateNone:
		return "none"
	case RotateRoundRobin:
		return "round-robin"
	case RotateRandom:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// rrsetKey identifies one RRset within the zone.
type rrsetKey struct {
	name string
	typ  dnswire.Type
}

// Zone is a thread-safe authoritative zone.
type Zone struct {
	origin string

	mu       sync.Mutex
	rrsets   map[rrsetKey][]dnswire.Record
	names    map[string]bool // every owner name present (for NXDOMAIN vs NODATA)
	policy   RotationPolicy
	rrCursor map[rrsetKey]int // round-robin cursors
	rng      *rand.Rand
	maxAns   int // 0 = unlimited; pool.ntp.org returns 4
}

// Option configures a Zone.
type Option func(*Zone)

// WithRotation sets the answer rotation policy (default RotateNone).
func WithRotation(p RotationPolicy) Option {
	return func(z *Zone) { z.policy = p }
}

// WithMaxAnswers caps how many records of an RRset are returned per query,
// mimicking pool.ntp.org's behaviour of returning 4 of its many servers.
// Zero means unlimited.
func WithMaxAnswers(n int) Option {
	return func(z *Zone) { z.maxAns = n }
}

// WithSeed makes rotation deterministic for tests.
func WithSeed(seed int64) Option {
	return func(z *Zone) { z.rng = rand.New(rand.NewSource(seed)) }
}

// New creates an empty zone rooted at origin.
func New(origin string, opts ...Option) *Zone {
	z := &Zone{
		origin:   dnswire.CanonicalName(origin),
		rrsets:   make(map[rrsetKey][]dnswire.Record),
		names:    make(map[string]bool),
		policy:   RotateNone,
		rrCursor: make(map[rrsetKey]int),
		rng:      rand.New(rand.NewSource(rand.Int63())),
	}
	for _, opt := range opts {
		opt(z)
	}
	return z
}

// Origin returns the canonical zone origin.
func (z *Zone) Origin() string { return z.origin }

// Add inserts a record into the zone. The record's owner name must lie
// within the zone.
func (z *Zone) Add(r dnswire.Record) error {
	r.Name = dnswire.CanonicalName(r.Name)
	if !dnswire.IsSubdomain(r.Name, z.origin) {
		return fmt.Errorf("add %q to zone %q: %w", r.Name, z.origin, ErrOutOfZone)
	}
	if r.Data == nil {
		return fmt.Errorf("add %q: record has no data", r.Name)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	key := rrsetKey{name: r.Name, typ: r.Type}
	z.rrsets[key] = append(z.rrsets[key], r)
	z.names[r.Name] = true
	return nil
}

// AddAddress is a convenience wrapper adding an A or AAAA record.
func (z *Zone) AddAddress(name string, addr netip.Addr, ttl uint32) error {
	return z.Add(dnswire.AddressRecord(name, addr, ttl))
}

// RemoveName deletes every record owned by name. It reports whether
// anything was removed.
func (z *Zone) RemoveName(name string) bool {
	name = dnswire.CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	if !z.names[name] {
		return false
	}
	for key := range z.rrsets {
		if key.name == name {
			delete(z.rrsets, key)
			delete(z.rrCursor, key)
		}
	}
	delete(z.names, name)
	return true
}

// Result is the outcome of a zone lookup.
type Result struct {
	// Records holds the answer RRset, rotated per policy.
	Records []dnswire.Record
	// CNAME is non-nil when the name is an alias; Records then holds the
	// CNAME record itself and the caller chases the target.
	CNAME *dnswire.CNAMERecord
	// Referral holds the NS RRset of a zone cut when the queried name
	// lies in a delegated child zone: the server is not authoritative and
	// the querier must follow the delegation. Records is empty then.
	Referral []dnswire.Record
	// Glue holds in-zone A/AAAA records for the referral's nameservers.
	Glue []dnswire.Record
}

// Lookup resolves (name, type) inside the zone, applying the rotation
// policy and answer cap. It returns ErrNXDomain, ErrNoData or ErrOutOfZone
// as appropriate. Names at or below a zone cut (an interior owner with an
// NS RRset distinct from the origin) produce a referral Result instead of
// an authoritative answer (RFC 1034 §4.3.2 step 3b).
func (z *Zone) Lookup(name string, typ dnswire.Type) (Result, error) {
	name = dnswire.CanonicalName(name)
	if !dnswire.IsSubdomain(name, z.origin) {
		return Result{}, fmt.Errorf("lookup %q in %q: %w", name, z.origin, ErrOutOfZone)
	}
	z.mu.Lock()
	defer z.mu.Unlock()

	if cut := z.zoneCutLocked(name); cut != "" {
		return z.referralLocked(cut)
	}
	if !z.names[name] {
		// Wildcard support: *.parent matches any missing direct child.
		if wc := wildcardOf(name); wc != "" && z.names[wc] {
			return z.lookupLocked(wc, name, typ)
		}
		return Result{}, fmt.Errorf("lookup %q: %w", name, ErrNXDomain)
	}
	return z.lookupLocked(name, name, typ)
}

// zoneCutLocked returns the closest enclosing delegation point for name:
// an owner strictly below the origin, at or above name, holding an NS
// RRset. Empty when the name is within this zone's authority.
func (z *Zone) zoneCutLocked(name string) string {
	labels := dnswire.SplitLabels(name)
	originLabels := len(dnswire.SplitLabels(z.origin))
	// Walk from the topmost candidate below the origin down towards the
	// name, so the HIGHEST cut wins (everything below it is delegated).
	for i := len(labels) - originLabels - 1; i >= 0; i-- {
		candidate := strings.Join(labels[i:], ".") + "."
		if candidate == z.origin {
			continue
		}
		if set, ok := z.rrsets[rrsetKey{name: candidate, typ: dnswire.TypeNS}]; ok && len(set) > 0 {
			return candidate
		}
	}
	return ""
}

// referralLocked builds the referral Result for a zone cut: the NS RRset
// plus any in-zone glue addresses for the nameservers.
func (z *Zone) referralLocked(cut string) (Result, error) {
	set := z.rrsets[rrsetKey{name: cut, typ: dnswire.TypeNS}]
	res := Result{Referral: append([]dnswire.Record(nil), set...)}
	for _, rec := range set {
		ns, ok := rec.Data.(*dnswire.NSRecord)
		if !ok {
			continue
		}
		host := dnswire.CanonicalName(ns.Host)
		for _, typ := range [...]dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
			if glue, ok := z.rrsets[rrsetKey{name: host, typ: typ}]; ok {
				res.Glue = append(res.Glue, glue...)
			}
		}
	}
	return res, nil
}

// lookupLocked performs the RRset fetch. owner is the stored owner name
// (possibly a wildcard); qname is the name to stamp on returned records.
func (z *Zone) lookupLocked(owner, qname string, typ dnswire.Type) (Result, error) {
	// CNAME takes precedence for any type except CNAME itself.
	if typ != dnswire.TypeCNAME {
		if set, ok := z.rrsets[rrsetKey{name: owner, typ: dnswire.TypeCNAME}]; ok && len(set) > 0 {
			rec := set[0]
			rec.Name = qname
			cname, ok := rec.Data.(*dnswire.CNAMERecord)
			if !ok {
				return Result{}, fmt.Errorf("lookup %q: corrupt CNAME rrset", qname)
			}
			return Result{Records: []dnswire.Record{rec}, CNAME: cname}, nil
		}
	}
	key := rrsetKey{name: owner, typ: typ}
	set, ok := z.rrsets[key]
	if !ok || len(set) == 0 {
		return Result{}, fmt.Errorf("lookup %q %v: %w", qname, typ, ErrNoData)
	}

	rotated := z.rotateLocked(key, set)
	if z.maxAns > 0 && len(rotated) > z.maxAns {
		rotated = rotated[:z.maxAns]
	}
	out := make([]dnswire.Record, len(rotated))
	for i, r := range rotated {
		r.Name = qname
		out[i] = r
	}
	return Result{Records: out}, nil
}

// rotateLocked returns a fresh slice ordered per the zone policy.
func (z *Zone) rotateLocked(key rrsetKey, set []dnswire.Record) []dnswire.Record {
	out := make([]dnswire.Record, len(set))
	switch z.policy {
	case RotateRoundRobin:
		start := z.rrCursor[key] % len(set)
		z.rrCursor[key]++
		for i := range set {
			out[i] = set[(start+i)%len(set)]
		}
	case RotateRandom:
		perm := z.rng.Perm(len(set))
		for i, p := range perm {
			out[i] = set[p]
		}
	default:
		copy(out, set)
	}
	return out
}

// SOA returns the zone's SOA record if present.
func (z *Zone) SOA() (dnswire.Record, bool) {
	z.mu.Lock()
	defer z.mu.Unlock()
	set, ok := z.rrsets[rrsetKey{name: z.origin, typ: dnswire.TypeSOA}]
	if !ok || len(set) == 0 {
		return dnswire.Record{}, false
	}
	return set[0], true
}

// Names returns every owner name in the zone, sorted (for tests/dumps).
func (z *Zone) Names() []string {
	z.mu.Lock()
	defer z.mu.Unlock()
	names := make([]string, 0, len(z.names))
	for n := range z.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RecordCount returns the total number of records stored.
func (z *Zone) RecordCount() int {
	z.mu.Lock()
	defer z.mu.Unlock()
	n := 0
	for _, set := range z.rrsets {
		n += len(set)
	}
	return n
}

// wildcardOf returns the wildcard owner ("*.parent.") covering name, or ""
// if name has no parent inside any zone.
func wildcardOf(name string) string {
	labels := dnswire.SplitLabels(name)
	if len(labels) < 2 {
		return ""
	}
	return "*." + strings.Join(labels[1:], ".") + "."
}
