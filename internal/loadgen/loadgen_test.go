package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohpool/internal/dnswire"
)

// okAnswer builds a NOERROR response to q.
func okAnswer(q *dnswire.Message) *dnswire.Message {
	resp := q.Copy()
	resp.Header.Response = true
	return resp
}

func runCfg(t *testing.T, cfg Config) *Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func seriesFor(rep *Report, proto, outcome string) (Series, bool) {
	for _, s := range rep.Series {
		if s.Proto == proto && s.Outcome == outcome {
			return s, true
		}
	}
	return Series{}, false
}

// TestOpenLoopIsCoordinatedOmissionSafe is the defining property test:
// one worker, one 300ms server stall on the very first query, then an
// instant server. A closed-loop generator would record one 300ms
// sample and dozens of instant ones; open-loop accounting must charge
// the queueing delay behind the stall to every arrival that was due
// while the worker was stuck.
func TestOpenLoopIsCoordinatedOmissionSafe(t *testing.T) {
	var calls atomic.Int64
	cfg := Config{
		Targets:  []Target{{Proto: ProtoUDP, Addr: "ignored"}},
		Domains:  []string{"pool.test."},
		QPS:      100,
		Duration: 500 * time.Millisecond,
		Clients:  1,
		Timeout:  time.Second,
		exchange: func(ctx context.Context, _ Target, q *dnswire.Message) (*dnswire.Message, error) {
			if calls.Add(1) == 1 {
				time.Sleep(300 * time.Millisecond)
			}
			return okAnswer(q), nil
		},
	}
	rep := runCfg(t, cfg)

	s, ok := seriesFor(rep, ProtoUDP, OutcomeOK)
	if !ok || s.Count != 50 {
		t.Fatalf("ok series = %+v (found=%v), want 50 samples", s, ok)
	}
	if s.MaxMs < 250 {
		t.Errorf("max latency %.1fms does not reflect the 300ms stall", s.MaxMs)
	}
	// Arrivals due during the stall (~30 of 50) were served late; the
	// p50 of the whole run must show queueing, not instant service.
	if s.P50ms < 5 {
		t.Errorf("p50 %.3fms hides the queue built during the stall (coordinated omission)", s.P50ms)
	}
	if succ := rep.Success[ProtoUDP]; succ.Late < 20 {
		t.Errorf("late sends = %d, want the ~30 arrivals due during the stall", succ.Late)
	}
}

func TestOutcomeClassification(t *testing.T) {
	cases := []struct {
		name     string
		exchange func(ctx context.Context, _ Target, q *dnswire.Message) (*dnswire.Message, error)
		outcome  string
	}{
		{"noerror", func(_ context.Context, _ Target, q *dnswire.Message) (*dnswire.Message, error) {
			return okAnswer(q), nil
		}, OutcomeOK},
		{"servfail", func(_ context.Context, _ Target, q *dnswire.Message) (*dnswire.Message, error) {
			return dnswire.NewErrorResponse(q, dnswire.RCodeServFail), nil
		}, OutcomeServfail},
		{"deadline", func(ctx context.Context, _ Target, _ *dnswire.Message) (*dnswire.Message, error) {
			return nil, fmt.Errorf("exchange: %w", context.DeadlineExceeded)
		}, OutcomeTimeout},
		{"net-timeout", func(_ context.Context, _ Target, _ *dnswire.Message) (*dnswire.Message, error) {
			return nil, &net.OpError{Op: "read", Err: &timeoutErr{}}
		}, OutcomeTimeout},
		{"refused", func(_ context.Context, _ Target, _ *dnswire.Message) (*dnswire.Message, error) {
			return nil, errors.New("connection refused")
		}, OutcomeError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := runCfg(t, Config{
				Targets:  []Target{{Proto: ProtoTCP, Addr: "ignored"}},
				Domains:  []string{"pool.test."},
				QPS:      200,
				Duration: 100 * time.Millisecond,
				Clients:  2,
				exchange: tc.exchange,
			})
			s, ok := seriesFor(rep, ProtoTCP, tc.outcome)
			if !ok || s.Count != 20 {
				t.Fatalf("outcome %s series = %+v (found=%v), want all 20 samples", tc.outcome, s, ok)
			}
			wantRate := 0.0
			if tc.outcome == OutcomeOK {
				wantRate = 1.0
			}
			if got := rep.Success[ProtoTCP].Rate; got != wantRate {
				t.Errorf("success rate = %v, want %v", got, wantRate)
			}
		})
	}
}

type timeoutErr struct{}

func (*timeoutErr) Error() string   { return "i/o timeout" }
func (*timeoutErr) Timeout() bool   { return true }
func (*timeoutErr) Temporary() bool { return true }

func TestZipfianDomainSkew(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	domains := make([]string, 50)
	for i := range domains {
		domains[i] = fmt.Sprintf("pool-%d.test.", i)
	}
	rep := runCfg(t, Config{
		Targets:  []Target{{Proto: ProtoUDP, Addr: "ignored"}},
		Domains:  domains,
		QPS:      2000,
		Duration: 500 * time.Millisecond,
		Clients:  4,
		Seed:     7,
		exchange: func(_ context.Context, _ Target, q *dnswire.Message) (*dnswire.Message, error) {
			mu.Lock()
			counts[q.Questions[0].Name]++
			mu.Unlock()
			return okAnswer(q), nil
		},
	})
	if got := rep.Success[ProtoUDP].Sent; got != 1000 {
		t.Fatalf("sent = %d, want the full 1000-arrival schedule", got)
	}
	head := counts["pool-0.test."]
	if head < 200 {
		t.Errorf("hottest domain drew %d of 1000 queries; zipf skew missing", head)
	}
	var tail int
	for i := 25; i < 50; i++ {
		tail += counts[fmt.Sprintf("pool-%d.test.", i)]
	}
	if tail >= head {
		t.Errorf("cold half drew %d >= hottest domain's %d", tail, head)
	}
}

func TestQPSSplitAcrossTargets(t *testing.T) {
	rep := runCfg(t, Config{
		Targets: []Target{
			{Proto: ProtoUDP, Addr: "ignored"},
			{Proto: ProtoTCP, Addr: "ignored"},
		},
		Domains:  []string{"pool.test."},
		QPS:      400,
		Duration: 250 * time.Millisecond,
		Clients:  2,
		exchange: func(_ context.Context, _ Target, q *dnswire.Message) (*dnswire.Message, error) {
			return okAnswer(q), nil
		},
	})
	for _, proto := range []string{ProtoUDP, ProtoTCP} {
		if got := rep.Success[proto].Sent; got != 50 {
			t.Errorf("%s sent %d, want an even 50-query share", proto, got)
		}
	}
	if len(rep.Meta.Targets) != 2 {
		t.Errorf("meta targets = %v", rep.Meta.Targets)
	}
}

func TestReportJSONShape(t *testing.T) {
	rep := runCfg(t, Config{
		Targets:  []Target{{Proto: ProtoDoH, Addr: "https://ignored/dns-query"}},
		Domains:  []string{"pool.test."},
		QPS:      100,
		Duration: 100 * time.Millisecond,
		exchange: func(_ context.Context, _ Target, q *dnswire.Message) (*dnswire.Message, error) {
			return okAnswer(q), nil
		},
	})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if decoded.Meta.Schema != SchemaSLO {
		t.Errorf("schema = %q", decoded.Meta.Schema)
	}
	if decoded.Success[ProtoDoH].Rate != 1 {
		t.Errorf("success = %+v", decoded.Success[ProtoDoH])
	}
	var table strings.Builder
	rep.WriteTable(&table)
	for _, want := range []string{"proto", "doh", "ok", "success 10/10"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table missing %q:\n%s", want, table.String())
		}
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	bad := []Config{
		{},
		{Targets: []Target{{Proto: ProtoUDP}}},
		{Targets: []Target{{Proto: "smtp"}}, Domains: []string{"d."}, QPS: 1, Duration: time.Second},
		{Targets: []Target{{Proto: ProtoUDP}}, Domains: []string{"d."}, QPS: -1, Duration: time.Second},
		{Targets: []Target{{Proto: ProtoUDP}}, Domains: []string{"d."}, QPS: 1, Duration: time.Second, ZipfS: 0.5},
		{Targets: []Target{{Proto: ProtoUDP}}, Domains: []string{"d."}, QPS: 0.5, Duration: time.Second},
	}
	for i, cfg := range bad {
		if _, err := Run(ctx, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(ctx, Config{
			Targets:  []Target{{Proto: ProtoUDP, Addr: "ignored"}},
			Domains:  []string{"pool.test."},
			QPS:      10,
			Duration: time.Hour,
			Clients:  1,
			exchange: func(_ context.Context, _ Target, q *dnswire.Message) (*dnswire.Message, error) {
				calls.Add(1)
				return okAnswer(q), nil
			},
		})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	time.Sleep(250 * time.Millisecond)
	cancel()
	select {
	case rep := <-done:
		if sent := rep.Success[ProtoUDP].Sent; sent >= 36000 {
			t.Errorf("cancelled hour-long run sent %d queries", sent)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop on cancellation")
	}
}
