// Package loadgen is an open-loop DNS load generator for the dohpoold
// serving planes (UDP, TCP, DoT, DoH).
//
// Open-loop means the arrival schedule is fixed before the run: query i
// of a target is due at start + i/qps, no matter how the server is
// doing. A worker that finds itself past an arrival's due time sends
// anyway and the latency is still measured from the *scheduled* time,
// so queue build-up during a stall shows up in the tail percentiles
// instead of silently stretching the send schedule. Closed-loop
// generators (send, wait, send) suffer coordinated omission: every
// slow answer delays subsequent sends, so the server is probed least
// exactly when it is slowest, and the recorded tail is fiction.
//
// Latencies land in log-bucketed histograms (internal/metrics) per
// transport and outcome; Report renders them as a human table or as
// the BENCH_slo.json document consumed by `benchgate slo`.
package loadgen

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/metrics"
	"dohpool/internal/transport"
)

// Transport names, matching the frontend's proto labels.
const (
	ProtoUDP = "udp"
	ProtoTCP = "tcp"
	ProtoDoT = "dot"
	ProtoDoH = "doh"
)

// Query outcomes.
const (
	OutcomeOK       = "ok"       // NOERROR response
	OutcomeServfail = "servfail" // any non-NOERROR rcode
	OutcomeTimeout  = "timeout"  // query deadline elapsed
	OutcomeError    = "error"    // transport-level failure
)

var outcomes = []string{OutcomeOK, OutcomeServfail, OutcomeTimeout, OutcomeError}

// Target is one serving plane to drive.
type Target struct {
	// Proto is one of ProtoUDP, ProtoTCP, ProtoDoT, ProtoDoH.
	Proto string
	// Addr is the host:port for udp/tcp/dot, or the full RFC 8484 URL
	// for doh.
	Addr string
	// TLS authenticates dot/doh targets (nil = system trust store).
	TLS *tls.Config
}

// Config parameterises one load run.
type Config struct {
	// Targets are the serving planes to drive. The total QPS is split
	// evenly across them.
	Targets []Target
	// Domains is the query population; picks follow a zipfian
	// popularity distribution over the slice order (index 0 hottest).
	Domains []string
	// QPS is the total offered load across all targets.
	QPS float64
	// Duration is how long the arrival schedule runs.
	Duration time.Duration
	// Clients is the worker (concurrent in-flight query) bound per
	// target; it must exceed qps × worst-case latency or late arrivals
	// queue behind busy workers. Default 16.
	Clients int
	// Timeout bounds one query from its send. Default 2s.
	Timeout time.Duration
	// ZipfS is the zipf exponent (must be > 1; closer to 1 = flatter).
	// Default 1.1.
	ZipfS float64
	// Seed makes domain picks reproducible. 0 means seed 1.
	Seed int64
	// Prewarm issues one blocking query per (target, domain) pair
	// before the clock starts, so the run measures steady-state cache
	// hits rather than cold-start consensus fan-outs.
	Prewarm bool

	// exchange overrides the wire exchange (tests inject stalls and
	// canned rcodes here). nil uses the real per-proto clients.
	exchange func(ctx context.Context, tgt Target, q *dnswire.Message) (*dnswire.Message, error)
}

// dist aggregates one (proto, outcome) latency series.
type dist struct {
	hist   *metrics.Histogram
	maxNum atomic.Int64 // max observed latency in nanoseconds
}

func (d *dist) observe(lat time.Duration) {
	d.hist.Observe(lat.Seconds())
	for {
		cur := d.maxNum.Load()
		if int64(lat) <= cur || d.maxNum.CompareAndSwap(cur, int64(lat)) {
			return
		}
	}
}

// latencyBuckets spans 10µs to 100s at 10 buckets per decade: loopback
// wire-cache hits sit near the bottom, stalled open-loop arrivals that
// waited out a deep queue near the top.
func latencyBuckets() []float64 { return metrics.LogBuckets(10e-6, 100, 10) }

// targetRun aggregates one target's full run.
type targetRun struct {
	target Target
	dists  map[string]*dist
	sent   atomic.Uint64
	late   atomic.Uint64 // arrivals dispatched past their scheduled time
}

// Series is one (proto, outcome) row of a Report.
type Series struct {
	Proto   string  `json:"proto"`
	Outcome string  `json:"outcome"`
	Count   uint64  `json:"count"`
	P50ms   float64 `json:"p50_ms"`
	P90ms   float64 `json:"p90_ms"`
	P99ms   float64 `json:"p99_ms"`
	P999ms  float64 `json:"p999_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// Success summarises one target's outcome split.
type Success struct {
	Sent uint64  `json:"sent"`
	OK   uint64  `json:"ok"`
	Late uint64  `json:"late"`
	Rate float64 `json:"rate"`
}

// Meta records the run parameters alongside the results, plus the
// runtime the run executed on — latency and throughput numbers are
// meaningless without knowing the machine shape they came from.
type Meta struct {
	Schema    string   `json:"schema"`
	QPS       float64  `json:"qps"`
	DurationS float64  `json:"duration_s"`
	Clients   int      `json:"clients"`
	Targets   []string `json:"targets"`
	Domains   int      `json:"domains"`
	ZipfS     float64  `json:"zipf_s"`
	Seed      int64    `json:"seed"`
	Unix      int64    `json:"unix"`

	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Report is the full result of a run, serialisable as BENCH_slo.json.
type Report struct {
	Meta    Meta               `json:"meta"`
	Series  []Series           `json:"series"`
	Success map[string]Success `json:"success"`
}

// SchemaSLO identifies the Report JSON document.
const SchemaSLO = "dohpool-slo/1"

// Run executes the configured load and blocks until the schedule is
// drained or ctx is cancelled (partial results are still reported).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("loadgen: no targets")
	}
	if len(cfg.Domains) == 0 {
		return nil, errors.New("loadgen: no domains")
	}
	if cfg.QPS <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: need positive qps and duration (got %v, %v)", cfg.QPS, cfg.Duration)
	}
	for _, t := range cfg.Targets {
		switch t.Proto {
		case ProtoUDP, ProtoTCP, ProtoDoT, ProtoDoH:
		default:
			return nil, fmt.Errorf("loadgen: unknown proto %q", t.Proto)
		}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("loadgen: zipf exponent must be > 1 (got %v)", cfg.ZipfS)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	share := cfg.QPS / float64(len(cfg.Targets))
	perTarget := int(share * cfg.Duration.Seconds())
	if perTarget < 1 {
		return nil, fmt.Errorf("loadgen: schedule is empty (%.1f qps per target over %v)", share, cfg.Duration)
	}

	runs := make([]*targetRun, len(cfg.Targets))
	for i, t := range cfg.Targets {
		tr := &targetRun{target: t, dists: make(map[string]*dist, len(outcomes))}
		for _, o := range outcomes {
			tr.dists[o] = &dist{hist: metrics.NewHistogram(latencyBuckets())}
		}
		runs[i] = tr
	}

	if cfg.Prewarm {
		if err := prewarm(ctx, cfg); err != nil {
			return nil, fmt.Errorf("loadgen: prewarm: %w", err)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for ti, tr := range runs {
		var next atomic.Int64
		// Clone: the HTTP/2 setup inside the DoH transport mutates its
		// tls.Config (NextProtos) on first use, which would race with
		// DoT dialers sharing the same pointer.
		sharedDoH := doh.NewClient(doh.WithTLSConfig(tr.target.TLS.Clone()), doh.WithTimeout(cfg.Timeout))
		for w := 0; w < cfg.Clients; w++ {
			wg.Add(1)
			go func(ti int, tr *targetRun, next *atomic.Int64, w int) {
				defer wg.Done()
				worker(ctx, cfg, tr, next, sharedDoH, start, share, perTarget, cfg.Seed+int64(ti*10007+w))
			}(ti, tr, &next, w)
		}
	}
	wg.Wait()

	return buildReport(cfg, runs, share), nil
}

// worker pulls arrival indices off the target's shared counter and
// serves each at (or as soon as possible after) its scheduled time.
func worker(ctx context.Context, cfg Config, tr *targetRun, next *atomic.Int64, sharedDoH *doh.Client, start time.Time, share float64, total int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Domains)-1))
	ex := newExchange(tr.target, sharedDoH, cfg.exchange)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()

	for {
		i := next.Add(1) - 1
		if i >= int64(total) {
			return
		}
		sched := start.Add(time.Duration(float64(i) / share * float64(time.Second)))
		if wait := time.Until(sched); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
		} else {
			tr.late.Add(1)
		}
		if ctx.Err() != nil {
			return
		}

		domain := cfg.Domains[zipf.Uint64()]
		q, err := dnswire.NewQuery(domain, dnswire.TypeA)
		if err != nil {
			// Domains are validated by prewarm/config in practice; count
			// a build failure as an error outcome rather than aborting.
			tr.sent.Add(1)
			tr.dists[OutcomeError].observe(time.Since(sched))
			continue
		}
		qctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
		resp, err := ex(qctx, q)
		cancel()
		tr.sent.Add(1)
		tr.dists[classify(resp, err)].observe(time.Since(sched))
	}
}

// classify maps one exchange result to an outcome label.
func classify(resp *dnswire.Message, err error) string {
	switch {
	case err == nil && resp.Header.RCode == dnswire.RCodeSuccess:
		return OutcomeOK
	case err == nil:
		return OutcomeServfail
	default:
		var nerr net.Error
		if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &nerr) && nerr.Timeout()) {
			return OutcomeTimeout
		}
		return OutcomeError
	}
}

// prewarm issues one blocking query per (target, domain) pair so the
// measured run starts against hot consensus and wire caches.
func prewarm(ctx context.Context, cfg Config) error {
	for _, t := range cfg.Targets {
		sharedDoH := doh.NewClient(doh.WithTLSConfig(t.TLS.Clone()), doh.WithTimeout(cfg.Timeout))
		ex := newExchange(t, sharedDoH, cfg.exchange)
		for _, d := range cfg.Domains {
			q, err := dnswire.NewQuery(d, dnswire.TypeA)
			if err != nil {
				return fmt.Errorf("domain %q: %w", d, err)
			}
			// The first query per domain runs a full consensus fan-out;
			// give it more room than the steady-state timeout.
			qctx, cancel := context.WithTimeout(ctx, 2*cfg.Timeout+2*time.Second)
			_, err = ex(qctx, q)
			cancel()
			if err != nil {
				return fmt.Errorf("%s %s: %w", t.Proto, d, err)
			}
		}
	}
	return nil
}

// exchangeFn performs one query against a fixed target.
type exchangeFn func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error)

// newExchange builds the per-worker exchange for a target. UDP workers
// hold one connected socket; TCP and DoT workers hold one stream and
// reconnect after any error (a timed-out framed stream is out of sync);
// DoH workers share the target's pooled HTTP client.
func newExchange(t Target, sharedDoH *doh.Client, override func(context.Context, Target, *dnswire.Message) (*dnswire.Message, error)) exchangeFn {
	if override != nil {
		return func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
			return override(ctx, t, q)
		}
	}
	switch t.Proto {
	case ProtoUDP:
		u := &udpConn{addr: t.Addr}
		return u.exchange
	case ProtoTCP:
		s := &streamConn{dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", t.Addr)
		}}
		return s.exchange
	case ProtoDoT:
		// Clone so this dialer never shares a mutable tls.Config with
		// the DoH transport (whose HTTP/2 setup writes NextProtos).
		tcfg := t.TLS.Clone()
		s := &streamConn{dial: func(ctx context.Context) (net.Conn, error) {
			d := &tls.Dialer{Config: tcfg}
			return d.DialContext(ctx, "tcp", t.Addr)
		}}
		return s.exchange
	default: // ProtoDoH, validated by Run
		return func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
			return sharedDoH.Exchange(ctx, q, t.Addr)
		}
	}
}

// udpConn is a persistent connected UDP socket. Responses that fail
// validation (stale answers to a previously timed-out query still
// sitting in the socket buffer) are skipped, not fatal.
type udpConn struct {
	addr string
	conn net.Conn
	buf  []byte
}

func (u *udpConn) exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	if u.conn == nil {
		conn, err := net.Dial("udp", u.addr)
		if err != nil {
			return nil, err
		}
		u.conn = conn
		u.buf = make([]byte, dnswire.DefaultEDNSSize)
	}
	wire, err := q.Encode()
	if err != nil {
		return nil, err
	}
	deadline, _ := ctx.Deadline()
	if err := u.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := u.conn.Write(wire); err != nil {
		u.close()
		return nil, err
	}
	for {
		n, err := u.conn.Read(u.buf)
		if err != nil {
			// Timeouts leave the socket usable; real errors do not.
			var nerr net.Error
			if !(errors.As(err, &nerr) && nerr.Timeout()) {
				u.close()
			}
			return nil, err
		}
		resp, err := dnswire.Decode(u.buf[:n])
		if err != nil || transport.Validate(q, resp) != nil {
			continue
		}
		return resp, nil
	}
}

func (u *udpConn) close() {
	if u.conn != nil {
		_ = u.conn.Close()
		u.conn = nil
	}
}

// streamConn is a persistent length-prefixed DNS stream (TCP or DoT)
// that reconnects lazily after any failure.
type streamConn struct {
	dial func(ctx context.Context) (net.Conn, error)
	conn net.Conn
}

func (s *streamConn) exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	if s.conn == nil {
		conn, err := s.dial(ctx)
		if err != nil {
			return nil, err
		}
		s.conn = conn
	}
	deadline, _ := ctx.Deadline()
	if err := s.conn.SetDeadline(deadline); err != nil {
		s.close()
		return nil, err
	}
	if err := transport.WriteTCPMessage(s.conn, q); err != nil {
		s.close()
		return nil, err
	}
	resp, err := transport.ReadTCPMessage(s.conn)
	if err != nil {
		s.close()
		return nil, err
	}
	if err := transport.Validate(q, resp); err != nil {
		s.close()
		return nil, err
	}
	return resp, nil
}

func (s *streamConn) close() {
	if s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
	}
}

// buildReport freezes the per-target histograms into a Report.
func buildReport(cfg Config, runs []*targetRun, share float64) *Report {
	rep := &Report{
		Meta: Meta{
			Schema:    SchemaSLO,
			QPS:       cfg.QPS,
			DurationS: cfg.Duration.Seconds(),
			Clients:   cfg.Clients,
			Domains:   len(cfg.Domains),
			ZipfS:     cfg.ZipfS,
			Seed:      cfg.Seed,
			Unix:      time.Now().Unix(),

			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Success: make(map[string]Success, len(runs)),
	}
	for _, tr := range runs {
		rep.Meta.Targets = append(rep.Meta.Targets, tr.target.Proto)
		var ok uint64
		for _, outcome := range outcomes {
			d := tr.dists[outcome]
			count := d.hist.Count()
			if outcome == OutcomeOK {
				ok = count
			}
			if count == 0 {
				continue
			}
			maxMs := float64(d.maxNum.Load()) / 1e6
			rep.Series = append(rep.Series, Series{
				Proto:   tr.target.Proto,
				Outcome: outcome,
				Count:   count,
				P50ms:   quantileMs(d, 0.50, maxMs),
				P90ms:   quantileMs(d, 0.90, maxMs),
				P99ms:   quantileMs(d, 0.99, maxMs),
				P999ms:  quantileMs(d, 0.999, maxMs),
				MaxMs:   maxMs,
			})
		}
		sent := tr.sent.Load()
		var rate float64
		if sent > 0 {
			rate = float64(ok) / float64(sent)
		}
		rep.Success[tr.target.Proto] = Success{
			Sent: sent, OK: ok, Late: tr.late.Load(), Rate: rate,
		}
	}
	sort.Slice(rep.Series, func(i, j int) bool {
		if rep.Series[i].Proto != rep.Series[j].Proto {
			return rep.Series[i].Proto < rep.Series[j].Proto
		}
		return outcomeRank(rep.Series[i].Outcome) < outcomeRank(rep.Series[j].Outcome)
	})
	return rep
}

func outcomeRank(o string) int {
	for i, v := range outcomes {
		if v == o {
			return i
		}
	}
	return len(outcomes)
}

// quantileMs converts a histogram quantile to milliseconds, pinning an
// overflow-bucket (+Inf) answer to the exactly-tracked maximum so the
// JSON stays finite and the gate still sees the honest worst case.
func quantileMs(d *dist, q, maxMs float64) float64 {
	v := d.hist.Quantile(q) * 1e3
	if math.IsInf(v, 1) {
		return maxMs
	}
	return v
}

// WriteJSON emits the BENCH_slo.json document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report for humans.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-6s %-9s %10s %10s %10s %10s %10s %10s\n",
		"proto", "outcome", "count", "p50", "p90", "p99", "p999", "max")
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-6s %-9s %10d %10s %10s %10s %10s %10s\n",
			s.Proto, s.Outcome, s.Count,
			fmtMs(s.P50ms), fmtMs(s.P90ms), fmtMs(s.P99ms), fmtMs(s.P999ms), fmtMs(s.MaxMs))
	}
	protos := make([]string, 0, len(r.Success))
	for p := range r.Success {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	for _, p := range protos {
		s := r.Success[p]
		fmt.Fprintf(w, "%-6s success %d/%d (%.3f%%), %d late sends\n",
			p, s.OK, s.Sent, 100*s.Rate, s.Late)
	}
}

// fmtMs renders a millisecond value at a width-stable precision.
func fmtMs(ms float64) string {
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.2fs", ms/1000)
	case ms >= 1:
		return fmt.Sprintf("%.2fms", ms)
	default:
		return fmt.Sprintf("%.0fµs", ms*1000)
	}
}
