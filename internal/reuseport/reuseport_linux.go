//go:build linux

package reuseport

import (
	"context"
	"net"
	"syscall"
)

// Supported reports whether this platform can bind multiple sockets to
// one port. True on Linux, where SO_REUSEPORT (since 3.9) both permits
// the shared bind and steers each flow to a consistent socket.
const Supported = true

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package
// (golang.org/x/sys/unix.SO_REUSEPORT). The value is 15 on every Linux
// architecture.
const soReusePort = 0xf

// ListenUDP binds one UDP socket to address with SO_REUSEPORT set
// before bind, so any number of calls with the same address succeed and
// share the port. network is "udp", "udp4" or "udp6".
func ListenUDP(network, address string) (*net.UDPConn, error) {
	lc := net.ListenConfig{Control: setReusePort}
	pc, err := lc.ListenPacket(context.Background(), network, address)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}

// setReusePort is the pre-bind socket-option hook: ListenConfig invokes
// it after socket creation and before bind, which is the only window in
// which SO_REUSEPORT may be set for it to affect bind conflict checks.
func setReusePort(_, _ string, c syscall.RawConn) error {
	var sockErr error
	if err := c.Control(func(fd uintptr) {
		sockErr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return sockErr
}
