//go:build !linux

package reuseport

import (
	"errors"
	"net"
)

// Supported reports whether this platform can bind multiple sockets to
// one port. False here: SO_REUSEPORT semantics differ or are absent off
// Linux (Darwin steers nothing, Windows' SO_REUSEADDR is a different
// feature), so callers must serve from a single socket.
const Supported = false

// ErrUnsupported is returned by ListenUDP on platforms without
// SO_REUSEPORT flow steering.
var ErrUnsupported = errors.New("reuseport: SO_REUSEPORT is not supported on this platform")

// ListenUDP always fails on this platform; callers gate on Supported
// and keep their single net.ListenUDP socket instead.
func ListenUDP(network, address string) (*net.UDPConn, error) {
	return nil, ErrUnsupported
}
