// Package reuseport binds multiple UDP sockets to one local port via
// SO_REUSEPORT, so a server can run N independent reader loops on the
// same address and let the kernel's flow steering spread inbound
// datagrams across them — no shared socket lock, no userspace fan-out
// channel, and per-flow affinity (one client 4-tuple always hashes to
// the same socket) for free.
//
// The platform split mirrors internal/udpbatch: the Linux
// implementation sets the socket option through syscall.RawConn.Control
// before bind, and everywhere else a portable stub reports the feature
// unsupported so callers fall back to single-socket serving. Supported
// is a compile-time constant, so the fallback branch is dead code on
// Linux and vice versa.
package reuseport
