//go:build linux

package reuseport

import (
	"net"
	"testing"
	"time"
)

// TestSharedBindAndSteering binds several sockets to one port and
// sprays datagrams from many distinct source sockets: every datagram
// must arrive on exactly one of the shared sockets (nothing lost,
// nothing duplicated), which is the whole contract multi-socket serving
// rests on. Per-socket distribution is the kernel's hash to choose, so
// only the sum is asserted.
func TestSharedBindAndSteering(t *testing.T) {
	const sockets = 4
	first, err := ListenUDP("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("first bind: %v", err)
	}
	conns := []*net.UDPConn{first}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	addr := first.LocalAddr().String()
	for len(conns) < sockets {
		c, err := ListenUDP("udp", addr)
		if err != nil {
			t.Fatalf("shared bind %d on %s: %v", len(conns), addr, err)
		}
		conns = append(conns, c)
	}

	const senders = 32
	for i := 0; i < senders; i++ {
		s, err := net.Dial("udp", addr)
		if err != nil {
			t.Fatalf("sender %d: %v", i, err)
		}
		if _, err := s.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		s.Close()
	}

	got := make(map[byte]int)
	deadline := time.Now().Add(2 * time.Second)
	buf := make([]byte, 16)
	for len(got) < senders && time.Now().Before(deadline) {
		for _, c := range conns {
			_ = c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
			n, _, err := c.ReadFromUDP(buf)
			if err != nil || n == 0 {
				continue
			}
			got[buf[0]]++
		}
	}
	if len(got) != senders {
		t.Fatalf("received %d distinct datagrams across %d shared sockets, want %d", len(got), sockets, senders)
	}
	for b, n := range got {
		if n != 1 {
			t.Fatalf("datagram %d received %d times, want exactly once", b, n)
		}
	}
}

// TestSharedBindRequiresOption proves the port is genuinely shared, not
// leaked through SO_REUSEADDR: a plain bind against a reuseport-held
// port must fail.
func TestSharedBindRequiresOption(t *testing.T) {
	held, err := ListenUDP("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()
	if c, err := net.ListenPacket("udp", held.LocalAddr().String()); err == nil {
		c.Close()
		t.Fatal("plain bind on a reuseport-held port succeeded")
	}
}
