// Package core implements the paper's contribution: secure server pool
// generation over a set of distributed DoH resolvers (Algorithm 1), the
// optional majority filter, dual-stack policies, and a standard-compatible
// DNS front-end so unmodified applications can use the mechanism.
package core

import (
	"errors"
	"net/netip"
	"sort"
)

// Algorithm errors.
var (
	// ErrNoResults reports that no resolver produced a usable answer.
	ErrNoResults = errors.New("no resolver produced results")
	// ErrEmptyAnswer reports that the shortest answer list was empty, so
	// truncation yields an empty pool (the DoS case of footnote 2).
	ErrEmptyAnswer = errors.New("shortest answer list is empty (truncation DoS)")
)

// TruncateLength returns min over the list lengths — Algorithm 1's
// truncatelength. A nil/empty input yields 0.
func TruncateLength(lists [][]netip.Addr) int {
	if len(lists) == 0 {
		return 0
	}
	min := len(lists[0])
	for _, l := range lists[1:] {
		if len(l) < min {
			min = len(l)
		}
	}
	return min
}

// Truncate returns copies of the lists cut to length k, preserving order.
func Truncate(lists [][]netip.Addr, k int) [][]netip.Addr {
	out := make([][]netip.Addr, len(lists))
	for i, l := range lists {
		if len(l) > k {
			l = l[:k]
		}
		out[i] = append([]netip.Addr(nil), l...)
	}
	return out
}

// Combine concatenates the per-resolver lists into one pool. Duplicates
// are preserved deliberately: the paper's Section IV requires applications
// to treat repeated addresses as individual servers, otherwise an attacker
// controlling a minority of resolvers can reach a pool majority whenever
// the benign resolvers return overlapping sets.
func Combine(lists [][]netip.Addr) []netip.Addr {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	pool := make([]netip.Addr, 0, total)
	for _, l := range lists {
		pool = append(pool, l...)
	}
	return pool
}

// GeneratePool is the pure heart of Algorithm 1: truncate every answer
// list to the length of the shortest and concatenate. It returns
// ErrNoResults for empty input and ErrEmptyAnswer when the shortest list
// is empty.
func GeneratePool(lists [][]netip.Addr) ([]netip.Addr, error) {
	if len(lists) == 0 {
		return nil, ErrNoResults
	}
	k := TruncateLength(lists)
	if k == 0 {
		return nil, ErrEmptyAnswer
	}
	return Combine(Truncate(lists, k)), nil
}

// Dedupe returns the pool with duplicates removed, preserving first-seen
// order. It exists for the A2 ablation — the INSECURE behaviour the paper
// warns against — and for presenting results.
func Dedupe(pool []netip.Addr) []netip.Addr {
	seen := make(map[netip.Addr]bool, len(pool))
	out := make([]netip.Addr, 0, len(pool))
	for _, a := range pool {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// MajorityFilter keeps only addresses returned by strictly more than
// half of the resolvers (presence per resolver, not multiplicity),
// implementing the paper's "classic majority-vote on each of the returned
// addresses". The returned slice is ordered by descending vote count,
// ties broken by address ordering, for determinism.
func MajorityFilter(lists [][]netip.Addr) []netip.Addr {
	return VoteFilter(lists, len(lists)/2+1)
}

// VoteFilter keeps addresses appearing in at least threshold of the lists.
func VoteFilter(lists [][]netip.Addr, threshold int) []netip.Addr {
	votes := make(map[netip.Addr]int)
	for _, l := range lists {
		perResolver := make(map[netip.Addr]bool, len(l))
		for _, a := range l {
			if !perResolver[a] {
				perResolver[a] = true
				votes[a]++
			}
		}
	}
	out := make([]netip.Addr, 0, len(votes))
	for a, v := range votes {
		if v >= threshold {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := votes[out[i]], votes[out[j]]
		if vi != vj {
			return vi > vj
		}
		return out[i].Less(out[j])
	})
	return out
}

// Fraction returns the fraction of pool members matching pred (e.g. the
// attacker-controlled fraction). An empty pool yields 0.
func Fraction(pool []netip.Addr, pred func(netip.Addr) bool) float64 {
	if len(pool) == 0 {
		return 0
	}
	n := 0
	for _, a := range pool {
		if pred(a) {
			n++
		}
	}
	return float64(n) / float64(len(pool))
}
