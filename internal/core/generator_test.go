package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"dohpool/internal/dnswire"
)

// fakeQuerier maps resolver URL → answer lists (per type), with optional
// per-URL errors and call counting.
type fakeQuerier struct {
	mu      sync.Mutex
	answers map[string]map[dnswire.Type][]netip.Addr
	errs    map[string]error
	rcodes  map[string]dnswire.RCode
	calls   map[string]int
	delay   time.Duration
}

func newFakeQuerier() *fakeQuerier {
	return &fakeQuerier{
		answers: make(map[string]map[dnswire.Type][]netip.Addr),
		errs:    make(map[string]error),
		rcodes:  make(map[string]dnswire.RCode),
		calls:   make(map[string]int),
	}
}

func (f *fakeQuerier) set(url string, typ dnswire.Type, list []netip.Addr) {
	if f.answers[url] == nil {
		f.answers[url] = make(map[dnswire.Type][]netip.Addr)
	}
	f.answers[url][typ] = list
}

func (f *fakeQuerier) Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	f.mu.Lock()
	f.calls[url]++
	f.mu.Unlock()
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := f.errs[url]; err != nil {
		return nil, err
	}
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(query)
	if rc, ok := f.rcodes[url]; ok {
		resp.Header.RCode = rc
		return resp, nil
	}
	for _, a := range f.answers[url][typ] {
		resp.Answers = append(resp.Answers, dnswire.AddressRecord(name, a, 60))
	}
	return resp, nil
}

func endpoints(n int) []Endpoint {
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = Endpoint{Name: fmt.Sprintf("r%d", i), URL: fmt.Sprintf("https://r%d/dns-query", i)}
	}
	return eps
}

func TestGeneratorConfigValidation(t *testing.T) {
	if _, err := NewGenerator(Config{Querier: newFakeQuerier()}); !errors.Is(err, ErrNoResolvers) {
		t.Errorf("no resolvers: %v", err)
	}
	if _, err := NewGenerator(Config{Resolvers: endpoints(3)}); err == nil {
		t.Error("nil querier accepted")
	}
	if _, err := NewGenerator(Config{Resolvers: endpoints(3), Querier: newFakeQuerier(), MinResolvers: 5}); err == nil {
		t.Error("quorum > N accepted")
	}
}

func TestLookupCombinesAndTruncates(t *testing.T) {
	fq := newFakeQuerier()
	eps := endpoints(3)
	fq.set(eps[0].URL, dnswire.TypeA, addrs("192.0.2.1", "192.0.2.2", "192.0.2.3"))
	fq.set(eps[1].URL, dnswire.TypeA, addrs("192.0.2.4", "192.0.2.5"))
	fq.set(eps[2].URL, dnswire.TypeA, addrs("192.0.2.6", "192.0.2.7", "192.0.2.8", "192.0.2.9"))

	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(context.Background(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if pool.TruncateLength != 2 {
		t.Errorf("K = %d, want 2", pool.TruncateLength)
	}
	if len(pool.Addrs) != 6 {
		t.Errorf("pool size = %d, want N*K = 6", len(pool.Addrs))
	}
	if pool.Responding() != 3 {
		t.Errorf("responding = %d", pool.Responding())
	}
	// Per-resolver contribution ordering is preserved.
	if pool.Addrs[0] != ip("192.0.2.1") || pool.Addrs[2] != ip("192.0.2.4") || pool.Addrs[4] != ip("192.0.2.6") {
		t.Errorf("pool order = %v", pool.Addrs)
	}
}

func TestLookupQuorum(t *testing.T) {
	fq := newFakeQuerier()
	eps := endpoints(3)
	fq.set(eps[0].URL, dnswire.TypeA, addrs("192.0.2.1"))
	fq.set(eps[1].URL, dnswire.TypeA, addrs("192.0.2.2"))
	fq.errs[eps[2].URL] = errors.New("resolver down")

	// Default quorum = all: must fail.
	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Lookup(context.Background(), "pool.test.", dnswire.TypeA); !errors.Is(err, ErrQuorum) {
		t.Fatalf("strict quorum: %v", err)
	}

	// Quorum 2: succeeds with the two live resolvers.
	gen2, err := NewGenerator(Config{Resolvers: eps, Querier: fq, MinResolvers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen2.Lookup(context.Background(), "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) != 2 {
		t.Errorf("pool = %v", pool.Addrs)
	}
	// The failed resolver's result is recorded for diagnostics.
	var sawErr bool
	for _, r := range pool.Results {
		if r.Err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("failed resolver missing from Results")
	}
}

func TestLookupAllFailed(t *testing.T) {
	fq := newFakeQuerier()
	eps := endpoints(2)
	fq.errs[eps[0].URL] = errors.New("down 0")
	fq.errs[eps[1].URL] = errors.New("down 1")
	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq, MinResolvers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = gen.Lookup(context.Background(), "pool.test.", dnswire.TypeA)
	if !errors.Is(err, ErrNoResults) {
		t.Fatalf("err = %v, want ErrNoResults", err)
	}
	if !strings.Contains(err.Error(), "down") {
		t.Errorf("error does not carry cause: %v", err)
	}
}

func TestLookupServFailCountsAsFailure(t *testing.T) {
	fq := newFakeQuerier()
	eps := endpoints(2)
	fq.set(eps[0].URL, dnswire.TypeA, addrs("192.0.2.1"))
	fq.rcodes[eps[1].URL] = dnswire.RCodeServFail
	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq, MinResolvers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(context.Background(), "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Responding() != 1 {
		t.Errorf("responding = %d, want 1", pool.Responding())
	}
}

func TestLookupEmptyAnswerDoS(t *testing.T) {
	// One resolver answering NOERROR/empty triggers the truncation DoS
	// the paper accepts as a trade-off (footnote 2).
	fq := newFakeQuerier()
	eps := endpoints(3)
	fq.set(eps[0].URL, dnswire.TypeA, addrs("192.0.2.1"))
	fq.set(eps[1].URL, dnswire.TypeA, addrs("192.0.2.2"))
	fq.set(eps[2].URL, dnswire.TypeA, nil)
	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq})
	if err != nil {
		t.Fatal(err)
	}
	_, err = gen.Lookup(context.Background(), "pool.test.", dnswire.TypeA)
	if !errors.Is(err, ErrEmptyAnswer) {
		t.Fatalf("err = %v, want ErrEmptyAnswer", err)
	}
}

func TestLookupWithMajority(t *testing.T) {
	fq := newFakeQuerier()
	eps := endpoints(3)
	fq.set(eps[0].URL, dnswire.TypeA, addrs("192.0.2.1", "198.18.0.1"))
	fq.set(eps[1].URL, dnswire.TypeA, addrs("192.0.2.1", "192.0.2.2"))
	fq.set(eps[2].URL, dnswire.TypeA, addrs("192.0.2.2", "192.0.2.1"))
	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq, WithMajority: true})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(context.Background(), "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Majority) != 2 {
		t.Fatalf("majority = %v", pool.Majority)
	}
	for _, a := range pool.Majority {
		if a == ip("198.18.0.1") {
			t.Fatal("minority-injected address passed the majority filter")
		}
	}
}

func TestSequentialVsConcurrent(t *testing.T) {
	fq := newFakeQuerier()
	fq.delay = 50 * time.Millisecond
	eps := endpoints(4)
	for _, ep := range eps {
		fq.set(ep.URL, dnswire.TypeA, addrs("192.0.2.1"))
	}

	conc, err := NewGenerator(Config{Resolvers: eps, Querier: fq})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := conc.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	concDur := time.Since(start)

	seq, err := NewGenerator(Config{Resolvers: eps, Querier: fq, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := seq.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	seqDur := time.Since(start)

	if concDur >= seqDur {
		t.Errorf("concurrent (%v) not faster than sequential (%v)", concDur, seqDur)
	}
	if seqDur < 4*fq.delay {
		t.Errorf("sequential finished in %v, expected >= %v", seqDur, 4*fq.delay)
	}
}

func TestQueryTimeout(t *testing.T) {
	fq := newFakeQuerier()
	fq.delay = 200 * time.Millisecond
	eps := endpoints(1)
	fq.set(eps[0].URL, dnswire.TypeA, addrs("192.0.2.1"))
	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq, QueryTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = gen.Lookup(context.Background(), "pool.test.", dnswire.TypeA)
	if err == nil {
		t.Fatal("slow resolver did not time out")
	}
}

func TestDualStackIndividual(t *testing.T) {
	fq := newFakeQuerier()
	eps := endpoints(2)
	fq.set(eps[0].URL, dnswire.TypeA, addrs("192.0.2.1", "192.0.2.2"))
	fq.set(eps[1].URL, dnswire.TypeA, addrs("192.0.2.3"))
	fq.set(eps[0].URL, dnswire.TypeAAAA, addrs("2001:db8::1"))
	fq.set(eps[1].URL, dnswire.TypeAAAA, addrs("2001:db8::2", "2001:db8::3"))

	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq, DualStack: DualStackIndividual})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.LookupDualStack(context.Background(), "pool.test.")
	if err != nil {
		t.Fatal(err)
	}
	// v4: K=1 → 2 addrs; v6: K=1 → 2 addrs.
	if len(pool.Addrs) != 4 {
		t.Fatalf("pool = %v", pool.Addrs)
	}
	if pool.TruncateLength != 2 {
		t.Errorf("combined K = %d, want 1+1", pool.TruncateLength)
	}
}

func TestDualStackUnion(t *testing.T) {
	fq := newFakeQuerier()
	eps := endpoints(2)
	fq.set(eps[0].URL, dnswire.TypeA, addrs("192.0.2.1", "192.0.2.2"))
	fq.set(eps[1].URL, dnswire.TypeA, addrs("192.0.2.3"))
	fq.set(eps[0].URL, dnswire.TypeAAAA, addrs("2001:db8::1"))
	fq.set(eps[1].URL, dnswire.TypeAAAA, addrs("2001:db8::2", "2001:db8::3"))

	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq, DualStack: DualStackUnion})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.LookupDualStack(context.Background(), "pool.test.")
	if err != nil {
		t.Fatal(err)
	}
	// Unions: r0 has 3 addrs, r1 has 3 addrs → K=3, pool=6.
	if pool.TruncateLength != 3 || len(pool.Addrs) != 6 {
		t.Fatalf("K=%d pool=%v", pool.TruncateLength, pool.Addrs)
	}
}

func TestDualStackV6OnlyFallback(t *testing.T) {
	fq := newFakeQuerier()
	eps := endpoints(2)
	// No A answers at all (empty lists → ErrEmptyAnswer for v4).
	fq.set(eps[0].URL, dnswire.TypeAAAA, addrs("2001:db8::1"))
	fq.set(eps[1].URL, dnswire.TypeAAAA, addrs("2001:db8::2"))
	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq, DualStack: DualStackIndividual})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.LookupDualStack(context.Background(), "pool.test.")
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) != 2 {
		t.Fatalf("pool = %v", pool.Addrs)
	}
}

func TestRTTRecorded(t *testing.T) {
	fq := newFakeQuerier()
	fq.delay = 10 * time.Millisecond
	eps := endpoints(1)
	fq.set(eps[0].URL, dnswire.TypeA, addrs("192.0.2.1"))
	gen, err := NewGenerator(Config{Resolvers: eps, Querier: fq})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(context.Background(), "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Results[0].RTT < 10*time.Millisecond {
		t.Errorf("RTT = %v", pool.Results[0].RTT)
	}
}
