package core

import (
	"context"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dohpool/internal/dnscache"
	"dohpool/internal/dnswire"
	"dohpool/internal/metrics"
)

// Engine defaults.
const (
	// DefaultLookupTimeout bounds one coalesced Algorithm 1 run.
	DefaultLookupTimeout = 5 * time.Second
)

// EngineConfig tunes the long-lived layers around Algorithm 1. The zero
// value gives a caching, coalescing, adaptively hedging engine with
// breaker defaults.
type EngineConfig struct {
	// CacheSize bounds the pool cache (entries). 0 uses
	// dnscache.DefaultCapacity; negative disables caching entirely.
	CacheSize int
	// CacheShards splits the pool cache into this many lock domains
	// (rounded up to a power of two) so cached lookups scale with cores
	// instead of serializing behind one mutex. 0 or negative sizes
	// automatically from GOMAXPROCS; 1 forces a single shard with strict
	// global LRU order.
	CacheShards int
	// MaxStale, when positive, serves an expired pool for up to this long
	// past its TTL while a background refresh runs (stale-while-
	// revalidate). Zero disables stale serving.
	MaxStale time.Duration
	// RefreshAhead, when in (0, 1], turns the engine from reactive to
	// always-warm: a background refresher re-runs Algorithm 1 for a
	// cached pool once it has lived RefreshAhead of its TTL (0.8 = at
	// 80% of lifetime), so hot keys are regenerated before they expire
	// and Lookup almost never generates inline. 0 disables refresh-ahead
	// (miss-driven generation only).
	RefreshAhead float64
	// RefreshMinHits is the refresh-ahead popularity threshold: only
	// entries with at least this many hits since their last background
	// refresh (lifetime hits for a never-refreshed entry) are refreshed;
	// keys nobody read in the last TTL window are left to expire and
	// regenerate on demand, so refresh traffic tracks live popularity,
	// not cache occupancy. 0 refreshes every cached entry.
	RefreshMinHits uint64
	// RefreshInterval is the refresher's cache-scan cadence. 0 uses
	// DefaultRefreshInterval.
	RefreshInterval time.Duration
	// RefreshConcurrency bounds how many background regenerations may
	// run at once; entries past the cap wait for the next scan, smearing
	// a correlated-expiry herd across ticks instead of fanning out to
	// every resolver simultaneously. 0 uses DefaultRefreshConcurrency.
	RefreshConcurrency int
	// RefreshBackoff is the base delay before re-attempting a key whose
	// background refresh failed, doubling per consecutive failure up to
	// 32× the base. 0 uses DefaultRefreshBackoff.
	RefreshBackoff time.Duration
	// HedgeDelay is how long to wait for a straggling resolver before
	// firing a backup attempt at it. Positive = fixed; 0 = adaptive
	// (2× the resolver's EWMA RTT, clamped).
	HedgeDelay time.Duration
	// DisableHedging turns straggler hedging off.
	DisableHedging bool
	// BreakerThreshold is the consecutive-failure count that opens a
	// resolver's circuit breaker. 0 uses DefaultBreakerThreshold;
	// negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects attempts.
	// 0 uses DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// TrustWindow is how many recent pool generations feed each
	// resolver's trust score (answer-length conduct, bogus-prefix
	// membership, consensus overlap, majority-vote survival). 0 uses
	// DefaultTrustWindow; negative disables trust tracking entirely.
	// Scoring happens only on the generation path — cached lookups never
	// touch it.
	TrustWindow int
	// TrustMinScore, when in (0, 1], turns trust scoring into
	// enforcement: a resolver whose windowed score falls below it has its
	// contributions quarantined from truncation and the combined pool
	// (while trusted contributors keep a strict majority), and stops
	// receiving straggler hedges. 0 keeps scoring observational only.
	// 0.5 is the recommended enforcing value: corroboration misses alone
	// can never push a resolver below it.
	TrustMinScore float64
	// LookupTimeout bounds one coalesced upstream consensus run
	// (the run is detached from any single caller's context, since many
	// callers may be waiting on it). 0 uses DefaultLookupTimeout.
	LookupTimeout time.Duration
	// Clock injects a time source for TTL tests. Nil uses time.Now.
	Clock func() time.Time
	// Metrics, when non-nil, receives the engine's, health tracker's and
	// pool cache's instruments (see the Metric* name constants). Nil
	// disables instrumentation at the cost of one nil check per event.
	Metrics *metrics.Registry
}

// Engine is the long-lived form of Algorithm 1: where Generator re-runs
// the full N-resolver DoH fan-out on every call, Engine layers a
// TTL-aware pool cache, singleflight request coalescing, per-resolver
// health tracking and straggler hedging on top, so a daemon serving heavy
// traffic touches the network only when consensus actually needs
// refreshing. Create one with NewEngine and share it between any number
// of goroutines; both dohpool.Client and the DNS Frontend sit on it.
type Engine struct {
	gen       *Generator
	cache     *dnscache.Store[*poolEntry] // nil when caching is disabled
	wire      *dnscache.WireCache         // nil when caching is disabled
	health    *HealthTracker
	trust     *TrustTracker // nil when TrustWindow < 0
	refresher *refresher    // nil unless RefreshAhead is enabled
	cfg       EngineConfig
	inst      engineInstruments

	flight flightGroup

	networkRuns    atomic.Uint64 // actual Algorithm 1 executions
	inlineGens     atomic.Uint64 // executions led by a waiting caller
	backgroundGens atomic.Uint64 // executions led by refresh-ahead / stale refresh
	staleServes    atomic.Uint64

	// refreshMu orders refreshWG.Add against Close's Wait: a refresh
	// either starts before Close observes the engine closed, or not at
	// all. Lookups cross it on every refresh decision.
	//dohlint:hotlock
	refreshMu sync.Mutex
	refreshWG sync.WaitGroup
	closed    bool
}

// poolEntry is the pool cache's value: the generated pool plus the
// regeneration closure bound to the original lookup's (domain, type), so
// the background refresher can re-run Algorithm 1 for a key without
// reverse-parsing it.
type poolEntry struct {
	pool  *Pool
	regen func(context.Context) (*Pool, error)
	// spec carries the lookup's (domain, type) so regenerations —
	// inline, stale revalidation and refresh-ahead alike — can rebuild
	// the pre-encoded wire answer along with the pool. Zero for
	// dual-stack keys, which the DNS frontend never serves from wire.
	spec wireSpec
}

// wireSpec identifies what a wire cache entry answers. The zero value
// means "no wire entry for this key".
type wireSpec struct {
	domain string
	typ    dnswire.Type
}

// NewEngine validates gcfg, wires the health-tracking hedged querier in
// front of its Querier, and builds the engine.
func NewEngine(gcfg Config, ecfg EngineConfig) (*Engine, error) {
	if ecfg.LookupTimeout <= 0 {
		ecfg.LookupTimeout = DefaultLookupTimeout
	}
	if ecfg.RefreshAhead < 0 || ecfg.RefreshAhead > 1 {
		return nil, fmt.Errorf("engine: RefreshAhead %v outside [0, 1]", ecfg.RefreshAhead)
	}
	if ecfg.RefreshAhead > 0 && ecfg.CacheSize < 0 {
		// Refresh-ahead watches the cache; with caching disabled it
		// would silently never run — surface the conflict instead.
		return nil, fmt.Errorf("engine: RefreshAhead %v requires caching, but CacheSize %d disables it", ecfg.RefreshAhead, ecfg.CacheSize)
	}
	threshold := ecfg.BreakerThreshold
	switch {
	case threshold == 0:
		threshold = DefaultBreakerThreshold
	case threshold < 0:
		threshold = 0 // disabled
	}
	if ecfg.TrustMinScore < 0 || ecfg.TrustMinScore > 1 {
		return nil, fmt.Errorf("engine: TrustMinScore %v outside [0, 1]", ecfg.TrustMinScore)
	}
	health := NewHealthTracker(threshold, ecfg.BreakerCooldown, ecfg.Clock)
	if ecfg.Metrics != nil {
		health.instrument(newHealthInstruments(ecfg.Metrics, gcfg.Resolvers))
	}
	var trust *TrustTracker
	if ecfg.TrustWindow >= 0 {
		trust = NewTrustTracker(ecfg.TrustWindow, ecfg.TrustMinScore)
		if ecfg.Metrics != nil {
			trust.instrument(newTrustInstruments(ecfg.Metrics, gcfg.Resolvers))
		}
		gcfg.Trust = trust
	}
	if gcfg.Querier != nil {
		gcfg.Querier = &hedgedQuerier{
			inner:   gcfg.Querier,
			health:  health,
			trust:   trust,
			fixed:   ecfg.HedgeDelay,
			disable: ecfg.DisableHedging,
		}
	}
	gen, err := NewGenerator(gcfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{gen: gen, health: health, trust: trust, cfg: ecfg, inst: newEngineInstruments(ecfg.Metrics)}
	if ecfg.CacheSize >= 0 {
		e.cache = dnscache.NewShardedStore[*poolEntry](ecfg.CacheSize, ecfg.CacheShards, ecfg.Clock)
		registerCacheMetrics(ecfg.Metrics, e.cache)
		// The wire cache shadows the pool cache key-for-key, so it gets
		// the same bounds and clock.
		e.wire = dnscache.NewWireCache(ecfg.CacheSize, ecfg.CacheShards, ecfg.Clock)
		registerWireMetrics(ecfg.Metrics, e.wire)
	}
	if ecfg.RefreshAhead > 0 && e.cache != nil {
		e.refresher = newRefresher(e, ecfg)
		e.refresher.start()
	}
	return e, nil
}

// now reads the engine's clock (injectable for tests).
func (e *Engine) now() time.Time {
	if e.cfg.Clock != nil {
		return e.cfg.Clock()
	}
	return time.Now()
}

// ResolverCount returns N, the number of configured resolvers.
func (e *Engine) ResolverCount() int { return e.gen.ResolverCount() }

// ServeMajority implements Backend.
func (e *Engine) ServeMajority() bool { return e.gen.ServeMajority() }

// NetworkRuns returns how many Algorithm 1 fan-outs actually hit the
// network (cache hits and coalesced waiters do not).
func (e *Engine) NetworkRuns() uint64 { return e.networkRuns.Load() }

// InlineGenerations returns the subset of NetworkRuns led by a waiting
// caller (cache miss on the synchronous lookup path). With refresh-ahead
// enabled, a warm key's inline count stays flat across TTL expiries.
func (e *Engine) InlineGenerations() uint64 { return e.inlineGens.Load() }

// BackgroundGenerations returns the subset of NetworkRuns led by the
// refresh-ahead pipeline or a stale-triggered revalidation — runs no
// caller waited on.
func (e *Engine) BackgroundGenerations() uint64 { return e.backgroundGens.Load() }

// RefreshAttempts returns how many background refresh-ahead runs were
// launched (0 when refresh-ahead is disabled).
func (e *Engine) RefreshAttempts() uint64 {
	if e.refresher == nil {
		return 0
	}
	return e.refresher.attempts.Load()
}

// RefreshWins returns how many refresh-ahead runs replaced a cached pool
// before it expired.
func (e *Engine) RefreshWins() uint64 {
	if e.refresher == nil {
		return 0
	}
	return e.refresher.wins.Load()
}

// RefreshFailures returns how many refresh-ahead runs failed (the cached
// entry was kept and the key backed off).
func (e *Engine) RefreshFailures() uint64 {
	if e.refresher == nil {
		return 0
	}
	return e.refresher.failures.Load()
}

// StaleServes returns how many lookups were answered from an expired
// entry inside the MaxStale window.
func (e *Engine) StaleServes() uint64 { return e.staleServes.Load() }

// CacheStats reports pool-cache effectiveness (zero value when caching is
// disabled).
func (e *Engine) CacheStats() dnscache.Stats {
	if e.cache == nil {
		return dnscache.Stats{}
	}
	return e.cache.Stats()
}

// Health reports a per-resolver health snapshot.
func (e *Engine) Health() []ResolverHealth {
	return e.health.Snapshot(e.gen.cfg.Resolvers)
}

// Trust reports a per-resolver trust snapshot (nil when trust tracking is
// disabled via a negative TrustWindow).
func (e *Engine) Trust() []ResolverTrust {
	if e.trust == nil {
		return nil
	}
	return e.trust.Snapshot(e.gen.cfg.Resolvers)
}

// Ready reports breaker-aware readiness: false only when every
// resolver's circuit breaker is open, i.e. no upstream could currently
// be asked and any cache miss is guaranteed to fail.
func (e *Engine) Ready() bool {
	snap := e.Health()
	for _, h := range snap {
		if !h.CircuitOpen {
			return true
		}
	}
	return len(snap) == 0
}

// CachedPool is a point-in-time view of one cached consensus pool for
// introspection (the admin server's /poolz endpoint).
type CachedPool struct {
	// Key is the cache key: lower-cased domain plus query-type suffix.
	Key string
	// Addrs is the combined pool.
	Addrs []netip.Addr
	// TruncateLength is K, the per-resolver contribution size.
	TruncateLength int
	// Responding is how many resolvers contributed.
	Responding int
	// AttackerEntries counts pool members inside the attacker prefix
	// (198.18.0.0/15) — non-zero means a poisoned consensus is being
	// served.
	AttackerEntries int
	// Distrusted names the resolvers whose contributions trust
	// enforcement quarantined when this pool was generated.
	Distrusted []string
	// Age is the time since the pool was generated.
	Age time.Duration
	// Remaining is the TTL left; negative once expired (the entry may
	// still serve inside the stale window).
	Remaining time.Duration
	// Hits counts lookups answered by this entry across refreshes — the
	// refresher's popularity signal.
	Hits uint64
	// Refreshes counts background regenerations recorded for the entry.
	Refreshes uint64
	// LastRefresh reports how the most recent background refresh ended.
	LastRefresh dnscache.RefreshOutcome
}

// CachedPools snapshots the pool cache, shard by shard, most recently
// used first within each shard (empty when caching is disabled).
func (e *Engine) CachedPools() []CachedPool {
	if e.cache == nil {
		return nil
	}
	entries := e.cache.Entries()
	out := make([]CachedPool, len(entries))
	for i, en := range entries {
		out[i] = CachedPool{
			Key:             en.Key,
			Addrs:           append([]netip.Addr(nil), en.Val.pool.Addrs...),
			TruncateLength:  en.Val.pool.TruncateLength,
			Responding:      en.Val.pool.Responding(),
			AttackerEntries: en.Val.pool.AttackerEntries(),
			Distrusted:      en.Val.pool.DistrustedResolvers(),
			Age:             en.Age,
			Remaining:       en.Remaining,
			Hits:            en.Hits,
			Refreshes:       en.Refreshes,
			LastRefresh:     en.LastRefresh,
		}
	}
	return out
}

// EvictExpired drops cache entries dead beyond the stale window and
// returns how many were removed.
func (e *Engine) EvictExpired() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.EvictExpired(e.cfg.MaxStale)
}

// Close stops the refresh-ahead loop and waits for in-flight background
// refresh runs to drain. The engine must not be used afterwards.
func (e *Engine) Close() error {
	if e.refresher != nil {
		// Stop the scan loop first so it cannot launch new refreshes
		// while we drain.
		e.refresher.stopLoop()
	}
	e.refreshMu.Lock()
	e.closed = true
	e.refreshMu.Unlock()
	e.refreshWG.Wait()
	return nil
}

// Lookup returns the consensus pool for (domain, typ), from cache when
// fresh, coalescing concurrent misses into one Algorithm 1 run.
func (e *Engine) Lookup(ctx context.Context, domain string, typ dnswire.Type) (*Pool, error) {
	// DNS names are case-insensitive (and stubs may randomize case,
	// RFC draft 0x20): normalize so casings share one cache entry.
	key := strings.ToLower(domain) + "|" + strconv.Itoa(int(typ))
	return e.lookup(ctx, key, wireSpec{domain: domain, typ: typ}, func(runCtx context.Context) (*Pool, error) {
		return e.gen.Lookup(runCtx, domain, typ)
	})
}

// LookupDualStack returns the consensus pool for both address families
// under the generator's dual-stack policy, with the same caching and
// coalescing as Lookup.
func (e *Engine) LookupDualStack(ctx context.Context, domain string) (*Pool, error) {
	key := strings.ToLower(domain) + "|ds|" + strconv.Itoa(int(e.gen.cfg.DualStack))
	return e.lookup(ctx, key, wireSpec{}, func(runCtx context.Context) (*Pool, error) {
		return e.gen.LookupDualStack(runCtx, domain)
	})
}

// lookup is the thin read path: a fresh (or serveably stale) cache entry
// is answered with no locks beyond one shard read-lock; everything else
// falls through to a coalesced inline generation.
func (e *Engine) lookup(ctx context.Context, key string, spec wireSpec, run func(context.Context) (*Pool, error)) (*Pool, error) {
	if e.cache != nil {
		if en, age, stale, ok := e.cache.GetStale(key, e.cfg.MaxStale); ok {
			if !stale {
				e.inst.hit.Inc()
				return snapshotPool(en.pool, age), nil
			}
			// Counted both here (lookup outcome) and in the cache's own
			// Stats.Stale (cache-layer view): the lookups_total family must
			// sum to total lookups, and the cache family mirrors Stats 1:1.
			e.staleServes.Add(1)
			e.inst.stale.Inc()
			// With the refresher enabled, stale revalidation goes through
			// its bookkeeping — respecting per-key failure backoff and the
			// concurrency cap instead of re-fanning-out on every stale hit.
			if e.refresher != nil {
				e.refresher.tryRefreshStale(key, spec, run)
			} else {
				e.refreshAsync(key, spec, run)
			}
			return snapshotPool(en.pool, en.pool.ttlDuration()), nil
		}
	}
	return e.fetch(ctx, key, spec, run, false)
}

// fetch coalesces concurrent misses for key into a single upstream run.
// background marks runs no caller is waiting on (stale revalidation,
// refresh-ahead) for the inline-vs-background generation split.
func (e *Engine) fetch(ctx context.Context, key string, spec wireSpec, run func(context.Context) (*Pool, error), background bool) (*Pool, error) {
	pool, err, leader := e.flight.Do(ctx, key, func() (*Pool, error) {
		// Detach from the individual caller: other waiters are coalesced
		// onto this run and must not die with whoever arrived first.
		runCtx, cancel := context.WithTimeout(context.Background(), e.cfg.LookupTimeout)
		defer cancel()
		e.networkRuns.Add(1)
		e.inst.network.Inc()
		if background {
			e.backgroundGens.Add(1)
			e.inst.backgroundGen.Inc()
		} else {
			e.inlineGens.Add(1)
			e.inst.inlineGen.Inc()
		}
		start := time.Now()
		p, err := run(runCtx)
		e.inst.genLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			e.inst.errors.Inc()
			return nil, err
		}
		e.inst.quorum.Observe(float64(p.Responding()))
		// Poisoning visibility: how many entries of the freshly generated
		// pool sit in the attacker prefix (generation path only — the
		// cached-hit fast path never counts).
		e.inst.attackerEntries.Set(float64(p.AttackerEntries()))
		if e.cache != nil && p.ttlDuration() > 0 {
			// Invalidate → Put(pool) → Put(wire): a fast-path reader in
			// the window between the first two steps falls through to the
			// slow path, which already sees the new pool. Old wire bytes
			// are unreachable the moment the new pool is published.
			e.wire.Invalidate(key)
			e.cache.Put(key, &poolEntry{pool: p, regen: run, spec: spec}, p.ttlDuration())
			if spec != (wireSpec{}) {
				if we := buildWireEntry(spec, p, e.gen.ServeMajority(), e.now()); we != nil {
					e.wire.Put(key, we)
				}
			}
		}
		return p, nil
	})
	if !leader {
		e.inst.coalesced.Inc()
	}
	if err != nil {
		return nil, err
	}
	return snapshotPool(pool, 0), nil
}

// refreshAsync kicks off a background consensus refresh for a stale key;
// the singleflight group guarantees at most one refresh per key runs.
func (e *Engine) refreshAsync(key string, spec wireSpec, run func(context.Context) (*Pool, error)) {
	e.refreshMu.Lock()
	if e.closed {
		e.refreshMu.Unlock()
		return
	}
	e.refreshWG.Add(1)
	e.refreshMu.Unlock()
	go func() {
		defer e.refreshWG.Done()
		_, _ = e.fetch(context.Background(), key, spec, run, true)
	}()
}

// ttlDuration converts the pool's TTL to a cache lifetime.
func (p *Pool) ttlDuration() time.Duration {
	return time.Duration(p.TTL) * time.Second
}

// snapshotPool returns a caller-owned view of a (possibly cached, shared)
// pool with its TTL decremented by the entry's age. Address slices are
// deep-copied since they are what callers iterate and mutate; Results
// entries share their per-resolver answer slices, which are never written
// after assembly.
func snapshotPool(p *Pool, age time.Duration) *Pool {
	out := &Pool{
		Addrs:          append([]netip.Addr(nil), p.Addrs...),
		TruncateLength: p.TruncateLength,
		Results:        append([]ResolverResult(nil), p.Results...),
		Majority:       append([]netip.Addr(nil), p.Majority...),
		TTL:            p.TTL,
	}
	aged := uint32(age / time.Second)
	if aged < out.TTL {
		out.TTL -= aged
	} else if out.TTL > 0 {
		// Aged to (or past) expiry but still being served: advertise the
		// minimum. A genuine TTL-0 pool stays 0 — uncacheable either way.
		out.TTL = 1
	}
	return out
}

// flightGroup is a minimal singleflight: concurrent Do calls for the same
// key share one execution of fn. Waiters honour their own context; the
// executing call does not (fn detaches itself).
type flightGroup struct {
	// Every cache-missing lookup serialises on this lock.
	//dohlint:hotlock
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	pool *Pool
	err  error
}

// Do returns the result of fn, shared with every concurrent caller of the
// same key. leader reports whether this caller executed fn.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*Pool, error)) (pool *Pool, err error, leader bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.pool, c.err, false
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.pool, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.pool, c.err, true
}
