package core

import (
	"context"
	"net/netip"
	"testing"

	"dohpool/internal/dnswire"
)

// BenchmarkUDPServeCachedHit measures the wire-cache serve path in
// isolation: answerWire called directly on a warmed frontend, no
// sockets, no client. This is the per-datagram cost a cached UDP hit
// adds on top of the kernel — parse the question into a stack key,
// look up the pre-encoded entry, memcpy, patch ID/flags/TTLs. The
// acceptance bar is zero allocations per op; benchgate gates both
// ns/op and allocs/op on this benchmark.
func BenchmarkUDPServeCachedHit(b *testing.B) {
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": manyAddrs(0, 2),
		"u1": manyAddrs(100, 2),
		"u2": manyAddrs(200, 2),
	}}
	clk := newTestClock()
	eng, fe := wireEngineUnderTest(b, q, clk, EngineConfig{})
	if _, err := eng.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
		b.Fatal(err)
	}
	query := rawQueryBytes(b, 7, "pool.test.", dnswire.TypeA, 1232, true, false)
	pkt := packetFor(query)
	if !fe.answerWire(pkt) {
		b.Fatal("wire cache not warm")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// answerWire overwrites the packet buffer with the response, so
		// restore the query (and a fresh ID) each iteration — a ~40-byte
		// memcpy, allocation-free.
		copy(pkt.buf[:], query)
		pkt.buf[0], pkt.buf[1] = byte(i>>8), byte(i)
		pkt.dg.N = len(query)
		if !fe.answerWire(pkt) {
			b.Fatal("fast-path miss")
		}
	}
}
