package core

import (
	"time"

	"dohpool/internal/dnscache"
	"dohpool/internal/dnswire"
	"dohpool/internal/metrics"
)

// This file is the engine half of the wire-format answer cache: pool
// generations pre-encode the response the frontend will serve, so a
// cached UDP hit becomes a memcpy plus a three-field patch (transaction
// ID, RD/CD echo, aged TTLs) instead of a decode → build → encode round
// trip. Entries live exactly as long as their pool cache entry and are
// replaced whenever a generation publishes a new pool — the frontend
// can never serve bytes from a superseded generation.

// buildWireEntry pre-encodes the full and truncated response forms for
// one freshly generated pool. The message mirrors the slow path
// (Frontend.respond + handleUDP truncation) field for field: QR set,
// RA set, RD/CD clear (patched per query), ID 0 (patched per query),
// answers carrying the pool TTL. It returns nil when the pool cannot be
// encoded (a pool large enough to overflow the 64 KiB message limit);
// such keys simply stay on the slow path.
func buildWireEntry(spec wireSpec, p *Pool, majority bool, now time.Time) *dnscache.WireEntry {
	ttl := p.TTL
	if ttl == 0 {
		// Unreachable for cached pools (TTL-0 pools are never stored),
		// but kept identical to respond's guard.
		ttl = DefaultPoolTTL
	}
	name := dnswire.CanonicalName(spec.domain)
	resp := &dnswire.Message{
		Header: dnswire.Header{
			Response:           true,
			Opcode:             dnswire.OpcodeQuery,
			RecursionAvailable: true,
		},
		Questions: []dnswire.Question{{Name: name, Type: spec.typ, Class: dnswire.ClassINET}},
	}
	addrs := p.Addrs
	if majority {
		addrs = p.Majority
	}
	for _, a := range addrs {
		resp.Answers = append(resp.Answers, dnswire.AddressRecord(name, a, ttl))
	}
	full, err := resp.Encode()
	if err != nil {
		return nil
	}
	offsets, err := dnswire.AnswerTTLOffsets(full)
	if err != nil {
		return nil
	}
	trimmed := resp.Copy()
	trimmed.Answers = nil
	trimmed.Authority = nil
	trimmed.Additional = nil
	trimmed.Header.Truncated = true
	trunc, err := trimmed.Encode()
	if err != nil {
		return nil
	}
	// Store the full form once, behind its RFC 7766 length prefix: the
	// stream fast path serves framed[0:] whole, the datagram fast path
	// serves framed[2:]. Encode already caps messages at 64 KiB, so the
	// length always fits the 2-byte prefix.
	framed := make([]byte, 2+len(full))
	framed[0], framed[1] = byte(len(full)>>8), byte(len(full))
	copy(framed[2:], full)
	return &dnscache.WireEntry{
		Full:       framed[2:],
		FullFramed: framed,
		Truncated:  trunc,
		TTLOffsets: offsets,
		TTL:        ttl,
		Stored:     now,
		Expires:    now.Add(p.ttlDuration()),
	}
}

// WireLookup returns the live pre-encoded answer for an engine cache
// key (built by the frontend directly from query bytes) together with
// the entry's age, for TTL patching. It allocates nothing — this is the
// frontend's per-datagram fast path.
//
//dohlint:noalloc
func (e *Engine) WireLookup(key []byte) (*dnscache.WireEntry, time.Duration, bool) {
	if e.wire == nil {
		return nil, 0, false
	}
	en, ok := e.wire.Get(key)
	if !ok {
		return nil, 0, false
	}
	// A wire hit must still count as traffic on the pool entry: the
	// refresher's popularity gate and the pool cache's LRU would
	// otherwise see a red-hot key as idle and let it expire or evict.
	e.cache.Touch(key)
	return en, e.now().Sub(en.Stored), true
}

// registerWireMetrics surfaces the wire cache's counters, read live at
// exposition time like the pool cache's.
func registerWireMetrics(reg *metrics.Registry, wire *dnscache.WireCache) {
	if reg == nil || wire == nil {
		return
	}
	reg.CounterFunc(MetricWireCacheHits, "Frontend queries answered from the pre-encoded wire cache (memcpy + ID/flags/TTL patch).",
		func() float64 { return float64(wire.Stats().Hits) })
	reg.CounterFunc(MetricWireCacheMisses, "Wire-cache lookups that fell through to the decode-encode slow path.",
		func() float64 { return float64(wire.Stats().Misses) })
	reg.GaugeFunc(MetricWireCacheEntries, "Pre-encoded answers currently resident in the wire cache.",
		func() float64 { return float64(wire.Len()) })
}
