package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohpool/internal/dnscache"
	"dohpool/internal/dnswire"
)

// testClock is a mutex-guarded fake clock shared between the engine, the
// cache and the refresher.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1700000000, 0)} }

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// hookQuerier runs hook before delegating each exchange; the hook may
// block (to orchestrate mid-refresh races) or fail (to simulate losing
// the resolver quorum).
type hookQuerier struct {
	inner Querier
	mu    sync.Mutex
	hook  func(ctx context.Context, name string) error
}

func (h *hookQuerier) setHook(fn func(ctx context.Context, name string) error) {
	h.mu.Lock()
	h.hook = fn
	h.mu.Unlock()
}

func (h *hookQuerier) Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	h.mu.Lock()
	hook := h.hook
	h.mu.Unlock()
	if hook != nil {
		if err := hook(ctx, name); err != nil {
			return nil, err
		}
	}
	return h.inner.Query(ctx, url, name, typ)
}

// refreshEngine builds an engine with refresh-ahead on and a scan loop
// parked on a huge interval, so tests drive scans deterministically via
// eng.refresher.scan().
func refreshEngine(t *testing.T, q Querier, clk *testClock, ecfg EngineConfig) *Engine {
	t.Helper()
	ecfg.Clock = clk.now
	if ecfg.RefreshAhead == 0 {
		ecfg.RefreshAhead = 0.8
	}
	if ecfg.RefreshInterval == 0 {
		ecfg.RefreshInterval = time.Hour
	}
	eng, err := NewEngine(Config{Resolvers: threeEndpoints(), Querier: q}, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineRefreshAheadKeepsHotKeyWarm is the acceptance criterion: with
// refresh-ahead enabled, a hot key's hit rate stays 100% across a TTL
// expiry — the refresher regenerates the pool in the background before it
// dies, and no lookup after warmup ever generates inline.
func TestEngineRefreshAheadKeepsHotKeyWarm(t *testing.T) {
	clk := newTestClock()
	q := newCountingQuerier(30, threeResolverLists())
	eng := refreshEngine(t, q, clk, EngineConfig{RefreshMinHits: 1})
	ctx := context.Background()

	// Warmup: the only inline generation this test should ever see.
	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if eng.InlineGenerations() != 1 {
		t.Fatalf("inline generations after warmup = %d, want 1", eng.InlineGenerations())
	}

	// 25s into a 30s TTL: past the 0.8 refresh-ahead threshold.
	clk.advance(25 * time.Second)
	if launched := eng.refresher.scan(); launched != 1 {
		t.Fatalf("scan launched %d refreshes, want 1", launched)
	}
	waitFor(t, "background refresh win", func() bool { return eng.RefreshWins() == 1 })
	if got := q.total.Load(); got != 6 {
		t.Fatalf("exchanges after refresh = %d, want 6", got)
	}

	// Cross the original expiry (t=31s > 30s). The refreshed entry was
	// stored at t=25s with a fresh 30s TTL, so every lookup must still
	// hit cache — zero inline generations, zero misses.
	missesBefore := eng.CacheStats().Misses
	clk.advance(6 * time.Second)
	for i := 0; i < 10; i++ {
		p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Addrs) != 6 {
			t.Fatalf("pool = %d addrs", len(p.Addrs))
		}
	}
	st := eng.CacheStats()
	if st.Misses != missesBefore {
		t.Fatalf("misses across TTL expiry = %d (was %d); hit rate broke", st.Misses, missesBefore)
	}
	if eng.InlineGenerations() != 1 {
		t.Fatalf("inline generations across TTL expiry = %d, want 1 (refresh-ahead should absorb them)", eng.InlineGenerations())
	}
	if eng.BackgroundGenerations() != 1 {
		t.Errorf("background generations = %d, want 1", eng.BackgroundGenerations())
	}
	if eng.NetworkRuns() != 2 {
		t.Errorf("NetworkRuns = %d, want 2", eng.NetworkRuns())
	}

	pools := eng.CachedPools()
	if len(pools) != 1 {
		t.Fatalf("cached pools = %d", len(pools))
	}
	if pools[0].Refreshes != 1 || pools[0].LastRefresh != dnscache.RefreshOK {
		t.Errorf("refresh state = %d/%v, want 1/ok", pools[0].Refreshes, pools[0].LastRefresh)
	}
	if pools[0].Hits < 15 {
		t.Errorf("hits = %d, want >= 15", pools[0].Hits)
	}
}

// TestRefresherSkipsColdKeys: the popularity threshold leaves rarely-read
// entries to expire instead of burning fan-outs keeping them warm.
func TestRefresherSkipsColdKeys(t *testing.T) {
	clk := newTestClock()
	q := newCountingQuerier(30, threeResolverLists())
	eng := refreshEngine(t, q, clk, EngineConfig{RefreshMinHits: 3})
	ctx := context.Background()

	// hot gets 3 cache hits, cold none.
	for i := 0; i < 4; i++ {
		if _, err := eng.Lookup(ctx, "hot.test.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Lookup(ctx, "cold.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}

	clk.advance(25 * time.Second)
	if launched := eng.refresher.scan(); launched != 1 {
		t.Fatalf("scan launched %d refreshes, want 1 (hot only)", launched)
	}
	waitFor(t, "hot refresh", func() bool { return eng.RefreshWins() == 1 })
	for _, p := range eng.CachedPools() {
		switch {
		case p.Key == "hot.test.|1" && p.Refreshes != 1:
			t.Errorf("hot refreshes = %d, want 1", p.Refreshes)
		case p.Key == "cold.test.|1" && p.Refreshes != 0:
			t.Errorf("cold refreshes = %d, want 0", p.Refreshes)
		}
	}
}

// TestRefresherIdleKeyFallsOffThePipeline: the popularity signal is hits
// since the last refresh, not lifetime hits — a key that was hot once
// must stop earning background refreshes when nobody reads it anymore,
// instead of being kept warm forever on ancient traffic.
func TestRefresherIdleKeyFallsOffThePipeline(t *testing.T) {
	clk := newTestClock()
	q := newCountingQuerier(30, threeResolverLists())
	eng := refreshEngine(t, q, clk, EngineConfig{RefreshMinHits: 1})
	ctx := context.Background()

	// Warm and read the key: qualifies for its first refresh.
	for i := 0; i < 3; i++ {
		if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(25 * time.Second)
	if launched := eng.refresher.scan(); launched != 1 {
		t.Fatalf("first scan launched %d, want 1", launched)
	}
	waitFor(t, "first refresh", func() bool { return eng.RefreshWins() == 1 })

	// Nobody reads the key again. At 80% of the refreshed entry's TTL it
	// is due but no longer popular: no refresh, the entry ages out.
	clk.advance(25 * time.Second)
	if launched := eng.refresher.scan(); launched != 0 {
		t.Fatalf("idle key still refreshed (%d launched)", launched)
	}
	if eng.RefreshAttempts() != 1 {
		t.Errorf("attempts = %d, want 1", eng.RefreshAttempts())
	}

	// One more read re-qualifies it.
	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if launched := eng.refresher.scan(); launched != 1 {
		t.Fatalf("re-read key not refreshed (%d launched)", launched)
	}
	waitFor(t, "second refresh", func() bool { return eng.RefreshWins() == 2 })
}

// TestRefresherConcurrencyCap: a correlated expiry of many entries must
// not fan out to the resolvers all at once — launches are bounded per
// scan by RefreshConcurrency, the rest wait for a later scan.
func TestRefresherConcurrencyCap(t *testing.T) {
	clk := newTestClock()
	counting := newCountingQuerier(30, threeResolverLists())
	q := &hookQuerier{inner: counting}
	eng := refreshEngine(t, q, clk, EngineConfig{RefreshConcurrency: 2})
	ctx := context.Background()

	for _, name := range []string{"a.test.", "b.test.", "c.test.", "d.test."} {
		if _, err := eng.Lookup(ctx, name, dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	// Block every refresh exchange so in-flight refreshes stay in flight.
	gate := make(chan struct{})
	q.setHook(func(ctx context.Context, name string) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	clk.advance(25 * time.Second) // all four due at once

	if launched := eng.refresher.scan(); launched != 2 {
		t.Fatalf("scan launched %d, want 2 (capped)", launched)
	}
	// While the two are blocked, another scan launches nothing.
	if launched := eng.refresher.scan(); launched != 0 {
		t.Fatalf("scan over the cap launched %d, want 0", launched)
	}
	close(gate)
	q.setHook(nil)
	waitFor(t, "first wave", func() bool { return eng.RefreshWins() == 2 })
	// Slots freed: the next scan picks up the remaining two.
	if launched := eng.refresher.scan(); launched != 2 {
		t.Fatalf("second wave launched %d, want 2", launched)
	}
	waitFor(t, "second wave", func() bool { return eng.RefreshWins() == 4 })
}

// TestRefresherUncacheableRefreshBacksOff: a refresh that succeeds but
// yields a TTL-0 (uncacheable) pool cannot replace the dying entry — it
// must count as a failure and back off, not be re-fetched every tick.
func TestRefresherUncacheableRefreshBacksOff(t *testing.T) {
	clk := newTestClock()
	q := newCountingQuerier(30, threeResolverLists())
	eng := refreshEngine(t, q, clk, EngineConfig{RefreshMinHits: 0, MaxStale: 5 * time.Minute})
	ctx := context.Background()

	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	q.setTTL(0) // upstream flips to uncacheable answers

	clk.advance(25 * time.Second)
	if launched := eng.refresher.scan(); launched != 1 {
		t.Fatalf("scan launched %d, want 1", launched)
	}
	waitFor(t, "uncacheable refresh settles as failure", func() bool {
		return eng.RefreshFailures() == 1
	})
	// The old pool is still cached and, inside the backoff window, the
	// still-due key is left alone.
	if pools := eng.CachedPools(); len(pools) != 1 || pools[0].LastRefresh != dnscache.RefreshFailed {
		t.Fatalf("cached pools after uncacheable refresh = %+v", pools)
	}
	if launched := eng.refresher.scan(); launched != 0 {
		t.Fatalf("scan inside backoff launched %d, want 0", launched)
	}
}

// TestRefreshAheadRequiresCache: refresh-ahead with caching disabled is
// a configuration conflict, not a silent no-op.
func TestRefreshAheadRequiresCache(t *testing.T) {
	q := newCountingQuerier(30, threeResolverLists())
	if _, err := NewEngine(Config{Resolvers: threeEndpoints(), Querier: q},
		EngineConfig{CacheSize: -1, RefreshAhead: 0.8}); err == nil {
		t.Fatal("RefreshAhead with CacheSize -1 accepted")
	}
}

// TestRefresherQuorumLostKeepsStaleAndBacksOff: a background refresh that
// fails (resolvers down, quorum lost) must keep the cached pool serving,
// count the failure, and back the key off exponentially instead of
// hammering dead resolvers every scan.
func TestRefresherQuorumLostKeepsStaleAndBacksOff(t *testing.T) {
	clk := newTestClock()
	counting := newCountingQuerier(30, threeResolverLists())
	q := &hookQuerier{inner: counting}
	eng := refreshEngine(t, q, clk, EngineConfig{
		RefreshMinHits: 0,
		RefreshBackoff: 10 * time.Second,
		MaxStale:       5 * time.Minute,
	})
	ctx := context.Background()

	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	q.setHook(func(context.Context, string) error { return errors.New("resolver down") })

	clk.advance(25 * time.Second)
	if launched := eng.refresher.scan(); launched != 1 {
		t.Fatalf("scan launched %d, want 1", launched)
	}
	waitFor(t, "refresh failure", func() bool { return eng.RefreshFailures() == 1 })

	// Stale pool kept, failure recorded against the entry.
	pools := eng.CachedPools()
	if len(pools) != 1 {
		t.Fatalf("pool dropped after failed refresh (%d cached)", len(pools))
	}
	if pools[0].LastRefresh != dnscache.RefreshFailed || pools[0].Refreshes != 1 {
		t.Errorf("refresh state = %d/%v, want 1/failed", pools[0].Refreshes, pools[0].LastRefresh)
	}

	// Within the backoff window nothing relaunches, even though the key
	// is (over)due.
	if launched := eng.refresher.scan(); launched != 0 {
		t.Fatalf("scan inside backoff launched %d, want 0", launched)
	}
	// Past the base backoff (10s): one more attempt, which fails again
	// and doubles the backoff to 20s.
	clk.advance(11 * time.Second)
	if launched := eng.refresher.scan(); launched != 1 {
		t.Fatalf("scan after backoff launched %d, want 1", launched)
	}
	waitFor(t, "second failure", func() bool { return eng.RefreshFailures() == 2 })
	clk.advance(11 * time.Second)
	if launched := eng.refresher.scan(); launched != 0 {
		t.Fatalf("scan inside doubled backoff launched %d, want 0", launched)
	}

	// The pool is now past its TTL but inside MaxStale: lookups still
	// answer (stale-while-revalidate), with no inline generation — and
	// the stale-triggered revalidation honours the refresher's backoff
	// instead of re-fanning-out to the broken resolvers on every hit.
	bgBefore := eng.BackgroundGenerations()
	p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("stale lookup failed: %v", err)
	}
	if len(p.Addrs) != 6 {
		t.Fatalf("stale pool = %d addrs", len(p.Addrs))
	}
	if eng.InlineGenerations() != 1 {
		t.Errorf("inline generations = %d, want 1", eng.InlineGenerations())
	}
	if got := eng.BackgroundGenerations(); got != bgBefore {
		t.Errorf("stale hit inside backoff ran %d extra generation(s)", got-bgBefore)
	}

	// Resolvers recover: the next eligible attempt wins and clears the
	// backoff streak.
	q.setHook(nil)
	clk.advance(11 * time.Second)
	if launched := eng.refresher.scan(); launched != 1 {
		t.Fatalf("recovery scan launched %d, want 1", launched)
	}
	waitFor(t, "recovery win", func() bool { return eng.RefreshWins() >= 1 })
	waitFor(t, "entry refreshed", func() bool {
		pools := eng.CachedPools()
		return len(pools) == 1 && pools[0].LastRefresh == dnscache.RefreshOK
	})
}

// TestRefresherEntryEvictedMidRefresh: an entry pushed out of a full
// cache while its background refresh is in flight must not wedge or
// corrupt anything — the refresh completes and re-installs a fresh pool.
func TestRefresherEntryEvictedMidRefresh(t *testing.T) {
	clk := newTestClock()
	counting := newCountingQuerier(30, threeResolverLists())
	q := &hookQuerier{inner: counting}
	eng := refreshEngine(t, q, clk, EngineConfig{
		CacheSize:   1,
		CacheShards: 1,
	})
	ctx := context.Background()

	if _, err := eng.Lookup(ctx, "a.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}

	// Block a.test.'s refresh mid-flight.
	gate := make(chan struct{})
	q.setHook(func(ctx context.Context, name string) error {
		if name != "a.test." {
			return nil
		}
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	clk.advance(25 * time.Second)
	if launched := eng.refresher.scan(); launched != 1 {
		t.Fatalf("scan launched %d, want 1", launched)
	}

	// Evict a.test. from the 1-entry cache while its refresh hangs.
	if _, err := eng.Lookup(ctx, "b.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Evictions == 0 {
		t.Fatal("b.test. did not evict a.test. — test premise broken")
	}

	close(gate)
	waitFor(t, "refresh completion", func() bool { return eng.RefreshWins() == 1 })
	// The refresh re-installed a.test. (fresh consensus is fresh
	// consensus, eviction notwithstanding); nothing deadlocked and the
	// cache stayed within capacity.
	waitFor(t, "a.test. back in cache", func() bool {
		pools := eng.CachedPools()
		return len(pools) == 1 && pools[0].Key == "a.test.|1"
	})
}

// TestRefresherShutdownDrains: Close must stop the scan loop, wait for
// in-flight refreshes, and make later scans no-ops — with -race proving
// nothing touches freed state.
func TestRefresherShutdownDrains(t *testing.T) {
	clk := newTestClock()
	counting := newCountingQuerier(30, threeResolverLists())
	q := &hookQuerier{inner: counting}
	var inflight atomic.Int64
	q.setHook(func(ctx context.Context, name string) error {
		inflight.Add(1)
		defer inflight.Add(-1)
		time.Sleep(10 * time.Millisecond)
		return nil
	})
	// Real interval small enough that the ticker loop itself is
	// exercised alongside the manual scans.
	eng := refreshEngine(t, q, clk, EngineConfig{RefreshInterval: 5 * time.Millisecond})
	ctx := context.Background()

	for _, name := range []string{"a.test.", "b.test.", "c.test."} {
		if _, err := eng.Lookup(ctx, name, dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(25 * time.Second)
	eng.refresher.scan()

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if n := inflight.Load(); n != 0 {
		t.Fatalf("%d exchanges still in flight after Close", n)
	}
	// A scan after Close must not launch anything.
	if launched := eng.refresher.scan(); launched != 0 {
		t.Fatalf("post-Close scan launched %d refreshes", launched)
	}
	// Close is idempotent.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}
