package core

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dohpool/internal/dnswire"
)

// slowServeWire mirrors handleUDP byte for byte minus the socket I/O:
// strict decode, respond, honour the advertised payload size, truncate
// by stripping sections. It is the oracle FuzzWireFastPath holds the
// allocation-free fast path against.
func slowServeWire(f *Frontend, wire []byte) ([]byte, bool) {
	query, err := dnswire.Decode(wire)
	if err != nil {
		return nil, false
	}
	resp := f.respond(context.Background(), query, &f.inst.udp)
	maxSize := dnswire.MaxUDPSize
	if size, ok := query.EDNSSize(); ok && int(size) > maxSize {
		maxSize = int(size)
	}
	respWire, err := resp.Encode()
	if err != nil {
		return nil, false
	}
	if len(respWire) > maxSize {
		truncated := resp.Copy()
		truncated.Answers = nil
		truncated.Authority = nil
		truncated.Additional = nil
		truncated.Header.Truncated = true
		if respWire, err = truncated.Encode(); err != nil {
			return nil, false
		}
	}
	return respWire, true
}

// FuzzWireFastPath is the dynamic gate behind the strict UDP fast path:
// any datagram answerWire serves must carry bytes identical to the
// decode→build→encode slow path, and any query parseWireQuery accepts
// must also satisfy the strict decoder, with both agreeing on the cache
// key and the honoured payload size. Inputs the fast path rejects are
// out of scope here — FuzzDecode in internal/dnswire owns the decoder's
// own robustness.
func FuzzWireFastPath(f *testing.F) {
	// Each resolver answers both families so the A and the AAAA wire
	// entries warm (manyAddrs is v4-only; swapQuerier filters by family).
	v6 := func(base, n int) []netip.Addr {
		out := make([]netip.Addr, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, netip.MustParseAddr(fmt.Sprintf("2001:db8::%x", base+i+1)))
		}
		return out
	}
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": append(manyAddrs(0, 40), v6(0, 40)...),
		"u1": append(manyAddrs(1000, 40), v6(1000, 40)...),
		"u2": append(manyAddrs(2000, 40), v6(2000, 40)...),
	}}
	clk := newTestClock()
	eng, fastFE := wireEngineUnderTest(f, q, clk, EngineConfig{})
	slowFE, err := NewFrontendWithConfig("127.0.0.1:0", slowOnlyBackend{eng}, FrontendConfig{Timeout: time.Second})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { _ = slowFE.Close() })

	// Warm the wire cache through the same backend path handleUDP takes;
	// with the frozen test clock the entries never age out, so every
	// fuzz iteration sees identical cache state.
	ctx := context.Background()
	for _, typ := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
		if _, err := eng.Lookup(ctx, "pool.test.", typ); err != nil {
			f.Fatal(err)
		}
	}
	full, _, ok := eng.WireLookup([]byte("pool.test.|1"))
	if !ok {
		f.Fatal("wire cache not populated after warm-up lookups")
	}

	f.Add(rawQueryBytes(f, 0x1234, "pool.test.", dnswire.TypeA, 4096, true, false))
	f.Add(rawQueryBytes(f, 1, "pool.test.", dnswire.TypeA, 0, true, false))
	f.Add(rawQueryBytes(f, 2, "pool.test.", dnswire.TypeAAAA, 512, false, true))
	f.Add(rawQueryBytes(f, 3, "POOL.Test.", dnswire.TypeA, 1232, false, false))
	f.Add(rawQueryBytes(f, 4, "pool.test.", dnswire.TypeA, len(full.Full), true, true))
	f.Add(rawQueryBytes(f, 5, "pool.test.", dnswire.TypeA, len(full.Full)-1, true, false))
	f.Add(rawQueryBytes(f, 6, "other.test.", dnswire.TypeA, 4096, true, false))
	f.Add(append(rawQueryBytes(f, 7, "pool.test.", dnswire.TypeA, 0, true, false), 0xFF))
	f.Add(rawQueryBytes(f, 8, "pool.test.", dnswire.TypeA, 4096, true, false)[:17])

	var scratch [wireKeyMax]byte
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > udpPacketBuf {
			// The kernel truncates oversized datagrams before the fast
			// path ever sees them.
			return
		}
		key, maxSize, _, pOK := parseWireQuery(data, scratch[:0])
		if pOK {
			msg, err := dnswire.Decode(data)
			if err != nil {
				t.Fatalf("fast parser accepted bytes the strict decoder rejects: %v\nquery % x", err, data)
			}
			if len(msg.Questions) != 1 {
				t.Fatalf("fast parser accepted a message with %d questions", len(msg.Questions))
			}
			qq := msg.Questions[0]
			if qq.Class != dnswire.ClassINET {
				t.Fatalf("fast parser accepted class %d", qq.Class)
			}
			want := qq.Name
			switch qq.Type {
			case dnswire.TypeA:
				want += "|1"
			case dnswire.TypeAAAA:
				want += "|28"
			default:
				t.Fatalf("fast parser accepted qtype %d", qq.Type)
			}
			if string(key) != want {
				t.Fatalf("fast parser built cache key %q, decoder says %q", key, want)
			}
			wantMax := dnswire.MaxUDPSize
			if size, ok := msg.EDNSSize(); ok && int(size) > wantMax {
				wantMax = int(size)
			}
			if maxSize != wantMax {
				t.Fatalf("fast parser honoured size %d, decoder says %d", maxSize, wantMax)
			}
		}

		pkt := packetFor(data)
		if !fastFE.answerWire(pkt) {
			return
		}
		fast := pkt.dg.Buf[:pkt.dg.N]
		slow, ok := slowServeWire(slowFE, data)
		if !ok {
			t.Fatalf("fast path served a datagram the slow path drops:\nquery % x", data)
		}
		if !bytes.Equal(fast, slow) {
			t.Fatalf("fast path diverged from slow path:\nquery % x\nfast  % x\nslow  % x", data, fast, slow)
		}
	})
}
