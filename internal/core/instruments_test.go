package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/metrics"
	"dohpool/internal/transport"
)

func exposition(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidatePrometheusText(b.String()); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	return b.String()
}

func mustContain(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q", w)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

func TestEngineMetricsLookupOutcomes(t *testing.T) {
	reg := metrics.New()
	q := newCountingQuerier(300, threeResolverLists())
	eng := engineUnderTest(t, q, EngineConfig{Metrics: reg})
	ctx := context.Background()

	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	out := exposition(t, reg)
	mustContain(t, out,
		MetricEngineLookups+`{outcome="network"} 1`,
		MetricEngineLookups+`{outcome="cache_hit"} 3`,
		MetricEngineGenSeconds+"_count 1",
		MetricEngineQuorum+"_count 1",
		MetricCacheHits+" 3",
		MetricCacheMisses+" 1",
		MetricCacheEntries+" 1",
		// Pre-seeded resolver series visible before any breaker event.
		MetricBreakerState+`{resolver="r0"} 0`,
		MetricResolverRTT+`{resolver="r2"}`,
		MetricResolverExchanges+`{resolver="r1",result="ok"} 1`,
	)
}

func TestEngineMetricsCoalescedWaiters(t *testing.T) {
	reg := metrics.New()
	q := newCountingQuerier(300, threeResolverLists())
	q.gate = make(chan struct{})
	eng := engineUnderTest(t, q, EngineConfig{Metrics: reg})
	ctx := context.Background()

	const waiters = 4
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
				t.Error(err)
			}
		}()
	}
	// Wait until the leader's fan-out is in flight, then release it.
	deadline := time.Now().Add(5 * time.Second)
	for q.total.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(q.gate)
	wg.Wait()

	out := exposition(t, reg)
	// Every waiter is accounted for exactly once: a handful led network
	// runs (normally one, but a waiter that misses both the cache and the
	// in-flight entry in the gap between them legitimately leads a second
	// run), and the rest either coalesced onto a flight or hit the filled
	// cache.
	counts := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		for _, outcome := range []string{"network", "coalesced", "cache_hit"} {
			if strings.HasPrefix(line, MetricEngineLookups+`{outcome="`+outcome+`"} `) {
				var n int
				fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n)
				counts[outcome] = n
			}
		}
	}
	if counts["network"] < 1 {
		t.Fatalf("no network run recorded: %v", counts)
	}
	if total := counts["network"] + counts["coalesced"] + counts["cache_hit"]; total != waiters {
		t.Fatalf("outcomes %v sum to %d, want %d", counts, total, waiters)
	}
	if counts["coalesced"]+counts["cache_hit"] == 0 {
		t.Fatalf("no lookup shared the leader's run: %v", counts)
	}
}

// errQuerier always fails, driving failure streaks and lookup errors.
type errQuerier struct{}

func (errQuerier) Query(context.Context, string, string, dnswire.Type) (*dnswire.Message, error) {
	return nil, errors.New("unreachable")
}

func TestEngineMetricsErrorsAndBreakerTransitions(t *testing.T) {
	reg := metrics.New()
	eng := engineUnderTest(t, errQuerier{}, EngineConfig{
		Metrics:          reg,
		BreakerThreshold: 2,
		DisableHedging:   true,
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err == nil {
			t.Fatal("lookup against dead resolvers succeeded")
		}
	}
	if eng.Ready() {
		t.Fatal("Ready() with every breaker open")
	}
	out := exposition(t, reg)
	mustContain(t, out,
		MetricEngineErrors+" 2",
		MetricBreakerTransitions+`{resolver="r0",to="open"} 1`,
		MetricBreakerState+`{resolver="r1"} 1`,
		MetricResolverExchanges+`{resolver="r2",result="error"} 2`,
	)
}

func TestHealthMetricsBreakerReclose(t *testing.T) {
	reg := metrics.New()
	h := NewHealthTracker(2, time.Minute, nil)
	h.instrument(newHealthInstruments(reg, []Endpoint{{Name: "r0", URL: "u0"}}))
	boom := errors.New("boom")
	h.Observe("u0", 0, boom)
	h.Observe("u0", 0, boom)
	h.Observe("u0", 0, boom) // extends the open breaker, no new transition
	h.Observe("u0", 5*time.Millisecond, nil)
	out := exposition(t, reg)
	mustContain(t, out,
		MetricBreakerTransitions+`{resolver="r0",to="open"} 1`,
		MetricBreakerTransitions+`{resolver="r0",to="closed"} 1`,
		MetricBreakerState+`{resolver="r0"} 0`,
		MetricResolverRTT+`{resolver="r0"} 0.005`,
	)
}

func TestFrontendMetrics(t *testing.T) {
	reg := metrics.New()
	q := &staticQuerier{lists: threeResolverLists()}
	gen, err := NewGenerator(Config{Resolvers: threeEndpoints(), Querier: q})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontendWithConfig("127.0.0.1:0", gen, FrontendConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })

	// One answerable UDP query, one NOTIMP (TXT), one TCP query.
	frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeA)
	frontendQuery(t, fe.Addr(), "pool.test.", dnswire.Type(16))
	tq, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := (&transport.TCP{}).Exchange(ctx, tq, fe.Addr()); err != nil {
		t.Fatal(err)
	}

	out := exposition(t, reg)
	mustContain(t, out,
		MetricFrontendQueries+`{proto="udp"} 2`,
		MetricFrontendQueries+`{proto="tcp"} 1`,
		MetricFrontendResponses+`{rcode="NOERROR"} 2`,
		MetricFrontendResponses+`{rcode="NOTIMP"} 1`,
		MetricFrontendInflight+`{proto="udp"} 0`,
		MetricFrontendInflight+`{proto="tcp"} 0`,
		MetricFrontendDropped+" 0",
		// Every query above took the slow path (no wire cache in this
		// frontend), so each is timed in the per-proto latency series.
		MetricFrontendLatency+`_count{proto="udp"} 2`,
		MetricFrontendLatency+`_count{proto="tcp"} 1`,
	)
	// Without encrypted listeners configured, no dot/doh series may
	// appear in the exposition.
	for _, proto := range []string{ProtoDoT, ProtoDoH} {
		if strings.Contains(out, `{proto="`+proto+`"}`) {
			t.Errorf("plaintext-only frontend exposes %s series:\n%s", proto, out)
		}
	}
}

func TestEngineCachedPoolsSnapshot(t *testing.T) {
	q := newCountingQuerier(300, threeResolverLists())
	eng := engineUnderTest(t, q, EngineConfig{})
	if got := eng.CachedPools(); len(got) != 0 {
		t.Fatalf("CachedPools before any lookup = %d entries", len(got))
	}
	if _, err := eng.Lookup(context.Background(), "Pool.Test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	pools := eng.CachedPools()
	if len(pools) != 1 {
		t.Fatalf("CachedPools = %d entries, want 1", len(pools))
	}
	p := pools[0]
	if !strings.HasPrefix(p.Key, "pool.test.|") {
		t.Errorf("Key = %q, want lower-cased domain prefix", p.Key)
	}
	if len(p.Addrs) != 6 || p.TruncateLength != 2 || p.Responding != 3 {
		t.Errorf("snapshot = %d addrs, K=%d, responding=%d", len(p.Addrs), p.TruncateLength, p.Responding)
	}
	if p.Remaining <= 0 || p.Remaining > 300*time.Second {
		t.Errorf("Remaining = %v, want within (0, 300s]", p.Remaining)
	}
}

func TestEngineReadyWithoutTraffic(t *testing.T) {
	q := newCountingQuerier(300, threeResolverLists())
	eng := engineUnderTest(t, q, EngineConfig{})
	if !eng.Ready() {
		t.Fatal("engine not ready before any traffic")
	}
}
