package core

import (
	"context"
	"crypto/tls"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/metrics"
	"dohpool/internal/testpki"
	"dohpool/internal/transport"
)

// staticQuerier answers every resolver URL with a fixed per-URL list.
type staticQuerier struct {
	lists map[string][]netip.Addr
	fail  bool
}

func (s *staticQuerier) Query(_ context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(query)
	if s.fail {
		resp.Header.RCode = dnswire.RCodeServFail
		return resp, nil
	}
	for _, a := range s.lists[url] {
		if (typ == dnswire.TypeA) == a.Is4() {
			resp.Answers = append(resp.Answers, dnswire.AddressRecord(name, a, 60))
		}
	}
	return resp, nil
}

func frontendUnderTest(t *testing.T, q Querier, withMajority bool) *Frontend {
	t.Helper()
	gen, err := NewGenerator(Config{
		Resolvers: []Endpoint{
			{Name: "r0", URL: "u0"},
			{Name: "r1", URL: "u1"},
			{Name: "r2", URL: "u2"},
		},
		Querier:      q,
		WithMajority: withMajority,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend("127.0.0.1:0", gen, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })
	return fe
}

func frontendQuery(t *testing.T, addr, name string, typ dnswire.Type) *dnswire.Message {
	t.Helper()
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	resp, err := (&transport.UDP{}).Exchange(ctx, query, addr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFrontendAnswersWithPool(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "192.0.2.2"),
		"u1": addrs("192.0.2.3", "192.0.2.4"),
		"u2": addrs("192.0.2.5", "192.0.2.6"),
	}}
	fe := frontendUnderTest(t, q, false)
	resp := frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if got := len(resp.AnswerAddrs()); got != 6 {
		t.Fatalf("answers = %d, want 6", got)
	}
	if !resp.Header.RecursionAvailable {
		t.Error("RA clear")
	}
	if fe.Served() != 1 {
		t.Errorf("Served = %d", fe.Served())
	}
}

func TestFrontendMajorityMode(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "198.18.0.1"),
		"u1": addrs("192.0.2.1", "192.0.2.2"),
		"u2": addrs("192.0.2.1", "192.0.2.2"),
	}}
	fe := frontendUnderTest(t, q, true)
	resp := frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeA)
	got := resp.AnswerAddrs()
	if len(got) != 2 {
		t.Fatalf("majority answers = %v", got)
	}
	for _, a := range got {
		if a == ip("198.18.0.1") {
			t.Fatal("minority address served")
		}
	}
}

func TestFrontendRejectsNonAddressQueries(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{}}
	fe := frontendUnderTest(t, q, false)
	resp := frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeTXT)
	if resp.Header.RCode != dnswire.RCodeNotImp {
		t.Fatalf("rcode = %v, want NOTIMP (pool generation is address-only, §II)", resp.Header.RCode)
	}
	if fe.Failures() != 1 {
		t.Errorf("Failures = %d", fe.Failures())
	}
}

func TestFrontendServFailOnGeneratorError(t *testing.T) {
	q := &staticQuerier{fail: true}
	fe := frontendUnderTest(t, q, false)
	resp := frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestFrontendFormErrOnJunk(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{"u0": addrs("192.0.2.1")}}
	fe := frontendUnderTest(t, q, false)

	// A response-flagged message must be rejected as FORMERR.
	query, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	query.Header.Response = true
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	resp, err := (&transport.UDP{}).Exchange(ctx, query, fe.Addr())
	// The frontend answers with FORMERR; Validate passes since ID and
	// question echo.
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeFormErr {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestFrontendTCP(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "192.0.2.2"),
		"u1": addrs("192.0.2.3", "192.0.2.4"),
		"u2": addrs("192.0.2.5", "192.0.2.6"),
	}}
	fe := frontendUnderTest(t, q, false)
	query, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	resp, err := (&transport.TCP{}).Exchange(ctx, query, fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.AnswerAddrs()); got != 6 {
		t.Fatalf("TCP answers = %d", got)
	}
}

func TestFrontendTruncatesOversizedUDP(t *testing.T) {
	// 120 addresses per resolver → ~120*3 answer records, far over 512
	// bytes. A no-EDNS UDP client must get TC and succeed over TCP via
	// the Auto transport.
	big := make(map[string][]netip.Addr)
	for r := 0; r < 3; r++ {
		url := "u" + string(rune('0'+r))
		for i := 0; i < 120; i++ {
			big[url] = append(big[url], netip.AddrFrom4([4]byte{10, byte(r), byte(i), 1}))
		}
	}
	fe := frontendUnderTest(t, &staticQuerier{lists: big}, false)

	query, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	query.Additional = nil // no EDNS → 512-byte limit
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	udpResp, err := (&transport.UDP{}).Exchange(ctx, query, fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !udpResp.Header.Truncated {
		t.Fatal("oversized UDP answer not truncated")
	}

	query2, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	query2.Additional = nil
	autoResp, err := (&transport.Auto{}).Exchange(ctx, query2, fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(autoResp.AnswerAddrs()); got != 360 {
		t.Fatalf("TCP fallback answers = %d, want 360", got)
	}
}

// TestFrontendTCPPersistentConnection sends several queries over one TCP
// connection (RFC 7766 connection reuse).
func TestFrontendTCPPersistentConnection(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "192.0.2.2"),
		"u1": addrs("192.0.2.3", "192.0.2.4"),
		"u2": addrs("192.0.2.5", "192.0.2.6"),
	}}
	fe := frontendUnderTest(t, q, false)

	conn, err := net.Dial("tcp", fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		query, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteTCPMessage(conn, query); err != nil {
			t.Fatal(err)
		}
		resp, err := transport.ReadTCPMessage(conn)
		if err != nil {
			t.Fatalf("query %d over reused connection: %v", i, err)
		}
		if got := len(resp.AnswerAddrs()); got != 6 {
			t.Fatalf("query %d answers = %d", i, got)
		}
	}
	if fe.Served() != 5 {
		t.Errorf("Served = %d, want 5", fe.Served())
	}
}

// TestFrontendOnEngineCachesAcrossQueries wires the frontend onto an
// Engine and checks repeated frontend queries perform one upstream
// fan-out in total.
func TestFrontendOnEngineCachesAcrossQueries(t *testing.T) {
	q := newCountingQuerier(300, threeResolverLists())
	eng, err := NewEngine(Config{Resolvers: threeEndpoints(), Querier: q}, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	fe, err := NewFrontendWithConfig("127.0.0.1:0", eng, FrontendConfig{
		Timeout:    time.Second,
		UDPWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })

	for i := 0; i < 8; i++ {
		resp := frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeA)
		if got := len(resp.AnswerAddrs()); got != 6 {
			t.Fatalf("query %d answers = %d", i, got)
		}
	}
	if got := q.total.Load(); got != 3 {
		t.Fatalf("8 frontend queries caused %d upstream exchanges, want 3", got)
	}
	if eng.NetworkRuns() != 1 {
		t.Errorf("NetworkRuns = %d, want 1", eng.NetworkRuns())
	}
}

// TestFrontendServesPoolTTL checks answer records carry the upstream TTL
// instead of a hardcoded figure.
func TestFrontendServesPoolTTL(t *testing.T) {
	q := newCountingQuerier(150, threeResolverLists())
	eng, err := NewEngine(Config{Resolvers: threeEndpoints(), Querier: q}, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	fe, err := NewFrontend("127.0.0.1:0", eng, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })

	resp := frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeA)
	for _, r := range resp.Answers {
		if r.TTL != 150 {
			t.Fatalf("answer TTL = %d, want upstream 150", r.TTL)
		}
	}
}

// encryptedFrontendUnderTest starts a frontend serving all four
// transports (udp/tcp on one port, DoT and DoH on their own), with a
// testbed CA as server identity.
func encryptedFrontendUnderTest(t *testing.T, q Querier, reg *metrics.Registry) (*Frontend, *testpki.CA) {
	t.Helper()
	ca, err := testpki.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	tlsCfg, err := ca.ServerTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(Config{
		Resolvers: []Endpoint{
			{Name: "r0", URL: "u0"},
			{Name: "r1", URL: "u1"},
			{Name: "r2", URL: "u2"},
		},
		Querier: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontendWithConfig("127.0.0.1:0", gen, FrontendConfig{
		Timeout:   time.Second,
		DoTAddr:   "127.0.0.1:0",
		DoHAddr:   "127.0.0.1:0",
		TLSConfig: tlsCfg,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })
	return fe, ca
}

func TestFrontendDoT(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "192.0.2.2"),
		"u1": addrs("192.0.2.3", "192.0.2.4"),
		"u2": addrs("192.0.2.5", "192.0.2.6"),
	}}
	fe, ca := encryptedFrontendUnderTest(t, q, nil)
	if fe.DoTAddr() == "" {
		t.Fatal("DoTAddr empty with DoT configured")
	}

	query, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	dot := &transport.DoT{TLSConfig: ca.ClientTLS()}
	resp, err := dot.Exchange(ctx, query, fe.DoTAddr())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.AnswerAddrs()); got != 6 {
		t.Fatalf("DoT answers = %d, want 6", got)
	}

	// An untrusted client must fail the handshake: the serving hop is
	// authenticated, exactly like the upstream DoH hop.
	otherCA, err := testpki.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	bad := &transport.DoT{TLSConfig: otherCA.ClientTLS()}
	if _, err := bad.Exchange(ctx, query, fe.DoTAddr()); err == nil {
		t.Fatal("DoT exchange succeeded with untrusted CA — channel authentication broken")
	}
}

// TestFrontendDoTPersistentConnection drives several queries over one
// TLS session: RFC 7858 inherits RFC 7766 connection reuse.
func TestFrontendDoTPersistentConnection(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "192.0.2.2"),
		"u1": addrs("192.0.2.3", "192.0.2.4"),
		"u2": addrs("192.0.2.5", "192.0.2.6"),
	}}
	fe, ca := encryptedFrontendUnderTest(t, q, nil)

	conn, err := tls.Dial("tcp", fe.DoTAddr(), ca.ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		query, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteTCPMessage(conn, query); err != nil {
			t.Fatal(err)
		}
		resp, err := transport.ReadTCPMessage(conn)
		if err != nil {
			t.Fatalf("query %d over reused TLS session: %v", i, err)
		}
		if got := len(resp.AnswerAddrs()); got != 6 {
			t.Fatalf("query %d answers = %d", i, got)
		}
	}
	if fe.Served() != 5 {
		t.Errorf("Served = %d, want 5", fe.Served())
	}
}

func TestFrontendDoH(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "192.0.2.2"),
		"u1": addrs("192.0.2.3", "192.0.2.4"),
		"u2": addrs("192.0.2.5", "192.0.2.6"),
	}}
	reg := metrics.New()
	fe, ca := encryptedFrontendUnderTest(t, q, reg)
	if fe.DoHAddr() == "" {
		t.Fatal("DoHAddr empty with DoH configured")
	}
	url := "https://" + fe.DoHAddr() + doh.DefaultPath
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	for _, method := range []doh.Method{doh.MethodPOST, doh.MethodGET} {
		client := doh.NewClient(doh.WithTLSConfig(ca.ClientTLS()), doh.WithMethod(method))
		resp, err := client.Query(ctx, url, "pool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatalf("method %v: %v", method, err)
		}
		if got := len(resp.AnswerAddrs()); got != 6 {
			t.Fatalf("method %v answers = %d, want 6", method, got)
		}
	}

	// The DoT and DoH query counters carry their own proto labels.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), MetricFrontendQueries+`{proto="doh"} 2`) {
		t.Errorf("missing doh query series:\n%s", buf.String())
	}
}

func TestFrontendListeners(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{}}
	fe, _ := encryptedFrontendUnderTest(t, q, nil)
	got := map[string]ListenerInfo{}
	for _, l := range fe.Listeners() {
		if l.Addr == "" {
			t.Errorf("listener %s has empty addr", l.Proto)
		}
		got[l.Proto] = l
	}
	if len(got) != 4 {
		t.Fatalf("listeners = %v, want udp/tcp/dot/doh", got)
	}
	for proto, wantEncrypted := range map[string]bool{
		ProtoUDP: false, ProtoTCP: false, ProtoDoT: true, ProtoDoH: true,
	} {
		l, ok := got[proto]
		if !ok {
			t.Fatalf("missing %s listener", proto)
		}
		if l.Encrypted != wantEncrypted {
			t.Errorf("%s encrypted = %v, want %v", proto, l.Encrypted, wantEncrypted)
		}
	}
}

func TestFrontendEncryptedRequiresTLSConfig(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{}}
	gen, err := NewGenerator(Config{
		Resolvers: []Endpoint{{Name: "r0", URL: "u0"}},
		Querier:   q,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFrontendWithConfig("127.0.0.1:0", gen, FrontendConfig{DoTAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("DoT without TLSConfig accepted")
	}
	if _, err := NewFrontendWithConfig("127.0.0.1:0", gen, FrontendConfig{DoHAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("DoH without TLSConfig accepted")
	}
}

// TestLimitListenerBoundsAccepts checks the DoH listener's connection
// budget: at capacity, Accept blocks until an accepted conn closes, and
// double-Close releases the slot only once.
func TestLimitListenerBoundsAccepts(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := newLimitListener(inner, 1)
	t.Cleanup(func() { _ = ln.Close() })

	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- conn
		}
	}()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}

	dial()
	var first net.Conn
	select {
	case first = <-accepted:
	case <-time.After(3 * time.Second):
		t.Fatal("first connection never accepted")
	}

	// Budget exhausted: the second dial connects (kernel backlog) but
	// must not be accepted while the first conn is open.
	dial()
	select {
	case <-accepted:
		t.Fatal("second connection accepted past the budget")
	case <-time.After(100 * time.Millisecond):
	}

	// Double-Close must release exactly one slot.
	first.Close()
	first.Close()
	select {
	case <-accepted:
	case <-time.After(3 * time.Second):
		t.Fatal("slot not released after conn close")
	}
	select {
	case <-accepted:
		t.Fatal("double Close released two slots")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestFrontendCloseIdempotency(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{}}
	gen, err := NewGenerator(Config{
		Resolvers: []Endpoint{{Name: "r0", URL: "u0"}},
		Querier:   q,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend("127.0.0.1:0", gen, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != ErrFrontendClosed {
		t.Fatalf("second close = %v", err)
	}
}
