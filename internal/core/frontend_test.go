package core

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/transport"
)

// staticQuerier answers every resolver URL with a fixed per-URL list.
type staticQuerier struct {
	lists map[string][]netip.Addr
	fail  bool
}

func (s *staticQuerier) Query(_ context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(query)
	if s.fail {
		resp.Header.RCode = dnswire.RCodeServFail
		return resp, nil
	}
	for _, a := range s.lists[url] {
		if (typ == dnswire.TypeA) == a.Is4() {
			resp.Answers = append(resp.Answers, dnswire.AddressRecord(name, a, 60))
		}
	}
	return resp, nil
}

func frontendUnderTest(t *testing.T, q Querier, withMajority bool) *Frontend {
	t.Helper()
	gen, err := NewGenerator(Config{
		Resolvers: []Endpoint{
			{Name: "r0", URL: "u0"},
			{Name: "r1", URL: "u1"},
			{Name: "r2", URL: "u2"},
		},
		Querier:      q,
		WithMajority: withMajority,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend("127.0.0.1:0", gen, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })
	return fe
}

func frontendQuery(t *testing.T, addr, name string, typ dnswire.Type) *dnswire.Message {
	t.Helper()
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	resp, err := (&transport.UDP{}).Exchange(ctx, query, addr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFrontendAnswersWithPool(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "192.0.2.2"),
		"u1": addrs("192.0.2.3", "192.0.2.4"),
		"u2": addrs("192.0.2.5", "192.0.2.6"),
	}}
	fe := frontendUnderTest(t, q, false)
	resp := frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if got := len(resp.AnswerAddrs()); got != 6 {
		t.Fatalf("answers = %d, want 6", got)
	}
	if !resp.Header.RecursionAvailable {
		t.Error("RA clear")
	}
	if fe.Served() != 1 {
		t.Errorf("Served = %d", fe.Served())
	}
}

func TestFrontendMajorityMode(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "198.18.0.1"),
		"u1": addrs("192.0.2.1", "192.0.2.2"),
		"u2": addrs("192.0.2.1", "192.0.2.2"),
	}}
	fe := frontendUnderTest(t, q, true)
	resp := frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeA)
	got := resp.AnswerAddrs()
	if len(got) != 2 {
		t.Fatalf("majority answers = %v", got)
	}
	for _, a := range got {
		if a == ip("198.18.0.1") {
			t.Fatal("minority address served")
		}
	}
}

func TestFrontendRejectsNonAddressQueries(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{}}
	fe := frontendUnderTest(t, q, false)
	resp := frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeTXT)
	if resp.Header.RCode != dnswire.RCodeNotImp {
		t.Fatalf("rcode = %v, want NOTIMP (pool generation is address-only, §II)", resp.Header.RCode)
	}
	if fe.Failures() != 1 {
		t.Errorf("Failures = %d", fe.Failures())
	}
}

func TestFrontendServFailOnGeneratorError(t *testing.T) {
	q := &staticQuerier{fail: true}
	fe := frontendUnderTest(t, q, false)
	resp := frontendQuery(t, fe.Addr(), "pool.test.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestFrontendFormErrOnJunk(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{"u0": addrs("192.0.2.1")}}
	fe := frontendUnderTest(t, q, false)

	// A response-flagged message must be rejected as FORMERR.
	query, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	query.Header.Response = true
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	resp, err := (&transport.UDP{}).Exchange(ctx, query, fe.Addr())
	// The frontend answers with FORMERR; Validate passes since ID and
	// question echo.
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeFormErr {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestFrontendTCP(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "192.0.2.2"),
		"u1": addrs("192.0.2.3", "192.0.2.4"),
		"u2": addrs("192.0.2.5", "192.0.2.6"),
	}}
	fe := frontendUnderTest(t, q, false)
	query, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	resp, err := (&transport.TCP{}).Exchange(ctx, query, fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.AnswerAddrs()); got != 6 {
		t.Fatalf("TCP answers = %d", got)
	}
}

func TestFrontendTruncatesOversizedUDP(t *testing.T) {
	// 120 addresses per resolver → ~120*3 answer records, far over 512
	// bytes. A no-EDNS UDP client must get TC and succeed over TCP via
	// the Auto transport.
	big := make(map[string][]netip.Addr)
	for r := 0; r < 3; r++ {
		url := "u" + string(rune('0'+r))
		for i := 0; i < 120; i++ {
			big[url] = append(big[url], netip.AddrFrom4([4]byte{10, byte(r), byte(i), 1}))
		}
	}
	fe := frontendUnderTest(t, &staticQuerier{lists: big}, false)

	query, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	query.Additional = nil // no EDNS → 512-byte limit
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	udpResp, err := (&transport.UDP{}).Exchange(ctx, query, fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !udpResp.Header.Truncated {
		t.Fatal("oversized UDP answer not truncated")
	}

	query2, err := dnswire.NewQuery("pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	query2.Additional = nil
	autoResp, err := (&transport.Auto{}).Exchange(ctx, query2, fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(autoResp.AnswerAddrs()); got != 360 {
		t.Fatalf("TCP fallback answers = %d, want 360", got)
	}
}

func TestFrontendCloseIdempotency(t *testing.T) {
	q := &staticQuerier{lists: map[string][]netip.Addr{}}
	gen, err := NewGenerator(Config{
		Resolvers: []Endpoint{{Name: "r0", URL: "u0"}},
		Querier:   q,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend("127.0.0.1:0", gen, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != ErrFrontendClosed {
		t.Fatalf("second close = %v", err)
	}
}
