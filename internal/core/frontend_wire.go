package core

import (
	"time"

	"dohpool/internal/dnscache"
	"dohpool/internal/dnswire"
)

// This file is the frontend half of the wire-format answer cache: a UDP
// datagram whose question matches a live pre-encoded entry is answered
// inside the reader loop with one memcpy plus a three-field patch —
// transaction ID, RD/CD echo, aged TTLs — never touching the decoder,
// the message builder or the encoder. Everything the fast path cannot
// prove about a query (unusual flags, compression pointers, non-address
// types, absent or expired wire entries) falls through to the worker
// slow path, which behaves exactly as it always has; the fast path is
// therefore free to be strict.

// wireBackend is the optional backend extension the fast path needs:
// the engine implements it, the one-shot generator (and test stubs) do
// not, and a frontend over a backend without it simply serves every
// datagram through the slow path.
type wireBackend interface {
	WireLookup(key []byte) (*dnscache.WireEntry, time.Duration, bool)
}

// udpPacketBuf is the per-packet buffer size: big enough for any
// realistic query (a question plus an EDNS OPT is well under 600 bytes)
// and for every response the fast path serves (a larger advertised EDNS
// size with a bigger pool falls through to the slow path, which
// allocates per response). Oversized inbound datagrams are truncated by
// the kernel and fail the strict parse, landing in the slow-path
// decoder like any other malformed query.
const udpPacketBuf = 4096

// wireKeyMax bounds the engine cache key the fast path builds on the
// stack: a maximal 254-byte presentation-form name plus "|28".
const wireKeyMax = 260

// parseWireQuery strictly parses raw query bytes b into the engine
// cache key (appended to keyScratch, which the caller sizes wireKeyMax
// so no path grows it), the EDNS-honoured maximum response size and the
// OPT rdata length (0 when no options rode along — the DoH fast path
// bails on any, because the slow path's RFC 8467 padding reacts to
// them). ok is false whenever the query has any feature the fast paths
// do not prove — unusual flags, extra records, compression pointers,
// non-address types, trailing bytes — leaving it to the strict decoder.
// It allocates nothing.
//
//dohlint:noalloc
func parseWireQuery(b, keyScratch []byte) (key []byte, maxSize, optData int, ok bool) {
	if len(b) < 12 {
		return nil, 0, 0, false
	}
	// Flags: must be a standard query (QR clear, opcode QUERY). AA/TC/RD
	// and the byte-3 bits are ignored by the slow path's response builder
	// (RD/CD are echoed, the rest forced to the response's own values),
	// so they do not gate the fast path.
	if b[2]&0x80 != 0 || (b[2]>>3)&0x0F != 0 {
		return nil, 0, 0, false
	}
	// Counts: exactly one question, no answer/authority records, at most
	// one additional (the EDNS OPT).
	if b[4] != 0 || b[5] != 1 || b[6] != 0 || b[7] != 0 || b[8] != 0 || b[9] != 0 || b[10] != 0 || b[11] > 1 {
		return nil, 0, 0, false
	}
	hasOPT := b[11] == 1

	// Question name → engine cache key, lowercased presentation form
	// with trailing dot (decodeName's output, hence Lookup's key
	// spelling). Compression pointers, non-printable or '.' label bytes
	// and over-long names all bail out — the strict decoder is the
	// authority on those. The key builds into caller-provided scratch: a
	// stack array would escape through the wireBackend interface call
	// and cost one allocation per query.
	key = keyScratch[:0]
	off := 12
	for {
		if off >= len(b) {
			return nil, 0, 0, false
		}
		l := int(b[off])
		if l == 0 {
			off++
			break
		}
		if l >= 0x40 || off+1+l > len(b) || len(key)+l+1 > 254 {
			return nil, 0, 0, false
		}
		for _, c := range b[off+1 : off+1+l] {
			if c < 0x21 || c > 0x7E || c == '.' {
				return nil, 0, 0, false
			}
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			key = append(key, c)
		}
		key = append(key, '.')
		off += 1 + l
	}
	if len(key) == 0 {
		key = append(key, '.') // root
	}
	if off+4 > len(b) {
		return nil, 0, 0, false
	}
	qtype := uint16(b[off])<<8 | uint16(b[off+1])
	qclass := uint16(b[off+2])<<8 | uint16(b[off+3])
	off += 4
	if qclass != uint16(dnswire.ClassINET) {
		return nil, 0, 0, false
	}
	switch dnswire.Type(qtype) {
	case dnswire.TypeA:
		key = append(key, '|', '1')
	case dnswire.TypeAAAA:
		key = append(key, '|', '2', '8')
	default:
		return nil, 0, 0, false
	}

	// EDNS: honour the advertised payload size exactly as handleUDP does
	// (never below 512). The OPT rdata (options, version, DO bit) is
	// opaque to the slow path too, so only the fixed fields are checked;
	// its length is reported so option-sensitive callers can bail.
	maxSize = dnswire.MaxUDPSize
	if hasOPT {
		if off+11 > len(b) || b[off] != 0 || b[off+1] != 0 || b[off+2] != byte(dnswire.TypeOPT) {
			return nil, 0, 0, false
		}
		if adv := int(b[off+3])<<8 | int(b[off+4]); adv > maxSize {
			maxSize = adv
		}
		optData = int(b[off+9])<<8 | int(b[off+10])
		off += 11 + optData
	}
	if off != len(b) {
		// Trailing bytes: leave the query to the strict decoder.
		return nil, 0, 0, false
	}
	return key, maxSize, optData, true
}

// agedTTL ages a wire entry's answer TTL exactly as snapshotPool does
// for the slow path: subtract whole elapsed seconds, floor at 1 while
// still serving.
//
//dohlint:noalloc
func agedTTL(ttl uint32, age time.Duration) uint32 {
	if aged := uint32(age / time.Second); aged < ttl {
		return ttl - aged
	}
	if ttl > 0 {
		return 1
	}
	return 0
}

// answerWire serves pkt from the pre-encoded wire cache, returning true
// when pkt.dg now holds the complete response (the query bytes are
// overwritten in place). It allocates nothing on any path.
//
//dohlint:noalloc
func (f *Frontend) answerWire(pkt *udpPacket) bool {
	if f.wire == nil {
		return false
	}
	b := pkt.dg.Buf[:pkt.dg.N]
	key, maxSize, _, ok := parseWireQuery(b, pkt.key[:])
	if !ok {
		return false
	}

	we, age, ok := f.wire.WireLookup(key)
	if !ok {
		return false
	}
	form, truncated := we.Form(maxSize)
	if len(form) > len(pkt.buf) {
		return false
	}

	// Committed: everything below is the serve, mirroring the slow
	// path's instrument sequence for one successful UDP answer.
	f.inst.udp.queries.Inc()
	f.inst.udp.inflight.Inc()
	id := uint16(b[0])<<8 | uint16(b[1])
	qflags := [4]byte{b[0], b[1], b[2], b[3]} // b aliases pkt.buf; save before the copy
	n := copy(pkt.buf[:], form)
	out := pkt.buf[:n]
	dnswire.PatchID(out, id)
	dnswire.EchoFlags(out, qflags[:])
	if !truncated {
		dnswire.PatchAnswerTTLs(out, we.TTLOffsets, agedTTL(we.TTL, age))
	}
	pkt.dg.N = n
	f.served.Add(1)
	f.inst.rcode(dnswire.RCodeSuccess).Inc()
	f.inst.udp.inflight.Dec()
	return true
}
