package core

import (
	"strconv"
	"time"

	"dohpool/internal/dnscache"
	"dohpool/internal/dnswire"
	"dohpool/internal/metrics"
)

// Metric names exposed by the core package. Kept as constants so the
// admin tests and README reference table cannot drift from the code.
const (
	MetricEngineLookups            = "dohpool_engine_lookups_total"
	MetricEngineErrors             = "dohpool_engine_lookup_errors_total"
	MetricEngineGenSeconds         = "dohpool_engine_pool_generation_seconds"
	MetricEngineQuorum             = "dohpool_engine_quorum_resolvers"
	MetricEngineGenerations        = "dohpool_engine_generations_total"
	MetricRefreshAttempts          = "dohpool_refresh_attempts_total"
	MetricRefreshWins              = "dohpool_refresh_wins_total"
	MetricRefreshFailures          = "dohpool_refresh_failures_total"
	MetricCacheShardHits           = "dohpool_cache_shard_hits_total"
	MetricCacheHits                = "dohpool_cache_hits_total"
	MetricCacheMisses              = "dohpool_cache_misses_total"
	MetricCacheEvictions           = "dohpool_cache_evictions_total"
	MetricCacheExpirations         = "dohpool_cache_expirations_total"
	MetricCacheStaleServes         = "dohpool_cache_stale_serves_total"
	MetricCacheEntries             = "dohpool_cache_entries"
	MetricResolverTrust            = "dohpool_resolver_trust"
	MetricPoolAttackerEntries      = "dohpool_pool_attacker_entries"
	MetricGenerationsFiltered      = "dohpool_generations_filtered_total"
	MetricResolverRTT              = "dohpool_resolver_rtt_seconds"
	MetricResolverExchanges        = "dohpool_resolver_exchanges_total"
	MetricResolverHedges           = "dohpool_resolver_hedges_total"
	MetricResolverHedgeWins        = "dohpool_resolver_hedge_wins_total"
	MetricBreakerState             = "dohpool_resolver_breaker_open"
	MetricBreakerTransitions       = "dohpool_resolver_breaker_transitions_total"
	MetricFrontendQueries          = "dohpool_frontend_queries_total"
	MetricFrontendResponses        = "dohpool_frontend_responses_total"
	MetricFrontendInflight         = "dohpool_frontend_inflight_queries"
	MetricFrontendTCPConns         = "dohpool_frontend_tcp_connections"
	MetricFrontendDropped          = "dohpool_frontend_dropped_total"
	MetricFrontendWriteErrors      = "dohpool_frontend_write_errors_total"
	MetricFrontendUDPSocketPackets = "dohpool_frontend_udp_socket_packets_total"
	MetricFrontendUDPSocketDrops   = "dohpool_frontend_udp_socket_drops_total"
	MetricWireCacheHits            = "dohpool_wire_cache_hits_total"
	MetricWireCacheMisses          = "dohpool_wire_cache_misses_total"
	MetricWireCacheEntries         = "dohpool_wire_cache_entries"
	MetricFrontendLatency          = "dohpool_frontend_latency_seconds"
)

// Frontend transport labels: the values of the `proto` label on the
// frontend's query counters, in-flight gauges and connection gauges.
const (
	ProtoUDP = "udp"
	ProtoTCP = "tcp"
	ProtoDoT = "dot"
	ProtoDoH = "doh"
)

// engineInstruments holds the engine's pre-resolved instruments. The zero
// value (no registry) is fully usable: every method on a nil instrument
// no-ops.
type engineInstruments struct {
	hit           *metrics.Counter // lookups answered from a fresh cache entry
	stale         *metrics.Counter // lookups answered stale-while-revalidate
	coalesced     *metrics.Counter // lookups that joined an in-flight run
	network       *metrics.Counter // lookups that executed Algorithm 1
	inlineGen     *metrics.Counter // generations led by a waiting caller
	backgroundGen *metrics.Counter // generations led by refresh-ahead / stale refresh
	errors        *metrics.Counter
	genLatency    *metrics.Histogram
	quorum        *metrics.Histogram
	// attackerEntries is the poisoned-entry count of the most recently
	// generated pool (attacker-prefix members) — the live counterpart of
	// the offline experiments' "attacker fraction" column.
	attackerEntries *metrics.Gauge

	refreshAttempts *metrics.Counter
	refreshWins     *metrics.Counter
	refreshFailures *metrics.Counter
}

func newEngineInstruments(reg *metrics.Registry) engineInstruments {
	lookups := reg.CounterVec(MetricEngineLookups,
		"Engine lookups by outcome: cache_hit, stale_serve, coalesced (joined an in-flight run), network (executed Algorithm 1).",
		"outcome")
	generations := reg.CounterVec(MetricEngineGenerations,
		"Algorithm 1 executions by trigger: inline (a caller waited on a cache miss), background (refresh-ahead or stale revalidation).",
		"trigger")
	return engineInstruments{
		hit:           lookups.With("cache_hit"),
		stale:         lookups.With("stale_serve"),
		coalesced:     lookups.With("coalesced"),
		network:       lookups.With("network"),
		inlineGen:     generations.With("inline"),
		backgroundGen: generations.With("background"),
		errors: reg.Counter(MetricEngineErrors,
			"Algorithm 1 runs that failed (quorum not met, empty answers, all resolvers down)."),
		genLatency: reg.Histogram(MetricEngineGenSeconds,
			"Latency of one full Algorithm 1 pool generation (N-resolver DoH fan-out).",
			metrics.DurationBuckets()),
		quorum: reg.Histogram(MetricEngineQuorum,
			"Resolvers that contributed to each generated pool.",
			[]float64{1, 2, 3, 5, 7, 9, 11, 15}),
		attackerEntries: reg.Gauge(MetricPoolAttackerEntries,
			"Attacker-prefix (198.18.0.0/15) entries in the most recently generated pool."),
		refreshAttempts: reg.Counter(MetricRefreshAttempts,
			"Background refresh-ahead runs launched by the refresher."),
		refreshWins: reg.Counter(MetricRefreshWins,
			"Refresh-ahead runs that replaced a cached pool before it expired."),
		refreshFailures: reg.Counter(MetricRefreshFailures,
			"Refresh-ahead runs that failed (stale pool kept, key backed off)."),
	}
}

// registerCacheMetrics surfaces the pool cache's cumulative Stats struct
// as callback-backed counters, read live at exposition time so no second
// set of counters can drift from the cache's own, plus the per-shard hit
// distribution (a skewed distribution means the hot keys crowd one lock
// domain).
func registerCacheMetrics(reg *metrics.Registry, cache *dnscache.Store[*poolEntry]) {
	if reg == nil || cache == nil {
		return
	}
	stat := func(pick func(dnscache.Stats) uint64) func() float64 {
		return func() float64 { return float64(pick(cache.Stats())) }
	}
	shardHits := reg.CounterVec(MetricCacheShardHits,
		"Pool-cache hits per shard (lock domain), for hit-distribution introspection.",
		"shard")
	for i := 0; i < cache.ShardCount(); i++ {
		i := i
		shardHits.WithFunc(func() float64 { return float64(cache.ShardStat(i).Hits) },
			strconv.Itoa(i))
	}
	reg.CounterFunc(MetricCacheHits, "Pool-cache lookups answered from cache (including stale serves).",
		stat(func(s dnscache.Stats) uint64 { return s.Hits }))
	reg.CounterFunc(MetricCacheMisses, "Pool-cache lookups that found no usable entry.",
		stat(func(s dnscache.Stats) uint64 { return s.Misses }))
	reg.CounterFunc(MetricCacheEvictions, "Pool-cache entries evicted under capacity pressure.",
		stat(func(s dnscache.Stats) uint64 { return s.Evictions }))
	reg.CounterFunc(MetricCacheExpirations, "Pool-cache entries removed because their TTL (plus stale window) passed.",
		stat(func(s dnscache.Stats) uint64 { return s.Expirations }))
	reg.CounterFunc(MetricCacheStaleServes, "Pool-cache hits served past their TTL inside the stale window.",
		stat(func(s dnscache.Stats) uint64 { return s.Stale }))
	reg.GaugeFunc(MetricCacheEntries, "Pool-cache live entries.",
		func() float64 { return float64(cache.Len()) })
}

// resolverSeries holds one resolver's pre-resolved instruments, so the
// per-exchange path touches only atomic operations — no label rendering
// and no family lock.
type resolverSeries struct {
	rtt         *metrics.Gauge
	okExch      *metrics.Counter
	errExch     *metrics.Counter
	hedges      *metrics.Counter
	hedgeWins   *metrics.Counter
	breakerOpen *metrics.Gauge
	opened      *metrics.Counter
	closed      *metrics.Counter
}

// healthInstruments holds the per-resolver instruments fed by the
// HealthTracker. The zero value no-ops.
type healthInstruments struct {
	byURL map[string]resolverSeries

	// Vec handles remain as the slow-path fallback for URLs that were
	// not configured at construction (defensive; the hedged querier only
	// ever asks configured endpoints).
	rtt         *metrics.GaugeVec
	exchanges   *metrics.CounterVec
	hedgesVec   *metrics.CounterVec
	hedgeWins   *metrics.CounterVec
	breakerVec  *metrics.GaugeVec
	transitions *metrics.CounterVec
}

func newHealthInstruments(reg *metrics.Registry, endpoints []Endpoint) healthInstruments {
	inst := healthInstruments{
		byURL: make(map[string]resolverSeries, len(endpoints)),
		rtt: reg.GaugeVec(MetricResolverRTT,
			"EWMA round-trip time of successful DoH exchanges, per resolver.", "resolver"),
		exchanges: reg.CounterVec(MetricResolverExchanges,
			"Completed DoH exchanges per resolver by result (ok, error).", "resolver", "result"),
		hedgesVec: reg.CounterVec(MetricResolverHedges,
			"Backup attempts launched because the primary attempt straggled.", "resolver"),
		hedgeWins: reg.CounterVec(MetricResolverHedgeWins,
			"Hedged attempts whose backup answered first.", "resolver"),
		breakerVec: reg.GaugeVec(MetricBreakerState,
			"1 while the resolver's circuit breaker is open, else 0.", "resolver"),
		transitions: reg.CounterVec(MetricBreakerTransitions,
			"Circuit-breaker state changes per resolver (to=open, to=closed).", "resolver", "to"),
	}
	for _, ep := range endpoints {
		label := ep.Name
		if label == "" {
			label = ep.URL
		}
		s := inst.resolve(label)
		// Pre-seeding the steady-state gauges also makes a scrape at
		// startup show every configured resolver.
		s.rtt.Set(0)
		s.breakerOpen.Set(0)
		inst.byURL[ep.URL] = s
	}
	return inst
}

// resolve renders one label's series through the vec slow path.
func (hi *healthInstruments) resolve(label string) resolverSeries {
	return resolverSeries{
		rtt:         hi.rtt.With(label),
		okExch:      hi.exchanges.With(label, "ok"),
		errExch:     hi.exchanges.With(label, "error"),
		hedges:      hi.hedgesVec.With(label),
		hedgeWins:   hi.hedgeWins.With(label),
		breakerOpen: hi.breakerVec.With(label),
		opened:      hi.transitions.With(label, "open"),
		closed:      hi.transitions.With(label, "closed"),
	}
}

// series returns url's pre-resolved instruments (fast path), falling
// back to rendering by URL for endpoints unknown at construction.
func (hi *healthInstruments) series(url string) resolverSeries {
	if s, ok := hi.byURL[url]; ok {
		return s
	}
	return hi.resolve(url)
}

func (hi *healthInstruments) observe(url string, ewma time.Duration, err error, openedNow, closedNow bool) {
	s := hi.series(url)
	if err != nil {
		s.errExch.Inc()
	} else {
		s.okExch.Inc()
		s.rtt.Set(ewma.Seconds())
	}
	if openedNow {
		s.opened.Inc()
		s.breakerOpen.Set(1)
	}
	if closedNow {
		s.closed.Inc()
		s.breakerOpen.Set(0)
	}
}

// protoInstruments is one serving transport's instrument set: query
// counter, in-flight gauge and — for the stream transports — the
// connection gauge. Nil members no-op, so the zero value is usable.
type protoInstruments struct {
	queries   *metrics.Counter
	inflight  *metrics.Gauge
	conns     *metrics.Gauge
	writeErrs *metrics.Counter
	latency   *metrics.Histogram
}

// udpSocketInstruments is one SO_REUSEPORT socket's pre-resolved
// counters: datagrams its reader pulled from the kernel and datagrams
// it shed to the full worker queue. Together with the socket label they
// make kernel flow-steering imbalance observable — a hot socket shows
// up as a skewed packets distribution, not as an unexplained latency
// tail. Nil members no-op.
type udpSocketInstruments struct {
	packets *metrics.Counter
	drops   *metrics.Counter
}

// frontendInstruments holds the DNS frontend's instruments, one series
// set per serving transport. The zero value no-ops.
type frontendInstruments struct {
	udp, tcp, dot, doh protoInstruments
	rcodes             *metrics.CounterVec
	// rcodeOf pre-resolves the response codes the frontend emits so the
	// per-response path is one map read plus an atomic add.
	rcodeOf map[dnswire.RCode]*metrics.Counter
	dropped *metrics.Counter
	// udpSockets holds one counter pair per SO_REUSEPORT reader, indexed
	// like Frontend.socks.
	udpSockets []udpSocketInstruments
}

// newFrontendInstruments pre-resolves the per-transport series. The
// plaintext udp/tcp pair always serves; dot/doh series are registered
// only when the corresponding encrypted listener is configured, so a
// plaintext-only frontend's exposition stays free of dead series.
// udpSockets is the frontend's reader-socket count; each socket gets a
// pre-resolved packets/drops counter pair labelled by its index.
func newFrontendInstruments(reg *metrics.Registry, dot, doh bool, udpSockets int) frontendInstruments {
	queries := reg.CounterVec(MetricFrontendQueries,
		"DNS queries received by the frontend, per transport (udp, tcp, dot, doh).", "proto")
	inflight := reg.GaugeVec(MetricFrontendInflight,
		"Queries currently being answered, per transport.", "proto")
	conns := reg.GaugeVec(MetricFrontendTCPConns,
		"Currently tracked TCP connections, per transport carried on them (tcp, dot, doh).", "proto")
	writeErrs := reg.CounterVec(MetricFrontendWriteErrors,
		"Responses the frontend failed to write back to the client, per transport (udp, tcp, dot).", "proto")
	// Slow-path serve latency only: queries answered by the UDP
	// wire-format answer cache never reach respond() and are deliberately
	// not timed — the fast path's whole budget is ~150ns and a clock read
	// plus histogram observe would be a measurable fraction of it.
	latency := reg.HistogramVec(MetricFrontendLatency,
		"Slow-path serve latency per transport (engine lookup through response build; wire-cache hits excluded).",
		frontendLatencyBuckets(), "proto")
	inst := frontendInstruments{
		udp: protoInstruments{queries: queries.With(ProtoUDP), inflight: inflight.With(ProtoUDP), writeErrs: writeErrs.With(ProtoUDP), latency: latency.With(ProtoUDP)},
		tcp: protoInstruments{queries: queries.With(ProtoTCP), inflight: inflight.With(ProtoTCP), conns: conns.With(ProtoTCP), writeErrs: writeErrs.With(ProtoTCP), latency: latency.With(ProtoTCP)},
		rcodes: reg.CounterVec(MetricFrontendResponses,
			"DNS responses sent by the frontend, per response code.", "rcode"),
		dropped: reg.Counter(MetricFrontendDropped,
			"UDP datagrams shed because the worker queue was full."),
	}
	sockPackets := reg.CounterVec(MetricFrontendUDPSocketPackets,
		"Datagrams read per SO_REUSEPORT UDP socket, for flow-steering balance introspection.", "socket")
	sockDrops := reg.CounterVec(MetricFrontendUDPSocketDrops,
		"Datagrams shed per SO_REUSEPORT UDP socket because the worker queue was full.", "socket")
	inst.udpSockets = make([]udpSocketInstruments, udpSockets)
	for i := range inst.udpSockets {
		label := strconv.Itoa(i)
		inst.udpSockets[i] = udpSocketInstruments{
			packets: sockPackets.With(label),
			drops:   sockDrops.With(label),
		}
	}
	if dot {
		inst.dot = protoInstruments{queries: queries.With(ProtoDoT), inflight: inflight.With(ProtoDoT), conns: conns.With(ProtoDoT), writeErrs: writeErrs.With(ProtoDoT), latency: latency.With(ProtoDoT)}
	}
	if doh {
		inst.doh = protoInstruments{queries: queries.With(ProtoDoH), inflight: inflight.With(ProtoDoH), conns: conns.With(ProtoDoH), latency: latency.With(ProtoDoH)}
	}
	if reg != nil {
		inst.rcodeOf = make(map[dnswire.RCode]*metrics.Counter)
		for _, rc := range []dnswire.RCode{
			dnswire.RCodeSuccess, dnswire.RCodeFormErr, dnswire.RCodeServFail,
			dnswire.RCodeNXDomain, dnswire.RCodeNotImp, dnswire.RCodeRefused,
		} {
			inst.rcodeOf[rc] = inst.rcodes.With(rc.String())
		}
	}
	return inst
}

// frontendLatencyBuckets is the serve-latency ladder: log-spaced from
// 10µs (a warm engine-cache hit through the worker path) to 10s (a
// full Algorithm 1 fan-out against slow resolvers), 5 buckets per
// decade so tail quantiles keep constant relative precision.
func frontendLatencyBuckets() []float64 {
	return metrics.LogBuckets(10e-6, 10, 5)
}

// rcode returns the response-code counter, pre-resolved for the codes
// the frontend emits.
func (fi *frontendInstruments) rcode(rc dnswire.RCode) *metrics.Counter {
	if c, ok := fi.rcodeOf[rc]; ok {
		return c
	}
	return fi.rcodes.With(rc.String())
}
