package core

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/dnswire"
	"dohpool/internal/metrics"
)

// swappableQuerier answers per-URL lists that tests can swap mid-run, so
// one engine can watch a resolver turn outlying and then recover.
type swappableQuerier struct {
	mu    sync.Mutex
	lists map[string][]netip.Addr
	ttl   uint32
}

func newSwappableQuerier(ttl uint32, lists map[string][]netip.Addr) *swappableQuerier {
	return &swappableQuerier{lists: lists, ttl: ttl}
}

func (s *swappableQuerier) set(url string, list []netip.Addr) {
	s.mu.Lock()
	s.lists[url] = list
	s.mu.Unlock()
}

func (s *swappableQuerier) Query(_ context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	s.mu.Lock()
	list := s.lists[url]
	ttl := s.ttl
	s.mu.Unlock()
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(query)
	for _, a := range list {
		if (typ == dnswire.TypeA) == a.Is4() {
			resp.Answers = append(resp.Answers, dnswire.AddressRecord(name, a, ttl))
		}
	}
	return resp, nil
}

// trustEngine builds an uncached engine (every Lookup is one generation)
// with trust enforcement on, over the three standard endpoints.
func trustEngine(t *testing.T, q Querier, window int, minScore float64) *Engine {
	t.Helper()
	eng, err := NewEngine(Config{Resolvers: threeEndpoints(), Querier: q}, EngineConfig{
		CacheSize:     -1,
		TrustWindow:   window,
		TrustMinScore: minScore,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng
}

func trustOf(t *testing.T, eng *Engine, name string) ResolverTrust {
	t.Helper()
	for _, tr := range eng.Trust() {
		if tr.Name == name {
			return tr
		}
	}
	t.Fatalf("no trust snapshot for %q", name)
	return ResolverTrust{}
}

// TestTrustInflatingResolverQuarantined walks the response-inflation
// attack through the live trust loop: generation 1 is bounded by
// truncation (the paper's guarantee — 1/3 of the pool), and from
// generation 2 the inflating resolver is distrusted and contributes
// nothing at all.
func TestTrustInflatingResolverQuarantined(t *testing.T) {
	lists := threeResolverLists()
	lists["u2"] = attack.AttackerAddrs(100)
	q := newCountingQuerier(300, lists)
	eng := trustEngine(t, q, 4, 0.5)
	ctx := context.Background()

	p1, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if p1.TruncateLength != 2 {
		t.Fatalf("gen1 K = %d, want 2 (truncation defeats inflation)", p1.TruncateLength)
	}
	if got := p1.AttackerEntries(); got != 2 {
		t.Fatalf("gen1 attacker entries = %d, want 2 (exactly the minority share)", got)
	}

	p2, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.AttackerEntries(); got != 0 {
		t.Fatalf("gen2 attacker entries = %d, want 0 (resolver quarantined)", got)
	}
	if got := p2.TrustedResponding(); got != 2 {
		t.Fatalf("gen2 trusted responding = %d, want 2", got)
	}
	if got := p2.DistrustedResolvers(); len(got) != 1 || got[0] != "r2" {
		t.Fatalf("gen2 distrusted = %v, want [r2]", got)
	}
	if tr := trustOf(t, eng, "r2"); !tr.Distrusted || tr.Score > 0.1 {
		t.Fatalf("r2 trust = %+v, want distrusted with near-zero score", tr)
	}
	if tr := trustOf(t, eng, "r0"); tr.Distrusted {
		t.Fatalf("benign r0 distrusted: %+v", tr)
	}
}

// TestTrustTruncationDoSGuard is the footnote-2 scenario: a resolver
// returning empty NOERROR answers drags TruncateLength to zero and kills
// every pool. With enforcement on, the empty answerer scores zero on the
// shortfall signal after the first failed generation and is quarantined,
// so K recovers and pools generate again.
func TestTrustTruncationDoSGuard(t *testing.T) {
	lists := threeResolverLists()
	lists["u2"] = nil // NOERROR, zero answers: the truncation DoS
	q := newCountingQuerier(300, lists)

	reg := metrics.New()
	eng, err := NewEngine(Config{Resolvers: threeEndpoints(), Querier: q}, EngineConfig{
		CacheSize:     -1,
		TrustWindow:   4,
		TrustMinScore: 0.5,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ctx := context.Background()

	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); !errors.Is(err, ErrEmptyAnswer) {
		t.Fatalf("gen1 err = %v, want ErrEmptyAnswer (first strike lands)", err)
	}

	p2, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("gen2 should survive the DoS via quarantine, got %v", err)
	}
	if p2.TruncateLength != 2 {
		t.Fatalf("gen2 K = %d, want 2 (empty answerer cannot zero it)", p2.TruncateLength)
	}
	if len(p2.Addrs) != 4 {
		t.Fatalf("gen2 pool = %d addrs, want 4 from the two trusted resolvers", len(p2.Addrs))
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	if !strings.Contains(exp, "truncation_dos") {
		t.Errorf("exposition misses the truncation_dos filter reason:\n%s", exp)
	}
	if !strings.Contains(exp, MetricResolverTrust) {
		t.Errorf("exposition misses %s", MetricResolverTrust)
	}
}

// TestTrustOutlierRecovers pins the window semantics: a trusted resolver
// that briefly turns outlying is quarantined, and — once it behaves again
// for a full window — slides back above the threshold and contributes to
// pools once more. Distrust is a verdict on recent conduct, not a life
// sentence.
func TestTrustOutlierRecovers(t *testing.T) {
	shared := addrs("192.0.2.1", "192.0.2.2")
	q := newSwappableQuerier(300, map[string][]netip.Addr{
		"u0": shared, "u1": shared, "u2": shared,
	})
	eng := trustEngine(t, q, 3, 0.5)
	ctx := context.Background()

	lookup := func() *Pool {
		t.Helper()
		p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	lookup() // one clean generation: everyone at score 1
	q.set("u2", attack.AttackerAddrs(2))
	lookup() // outlier strike observed
	lookup()
	if tr := trustOf(t, eng, "r2"); !tr.Distrusted {
		t.Fatalf("r2 should be distrusted after outlier strikes, got %+v", tr)
	}

	q.set("u2", shared) // the resolver comes back clean
	var recovered bool
	for i := 0; i < 6; i++ {
		p := lookup()
		if p.TrustedResponding() == 3 {
			recovered = true
			if got := p.AttackerEntries(); got != 0 {
				t.Fatalf("recovered pool carries %d attacker entries", got)
			}
			break
		}
	}
	if !recovered {
		t.Fatalf("r2 never recovered: %+v", trustOf(t, eng, "r2"))
	}
	if tr := trustOf(t, eng, "r2"); tr.Distrusted {
		t.Fatalf("r2 still distrusted after recovery window: %+v", tr)
	}
}

// TestTrustFailsOpenWithoutTrustedMajority pins the quorum weighting's
// safety valve: when distrust would spread to half the responding set,
// enforcement disengages and the generator falls back to the paper's
// plain Algorithm 1 instead of concentrating the pool on a shrinking
// subset.
func TestTrustFailsOpenWithoutTrustedMajority(t *testing.T) {
	lists := map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "192.0.2.2"),
		"u1": attack.AttackerAddrs(2),
		"u2": attack.AttackerAddrs(100)[50:52],
	}
	q := newCountingQuerier(300, lists)
	eng := trustEngine(t, q, 4, 0.5)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		// Two of three would be distrusted — no trusted strict majority,
		// so nothing may be excluded.
		if got := p.TrustedResponding(); got != 3 {
			t.Fatalf("gen%d trusted responding = %d, want 3 (fail-open)", i+1, got)
		}
		if len(p.Addrs) != 6 {
			t.Fatalf("gen%d pool = %d addrs, want 6", i+1, len(p.Addrs))
		}
	}
}

// TestTrustStaysOffCachedPath is the benchmark gate's correctness twin:
// a cached lookup must not consult or mutate trust state.
func TestTrustStaysOffCachedPath(t *testing.T) {
	q := newCountingQuerier(300, threeResolverLists())
	eng, err := NewEngine(Config{Resolvers: threeEndpoints(), Querier: q}, EngineConfig{
		TrustWindow:   4,
		TrustMinScore: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ctx := context.Background()

	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	before := trustOf(t, eng, "r0").Samples
	for i := 0; i < 50; i++ {
		if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if after := trustOf(t, eng, "r0").Samples; after != before {
		t.Fatalf("cached lookups grew the trust window: %d -> %d samples", before, after)
	}
	if got := eng.NetworkRuns(); got != 1 {
		t.Fatalf("cached lookups hit the network %d times", got)
	}
}

// TestChaosInflateRefreshAheadKeepsPoolClean drives the full always-warm
// stack under chaos: a ChaosQuerier interposed at the engine's transport
// seam inflates resolver 0's answers while refresh-ahead regenerates the
// cached pool across TTL cycles. The poisoned fraction must never exceed
// the paper's minority bound, and once trust enforcement kicks in the
// cached pool must come out clean.
func TestChaosInflateRefreshAheadKeepsPoolClean(t *testing.T) {
	inner := newCountingQuerier(1, threeResolverLists())
	forger := attack.NewForger(".", attack.PayloadInflate)
	chaos := attack.NewChaosQuerier(inner, forger, []string{"u0"}, 1, 1)

	eng, err := NewEngine(Config{Resolvers: threeEndpoints(), Querier: chaos}, EngineConfig{
		RefreshAhead:    0.5,
		RefreshMinHits:  0,
		RefreshInterval: 50 * time.Millisecond,
		TrustWindow:     4,
		TrustMinScore:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ctx := context.Background()

	p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	bound := 1.0 / 3
	if frac := Fraction(p.Addrs, attack.IsAttackerAddr); frac > bound+1e-9 {
		t.Fatalf("gen1 poisoned fraction %.3f exceeds minority bound %.3f", frac, bound)
	}

	// Let refresh-ahead run the pool through multiple TTL cycles while
	// sampling what a client would be served; the bound must hold at
	// every instant and the steady state must be clean.
	deadline := time.Now().Add(3 * time.Second)
	clean := false
	for time.Now().Before(deadline) {
		p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		frac := Fraction(p.Addrs, attack.IsAttackerAddr)
		if frac > bound+1e-9 {
			t.Fatalf("poisoned fraction %.3f exceeds minority bound %.3f mid-cycle", frac, bound)
		}
		if frac == 0 && eng.BackgroundGenerations() > 0 {
			clean = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !clean {
		t.Fatalf("cached pool never came clean under chaos; background gens = %d", eng.BackgroundGenerations())
	}
	if chaos.Forged() == 0 {
		t.Fatal("chaos adversary never forged — the test exercised nothing")
	}
}

// erroringQuerier fails exchanges for one URL and delegates the rest.
type erroringQuerier struct {
	inner Querier
	dead  string
}

func (e *erroringQuerier) Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	if url == e.dead {
		return nil, errors.New("resolver unreachable")
	}
	return e.inner.Query(ctx, url, name, typ)
}

// TestTrustMajoritySignalSkipsFailedGenerations pins a review finding:
// when a generation fails before the majority vote runs (here: strict
// quorum with one resolver down), honest responders must not be scored
// as if the vote ejected everything they said. Their trust must stay at
// 1.0 across repeated failed generations.
func TestTrustMajoritySignalSkipsFailedGenerations(t *testing.T) {
	shared := addrs("192.0.2.1", "192.0.2.2")
	inner := newSwappableQuerier(300, map[string][]netip.Addr{
		"u0": shared, "u1": shared, "u2": shared,
	})
	q := &erroringQuerier{inner: inner, dead: "u2"}
	eng, err := NewEngine(Config{
		Resolvers:    threeEndpoints(),
		Querier:      q,
		WithMajority: true,
		// MinResolvers 0 = all three: u2 being down fails every quorum.
	}, EngineConfig{
		CacheSize:        -1,
		TrustWindow:      4,
		TrustMinScore:    0.5,
		BreakerThreshold: -1, // keep u2 being asked (and failing) every time
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); !errors.Is(err, ErrQuorum) {
			t.Fatalf("lookup %d err = %v, want ErrQuorum", i, err)
		}
	}
	for _, name := range []string{"r0", "r1"} {
		if tr := trustOf(t, eng, name); tr.Score != 1 || tr.Distrusted {
			t.Errorf("honest %s after failed generations = %+v, want score 1", name, tr)
		}
	}
}

// TestTrustSoftSignalsCannotDistrust pins the documented invariant the
// soft floors guarantee: a benign resolver whose answers are neither
// corroborated nor majority-confirmed (both *soft* signals at their
// floor, from the same root cause) still scores exactly softFloor — at
// the recommended TrustMinScore of 0.5 it can never be distrusted
// without a hard signal firing.
func TestTrustSoftSignalsCannotDistrust(t *testing.T) {
	shared := addrs("192.0.2.1", "192.0.2.2")
	lone := addrs("203.0.113.1", "203.0.113.2") // benign, disjoint (TEST-NET-3)
	q := newCountingQuerier(300, map[string][]netip.Addr{
		"u0": shared, "u1": shared, "u2": lone,
	})
	eng, err := NewEngine(Config{
		Resolvers:    threeEndpoints(),
		Querier:      q,
		WithMajority: true,
	}, EngineConfig{
		CacheSize:     -1,
		TrustWindow:   4,
		TrustMinScore: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ctx := context.Background()

	for i := 0; i < 6; i++ {
		p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.TrustedResponding(); got != 3 {
			t.Fatalf("gen%d trusted responding = %d, want 3 (soft signals must not quarantine)", i+1, got)
		}
	}
	tr := trustOf(t, eng, "r2")
	if tr.Distrusted {
		t.Fatalf("r2 distrusted on soft signals alone: %+v", tr)
	}
	if tr.Score < 0.5-1e-9 {
		t.Fatalf("r2 score = %v, want >= softFloor 0.5", tr.Score)
	}
}
