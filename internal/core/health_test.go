package core

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohpool/internal/dnswire"
)

func TestHealthEWMAAndCounters(t *testing.T) {
	h := NewHealthTracker(3, time.Second, nil)
	h.Observe("u0", 100*time.Millisecond, nil)
	h.Observe("u0", 200*time.Millisecond, nil)
	h.Observe("u0", 0, errors.New("boom"))

	snap := h.Snapshot([]Endpoint{{Name: "r0", URL: "u0"}})[0]
	if snap.Successes != 2 || snap.Failures != 1 {
		t.Fatalf("counters = %d/%d", snap.Successes, snap.Failures)
	}
	// EWMA(α=0.25): 100ms then 0.75·100+0.25·200 = 125ms.
	if snap.EWMARTT != 125*time.Millisecond {
		t.Errorf("EWMA = %v, want 125ms", snap.EWMARTT)
	}
	if snap.ConsecutiveFailures != 1 || snap.CircuitOpen {
		t.Errorf("streak = %d open = %v", snap.ConsecutiveFailures, snap.CircuitOpen)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	h := NewHealthTracker(3, 10*time.Second, clock)

	for i := 0; i < 3; i++ {
		if !h.Allow("u0") {
			t.Fatalf("breaker open after %d failures", i)
		}
		h.Observe("u0", 0, errors.New("down"))
	}
	if h.Allow("u0") {
		t.Fatal("breaker still closed after threshold failures")
	}
	if snap := h.Snapshot([]Endpoint{{URL: "u0"}})[0]; !snap.CircuitOpen {
		t.Error("snapshot does not report open circuit")
	}

	// After the cooldown one probe is admitted (half-open)…
	mu.Lock()
	now = now.Add(11 * time.Second)
	mu.Unlock()
	if !h.Allow("u0") {
		t.Fatal("cooldown passed but probe rejected")
	}
	// …and a second concurrent attempt is still rejected.
	if h.Allow("u0") {
		t.Fatal("half-open admitted two probes")
	}
	// The probe succeeding closes the circuit.
	h.Observe("u0", time.Millisecond, nil)
	if !h.Allow("u0") {
		t.Fatal("success did not close the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	h := NewHealthTracker(0, time.Second, nil)
	for i := 0; i < 100; i++ {
		h.Observe("u0", 0, errors.New("down"))
	}
	if !h.Allow("u0") {
		t.Fatal("disabled breaker rejected an attempt")
	}
}

func TestAdaptiveHedgeDelayClamps(t *testing.T) {
	h := NewHealthTracker(3, time.Second, nil)
	if d := h.hedgeDelay("u0", 0); d != 0 {
		t.Fatalf("delay with no history = %v, want 0 (no hedge)", d)
	}
	if d := h.hedgeDelay("u0", 42*time.Millisecond); d != 42*time.Millisecond {
		t.Fatalf("fixed delay = %v", d)
	}
	h.Observe("u0", 100*time.Microsecond, nil)
	if d := h.hedgeDelay("u0", 0); d != minHedgeDelay {
		t.Fatalf("tiny EWMA delay = %v, want floor %v", d, minHedgeDelay)
	}
	h2 := NewHealthTracker(3, time.Second, nil)
	h2.Observe("u0", 10*time.Second, nil)
	if d := h2.hedgeDelay("u0", 0); d != maxHedgeDelay {
		t.Fatalf("huge EWMA delay = %v, want cap %v", d, maxHedgeDelay)
	}
}

// slowThenFastQuerier stalls the first attempt per URL and answers
// subsequent (hedged) attempts immediately.
type slowThenFastQuerier struct {
	lists map[string][]netip.Addr
	delay time.Duration

	mu       sync.Mutex
	attempts map[string]int
	total    atomic.Int64
}

func (s *slowThenFastQuerier) Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	s.mu.Lock()
	if s.attempts == nil {
		s.attempts = make(map[string]int)
	}
	s.attempts[url]++
	n := s.attempts[url]
	s.mu.Unlock()
	s.total.Add(1)
	if n == 1 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(query)
	for _, a := range s.lists[url] {
		resp.Answers = append(resp.Answers, dnswire.AddressRecord(name, a, 300))
	}
	return resp, nil
}

// TestHedgingRescuesStraggler: with one deliberately slow first attempt
// per resolver and a short fixed hedge delay, the lookup completes long
// before the straggler would have answered, and the hedge counters tick.
func TestHedgingRescuesStraggler(t *testing.T) {
	q := &slowThenFastQuerier{lists: threeResolverLists(), delay: 3 * time.Second}
	eng, err := NewEngine(
		Config{Resolvers: threeEndpoints(), Querier: q},
		EngineConfig{HedgeDelay: 10 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	start := time.Now()
	pool, err := eng.Lookup(context.Background(), "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(pool.Addrs) != 6 {
		t.Fatalf("pool = %d addrs", len(pool.Addrs))
	}
	if elapsed >= q.delay {
		t.Fatalf("lookup took %v — hedging did not rescue the stragglers", elapsed)
	}
	var hedges uint64
	for _, h := range eng.Health() {
		hedges += h.Hedges
	}
	if hedges != 3 {
		t.Errorf("hedges = %d, want 3 (one per straggling resolver)", hedges)
	}
}

// TestHedgingDisabled: the same straggler stalls the lookup when hedging
// is off.
func TestHedgingDisabled(t *testing.T) {
	q := &slowThenFastQuerier{lists: threeResolverLists(), delay: 150 * time.Millisecond}
	eng, err := NewEngine(
		Config{Resolvers: threeEndpoints(), Querier: q},
		EngineConfig{DisableHedging: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	start := time.Now()
	if _, err := eng.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < q.delay {
		t.Fatalf("lookup took %v < %v with hedging disabled", elapsed, q.delay)
	}
	if got := q.total.Load(); got != 3 {
		t.Errorf("exchanges = %d, want 3 (no hedges)", got)
	}
}

// TestBreakerFailsFastThroughEngine: a resolver that keeps erroring trips
// its breaker; subsequent runs skip it without a network attempt, failing
// the strict quorum with ErrCircuitOpen in the chain.
func TestBreakerFailsFastThroughEngine(t *testing.T) {
	q := &failingQuerier{}
	eng, err := NewEngine(
		Config{Resolvers: []Endpoint{{Name: "r0", URL: "u0"}}, Querier: q},
		EngineConfig{BreakerThreshold: 2, BreakerCooldown: time.Hour, CacheSize: -1},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err == nil {
			t.Fatal("lookup against failing resolver succeeded")
		}
	}
	before := q.calls.Load()
	_, err = eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen in chain", err)
	}
	if q.calls.Load() != before {
		t.Fatal("open breaker still hit the network")
	}
	if snap := eng.Health()[0]; !snap.CircuitOpen {
		t.Error("health snapshot does not show the open circuit")
	}
}

type failingQuerier struct{ calls atomic.Int64 }

func (f *failingQuerier) Query(context.Context, string, string, dnswire.Type) (*dnswire.Message, error) {
	f.calls.Add(1)
	return nil, errors.New("resolver unreachable")
}
