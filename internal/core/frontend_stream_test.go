package core

import (
	"bytes"
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/metrics"
	"dohpool/internal/testpki"
)

// streamPairUnderTest builds one engine with two frontends over it:
// fast (the engine itself, wire cache live) and slow (slowOnlyBackend,
// every query through decode → respond → encode), both serving all four
// transports with the same CA identity. The slow frontend is the
// differential oracle: for any query the fast one serves from the wire
// cache, the slow one's bytes define correct.
func streamPairUnderTest(t *testing.T, q Querier, clk *testClock) (*Engine, *Frontend, *Frontend, *testpki.CA) {
	t.Helper()
	ca, err := testpki.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	tlsCfg, err := ca.ServerTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Resolvers: []Endpoint{
			{Name: "r0", URL: "u0"},
			{Name: "r1", URL: "u1"},
			{Name: "r2", URL: "u2"},
		},
		Querier: q,
	}, EngineConfig{Clock: clk.now, DisableHedging: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	newFE := func(backend Backend) *Frontend {
		fe, err := NewFrontendWithConfig("127.0.0.1:0", backend, FrontendConfig{
			Timeout:   time.Second,
			DoTAddr:   "127.0.0.1:0",
			DoHAddr:   "127.0.0.1:0",
			TLSConfig: tlsCfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = fe.Close() })
		return fe
	}
	fastFE := newFE(eng)
	slowFE := newFE(slowOnlyBackend{eng})
	if fastFE.wire == nil {
		t.Fatal("fast frontend does not see the wire cache")
	}
	if slowFE.wire != nil {
		t.Fatal("slow frontend unexpectedly sees the wire cache")
	}
	return eng, fastFE, slowFE, ca
}

// streamExchange writes one RFC 7766 framed query on conn and reads the
// framed response, returning the message bytes (prefix stripped).
func streamExchange(t testing.TB, conn net.Conn, query []byte) []byte {
	t.Helper()
	framed := make([]byte, 2+len(query))
	framed[0], framed[1] = byte(len(query)>>8), byte(len(query))
	copy(framed[2:], query)
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(framed); err != nil {
		t.Fatal(err)
	}
	var prefix [2]byte
	if _, err := io.ReadFull(conn, prefix[:]); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, int(prefix[0])<<8|int(prefix[1]))
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// oneShotStream dials addr (TLS when tlsCfg non-nil), runs one framed
// exchange and closes.
func oneShotStream(t testing.TB, addr string, tlsCfg *tls.Config, query []byte) []byte {
	t.Helper()
	var conn net.Conn
	var err error
	if tlsCfg != nil {
		conn, err = tls.Dial("tcp", addr, tlsCfg)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	return streamExchange(t, conn, query)
}

// dohPost POSTs raw query bytes per RFC 8484 and returns the response
// body plus the headers the handler shaped.
func dohPost(t testing.TB, client *http.Client, addr string, query []byte) ([]byte, http.Header) {
	t.Helper()
	url := "https://" + addr + doh.DefaultPath
	resp, err := client.Post(url, doh.MediaType, bytes.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s = %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Header
}

// TestStreamFastPathDifferential is the acceptance test for the stream
// fast path: over TCP, DoT and DoH, the pre-framed wire-cache serve
// must be byte-identical to the slow path for every EDNS/RD/CD shape —
// including the shapes whose UDP answer truncates, because a stream
// never does.
func TestStreamFastPathDifferential(t *testing.T) {
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": manyAddrs(0, 40),
		"u1": manyAddrs(1000, 40),
		"u2": manyAddrs(2000, 40),
	}}
	clk := newTestClock()
	eng, fastFE, slowFE, ca := streamPairUnderTest(t, q, clk)

	// Warm through UDP so the wire cache holds the entry both stream
	// fast paths will serve.
	warm := rawQueryBytes(t, 1, "pool.test.", dnswire.TypeA, 4096, true, false)
	if resp := rawUDPExchange(t, fastFE.Addr(), warm); resp[3]&0x0F != 0 {
		t.Fatalf("warm query rcode = %d", resp[3]&0x0F)
	}
	entry, _, ok := eng.WireLookup([]byte("pool.test.|1"))
	if !ok {
		t.Fatal("no wire entry after warm-up")
	}
	if len(entry.Full) <= dnswire.MaxUDPSize {
		t.Fatalf("test pool encodes to %d bytes; want > 512 so UDP would truncate where streams must not", len(entry.Full))
	}

	httpClient := &http.Client{
		Transport: &http.Transport{TLSClientConfig: ca.ClientTLS(), ForceAttemptHTTP2: true},
		Timeout:   5 * time.Second,
	}
	defer httpClient.CloseIdleConnections()

	cases := []struct {
		name   string
		edns   int
		rd, cd bool
	}{
		{"no-edns", 0, true, false},
		{"edns-512", 512, false, true},
		{"edns-1232", 1232, true, true},
		{"edns-4096", 4096, false, false},
		{"edns-one-short", len(entry.Full) - 1, true, false},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			query := rawQueryBytes(t, uint16(0x3000+i), "pool.test.", dnswire.TypeA, tc.edns, tc.rd, tc.cd)

			fastTCP := oneShotStream(t, fastFE.Addr(), nil, query)
			slowTCP := oneShotStream(t, slowFE.Addr(), nil, query)
			if !bytes.Equal(fastTCP, slowTCP) {
				t.Fatalf("tcp fast bytes differ from slow:\nfast %x\nslow %x", fastTCP, slowTCP)
			}

			fastDoT := oneShotStream(t, fastFE.DoTAddr(), ca.ClientTLS(), query)
			slowDoT := oneShotStream(t, slowFE.DoTAddr(), ca.ClientTLS(), query)
			if !bytes.Equal(fastDoT, slowDoT) {
				t.Fatalf("dot fast bytes differ from slow:\nfast %x\nslow %x", fastDoT, slowDoT)
			}

			fastDoH, fastHdr := dohPost(t, httpClient, fastFE.DoHAddr(), query)
			slowDoH, slowHdr := dohPost(t, httpClient, slowFE.DoHAddr(), query)
			if !bytes.Equal(fastDoH, slowDoH) {
				t.Fatalf("doh fast bytes differ from slow:\nfast %x\nslow %x", fastDoH, slowDoH)
			}
			for _, h := range []string{"Content-Type", "Cache-Control"} {
				if fastHdr.Get(h) != slowHdr.Get(h) {
					t.Errorf("doh %s = %q, want slow path's %q", h, fastHdr.Get(h), slowHdr.Get(h))
				}
			}

			// Stream answers never truncate: whatever the EDNS size said,
			// the full pool must be served with TC clear — and all three
			// transports carry the same message.
			for proto, resp := range map[string][]byte{"tcp": fastTCP, "dot": fastDoT, "doh": fastDoH} {
				if resp[2]&0x02 != 0 {
					t.Errorf("%s response has TC set", proto)
				}
				if gotAns := int(resp[6])<<8 | int(resp[7]); gotAns != 120 {
					t.Errorf("%s ancount = %d, want 120", proto, gotAns)
				}
				if resp[0] != query[0] || resp[1] != query[1] {
					t.Errorf("%s response ID does not echo the query ID", proto)
				}
				if gotRD := resp[2]&0x01 != 0; gotRD != tc.rd {
					t.Errorf("%s RD echo = %v, want %v", proto, gotRD, tc.rd)
				}
				if gotCD := resp[3]&0x10 != 0; gotCD != tc.cd {
					t.Errorf("%s CD echo = %v, want %v", proto, gotCD, tc.cd)
				}
			}
		})
	}
}

// TestStreamFastPathPipelinedIDs pipelines many distinct-ID queries on
// one persistent DoT connection: the serve loop reuses one pooled
// scratch buffer for every response on the conn, so any cross-patch or
// torn copy would surface as a response carrying the wrong ID or flags.
func TestStreamFastPathPipelinedIDs(t *testing.T) {
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": manyAddrs(0, 2), "u1": manyAddrs(100, 2), "u2": manyAddrs(200, 2),
	}}
	clk := newTestClock()
	_, fastFE, _, ca := streamPairUnderTest(t, q, clk)
	rawUDPExchange(t, fastFE.Addr(), rawQueryBytes(t, 1, "pool.test.", dnswire.TypeA, 0, true, false))

	conn, err := tls.Dial("tcp", fastFE.DoTAddr(), ca.ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))

	// Write the whole pipeline first (RFC 7766 §6.2.1), alternating RD
	// and CD so the flag echo must track each query, then read the
	// responses back in order.
	const n = 64
	queries := make([][]byte, n)
	var pipeline bytes.Buffer
	for i := range queries {
		queries[i] = rawQueryBytes(t, uint16(0x4100+i), "pool.test.", dnswire.TypeA, 0, i%2 == 0, i%3 == 0)
		pipeline.WriteByte(byte(len(queries[i]) >> 8))
		pipeline.WriteByte(byte(len(queries[i])))
		pipeline.Write(queries[i])
	}
	if _, err := conn.Write(pipeline.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i, query := range queries {
		var prefix [2]byte
		if _, err := io.ReadFull(conn, prefix[:]); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		resp := make([]byte, int(prefix[0])<<8|int(prefix[1]))
		if _, err := io.ReadFull(conn, resp); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp[0] != query[0] || resp[1] != query[1] {
			t.Fatalf("response %d carries ID %x, want %x", i, resp[:2], query[:2])
		}
		if gotRD := resp[2]&0x01 != 0; gotRD != (i%2 == 0) {
			t.Fatalf("response %d RD = %v, want %v", i, gotRD, i%2 == 0)
		}
		if gotCD := resp[3]&0x10 != 0; gotCD != (i%3 == 0) {
			t.Fatalf("response %d CD = %v, want %v", i, gotCD, i%3 == 0)
		}
		if resp[3]&0x0F != 0 {
			t.Fatalf("response %d rcode = %d", i, resp[3]&0x0F)
		}
	}
}

// TestDoHFastPathPaddedQueriesGoSlow sends a padded (RFC 8467) DoH
// query: the wire fast path must decline it so the slow path can pad
// the response, and the fast frontend's bytes must still match the
// slow-only oracle's.
func TestDoHFastPathPaddedQueriesGoSlow(t *testing.T) {
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": manyAddrs(0, 2), "u1": manyAddrs(100, 2), "u2": manyAddrs(200, 2),
	}}
	clk := newTestClock()
	_, fastFE, slowFE, ca := streamPairUnderTest(t, q, clk)
	rawUDPExchange(t, fastFE.Addr(), rawQueryBytes(t, 1, "pool.test.", dnswire.TypeA, 0, true, false))

	padded := &dnswire.Message{
		Header: dnswire.Header{
			ID:               0x5151,
			Opcode:           dnswire.OpcodeQuery,
			RecursionDesired: true,
		},
		Questions: []dnswire.Question{{Name: "pool.test.", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
	}
	padded.SetEDNS(dnswire.DefaultEDNSSize)
	if err := padded.PadTo(128); err != nil {
		t.Fatal(err)
	}
	query, err := padded.Encode()
	if err != nil {
		t.Fatal(err)
	}

	httpClient := &http.Client{
		Transport: &http.Transport{TLSClientConfig: ca.ClientTLS(), ForceAttemptHTTP2: true},
		Timeout:   5 * time.Second,
	}
	defer httpClient.CloseIdleConnections()
	fast, _ := dohPost(t, httpClient, fastFE.DoHAddr(), query)
	slow, _ := dohPost(t, httpClient, slowFE.DoHAddr(), query)
	if !bytes.Equal(fast, slow) {
		t.Fatalf("padded-query fast bytes differ from slow:\nfast %x\nslow %x", fast, slow)
	}
	resp, err := dnswire.Decode(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !queryPaddedWire(t, resp) {
		t.Fatal("response to a padded query is not padded (fast path served what the slow path would have shaped)")
	}
}

// queryPaddedWire reports whether a decoded message carries the EDNS
// Padding option.
func queryPaddedWire(t *testing.T, m *dnswire.Message) bool {
	t.Helper()
	opts, err := m.EDNSOptions()
	if err != nil {
		return false
	}
	for _, o := range opts {
		if o.Code == dnswire.EDNSOptionPadding {
			return true
		}
	}
	return false
}

// TestMultiSocketServing serves with four SO_REUSEPORT sockets and
// sprays queries from many distinct source ports (the kernel steers
// flows by 4-tuple hash, so distinct sources spread across sockets).
// Every query must be answered, and the per-socket packet counters must
// account for every datagram received.
func TestMultiSocketServing(t *testing.T) {
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": manyAddrs(0, 2), "u1": manyAddrs(100, 2), "u2": manyAddrs(200, 2),
	}}
	clk := newTestClock()
	eng, err := NewEngine(Config{
		Resolvers: []Endpoint{
			{Name: "r0", URL: "u0"},
			{Name: "r1", URL: "u1"},
			{Name: "r2", URL: "u2"},
		},
		Querier: q,
	}, EngineConfig{Clock: clk.now, DisableHedging: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	reg := metrics.New()
	fe, err := NewFrontendWithConfig("127.0.0.1:0", eng, FrontendConfig{
		Timeout:    time.Second,
		UDPSockets: 4,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	if got := fe.UDPSockets(); got != 4 {
		t.Fatalf("UDPSockets() = %d, want 4 (SO_REUSEPORT unsupported here?)", got)
	}

	rawUDPExchange(t, fe.Addr(), rawQueryBytes(t, 1, "pool.test.", dnswire.TypeA, 0, true, false))

	const clients = 32
	const perClient = 4
	for c := 0; c < clients; c++ {
		conn, err := net.Dial("udp", fe.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, dnswire.MaxMessageSize)
		for i := 0; i < perClient; i++ {
			query := rawQueryBytes(t, uint16(c<<8|i), "pool.test.", dnswire.TypeA, 0, true, false)
			if _, err := conn.Write(query); err != nil {
				t.Fatal(err)
			}
			n, err := conn.Read(buf)
			if err != nil {
				t.Fatalf("client %d query %d: %v", c, i, err)
			}
			if buf[0] != query[0] || buf[1] != query[1] {
				t.Fatalf("client %d query %d: wrong ID in response", c, i)
			}
			if n < 12 || buf[3]&0x0F != 0 {
				t.Fatalf("client %d query %d: bad response (n=%d rcode=%d)", c, i, n, buf[3]&0x0F)
			}
		}
		conn.Close()
	}

	exposition := exposition(t, reg)
	total := uint64(0)
	for i := 0; i < 4; i++ {
		line := fmt.Sprintf("%s{socket=\"%d\"} ", MetricFrontendUDPSocketPackets, i)
		idx := strings.Index(exposition, line)
		if idx < 0 {
			t.Fatalf("exposition missing %q:\n%s", line, exposition)
		}
		var v uint64
		if _, err := fmt.Sscanf(exposition[idx+len(line):], "%d", &v); err != nil {
			t.Fatalf("parse %q value: %v", line, err)
		}
		total += v
	}
	const want = 1 + clients*perClient
	if total < want {
		t.Fatalf("per-socket packet counters sum to %d, want >= %d", total, want)
	}
}
