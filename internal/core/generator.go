package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dohpool/internal/dnswire"
)

// Generator errors.
var (
	// ErrNoResolvers reports a generator configured without resolvers.
	ErrNoResolvers = errors.New("no DoH resolvers configured")
	// ErrQuorum reports that fewer resolvers answered than the configured
	// minimum — proceeding would silently weaken the consensus guarantee.
	ErrQuorum = errors.New("not enough resolvers answered")
)

// Endpoint identifies one DoH resolver.
type Endpoint struct {
	// Name is a human-readable label ("dns.google", "resolver-2", …).
	Name string
	// URL is the RFC 8484 endpoint, e.g. "https://127.0.0.1:4431/dns-query".
	URL string
}

// Querier performs one DoH lookup; doh.Client satisfies it.
type Querier interface {
	Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error)
}

// DualStackPolicy selects how A and AAAA lookups combine (the paper's
// footnote 1: the honest-majority property can be required for the union
// or for each family individually).
type DualStackPolicy int

// Dual-stack policies.
const (
	// DualStackindividual runs Algorithm 1 per address family and
	// concatenates the two pools; each family individually carries the
	// honest-majority guarantee.
	DualStackIndividual DualStackPolicy = iota + 1
	// DualStackUnion merges each resolver's A and AAAA answers into one
	// list before truncation; the guarantee holds for the union.
	DualStackUnion
)

// DefaultPoolTTL is the advertised TTL (seconds) when upstream answers
// carry none — the conservative figure the frontend historically served.
const DefaultPoolTTL = 60

// ResolverResult records one resolver's contribution to a pool.
type ResolverResult struct {
	Endpoint Endpoint
	// Addrs is the untruncated answer list.
	Addrs []netip.Addr
	// Err is non-nil when the resolver failed or answered unusably.
	Err error
	// RTT is the exchange duration.
	RTT time.Duration
	// MinTTL is the smallest TTL across the resolver's answer records
	// (DefaultPoolTTL when the answer section carried none).
	MinTTL uint32
	// TrustScore is the resolver's trust score entering this generation:
	// 1.0 before any observation, 0 (the zero value, meaningless) when
	// trust tracking is disabled entirely.
	TrustScore float64
	// Distrusted reports that trust enforcement quarantined this
	// resolver's contribution: it answered (and counts for quorum), but
	// its addresses were excluded from truncation and the combined pool.
	Distrusted bool
}

// Pool is the outcome of one Algorithm 1 run.
type Pool struct {
	// Addrs is the combined pool: N truncated lists concatenated,
	// duplicates preserved.
	Addrs []netip.Addr
	// TruncateLength is K, the per-resolver contribution size.
	TruncateLength int
	// Results holds every resolver's raw contribution (including
	// failures) for diagnostics and experiments.
	Results []ResolverResult
	// Majority, when the majority filter is enabled, holds the addresses
	// confirmed by more than half of the answering resolvers.
	Majority []netip.Addr
	// TTL is the pool's advertised lifetime in seconds: the minimum answer
	// TTL across contributing resolvers. The consensus engine caches the
	// pool for exactly this long, and the DNS frontend serves it in answer
	// records.
	TTL uint32
}

// Responding returns how many resolvers contributed to the pool.
func (p *Pool) Responding() int {
	n := 0
	for _, r := range p.Results {
		if r.Err == nil {
			n++
		}
	}
	return n
}

// TrustedResponding returns how many responding resolvers' contributions
// actually entered the pool (Responding minus trust quarantines) — the
// trust-weighted quorum.
func (p *Pool) TrustedResponding() int {
	n := 0
	for _, r := range p.Results {
		if r.Err == nil && !r.Distrusted {
			n++
		}
	}
	return n
}

// DistrustedResolvers names the resolvers whose answers trust enforcement
// quarantined this generation.
func (p *Pool) DistrustedResolvers() []string {
	var names []string
	for _, r := range p.Results {
		if r.Distrusted {
			name := r.Endpoint.Name
			if name == "" {
				name = r.Endpoint.URL
			}
			names = append(names, name)
		}
	}
	return names
}

// Config configures a Generator.
type Config struct {
	// Resolvers is the list of distributed DoH resolvers (≥ 1; the
	// security analysis wants ≥ 3).
	Resolvers []Endpoint
	// Querier executes DoH lookups.
	Querier Querier
	// MinResolvers is the quorum: fewer successful answers than this
	// fails pool generation. 0 means all resolvers must answer.
	MinResolvers int
	// Sequential disables the concurrent fan-out (A3 ablation).
	Sequential bool
	// WithMajority additionally computes the majority-filtered address
	// set (for applications without Chronos-style tolerance).
	WithMajority bool
	// DualStack selects the A/AAAA combination policy for LookupDualStack.
	// Defaults to DualStackIndividual.
	DualStack DualStackPolicy
	// QueryTimeout bounds each individual resolver exchange. Zero uses
	// the querier's own default.
	QueryTimeout time.Duration
	// Trust, when non-nil, scores every resolver's conduct per generation
	// and — once the tracker enforces a minimum score — quarantines
	// persistently-outlying contributions (see TrustTracker). The engine
	// injects this; plain Generator use stays trust-free.
	Trust *TrustTracker
}

// Generator runs Algorithm 1 against a fixed resolver set.
type Generator struct {
	cfg Config
}

// NewGenerator validates cfg and builds a Generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if len(cfg.Resolvers) == 0 {
		return nil, ErrNoResolvers
	}
	if cfg.Querier == nil {
		return nil, errors.New("generator needs a Querier")
	}
	if cfg.MinResolvers == 0 {
		cfg.MinResolvers = len(cfg.Resolvers)
	}
	if cfg.MinResolvers < 0 || cfg.MinResolvers > len(cfg.Resolvers) {
		return nil, fmt.Errorf("quorum %d out of range for %d resolvers",
			cfg.MinResolvers, len(cfg.Resolvers))
	}
	if cfg.DualStack == 0 {
		cfg.DualStack = DualStackIndividual
	}
	return &Generator{cfg: cfg}, nil
}

// ResolverCount returns N, the number of configured resolvers.
func (g *Generator) ResolverCount() int { return len(g.cfg.Resolvers) }

// ServeMajority reports whether consumers (the DNS frontend) should serve
// the majority-filtered set instead of the full pool.
func (g *Generator) ServeMajority() bool { return g.cfg.WithMajority }

// Lookup runs Algorithm 1 for (domain, typ): query every resolver,
// truncate all answer lists to the shortest, concatenate.
func (g *Generator) Lookup(ctx context.Context, domain string, typ dnswire.Type) (*Pool, error) {
	results := g.queryAll(ctx, domain, typ)
	return g.assemble(results)
}

// LookupDualStack runs Algorithm 1 for both A and AAAA per the configured
// dual-stack policy.
func (g *Generator) LookupDualStack(ctx context.Context, domain string) (*Pool, error) {
	v4 := g.queryAll(ctx, domain, dnswire.TypeA)
	v6 := g.queryAll(ctx, domain, dnswire.TypeAAAA)

	switch g.cfg.DualStack {
	case DualStackUnion:
		merged := make([]ResolverResult, len(v4))
		for i := range v4 {
			merged[i] = v4[i]
			if v4[i].Err != nil {
				// Family missing entirely: fall back to the other.
				merged[i] = v6[i]
				continue
			}
			if v6[i].Err == nil {
				merged[i].Addrs = append(append([]netip.Addr(nil), v4[i].Addrs...), v6[i].Addrs...)
				if v6[i].RTT > merged[i].RTT {
					merged[i].RTT = v6[i].RTT
				}
				if v6[i].MinTTL < merged[i].MinTTL {
					merged[i].MinTTL = v6[i].MinTTL
				}
			}
		}
		return g.assemble(merged)
	default: // DualStackIndividual
		p4, err4 := g.assemble(v4)
		p6, err6 := g.assemble(v6)
		switch {
		case err4 == nil && err6 == nil:
			combined := &Pool{
				Addrs:          append(append([]netip.Addr(nil), p4.Addrs...), p6.Addrs...),
				TruncateLength: p4.TruncateLength + p6.TruncateLength,
				Results:        append(append([]ResolverResult(nil), p4.Results...), p6.Results...),
				TTL:            p4.TTL,
			}
			if p6.TTL < combined.TTL {
				combined.TTL = p6.TTL
			}
			if g.cfg.WithMajority {
				combined.Majority = append(append([]netip.Addr(nil), p4.Majority...), p6.Majority...)
			}
			return combined, nil
		case err4 == nil:
			return p4, nil
		case err6 == nil:
			return p6, nil
		default:
			return nil, fmt.Errorf("dual-stack lookup: v4: %v; v6: %w", err4, err6)
		}
	}
}

// queryAll fans the query out to every resolver (concurrently unless
// Sequential) and collects per-resolver results.
func (g *Generator) queryAll(ctx context.Context, domain string, typ dnswire.Type) []ResolverResult {
	results := make([]ResolverResult, len(g.cfg.Resolvers))
	queryOne := func(i int) {
		ep := g.cfg.Resolvers[i]
		qctx := ctx
		var cancel context.CancelFunc
		if g.cfg.QueryTimeout > 0 {
			qctx, cancel = context.WithTimeout(ctx, g.cfg.QueryTimeout)
			defer cancel()
		}
		start := time.Now()
		resp, err := g.cfg.Querier.Query(qctx, ep.URL, domain, typ)
		rtt := time.Since(start)
		if err != nil {
			results[i] = ResolverResult{Endpoint: ep, Err: err, RTT: rtt}
			return
		}
		if resp.Header.RCode != dnswire.RCodeSuccess {
			results[i] = ResolverResult{
				Endpoint: ep,
				Err:      fmt.Errorf("resolver %s answered %v", ep.Name, resp.Header.RCode),
				RTT:      rtt,
			}
			return
		}
		results[i] = ResolverResult{
			Endpoint: ep,
			Addrs:    resp.AnswerAddrs(),
			RTT:      rtt,
			MinTTL:   resp.MinAnswerTTL(DefaultPoolTTL),
		}
	}

	if g.cfg.Sequential {
		for i := range results {
			queryOne(i)
		}
		return results
	}
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queryOne(i)
		}(i)
	}
	wg.Wait()
	return results
}

// assemble applies truncation and combination (Algorithm 1's second half)
// to the collected results, enforcing the quorum and — when a trust
// tracker with an enforced minimum score is wired in — quarantining
// persistently-outlying resolver contributions before truncation, so a
// distrusted minority can neither inflate the pool nor drag
// TruncateLength to zero.
func (g *Generator) assemble(results []ResolverResult) (*Pool, error) {
	tracker := g.cfg.Trust
	var majoritySet []netip.Addr
	majorityRan := false
	if tracker != nil {
		tracker.annotate(results)
		// Observation runs on every outcome — success, quorum failure,
		// empty-answer DoS — so a resolver that keeps breaking generation
		// still earns its score. Deferred so the majority set (computed
		// only on success) feeds the ejection signal when available;
		// majorityRan guards failed generations, where the vote never
		// happened and an empty set must not read as "everything ejected".
		defer func() { tracker.observeGeneration(results, majoritySet, majorityRan) }()
	}

	contributing := make([]int, 0, len(results))
	for i := range results {
		if results[i].Err == nil {
			contributing = append(contributing, i)
		}
	}
	if len(contributing) == 0 {
		return nil, fmt.Errorf("%w: %w", ErrNoResults, firstError(results))
	}
	// Quorum counts resolvers that answered, distrusted or not: a
	// quarantined resolver's data is rejected, but its liveness still
	// proves the fan-out reached it (and exclusion is separately gated on
	// trusted contributors keeping a strict majority).
	if len(contributing) < g.cfg.MinResolvers {
		return nil, fmt.Errorf("%d of %d needed: %w (first failure: %v)",
			len(contributing), g.cfg.MinResolvers, ErrQuorum, firstError(results))
	}

	kept := contributing
	if tracker != nil {
		if excluded := tracker.excludeSet(results); len(excluded) > 0 {
			for _, i := range excluded {
				results[i].Distrusted = true
			}
			kept = make([]int, 0, len(contributing)-len(excluded))
			for _, i := range contributing {
				if !results[i].Distrusted {
					kept = append(kept, i)
				}
			}
			tracker.recordFiltered("distrust")
			if TruncateLength(listsOf(results, contributing)) == 0 &&
				TruncateLength(listsOf(results, kept)) > 0 {
				// The quarantine specifically defeated the footnote-2
				// truncation DoS: an excluded empty answer would have
				// zeroed the pool.
				tracker.recordFiltered("truncation_dos")
			}
		}
	}

	lists := listsOf(results, kept)
	pool := &Pool{Results: results, TTL: minResultTTL(results)}
	pool.TruncateLength = TruncateLength(lists)
	if pool.TruncateLength == 0 {
		return nil, ErrEmptyAnswer
	}
	pool.Addrs = Combine(Truncate(lists, pool.TruncateLength))
	if g.cfg.WithMajority {
		pool.Majority = MajorityFilter(lists)
		majoritySet = pool.Majority
		majorityRan = true
	}
	return pool, nil
}

// listsOf projects the answer lists of the results at the given indices.
func listsOf(results []ResolverResult, idx []int) [][]netip.Addr {
	lists := make([][]netip.Addr, 0, len(idx))
	for _, i := range idx {
		lists = append(lists, results[i].Addrs)
	}
	return lists
}

// minResultTTL returns the smallest MinTTL among successful, trusted
// results (the pool is only as fresh as its most impatient contributor; a
// quarantined resolver must not force an uncacheable TTL-0 pool). A
// genuine TTL-0 contribution yields 0 — uncacheable — rather than being
// treated as "unset".
func minResultTTL(results []ResolverResult) uint32 {
	min, found := uint32(0), false
	for _, r := range results {
		if r.Err != nil || r.Distrusted {
			continue
		}
		if !found || r.MinTTL < min {
			min = r.MinTTL
			found = true
		}
	}
	return min
}

func firstError(results []ResolverResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
