package core

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohpool/internal/dnswire"
)

// countingQuerier answers like staticQuerier but counts network exchanges
// per URL and can gate them open/closed to orchestrate races.
type countingQuerier struct {
	lists map[string][]netip.Addr
	ttl   uint32

	mu      sync.Mutex
	queries map[string]int
	total   atomic.Int64

	gate chan struct{} // when non-nil, every Query blocks until it closes
}

func newCountingQuerier(ttl uint32, lists map[string][]netip.Addr) *countingQuerier {
	return &countingQuerier{lists: lists, ttl: ttl, queries: make(map[string]int)}
}

func (c *countingQuerier) setTTL(ttl uint32) {
	c.mu.Lock()
	c.ttl = ttl
	c.mu.Unlock()
}

func (c *countingQuerier) Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	c.mu.Lock()
	c.queries[url]++
	gate := c.gate
	ttl := c.ttl
	c.mu.Unlock()
	c.total.Add(1)
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(query)
	for _, a := range c.lists[url] {
		if (typ == dnswire.TypeA) == a.Is4() {
			resp.Answers = append(resp.Answers, dnswire.AddressRecord(name, a, ttl))
		}
	}
	return resp, nil
}

func (c *countingQuerier) count(url string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queries[url]
}

func threeResolverLists() map[string][]netip.Addr {
	return map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "192.0.2.2"),
		"u1": addrs("192.0.2.3", "192.0.2.4"),
		"u2": addrs("192.0.2.5", "192.0.2.6"),
	}
}

func threeEndpoints() []Endpoint {
	return []Endpoint{
		{Name: "r0", URL: "u0"},
		{Name: "r1", URL: "u1"},
		{Name: "r2", URL: "u2"},
	}
}

func engineUnderTest(t *testing.T, q Querier, ecfg EngineConfig) *Engine {
	t.Helper()
	eng, err := NewEngine(Config{Resolvers: threeEndpoints(), Querier: q}, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng
}

// TestEngineCachedLookupNoNetwork is the acceptance criterion: a repeated
// lookup for the same domain within TTL performs zero network exchanges.
func TestEngineCachedLookupNoNetwork(t *testing.T) {
	q := newCountingQuerier(300, threeResolverLists())
	eng := engineUnderTest(t, q, EngineConfig{})
	ctx := context.Background()

	first, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Addrs) != 6 {
		t.Fatalf("pool = %d addrs", len(first.Addrs))
	}
	baseline := q.total.Load()
	if baseline != 3 {
		t.Fatalf("first lookup used %d exchanges, want 3", baseline)
	}

	for i := 0; i < 10; i++ {
		p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Addrs) != 6 {
			t.Fatalf("cached pool = %d addrs", len(p.Addrs))
		}
	}
	if got := q.total.Load(); got != baseline {
		t.Fatalf("cached lookups performed %d extra network exchanges", got-baseline)
	}
	if eng.NetworkRuns() != 1 {
		t.Errorf("NetworkRuns = %d, want 1", eng.NetworkRuns())
	}
	if st := eng.CacheStats(); st.Hits != 10 {
		t.Errorf("cache hits = %d, want 10", st.Hits)
	}
}

// TestEngineTTLExpiry drives the injectable clock past the answer TTL and
// expects exactly one fresh fan-out.
func TestEngineTTLExpiry(t *testing.T) {
	clk := struct {
		mu sync.Mutex
		t  time.Time
	}{t: time.Unix(1700000000, 0)}
	now := func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return clk.t
	}
	advance := func(d time.Duration) {
		clk.mu.Lock()
		clk.t = clk.t.Add(d)
		clk.mu.Unlock()
	}

	q := newCountingQuerier(30, threeResolverLists())
	eng := engineUnderTest(t, q, EngineConfig{Clock: now})
	ctx := context.Background()

	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	advance(29 * time.Second)
	p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if q.total.Load() != 3 {
		t.Fatalf("lookup inside TTL hit the network (%d exchanges)", q.total.Load())
	}
	if p.TTL != 1 {
		t.Errorf("aged pool TTL = %d, want 1", p.TTL)
	}

	advance(2 * time.Second) // 31s > 30s TTL
	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if got := q.total.Load(); got != 6 {
		t.Fatalf("post-expiry exchanges = %d, want 6", got)
	}
	if eng.NetworkRuns() != 2 {
		t.Errorf("NetworkRuns = %d, want 2", eng.NetworkRuns())
	}
}

// TestEngineCoalescing proves singleflight: M concurrent lookups for the
// same key trigger exactly one upstream fan-out per resolver.
func TestEngineCoalescing(t *testing.T) {
	const m = 50
	q := newCountingQuerier(300, threeResolverLists())
	q.gate = make(chan struct{})
	eng := engineUnderTest(t, q, EngineConfig{})
	ctx := context.Background()

	var (
		wg      sync.WaitGroup
		started sync.WaitGroup
		errs    = make(chan error, m)
	)
	started.Add(m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			p, err := eng.Lookup(ctx, "pool.ntp.org.", dnswire.TypeA)
			if err == nil && len(p.Addrs) != 6 {
				err = errors.New("short pool")
			}
			errs <- err
		}()
	}
	started.Wait()
	time.Sleep(20 * time.Millisecond) // let every goroutine reach the flight group
	close(q.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, url := range []string{"u0", "u1", "u2"} {
		if got := q.count(url); got != 1 {
			t.Errorf("resolver %s queried %d times, want 1 (coalescing broken)", url, got)
		}
	}
	if eng.NetworkRuns() != 1 {
		t.Errorf("NetworkRuns = %d, want 1", eng.NetworkRuns())
	}
}

// TestEngineStaleWhileRevalidate serves an expired pool inside MaxStale
// and refreshes in the background.
func TestEngineStaleWhileRevalidate(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	q := newCountingQuerier(10, threeResolverLists())
	eng := engineUnderTest(t, q, EngineConfig{Clock: clock, MaxStale: time.Minute})
	ctx := context.Background()

	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(30 * time.Second) // expired, within the 60s stale window
	mu.Unlock()

	p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Addrs) != 6 {
		t.Fatalf("stale pool = %d addrs", len(p.Addrs))
	}
	if p.TTL != 1 {
		t.Errorf("stale pool TTL = %d, want 1", p.TTL)
	}
	if eng.StaleServes() != 1 {
		t.Errorf("StaleServes = %d, want 1", eng.StaleServes())
	}
	// The background refresh must run exactly one more fan-out.
	deadline := time.Now().Add(2 * time.Second)
	for q.total.Load() < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := q.total.Load(); got != 6 {
		t.Fatalf("background refresh exchanges = %d, want 6", got)
	}
	// And the refreshed entry now serves without network.
	if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if got := q.total.Load(); got != 6 {
		t.Fatalf("post-refresh lookup hit the network (%d)", got)
	}
}

// TestEngineCacheDisabled verifies CacheSize < 0 restores per-call
// fan-out semantics.
func TestEngineCacheDisabled(t *testing.T) {
	q := newCountingQuerier(300, threeResolverLists())
	eng := engineUnderTest(t, q, EngineConfig{CacheSize: -1})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.total.Load(); got != 9 {
		t.Fatalf("uncached exchanges = %d, want 9", got)
	}
}

// TestEngineKeysAreDistinct checks A, AAAA and dual-stack results do not
// collide in the cache.
func TestEngineKeysAreDistinct(t *testing.T) {
	lists := map[string][]netip.Addr{
		"u0": addrs("192.0.2.1", "2001:db8::1"),
		"u1": addrs("192.0.2.2", "2001:db8::2"),
		"u2": addrs("192.0.2.3", "2001:db8::3"),
	}
	q := newCountingQuerier(300, lists)
	eng := engineUnderTest(t, q, EngineConfig{})
	ctx := context.Background()

	p4, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	p6, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeAAAA)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := eng.LookupDualStack(ctx, "pool.test.")
	if err != nil {
		t.Fatal(err)
	}
	if len(p4.Addrs) != 3 || len(p6.Addrs) != 3 || len(pd.Addrs) != 6 {
		t.Fatalf("pools = %d/%d/%d addrs", len(p4.Addrs), len(p6.Addrs), len(pd.Addrs))
	}
	for _, a := range p4.Addrs {
		if !a.Is4() {
			t.Errorf("v6 address %v in A pool", a)
		}
	}
}

// TestEngineLookupErrorNotCached verifies a failed consensus run is not
// stored, so the next lookup retries upstream.
func TestEngineLookupErrorNotCached(t *testing.T) {
	q := newCountingQuerier(300, map[string][]netip.Addr{}) // empty answers → ErrEmptyAnswer
	eng := engineUnderTest(t, q, EngineConfig{})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA); !errors.Is(err, ErrEmptyAnswer) {
			t.Fatalf("err = %v", err)
		}
	}
	if got := q.total.Load(); got != 6 {
		t.Fatalf("failed lookups were cached (exchanges = %d, want 6)", got)
	}
}

// TestEngineCacheKeyCaseInsensitive: DNS names are case-insensitive
// (stubs may even randomize case, 0x20 encoding), so different casings
// must share one cache entry.
func TestEngineCacheKeyCaseInsensitive(t *testing.T) {
	q := newCountingQuerier(300, threeResolverLists())
	eng := engineUnderTest(t, q, EngineConfig{})
	ctx := context.Background()
	for _, name := range []string{"pool.test.", "POOL.test.", "PoOl.TeSt."} {
		if _, err := eng.Lookup(ctx, name, dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.total.Load(); got != 3 {
		t.Fatalf("case variants caused %d exchanges, want 3 (one fan-out)", got)
	}
}

// TestEngineZeroTTLUncacheable: a resolver answering TTL-0 records makes
// the whole pool uncacheable regardless of resolver order.
func TestEngineZeroTTLUncacheable(t *testing.T) {
	q := newCountingQuerier(0, threeResolverLists())
	eng := engineUnderTest(t, q, EngineConfig{})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		p, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if p.TTL != 0 {
			t.Fatalf("TTL = %d, want 0", p.TTL)
		}
	}
	if got := q.total.Load(); got != 6 {
		t.Fatalf("TTL-0 pool was cached (exchanges = %d, want 6)", got)
	}
}

// TestEngineSnapshotIsolation verifies mutating a returned pool does not
// corrupt the cached copy.
func TestEngineSnapshotIsolation(t *testing.T) {
	q := newCountingQuerier(300, threeResolverLists())
	eng := engineUnderTest(t, q, EngineConfig{})
	ctx := context.Background()

	p1, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Addrs {
		p1.Addrs[i] = netip.MustParseAddr("198.18.0.66")
	}
	p2, err := eng.Lookup(ctx, "pool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p2.Addrs {
		if a == netip.MustParseAddr("198.18.0.66") {
			t.Fatal("cached pool shares storage with caller")
		}
	}
}
