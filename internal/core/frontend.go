package core

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/metrics"
	"dohpool/internal/transport"
)

// ErrFrontendClosed is returned by methods on a closed Frontend.
var ErrFrontendClosed = errors.New("dns frontend closed")

// Frontend defaults.
const (
	// DefaultUDPQueue bounds datagrams waiting for a worker; beyond it the
	// frontend sheds load by dropping (the stub retries).
	DefaultUDPQueue = 1024
	// DefaultMaxTCPConns bounds concurrently served TCP connections
	// (RFC 7766 §6.2.2 advises limiting per-server connection load).
	DefaultMaxTCPConns = 256
	// DefaultTCPIdleTimeout closes a TCP connection with no query activity
	// (RFC 7766 §6.2.3 idle session handling).
	DefaultTCPIdleTimeout = 10 * time.Second
)

// Backend answers pool lookups for the frontend. Both the one-shot
// Generator and the long-lived Engine implement it.
type Backend interface {
	Lookup(ctx context.Context, domain string, typ dnswire.Type) (*Pool, error)
	// ServeMajority selects whether answers carry the majority-filtered
	// set instead of the full pool.
	ServeMajority() bool
}

// FrontendConfig tunes the DNS frontend's serving behaviour.
type FrontendConfig struct {
	// Timeout bounds one pool generation (default 5s).
	Timeout time.Duration
	// UDPWorkers is the size of the bounded UDP worker pool.
	// 0 uses 2×GOMAXPROCS (minimum 4).
	UDPWorkers int
	// UDPQueue bounds datagrams queued for workers (default
	// DefaultUDPQueue); the frontend drops excess instead of buffering
	// without bound.
	UDPQueue int
	// MaxTCPConns bounds concurrently served TCP connections (default
	// DefaultMaxTCPConns).
	MaxTCPConns int
	// TCPIdleTimeout closes idle TCP connections (default
	// DefaultTCPIdleTimeout).
	TCPIdleTimeout time.Duration
	// Metrics, when non-nil, receives the frontend's instruments (queries
	// per transport, response codes, in-flight queries, TCP connections,
	// shed datagrams).
	Metrics *metrics.Registry
}

func (c *FrontendConfig) setDefaults() {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.UDPWorkers <= 0 {
		c.UDPWorkers = 2 * runtime.GOMAXPROCS(0)
		if c.UDPWorkers < 4 {
			c.UDPWorkers = 4
		}
	}
	if c.UDPQueue <= 0 {
		c.UDPQueue = DefaultUDPQueue
	}
	if c.MaxTCPConns <= 0 {
		c.MaxTCPConns = DefaultMaxTCPConns
	}
	if c.TCPIdleTimeout <= 0 {
		c.TCPIdleTimeout = DefaultTCPIdleTimeout
	}
}

// Frontend is the paper's "standard-compatible DNS-resolver interface": a
// plain-DNS server (UDP with EDNS-aware truncation, plus persistent-
// connection TCP per RFC 7766) whose answers come from the consensus
// backend. Legacy applications point their stub resolver at it and
// transparently receive consensus-backed pools. UDP datagrams are served
// by a bounded worker pool and TCP by a bounded connection pool, so a
// query flood degrades by shedding load instead of by unbounded goroutine
// growth.
type Frontend struct {
	backend Backend
	cfg     FrontendConfig
	inst    frontendInstruments
	conn    *net.UDPConn
	tcpLn   net.Listener

	packets chan udpPacket

	closed atomic.Bool
	wg     sync.WaitGroup

	tcpMu    sync.Mutex
	tcpConns map[net.Conn]struct{}

	served   atomic.Uint64
	failures atomic.Uint64
	dropped  atomic.Uint64
}

type udpPacket struct {
	wire   []byte
	client *net.UDPAddr
}

// NewFrontend starts the frontend on addr ("127.0.0.1:0" for ephemeral)
// with default worker-pool sizing; the same port serves UDP and TCP.
// timeout bounds each pool generation (default 5 s).
func NewFrontend(addr string, backend Backend, timeout time.Duration) (*Frontend, error) {
	return NewFrontendWithConfig(addr, backend, FrontendConfig{Timeout: timeout})
}

// NewFrontendWithConfig starts the frontend on addr with explicit tuning.
func NewFrontendWithConfig(addr string, backend Backend, cfg FrontendConfig) (*Frontend, error) {
	cfg.setDefaults()
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, tcpLn, err := listenSamePort(udpAddr)
	if err != nil {
		return nil, err
	}
	f := &Frontend{
		backend:  backend,
		cfg:      cfg,
		inst:     newFrontendInstruments(cfg.Metrics),
		conn:     conn,
		tcpLn:    tcpLn,
		packets:  make(chan udpPacket, cfg.UDPQueue),
		tcpConns: make(map[net.Conn]struct{}),
	}
	f.wg.Add(2 + cfg.UDPWorkers)
	go f.readUDP()
	for i := 0; i < cfg.UDPWorkers; i++ {
		go f.udpWorker()
	}
	go f.serveTCP()
	return f, nil
}

// listenSamePort binds UDP and TCP to one port number. With an ephemeral
// request (port 0) the kernel picks the UDP port without regard for TCP,
// so the TCP bind can collide with an unrelated listener — retry with a
// fresh UDP port instead of failing startup.
func listenSamePort(udpAddr *net.UDPAddr) (*net.UDPConn, net.Listener, error) {
	const attempts = 5
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.ListenUDP("udp", udpAddr)
		if err != nil {
			return nil, nil, err
		}
		tcpLn, err := net.Listen("tcp", conn.LocalAddr().String())
		if err == nil {
			return conn, tcpLn, nil
		}
		lastErr = err
		conn.Close()
		if udpAddr.Port != 0 {
			break // a fixed port will not change on retry
		}
	}
	return nil, nil, lastErr
}

// Addr returns the frontend's host:port.
func (f *Frontend) Addr() string { return f.conn.LocalAddr().String() }

// Served returns the number of queries answered.
func (f *Frontend) Served() uint64 { return f.served.Load() }

// Failures returns the number of queries that ended in an error RCode.
func (f *Frontend) Failures() uint64 { return f.failures.Load() }

// Dropped returns the number of UDP datagrams shed because the worker
// queue was full.
func (f *Frontend) Dropped() uint64 { return f.dropped.Load() }

// Close stops the frontend and waits for in-flight handlers.
func (f *Frontend) Close() error {
	if f.closed.Swap(true) {
		return ErrFrontendClosed
	}
	f.conn.Close()
	f.tcpLn.Close()
	f.tcpMu.Lock()
	for c := range f.tcpConns {
		c.Close()
	}
	f.tcpMu.Unlock()
	f.wg.Wait()
	return nil
}

// readUDP is the single reader loop feeding the bounded worker pool.
func (f *Frontend) readUDP() {
	defer f.wg.Done()
	defer close(f.packets)
	buf := make([]byte, dnswire.MaxMessageSize)
	for {
		n, client, err := f.conn.ReadFromUDP(buf)
		if err != nil {
			if f.closed.Load() {
				return
			}
			continue
		}
		wire := make([]byte, n)
		copy(wire, buf[:n])
		select {
		case f.packets <- udpPacket{wire: wire, client: client}:
		default:
			// Queue full: shed load. The stub resolver retries, and by
			// then the answer is usually a cache hit.
			f.dropped.Add(1)
			f.inst.dropped.Inc()
		}
	}
}

func (f *Frontend) udpWorker() {
	defer f.wg.Done()
	for pkt := range f.packets {
		f.handleUDP(pkt.wire, pkt.client)
	}
}

func (f *Frontend) serveTCP() {
	defer f.wg.Done()
	// sem bounds concurrently served connections; acquiring before Accept
	// applies backpressure in the kernel's accept queue instead of holding
	// accepted-but-unserved sockets.
	sem := make(chan struct{}, f.cfg.MaxTCPConns)
	for {
		sem <- struct{}{}
		conn, err := f.tcpLn.Accept()
		if err != nil {
			<-sem
			if f.closed.Load() {
				return
			}
			continue
		}
		f.trackTCP(conn, true)
		// Re-check after tracking: Close may have swept tcpConns between
		// Accept and trackTCP, in which case this conn escaped the sweep
		// and must be closed here.
		if f.closed.Load() {
			conn.Close()
			f.trackTCP(conn, false)
			<-sem
			return
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer func() { <-sem }()
			defer f.trackTCP(conn, false)
			defer conn.Close()
			f.serveTCPConn(conn)
		}()
	}
}

func (f *Frontend) trackTCP(conn net.Conn, add bool) {
	f.tcpMu.Lock()
	defer f.tcpMu.Unlock()
	if add {
		f.tcpConns[conn] = struct{}{}
	} else {
		delete(f.tcpConns, conn)
	}
	f.inst.tcpConns.Set(float64(len(f.tcpConns)))
}

// serveTCPConn answers queries on one RFC 7766 persistent connection
// until the peer disconnects or goes idle.
func (f *Frontend) serveTCPConn(conn net.Conn) {
	for {
		_ = conn.SetReadDeadline(time.Now().Add(f.cfg.TCPIdleTimeout))
		query, err := transport.ReadTCPMessage(conn)
		if err != nil {
			return
		}
		resp := f.respond(query, f.inst.tcpQueries)
		if err := transport.WriteTCPMessage(conn, resp); err != nil {
			return
		}
	}
}

func (f *Frontend) handleUDP(wire []byte, client *net.UDPAddr) {
	query, err := dnswire.Decode(wire)
	if err != nil {
		return // drop undecodable datagrams
	}
	resp := f.respond(query, f.inst.udpQueries)

	// Honour the client's advertised UDP payload size; flag truncation so
	// the stub retries over TCP (RFC 1035 §4.2.1 behaviour).
	maxSize := dnswire.MaxUDPSize
	if size, ok := query.EDNSSize(); ok && int(size) > maxSize {
		maxSize = int(size)
	}
	respWire, err := resp.Encode()
	if err != nil {
		return
	}
	if len(respWire) > maxSize {
		truncated := resp.Copy()
		truncated.Answers = nil
		truncated.Authority = nil
		truncated.Additional = nil
		truncated.Header.Truncated = true
		if respWire, err = truncated.Encode(); err != nil {
			return
		}
	}
	_, _ = f.conn.WriteToUDP(respWire, client)
}

// respond builds the DNS answer for one query from the consensus
// backend; queries is the per-transport counter of the path that
// received it.
func (f *Frontend) respond(query *dnswire.Message, queries *metrics.Counter) *dnswire.Message {
	queries.Inc()
	f.inst.inflight.Inc()
	defer f.inst.inflight.Dec()
	if query.Header.Response || query.Header.Opcode != dnswire.OpcodeQuery || len(query.Questions) != 1 {
		f.failures.Add(1)
		return f.errorResponse(query, dnswire.RCodeFormErr)
	}
	q := query.Questions[0]
	if q.Type != dnswire.TypeA && q.Type != dnswire.TypeAAAA {
		// The mechanism is specific to server-pool generation, which only
		// supports address lookups (paper §II).
		f.failures.Add(1)
		return f.errorResponse(query, dnswire.RCodeNotImp)
	}

	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.Timeout)
	defer cancel()
	pool, err := f.backend.Lookup(ctx, q.Name, q.Type)
	if err != nil {
		f.failures.Add(1)
		return f.errorResponse(query, dnswire.RCodeServFail)
	}

	resp := dnswire.NewResponse(query)
	resp.Header.RecursionAvailable = true
	addrs := pool.Addrs
	if f.backend.ServeMajority() {
		addrs = pool.Majority
	}
	ttl := pool.TTL
	if ttl == 0 {
		ttl = DefaultPoolTTL
	}
	for _, a := range addrs {
		resp.Answers = append(resp.Answers, dnswire.AddressRecord(q.Name, a, ttl))
	}
	f.served.Add(1)
	f.inst.rcode(dnswire.RCodeSuccess).Inc()
	return resp
}

// errorResponse builds an error answer and counts its response code.
func (f *Frontend) errorResponse(query *dnswire.Message, rcode dnswire.RCode) *dnswire.Message {
	f.inst.rcode(rcode).Inc()
	return dnswire.NewErrorResponse(query, rcode)
}
