package core

import (
	"context"
	"crypto/tls"
	"errors"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/metrics"
	"dohpool/internal/reuseport"
	"dohpool/internal/transport"
	"dohpool/internal/udpbatch"
)

// ErrFrontendClosed is returned by methods on a closed Frontend.
var ErrFrontendClosed = errors.New("dns frontend closed")

// Frontend defaults.
const (
	// DefaultUDPQueue bounds datagrams waiting for a worker; beyond it the
	// frontend sheds load by dropping (the stub retries).
	DefaultUDPQueue = 1024
	// DefaultMaxTCPConns bounds concurrently served TCP connections
	// (RFC 7766 §6.2.2 advises limiting per-server connection load).
	DefaultMaxTCPConns = 256
	// DefaultTCPIdleTimeout closes a TCP connection with no query activity
	// (RFC 7766 §6.2.3 idle session handling).
	DefaultTCPIdleTimeout = 10 * time.Second
)

// Backend answers pool lookups for the frontend. Both the one-shot
// Generator and the long-lived Engine implement it.
type Backend interface {
	Lookup(ctx context.Context, domain string, typ dnswire.Type) (*Pool, error)
	// ServeMajority selects whether answers carry the majority-filtered
	// set instead of the full pool.
	ServeMajority() bool
}

// FrontendConfig tunes the DNS frontend's serving behaviour.
type FrontendConfig struct {
	// Timeout bounds one pool generation (default 5s).
	Timeout time.Duration
	// UDPWorkers is the size of the bounded UDP worker pool.
	// 0 uses 2×GOMAXPROCS (minimum 4).
	UDPWorkers int
	// UDPQueue bounds datagrams queued for workers (default
	// DefaultUDPQueue); the frontend drops excess instead of buffering
	// without bound.
	UDPQueue int
	// UDPBatch is how many datagrams one reader syscall may move via
	// recvmmsg/sendmmsg on platforms that support it (Linux amd64/arm64).
	// 0 uses udpbatch.DefaultBatch; 1 forces the portable one-datagram-
	// per-syscall path everywhere. Batching only changes syscall
	// amortisation, never per-query semantics.
	UDPBatch int
	// UDPSockets is how many SO_REUSEPORT UDP sockets share the serving
	// port, each with its own reader loop, batch state and buffers —
	// kernel flow steering spreads inbound load across them with no
	// shared lock or channel on the fast path. 0 sizes from NumCPU;
	// 1 is classic single-socket serving. On platforms without
	// SO_REUSEPORT (anything but Linux) the value is clamped to 1.
	// Per-query semantics never change: every socket serves the same
	// wire cache and feeds the same worker pool.
	UDPSockets int
	// MaxTCPConns bounds concurrently served TCP connections (default
	// DefaultMaxTCPConns).
	MaxTCPConns int
	// TCPIdleTimeout closes idle TCP connections (default
	// DefaultTCPIdleTimeout).
	TCPIdleTimeout time.Duration
	// DoTAddr, when non-empty, additionally serves DNS over TLS
	// (RFC 7858) on this address ("127.0.0.1:0" for ephemeral). The DoT
	// listener is the plain RFC 7766 TCP loop behind a TLS handshake, so
	// MaxTCPConns and TCPIdleTimeout apply to it unchanged. Requires
	// TLSConfig.
	DoTAddr string
	// DoHAddr, when non-empty, additionally serves DNS over HTTPS
	// (RFC 8484, HTTP/2 via TLS ALPN) on this address at
	// doh.DefaultPath. Requires TLSConfig.
	DoHAddr string
	// TLSConfig carries the server identity presented by the DoT and
	// DoH listeners; required when either encrypted address is set.
	TLSConfig *tls.Config
	// Metrics, when non-nil, receives the frontend's instruments (queries
	// per transport, response codes, in-flight queries, TCP connections,
	// shed datagrams).
	Metrics *metrics.Registry
}

func (c *FrontendConfig) setDefaults() {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.UDPWorkers <= 0 {
		c.UDPWorkers = 2 * runtime.GOMAXPROCS(0)
		if c.UDPWorkers < 4 {
			c.UDPWorkers = 4
		}
	}
	if c.UDPQueue <= 0 {
		c.UDPQueue = DefaultUDPQueue
	}
	if c.UDPSockets <= 0 {
		c.UDPSockets = runtime.NumCPU()
	}
	if !reuseport.Supported {
		c.UDPSockets = 1
	}
	if c.MaxTCPConns <= 0 {
		c.MaxTCPConns = DefaultMaxTCPConns
	}
	if c.TCPIdleTimeout <= 0 {
		c.TCPIdleTimeout = DefaultTCPIdleTimeout
	}
}

// Frontend is the paper's "standard-compatible DNS-resolver interface": a
// plain-DNS server (UDP with EDNS-aware truncation, plus persistent-
// connection TCP per RFC 7766) whose answers come from the consensus
// backend. Legacy applications point their stub resolver at it and
// transparently receive consensus-backed pools. UDP datagrams are served
// by a bounded worker pool and TCP by a bounded connection pool, so a
// query flood degrades by shedding load instead of by unbounded goroutine
// growth.
//
// With FrontendConfig.DoTAddr / DoHAddr set, the same backend
// additionally serves DNS over TLS (RFC 7858) and DNS over HTTPS
// (RFC 8484) — closing the gap where consensus-validated pools were
// re-exposed to off-path spoofing on the serving hop. All listeners
// answer from the same engine cache: a domain warmed over any transport
// is a cache hit on every other.
type Frontend struct {
	backend Backend
	wire    wireBackend // backend's fast-path extension; nil when absent
	cfg     FrontendConfig
	inst    frontendInstruments
	socks   []*udpSocket // SO_REUSEPORT siblings on one port; len 1 without reuseport
	tcpLn   net.Listener
	dotLn   net.Listener // nil unless DoTAddr was set
	dohLn   net.Listener // nil unless DoHAddr was set
	dohSrv  *http.Server // nil unless DoHAddr was set

	packets chan *udpPacket
	pktPool sync.Pool
	// streamPool recycles the per-connection scratch (read buffer, key
	// scratch, response copy target) the stream fast path serves from.
	streamPool sync.Pool

	closed atomic.Bool
	wg     sync.WaitGroup
	// readerWG tracks the per-socket UDP reader loops; the last one out
	// closes the worker queue.
	readerWG sync.WaitGroup

	// Per-connection stream tracking, taken on every accept and close.
	//dohlint:hotlock
	tcpMu    sync.Mutex
	tcpConns map[net.Conn]struct{}

	served   atomic.Uint64
	failures atomic.Uint64
	dropped  atomic.Uint64
}

// udpSocket is one of the frontend's SO_REUSEPORT UDP sockets: the
// socket itself, its batch I/O state, and its pre-resolved counters.
// Each socket is owned by exactly one reader goroutine, so the batch
// state needs no locking; the kernel steers every client flow to a
// consistent socket, so slow-path replies also leave through the socket
// that read the query (the worker writes via pkt.sock).
type udpSocket struct {
	conn  *net.UDPConn
	uconn *udpbatch.Conn
	inst  udpSocketInstruments
}

// udpPacket is one pooled datagram: a fixed buffer, the peer address
// (filled in place by the batch reader, so its IP backing never
// reallocates) and the udpbatch view over both. The fast path reuses
// the query buffer for the response; the slow path reads the query out
// of it and sends its own encoded response. Invariant: dg.Buf always
// spans buf and dg.Addr always points at addr, so a packet can cycle
// through the pool indefinitely.
type udpPacket struct {
	dg   udpbatch.Datagram
	addr net.UDPAddr
	// sock is the socket whose reader pulled this packet, so the slow
	// path answers through the same socket (flow affinity preserved).
	sock *udpSocket
	buf  [udpPacketBuf]byte
	// key is answerWire's cache-key scratch. It lives here rather than on
	// answerWire's stack because the key slice crosses the wireBackend
	// interface boundary, which defeats escape analysis and would turn
	// every fast-path datagram into a heap allocation.
	key [wireKeyMax]byte
}

func newUDPPacket() *udpPacket {
	p := &udpPacket{}
	p.addr.IP = make(net.IP, 0, 16)
	p.dg.Buf = p.buf[:]
	p.dg.Addr = &p.addr
	return p
}

func (f *Frontend) getPacket() *udpPacket  { return f.pktPool.Get().(*udpPacket) }
func (f *Frontend) putPacket(p *udpPacket) { f.pktPool.Put(p) }

// NewFrontend starts the frontend on addr ("127.0.0.1:0" for ephemeral)
// with default worker-pool sizing; the same port serves UDP and TCP.
// timeout bounds each pool generation (default 5 s).
func NewFrontend(addr string, backend Backend, timeout time.Duration) (*Frontend, error) {
	return NewFrontendWithConfig(addr, backend, FrontendConfig{Timeout: timeout})
}

// NewFrontendWithConfig starts the frontend on addr with explicit tuning.
func NewFrontendWithConfig(addr string, backend Backend, cfg FrontendConfig) (*Frontend, error) {
	cfg.setDefaults()
	if (cfg.DoTAddr != "" || cfg.DoHAddr != "") && cfg.TLSConfig == nil {
		return nil, errors.New("frontend: DoTAddr/DoHAddr require a TLSConfig server identity")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conns, tcpLn, err := listenSamePort(udpAddr, cfg.UDPSockets)
	if err != nil {
		return nil, err
	}
	f := &Frontend{
		backend:  backend,
		cfg:      cfg,
		inst:     newFrontendInstruments(cfg.Metrics, cfg.DoTAddr != "", cfg.DoHAddr != "", len(conns)),
		socks:    make([]*udpSocket, len(conns)),
		tcpLn:    tcpLn,
		packets:  make(chan *udpPacket, cfg.UDPQueue),
		tcpConns: make(map[net.Conn]struct{}),
	}
	for i, conn := range conns {
		uconn, err := udpbatch.New(conn, cfg.UDPBatch)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			tcpLn.Close()
			return nil, err
		}
		f.socks[i] = &udpSocket{conn: conn, uconn: uconn, inst: f.inst.udpSockets[i]}
	}
	f.wire, _ = backend.(wireBackend)
	f.pktPool.New = func() any { return newUDPPacket() }
	f.streamPool.New = func() any { return &streamScratch{} }
	if cfg.DoTAddr != "" {
		// RFC 7858 is the RFC 7766 message stream behind a TLS
		// handshake: wrap the listener and reuse the TCP serving loop
		// (same MaxTCPConns bound, same idle timeout) unchanged. No ALPN
		// list — DoT predates mandatory ALPN, and a server that insists
		// on "dot" rejects stubs that offer nothing (or h2-configured
		// test clients); with none configured every offer is accepted.
		inner, err := net.Listen("tcp", cfg.DoTAddr)
		if err != nil {
			f.closeListeners()
			return nil, err
		}
		f.dotLn = tls.NewListener(inner, tlsWithALPN(cfg.TLSConfig))
	}
	if cfg.DoHAddr != "" {
		ln, err := net.Listen("tcp", cfg.DoHAddr)
		if err != nil {
			f.closeListeners()
			return nil, err
		}
		// The DoH listener gets the same MaxTCPConns budget the other
		// stream listeners enforce via serveStream's semaphore —
		// http.Server spawns a goroutine per accepted conn, so an
		// unbounded Accept would reopen exactly the unbounded-growth
		// failure mode the frontend exists to prevent.
		f.dohLn = newLimitListener(ln, f.cfg.MaxTCPConns)
		mux := http.NewServeMux()
		dohHandler := doh.NewHandler(frontendResponder{f})
		// Wire-cache hit path: answered from the raw query bytes before
		// the message decoder runs, same bytes the UDP/TCP fast paths
		// serve. Padded or otherwise EDNS-optioned queries fall through
		// so the slow path can honour RFC 8467 response padding.
		dohHandler.Wire = f.answerDoHWire
		mux.Handle(doh.DefaultPath, dohHandler)
		f.dohSrv = &http.Server{
			Handler:           mux,
			TLSConfig:         tlsWithALPN(cfg.TLSConfig, "h2", "http/1.1"),
			ReadHeaderTimeout: 5 * time.Second,
			// Idle keep-alive conns must not pin their limit-listener
			// slot forever — same idle semantics as the TCP/DoT loops.
			IdleTimeout: cfg.TCPIdleTimeout,
			// TLS probes and handshake failures are expected noise on an
			// exposed listener; keep them out of the process log.
			ErrorLog: log.New(io.Discard, "", 0),
			ConnState: func(_ net.Conn, state http.ConnState) {
				switch state {
				case http.StateNew:
					f.inst.doh.conns.Inc()
				case http.StateClosed, http.StateHijacked:
					f.inst.doh.conns.Dec()
				}
			},
		}
	}
	f.wg.Add(2 + len(f.socks) + cfg.UDPWorkers)
	f.readerWG.Add(len(f.socks))
	for _, s := range f.socks {
		go f.readUDP(s)
	}
	go func() {
		// The worker queue has many producers now; it closes when the
		// last reader exits, not when any one of them does.
		defer f.wg.Done()
		f.readerWG.Wait()
		close(f.packets)
	}()
	for i := 0; i < cfg.UDPWorkers; i++ {
		go f.udpWorker()
	}
	go f.serveStream(f.tcpLn, &f.inst.tcp)
	if f.dotLn != nil {
		f.wg.Add(1)
		go f.serveStream(f.dotLn, &f.inst.dot)
	}
	if f.dohSrv != nil {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			_ = f.dohSrv.ServeTLS(f.dohLn, "", "")
		}()
	}
	return f, nil
}

// tlsWithALPN clones cfg with the given ALPN protocol list (cfg itself
// is shared between the DoT and DoH listeners, which advertise
// different protocols; no arguments means accept any offer).
func tlsWithALPN(cfg *tls.Config, protos ...string) *tls.Config {
	out := cfg.Clone()
	out.NextProtos = protos
	return out
}

// closeListeners releases whatever listeners a partially constructed
// frontend has bound (startup error paths only).
func (f *Frontend) closeListeners() {
	for _, s := range f.socks {
		s.conn.Close()
	}
	f.tcpLn.Close()
	if f.dotLn != nil {
		f.dotLn.Close()
	}
	if f.dohLn != nil {
		f.dohLn.Close()
	}
}

// limitListener bounds concurrently accepted connections: Accept blocks
// while the budget is exhausted (backpressure in the kernel's accept
// queue, same as serveStream's semaphore) and a slot is released when
// the accepted connection closes.
type limitListener struct {
	net.Listener
	sem chan struct{}
}

func newLimitListener(ln net.Listener, n int) *limitListener {
	return &limitListener{Listener: ln, sem: make(chan struct{}, n)}
}

// Accept implements net.Listener.
func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	conn, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitConn{Conn: conn, release: func() { <-l.sem }}, nil
}

// limitConn releases its listener slot exactly once on first Close.
type limitConn struct {
	net.Conn
	once    sync.Once
	release func()
}

// Close implements net.Conn.
func (c *limitConn) Close() error {
	c.once.Do(c.release)
	return c.Conn.Close()
}

// frontendResponder adapts the frontend's backend-answering path to
// doh.QueryResponder, so the DoH listener reuses the exact RFC 8484
// handler (media types, padding, Cache-Control from the pool TTL) that
// the upstream resolvers are queried with.
type frontendResponder struct{ f *Frontend }

// Respond implements doh.QueryResponder. The request context rides
// along so an abandoned HTTP request stops driving the backend and
// Close's drain can cancel in-flight handlers with their connections.
func (r frontendResponder) Respond(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	return r.f.respond(ctx, query, &r.f.inst.doh), nil
}

// listenSamePort binds sockets UDP sockets and one TCP listener to one
// port number. With an ephemeral request (port 0) the kernel picks the
// UDP port without regard for TCP, so the TCP bind can collide with an
// unrelated listener — retry with a fresh UDP port instead of failing
// startup. With sockets > 1 every UDP socket (including the first) is
// bound with SO_REUSEPORT — the option must be on all of a port's
// sockets for the kernel to admit the shared bind; the siblings bind
// the port the first socket resolved, which cannot collide because the
// first socket already owns it with the same option.
func listenSamePort(udpAddr *net.UDPAddr, sockets int) ([]*net.UDPConn, net.Listener, error) {
	const attempts = 5
	listenFirst := func() (*net.UDPConn, error) {
		if sockets > 1 {
			return reuseport.ListenUDP("udp", udpAddr.String())
		}
		return net.ListenUDP("udp", udpAddr)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		first, err := listenFirst()
		if err != nil {
			return nil, nil, err
		}
		resolved := first.LocalAddr().String()
		tcpLn, err := net.Listen("tcp", resolved)
		if err != nil {
			lastErr = err
			first.Close()
			if udpAddr.Port != 0 {
				break // a fixed port will not change on retry
			}
			continue
		}
		conns := []*net.UDPConn{first}
		for len(conns) < sockets {
			c, err := reuseport.ListenUDP("udp", resolved)
			if err != nil {
				for _, cc := range conns {
					cc.Close()
				}
				tcpLn.Close()
				return nil, nil, err
			}
			conns = append(conns, c)
		}
		return conns, tcpLn, nil
	}
	return nil, nil, lastErr
}

// Addr returns the frontend's plain-DNS host:port (UDP and TCP).
func (f *Frontend) Addr() string { return f.socks[0].conn.LocalAddr().String() }

// UDPSockets returns how many SO_REUSEPORT UDP sockets are serving the
// plain-DNS port (1 on platforms without SO_REUSEPORT).
func (f *Frontend) UDPSockets() int { return len(f.socks) }

// DoTAddr returns the DoT listener's host:port, or "" when DoT serving
// is disabled.
func (f *Frontend) DoTAddr() string {
	if f.dotLn == nil {
		return ""
	}
	return f.dotLn.Addr().String()
}

// DoHAddr returns the DoH listener's host:port, or "" when DoH serving
// is disabled.
func (f *Frontend) DoHAddr() string {
	if f.dohLn == nil {
		return ""
	}
	return f.dohLn.Addr().String()
}

// ListenerInfo describes one live serving listener for introspection
// (the admin server's /healthz and /poolz endpoints).
type ListenerInfo struct {
	// Proto is the transport label: "udp", "tcp", "dot" or "doh".
	Proto string `json:"proto"`
	// Addr is the listener's host:port.
	Addr string `json:"addr"`
	// Encrypted reports whether the transport authenticates the channel
	// (the paper's requirement for every hop).
	Encrypted bool `json:"encrypted"`
}

// Listeners reports every transport the frontend is currently serving.
func (f *Frontend) Listeners() []ListenerInfo {
	out := []ListenerInfo{
		{Proto: ProtoUDP, Addr: f.Addr()},
		{Proto: ProtoTCP, Addr: f.tcpLn.Addr().String()},
	}
	if f.dotLn != nil {
		out = append(out, ListenerInfo{Proto: ProtoDoT, Addr: f.DoTAddr(), Encrypted: true})
	}
	if f.dohLn != nil {
		out = append(out, ListenerInfo{Proto: ProtoDoH, Addr: f.DoHAddr(), Encrypted: true})
	}
	return out
}

// Served returns the number of queries answered.
func (f *Frontend) Served() uint64 { return f.served.Load() }

// Failures returns the number of queries that ended in an error RCode.
func (f *Frontend) Failures() uint64 { return f.failures.Load() }

// Dropped returns the number of UDP datagrams shed because the worker
// queue was full.
func (f *Frontend) Dropped() uint64 { return f.dropped.Load() }

// Close stops the frontend and waits for in-flight handlers.
func (f *Frontend) Close() error {
	if f.closed.Swap(true) {
		return ErrFrontendClosed
	}
	for _, s := range f.socks {
		s.conn.Close()
	}
	f.tcpLn.Close()
	if f.dotLn != nil {
		f.dotLn.Close()
	}
	if f.dohSrv != nil {
		// Shutdown drains in-flight DoH handlers (closing idle conns
		// immediately), matching the wg.Wait drain the TCP/DoT conns
		// get below; the deadline bounds it by the same per-query
		// timeout a handler can spend in the backend, with Close as the
		// backstop for peers that hold streams open past it.
		ctx, cancel := context.WithTimeout(context.Background(), f.cfg.Timeout)
		_ = f.dohSrv.Shutdown(ctx)
		cancel()
		_ = f.dohSrv.Close()
	}
	f.tcpMu.Lock()
	for c := range f.tcpConns {
		c.Close()
	}
	f.tcpMu.Unlock()
	f.wg.Wait()
	return nil
}

// readUDP is one socket's reader loop; with SO_REUSEPORT serving there
// is one per socket, each fully independent — own batch arrays, own
// pooled packets, own sendmmsg flush — so nothing is locked or shared
// between sockets on the fast path. Each pass moves up to one batch of
// datagrams in one recvmmsg, serves every wire-cache hit inline (the
// answer is built in the packet's own buffer, so a cached hit is a
// memcpy plus an ID/flags/TTL patch with zero allocations and no
// goroutine handoff), flushes all inline answers in one sendmmsg, and
// hands everything else to the bounded worker pool shared by all
// sockets. On platforms without the batch syscalls — or with UDPBatch
// 1 — the same loop runs with a batch of one datagram per portable
// syscall. Packets served inline never leave their batch slots, so the
// steady-state hot path recycles the same buffers forever; only
// slow-path packets cycle through the pool (fixing the old reader's
// per-datagram buffer + address allocation pair).
func (f *Frontend) readUDP(s *udpSocket) {
	defer f.wg.Done()
	defer f.readerWG.Done()
	batch := s.uconn.BatchSize()
	pkts := make([]*udpPacket, batch)
	dgs := make([]*udpbatch.Datagram, batch)
	for i := range pkts {
		pkts[i] = f.getPacket()
		pkts[i].sock = s
		dgs[i] = &pkts[i].dg
	}
	out := make([]*udpbatch.Datagram, 0, batch)
	for {
		n, err := s.uconn.ReadBatch(dgs)
		if err != nil {
			if f.closed.Load() {
				return
			}
			continue
		}
		s.inst.packets.Add(uint64(n))
		out = out[:0]
		for i := 0; i < n; i++ {
			pkt := pkts[i]
			if f.answerWire(pkt) {
				out = append(out, &pkt.dg)
				continue
			}
			select {
			case f.packets <- pkt:
				// The worker owns pkt now; restock the batch slot.
				np := f.getPacket()
				np.sock = s
				pkts[i] = np
				dgs[i] = &np.dg
			default:
				// Queue full: shed load. The stub resolver retries, and
				// by then the answer is usually a wire-cache hit.
				f.dropped.Add(1)
				f.inst.dropped.Inc()
				s.inst.drops.Inc()
			}
		}
		f.writeUDPBatch(s, out)
	}
}

// writeUDPBatch flushes a reader's inline answers through its own
// socket, counting (and skipping past) per-datagram send failures so
// one bad peer address cannot stall the batch.
//
//dohlint:noalloc
func (f *Frontend) writeUDPBatch(s *udpSocket, out []*udpbatch.Datagram) {
	for off := 0; off < len(out); {
		sent, err := s.uconn.WriteBatch(out[off:])
		off += sent
		if err != nil {
			if f.closed.Load() {
				return
			}
			f.inst.udp.writeErrs.Inc()
			off++
		}
	}
}

func (f *Frontend) udpWorker() {
	defer f.wg.Done()
	for pkt := range f.packets {
		f.handleUDP(pkt)
		f.putPacket(pkt)
	}
}

// serveStream is the RFC 7766 accept loop, shared by the plain TCP and
// the DoT listener (whose conns arrive TLS-wrapped but speak the same
// length-prefixed message stream). inst is the listener's per-protocol
// instrument set.
func (f *Frontend) serveStream(ln net.Listener, inst *protoInstruments) {
	defer f.wg.Done()
	// sem bounds concurrently served connections; acquiring before Accept
	// applies backpressure in the kernel's accept queue instead of holding
	// accepted-but-unserved sockets. Each stream listener gets its own
	// MaxTCPConns budget, so a flood on one transport cannot starve the
	// other.
	sem := make(chan struct{}, f.cfg.MaxTCPConns)
	for {
		sem <- struct{}{}
		conn, err := ln.Accept()
		if err != nil {
			<-sem
			if f.closed.Load() {
				return
			}
			continue
		}
		f.trackStream(conn, inst, true)
		// Re-check after tracking: Close may have swept tcpConns between
		// Accept and trackStream, in which case this conn escaped the
		// sweep and must be closed here.
		if f.closed.Load() {
			conn.Close()
			f.trackStream(conn, inst, false)
			<-sem
			return
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer func() { <-sem }()
			defer f.trackStream(conn, inst, false)
			defer conn.Close()
			f.serveStreamConn(conn, inst)
		}()
	}
}

func (f *Frontend) trackStream(conn net.Conn, inst *protoInstruments, add bool) {
	f.tcpMu.Lock()
	defer f.tcpMu.Unlock()
	if add {
		f.tcpConns[conn] = struct{}{}
		inst.conns.Inc()
	} else if _, ok := f.tcpConns[conn]; ok {
		delete(f.tcpConns, conn)
		inst.conns.Dec()
	}
}

// serveStreamConn answers queries on one RFC 7766 persistent connection
// (plain TCP or DoT) until the peer disconnects or goes idle. On a DoT
// connection the first read also drives the TLS handshake, so the idle
// deadline bounds handshake time too. With a wire-capable backend the
// connection is served by the zero-alloc fast loop in frontend_stream.go;
// without one (bare Generator backends) it falls back to the classic
// decode-respond-encode loop.
func (f *Frontend) serveStreamConn(conn net.Conn, inst *protoInstruments) {
	if f.wire != nil {
		f.serveStreamConnFast(conn, inst)
		return
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(f.cfg.TCPIdleTimeout))
		query, err := transport.ReadTCPMessage(conn)
		if err != nil {
			return
		}
		if !f.respondStream(conn, query, inst) {
			return
		}
	}
}

// respondStream runs one slow-path query/response exchange on a stream
// connection, reporting whether the connection is still good for more.
func (f *Frontend) respondStream(conn net.Conn, query *dnswire.Message, inst *protoInstruments) bool {
	resp := f.respond(context.Background(), query, inst)
	if err := transport.WriteTCPMessage(conn, resp); err != nil {
		if !f.closed.Load() {
			inst.writeErrs.Inc()
		}
		return false
	}
	return true
}

// handleUDP is the slow path for one queued datagram: full decode,
// backend lookup, encode, truncation. The reply leaves through the
// socket whose reader pulled the query (pkt.sock), preserving the
// kernel's flow→socket affinity for the peer.
func (f *Frontend) handleUDP(pkt *udpPacket) {
	wire, client := pkt.dg.Buf[:pkt.dg.N], &pkt.addr
	query, err := dnswire.Decode(wire)
	if err != nil {
		return // drop undecodable datagrams
	}
	resp := f.respond(context.Background(), query, &f.inst.udp)

	// Honour the client's advertised UDP payload size; flag truncation so
	// the stub retries over TCP (RFC 1035 §4.2.1 behaviour).
	maxSize := dnswire.MaxUDPSize
	if size, ok := query.EDNSSize(); ok && int(size) > maxSize {
		maxSize = int(size)
	}
	respWire, err := resp.Encode()
	if err != nil {
		return
	}
	if len(respWire) > maxSize {
		truncated := resp.Copy()
		truncated.Answers = nil
		truncated.Authority = nil
		truncated.Additional = nil
		truncated.Header.Truncated = true
		if respWire, err = truncated.Encode(); err != nil {
			return
		}
	}
	if _, err := pkt.sock.conn.WriteToUDP(respWire, client); err != nil && !f.closed.Load() {
		f.inst.udp.writeErrs.Inc()
	}
}

// respond builds the DNS answer for one query from the consensus
// backend; inst is the per-transport instrument set of the path that
// received it, and parent bounds the lookup alongside cfg.Timeout
// (the DoH path passes its request context; the datagram/stream paths
// have no per-query context and pass Background).
func (f *Frontend) respond(parent context.Context, query *dnswire.Message, inst *protoInstruments) *dnswire.Message {
	inst.queries.Inc()
	inst.inflight.Inc()
	start := time.Now()
	defer func() {
		inst.latency.Observe(time.Since(start).Seconds())
		inst.inflight.Dec()
	}()
	if query.Header.Response || query.Header.Opcode != dnswire.OpcodeQuery || len(query.Questions) != 1 {
		f.failures.Add(1)
		return f.errorResponse(query, dnswire.RCodeFormErr)
	}
	q := query.Questions[0]
	if q.Type != dnswire.TypeA && q.Type != dnswire.TypeAAAA {
		// The mechanism is specific to server-pool generation, which only
		// supports address lookups (paper §II).
		f.failures.Add(1)
		return f.errorResponse(query, dnswire.RCodeNotImp)
	}

	ctx, cancel := context.WithTimeout(parent, f.cfg.Timeout)
	defer cancel()
	pool, err := f.backend.Lookup(ctx, q.Name, q.Type)
	if err != nil {
		f.failures.Add(1)
		return f.errorResponse(query, dnswire.RCodeServFail)
	}

	resp := dnswire.NewResponse(query)
	resp.Header.RecursionAvailable = true
	addrs := pool.Addrs
	if f.backend.ServeMajority() {
		addrs = pool.Majority
	}
	ttl := pool.TTL
	if ttl == 0 {
		ttl = DefaultPoolTTL
	}
	for _, a := range addrs {
		resp.Answers = append(resp.Answers, dnswire.AddressRecord(q.Name, a, ttl))
	}
	f.served.Add(1)
	f.inst.rcode(dnswire.RCodeSuccess).Inc()
	return resp
}

// errorResponse builds an error answer and counts its response code.
func (f *Frontend) errorResponse(query *dnswire.Message, rcode dnswire.RCode) *dnswire.Message {
	f.inst.rcode(rcode).Inc()
	return dnswire.NewErrorResponse(query, rcode)
}
