package core

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/metrics"
)

// swapQuerier is a staticQuerier whose answer lists can be replaced
// between generations (for invalidation tests), guarded for the
// engine's background refresh goroutines.
type swapQuerier struct {
	mu    sync.Mutex
	lists map[string][]netip.Addr
}

func (s *swapQuerier) Query(_ context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(query)
	s.mu.Lock()
	list := s.lists[url]
	s.mu.Unlock()
	for _, a := range list {
		if (typ == dnswire.TypeA) == a.Is4() {
			resp.Answers = append(resp.Answers, dnswire.AddressRecord(name, a, 60))
		}
	}
	return resp, nil
}

func (s *swapQuerier) swap(lists map[string][]netip.Addr) {
	s.mu.Lock()
	s.lists = lists
	s.mu.Unlock()
}

// manyAddrs generates n distinct IPv4 addresses offset into 10.x space.
func manyAddrs(base, n int) []netip.Addr {
	out := make([]netip.Addr, 0, n)
	for i := 0; i < n; i++ {
		v := base + i
		out = append(out, netip.MustParseAddr(fmt.Sprintf("10.%d.%d.%d", v>>16&0xFF, v>>8&0xFF, v&0xFF)))
	}
	return out
}

// slowOnlyBackend hides the engine's WireLookup so a frontend over it
// always takes the decode → respond → encode path: the differential
// oracle for fast-path byte equality.
type slowOnlyBackend struct{ eng *Engine }

func (s slowOnlyBackend) Lookup(ctx context.Context, domain string, typ dnswire.Type) (*Pool, error) {
	return s.eng.Lookup(ctx, domain, typ)
}
func (s slowOnlyBackend) ServeMajority() bool { return s.eng.ServeMajority() }

// wireEngineUnderTest builds an engine over q with a fake clock and a
// metrics registry, plus a frontend serving it.
func wireEngineUnderTest(t testing.TB, q Querier, clk *testClock, ecfg EngineConfig) (*Engine, *Frontend) {
	t.Helper()
	ecfg.Clock = clk.now
	ecfg.DisableHedging = true
	eng, err := NewEngine(Config{
		Resolvers: []Endpoint{
			{Name: "r0", URL: "u0"},
			{Name: "r1", URL: "u1"},
			{Name: "r2", URL: "u2"},
		},
		Querier: q,
	}, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	fe, err := NewFrontendWithConfig("127.0.0.1:0", eng, FrontendConfig{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })
	return eng, fe
}

// rawQueryBytes encodes a query with explicit ID/RD/CD and an optional
// EDNS OPT advertising size (0 = no OPT).
func rawQueryBytes(t testing.TB, id uint16, name string, typ dnswire.Type, edns int, rd, cd bool) []byte {
	t.Helper()
	m := &dnswire.Message{
		Header: dnswire.Header{
			ID:               id,
			Opcode:           dnswire.OpcodeQuery,
			RecursionDesired: rd,
			CheckingDisabled: cd,
		},
		Questions: []dnswire.Question{{Name: name, Type: typ, Class: dnswire.ClassINET}},
	}
	if edns > 0 {
		m.SetEDNS(uint16(edns))
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// rawUDPExchange sends query bytes over a connected UDP socket and
// returns the raw response bytes.
func rawUDPExchange(t *testing.T, addr string, query []byte) []byte {
	t.Helper()
	c, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(3 * time.Second))
	if _, err := c.Write(query); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, dnswire.MaxMessageSize)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

// packetFor wraps raw query bytes in a pooled packet for direct
// answerWire calls.
func packetFor(wire []byte) *udpPacket {
	p := newUDPPacket()
	copy(p.buf[:], wire)
	p.dg.N = len(wire)
	return p
}

// TestWireFastPathDifferential is the acceptance test for the wire
// cache: for every EDNS size bucket, the fast path's bytes must be
// identical to the slow path's for the same query — same ID, same
// flags, same truncation decision, same TTLs (the fake clock pins the
// age at zero so even TTL aging matches exactly).
func TestWireFastPathDifferential(t *testing.T) {
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": manyAddrs(0, 40),
		"u1": manyAddrs(1000, 40),
		"u2": manyAddrs(2000, 40),
	}}
	clk := newTestClock()
	eng, fastFE := wireEngineUnderTest(t, q, clk, EngineConfig{})
	slowFE, err := NewFrontendWithConfig("127.0.0.1:0", slowOnlyBackend{eng}, FrontendConfig{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer slowFE.Close()
	if slowFE.wire != nil {
		t.Fatal("slow frontend unexpectedly sees the wire cache")
	}

	// Warm: the first query generates the pool and populates the wire
	// cache; afterwards the fast path must be live.
	warm := rawQueryBytes(t, 1, "pool.test.", dnswire.TypeA, 4096, true, false)
	if resp := rawUDPExchange(t, fastFE.Addr(), warm); resp[3]&0x0F != 0 {
		t.Fatalf("warm query rcode = %d", resp[3]&0x0F)
	}
	if !fastFE.answerWire(packetFor(warm)) {
		t.Fatal("fast path not serving after warm-up")
	}

	full, _, ok := eng.WireLookup([]byte("pool.test.|1"))
	if !ok {
		t.Fatal("no wire entry after warm-up")
	}
	if len(full.Full) <= 1232 || len(full.Full) > 4096 {
		t.Fatalf("test pool encodes to %d bytes; want in (1232, 4096] to straddle the buckets", len(full.Full))
	}

	cases := []struct {
		name    string
		edns    int
		rd, cd  bool
		wantTC  bool
		wantAns int
	}{
		{"no-edns-512", 0, true, false, true, 0},
		{"edns-512", 512, false, true, true, 0},
		{"edns-1232", 1232, true, true, true, 0},
		{"edns-4096", 4096, false, false, false, 120},
		{"edns-exact", len(full.Full), true, false, false, 120},
		{"edns-one-short", len(full.Full) - 1, true, false, true, 0},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			query := rawQueryBytes(t, uint16(0x2000+i), "pool.test.", dnswire.TypeA, tc.edns, tc.rd, tc.cd)
			fast := rawUDPExchange(t, fastFE.Addr(), query)
			slow := rawUDPExchange(t, slowFE.Addr(), query)
			if !bytes.Equal(fast, slow) {
				t.Fatalf("fast path bytes differ from slow path:\nfast %x\nslow %x", fast, slow)
			}
			if gotTC := fast[2]&0x02 != 0; gotTC != tc.wantTC {
				t.Errorf("TC = %v, want %v", gotTC, tc.wantTC)
			}
			if gotAns := int(fast[6])<<8 | int(fast[7]); gotAns != tc.wantAns {
				t.Errorf("ancount = %d, want %d", gotAns, tc.wantAns)
			}
			if fast[0] != query[0] || fast[1] != query[1] {
				t.Error("response ID does not echo the query ID")
			}
			if gotRD := fast[2]&0x01 != 0; gotRD != tc.rd {
				t.Errorf("RD echo = %v, want %v", gotRD, tc.rd)
			}
			if gotCD := fast[3]&0x10 != 0; gotCD != tc.cd {
				t.Errorf("CD echo = %v, want %v", gotCD, tc.cd)
			}
		})
	}
}

// TestWireFastPathConcurrentIDs hammers one warmed name from concurrent
// clients with disjoint ID ranges: every response must carry exactly
// its own query's ID (the patch writes into per-packet buffers, so
// cross-talk would surface as a foreign ID or a torn answer).
func TestWireFastPathConcurrentIDs(t *testing.T) {
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": manyAddrs(0, 2), "u1": manyAddrs(100, 2), "u2": manyAddrs(200, 2),
	}}
	clk := newTestClock()
	_, fe := wireEngineUnderTest(t, q, clk, EngineConfig{})
	warm := rawQueryBytes(t, 1, "pool.test.", dnswire.TypeA, 0, true, false)
	rawUDPExchange(t, fe.Addr(), warm)

	const clients, perClient = 8, 50
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("udp", fe.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, 4096)
			for i := 0; i < perClient; i++ {
				id := uint16(c<<8 | i + 2)
				query := rawQueryBytes(t, id, "pool.test.", dnswire.TypeA, 0, true, false)
				_ = conn.SetDeadline(time.Now().Add(3 * time.Second))
				if _, err := conn.Write(query); err != nil {
					errs <- err
					return
				}
				n, err := conn.Read(buf)
				if err != nil {
					errs <- err
					return
				}
				if n < 12 || uint16(buf[0])<<8|uint16(buf[1]) != id {
					errs <- fmt.Errorf("client %d query %d: response ID %x, want %x", c, i, buf[:2], id)
					return
				}
				if buf[2]&0x80 == 0 || int(buf[6])<<8|int(buf[7]) != 6 {
					errs <- fmt.Errorf("client %d query %d: malformed answer n=%d hdr=%x", c, i, n, buf[:12])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWireFastPathInvalidationOnRefresh drives a background
// regeneration (the stale-serve revalidation path, which shares the
// cache-publish code with refresh-ahead) and asserts the wire cache
// never serves the superseded generation's bytes afterwards.
func TestWireFastPathInvalidationOnRefresh(t *testing.T) {
	oldAddrs := map[string][]netip.Addr{
		"u0": manyAddrs(0, 2), "u1": manyAddrs(0, 2), "u2": manyAddrs(0, 2),
	}
	newAddrs := map[string][]netip.Addr{
		"u0": manyAddrs(5000, 2), "u1": manyAddrs(5000, 2), "u2": manyAddrs(5000, 2),
	}
	q := &swapQuerier{lists: oldAddrs}
	clk := newTestClock()
	eng, fe := wireEngineUnderTest(t, q, clk, EngineConfig{MaxStale: time.Hour})
	warm := rawQueryBytes(t, 1, "pool.test.", dnswire.TypeA, 0, true, false)
	rawUDPExchange(t, fe.Addr(), warm)
	oldEntry, _, ok := eng.WireLookup([]byte("pool.test.|1"))
	if !ok {
		t.Fatal("no wire entry after warm-up")
	}

	// Expire the pool into its stale window and switch the resolvers'
	// answers; the next lookup serves stale and launches a background
	// revalidation that must republish both caches.
	q.swap(newAddrs)
	clk.advance(61 * time.Second)
	if _, err := eng.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		en, _, ok := eng.WireLookup([]byte("pool.test.|1"))
		if ok && !bytes.Equal(en.Full, oldEntry.Full) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wire entry not replaced by background refresh")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp := rawUDPExchange(t, fe.Addr(), rawQueryBytes(t, 7, "pool.test.", dnswire.TypeA, 0, true, false))
	if bytes.Contains(resp, []byte{10, 0, 0, 0}) {
		t.Error("response still carries a first-generation address")
	}
	if !bytes.Contains(resp, []byte{10, 0, 19, 136}) { // 5000 = 0x1388 → 10.0.19.136
		t.Errorf("response does not carry the regenerated pool: %x", resp)
	}
}

// TestAnswerWireRejects feeds the fast path queries it must hand to the
// strict slow path, plus the 0x20-randomized positive case it must
// normalize and serve.
func TestAnswerWireRejects(t *testing.T) {
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": manyAddrs(0, 2), "u1": manyAddrs(0, 2), "u2": manyAddrs(0, 2),
	}}
	clk := newTestClock()
	_, fe := wireEngineUnderTest(t, q, clk, EngineConfig{})
	rawUDPExchange(t, fe.Addr(), rawQueryBytes(t, 1, "pool.test.", dnswire.TypeA, 0, true, false))

	base := rawQueryBytes(t, 2, "pool.test.", dnswire.TypeA, 0, true, false)
	if !fe.answerWire(packetFor(base)) {
		t.Fatal("baseline query not served by the fast path")
	}

	mutate := func(fn func(b []byte) []byte) *udpPacket {
		b := append([]byte(nil), base...)
		return packetFor(fn(b))
	}
	rejects := map[string]*udpPacket{
		"too-short":    packetFor(base[:11]),
		"qr-set":       mutate(func(b []byte) []byte { b[2] |= 0x80; return b }),
		"opcode":       mutate(func(b []byte) []byte { b[2] |= 0x08; return b }), // IQUERY
		"qdcount-2":    mutate(func(b []byte) []byte { b[5] = 2; return b }),
		"ancount-1":    mutate(func(b []byte) []byte { b[7] = 1; return b }),
		"arcount-2":    mutate(func(b []byte) []byte { b[11] = 2; return b }),
		"pointer-name": mutate(func(b []byte) []byte { b[12] = 0xC0; return b }),
		"bad-label":    mutate(func(b []byte) []byte { b[13] = ' '; return b }),
		"qclass-ch":    mutate(func(b []byte) []byte { b[len(b)-1] = 3; return b }),
		"qtype-txt":    mutate(func(b []byte) []byte { b[len(b)-3] = 16; return b }),
		"trailing":     mutate(func(b []byte) []byte { return append(b, 0) }),
		"unknown-name": packetFor(rawQueryBytes(t, 3, "cold.test.", dnswire.TypeA, 0, true, false)),
	}
	for name, pkt := range rejects {
		if fe.answerWire(pkt) {
			t.Errorf("%s: fast path served a query it must reject", name)
		}
	}

	// Case-randomized spelling of a warmed name must normalize to the
	// same key and serve.
	randomized := mutate(func(b []byte) []byte {
		for i := 13; i < 13+4; i++ { // "pool" label bytes
			b[i] -= 'a' - 'A'
		}
		return b
	})
	if !fe.answerWire(randomized) {
		t.Error("0x20-randomized query not served by the fast path")
	}
}

// TestFrontendWriteErrorMetric asserts the per-transport write-error
// counter family is registered and exported for every plaintext and DoT
// transport label.
func TestFrontendWriteErrorMetric(t *testing.T) {
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": manyAddrs(0, 2), "u1": manyAddrs(0, 2), "u2": manyAddrs(0, 2),
	}}
	clk := newTestClock()
	reg := metrics.New()
	ecfg := EngineConfig{Metrics: reg, Clock: clk.now, DisableHedging: true}
	eng, err := NewEngine(Config{
		Resolvers: []Endpoint{{Name: "r0", URL: "u0"}, {Name: "r1", URL: "u1"}, {Name: "r2", URL: "u2"}},
		Querier:   q,
	}, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	fe, err := NewFrontendWithConfig("127.0.0.1:0", eng, FrontendConfig{Timeout: time.Second, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, want := range []string{
		MetricFrontendWriteErrors + `{proto="udp"}`,
		MetricFrontendWriteErrors + `{proto="tcp"}`,
		MetricWireCacheHits,
		MetricWireCacheMisses,
		MetricWireCacheEntries,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestWireFastPathTTLAging pins the wire cache's TTL patch to the slow
// path's aging rule: elapsed whole seconds are subtracted, flooring at
// 1 while the entry still serves.
func TestWireFastPathTTLAging(t *testing.T) {
	q := &swapQuerier{lists: map[string][]netip.Addr{
		"u0": manyAddrs(0, 2), "u1": manyAddrs(0, 2), "u2": manyAddrs(0, 2),
	}}
	clk := newTestClock()
	_, fe := wireEngineUnderTest(t, q, clk, EngineConfig{})
	rawUDPExchange(t, fe.Addr(), rawQueryBytes(t, 1, "pool.test.", dnswire.TypeA, 0, true, false))

	readTTL := func(resp []byte) uint32 {
		m, err := dnswire.Decode(resp)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Answers) == 0 {
			t.Fatal("no answers")
		}
		return m.Answers[0].TTL
	}
	resp := rawUDPExchange(t, fe.Addr(), rawQueryBytes(t, 2, "pool.test.", dnswire.TypeA, 0, true, false))
	if got := readTTL(resp); got != 60 {
		t.Fatalf("fresh TTL = %d, want 60", got)
	}
	clk.advance(25 * time.Second)
	resp = rawUDPExchange(t, fe.Addr(), rawQueryBytes(t, 3, "pool.test.", dnswire.TypeA, 0, true, false))
	if got := readTTL(resp); got != 35 {
		t.Fatalf("aged TTL = %d, want 35", got)
	}
}
