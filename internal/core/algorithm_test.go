package core

import (
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

func addrs(ss ...string) []netip.Addr {
	out := make([]netip.Addr, len(ss))
	for i, s := range ss {
		out[i] = ip(s)
	}
	return out
}

func TestTruncateLength(t *testing.T) {
	tests := []struct {
		name  string
		lists [][]netip.Addr
		want  int
	}{
		{"empty", nil, 0},
		{"single", [][]netip.Addr{addrs("192.0.2.1", "192.0.2.2")}, 2},
		{"mixed", [][]netip.Addr{
			addrs("192.0.2.1", "192.0.2.2", "192.0.2.3"),
			addrs("192.0.2.4"),
			addrs("192.0.2.5", "192.0.2.6"),
		}, 1},
		{"with empty list", [][]netip.Addr{addrs("192.0.2.1"), nil}, 0},
	}
	for _, tt := range tests {
		if got := TruncateLength(tt.lists); got != tt.want {
			t.Errorf("%s: TruncateLength = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestGeneratePoolBasic(t *testing.T) {
	lists := [][]netip.Addr{
		addrs("192.0.2.1", "192.0.2.2"),
		addrs("192.0.2.3", "192.0.2.4", "192.0.2.5"),
		addrs("192.0.2.6", "192.0.2.7"),
	}
	pool, err := GeneratePool(lists)
	if err != nil {
		t.Fatal(err)
	}
	want := addrs("192.0.2.1", "192.0.2.2", "192.0.2.3", "192.0.2.4", "192.0.2.6", "192.0.2.7")
	if !reflect.DeepEqual(pool, want) {
		t.Fatalf("pool = %v, want %v", pool, want)
	}
}

func TestGeneratePoolErrors(t *testing.T) {
	if _, err := GeneratePool(nil); !errors.Is(err, ErrNoResults) {
		t.Errorf("empty input: %v", err)
	}
	lists := [][]netip.Addr{addrs("192.0.2.1"), nil}
	if _, err := GeneratePool(lists); !errors.Is(err, ErrEmptyAnswer) {
		t.Errorf("empty shortest list: %v", err)
	}
}

func TestGeneratePoolPreservesDuplicates(t *testing.T) {
	lists := [][]netip.Addr{
		addrs("192.0.2.1"),
		addrs("192.0.2.1"),
		addrs("192.0.2.1"),
	}
	pool, err := GeneratePool(lists)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 3 {
		t.Fatalf("pool = %v: duplicates must count as individual servers (paper §IV)", pool)
	}
}

func TestDedupe(t *testing.T) {
	pool := addrs("192.0.2.1", "192.0.2.2", "192.0.2.1", "192.0.2.3", "192.0.2.2")
	got := Dedupe(pool)
	want := addrs("192.0.2.1", "192.0.2.2", "192.0.2.3")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Dedupe = %v, want %v", got, want)
	}
}

func TestMajorityFilter(t *testing.T) {
	lists := [][]netip.Addr{
		addrs("192.0.2.1", "192.0.2.2", "198.18.0.1"),
		addrs("192.0.2.1", "192.0.2.3"),
		addrs("192.0.2.1", "192.0.2.2"),
	}
	got := MajorityFilter(lists)
	// .1 appears in 3 lists, .2 in 2 (> 3/2), .3 and attacker addr in 1.
	want := addrs("192.0.2.1", "192.0.2.2")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MajorityFilter = %v, want %v", got, want)
	}
}

func TestMajorityFilterIgnoresMultiplicityWithinOneResolver(t *testing.T) {
	// One resolver repeating an address 10 times must not fake votes.
	lists := [][]netip.Addr{
		addrs("198.18.0.9", "198.18.0.9", "198.18.0.9", "198.18.0.9"),
		addrs("192.0.2.1"),
		addrs("192.0.2.1"),
	}
	got := MajorityFilter(lists)
	want := addrs("192.0.2.1")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MajorityFilter = %v, want %v (vote stuffing must fail)", got, want)
	}
}

func TestVoteFilterThresholds(t *testing.T) {
	lists := [][]netip.Addr{
		addrs("192.0.2.1", "192.0.2.2"),
		addrs("192.0.2.1"),
		addrs("192.0.2.1", "192.0.2.2"),
		addrs("192.0.2.3"),
	}
	if got := VoteFilter(lists, 1); len(got) != 3 {
		t.Errorf("threshold 1: %v", got)
	}
	if got := VoteFilter(lists, 3); !reflect.DeepEqual(got, addrs("192.0.2.1")) {
		t.Errorf("threshold 3: %v", got)
	}
	if got := VoteFilter(lists, 5); len(got) != 0 {
		t.Errorf("threshold 5: %v", got)
	}
}

func TestFraction(t *testing.T) {
	attacker := func(a netip.Addr) bool { return a == ip("198.18.0.1") }
	if got := Fraction(nil, attacker); got != 0 {
		t.Errorf("empty pool fraction = %f", got)
	}
	pool := addrs("198.18.0.1", "192.0.2.1", "192.0.2.2", "198.18.0.1")
	if got := Fraction(pool, attacker); got != 0.5 {
		t.Errorf("fraction = %f, want 0.5", got)
	}
}

// --- Property-based tests on the core invariants ------------------------

// listsFromBytes derives deterministic address lists from fuzz input.
func listsFromBytes(shape []uint8) [][]netip.Addr {
	if len(shape) > 12 {
		shape = shape[:12]
	}
	lists := make([][]netip.Addr, 0, len(shape))
	for i, n := range shape {
		l := make([]netip.Addr, 0, int(n%9))
		for j := 0; j < int(n%9); j++ {
			l = append(l, netip.AddrFrom4([4]byte{10, byte(i), byte(j), 1}))
		}
		lists = append(lists, l)
	}
	return lists
}

// Property: every resolver contributes exactly K = min length entries, so
// the pool size is always N·K and per-resolver influence is bounded by
// 1/N — the paper's Section III-a invariant.
func TestPropertyEqualContribution(t *testing.T) {
	f := func(shape []uint8) bool {
		lists := listsFromBytes(shape)
		pool, err := GeneratePool(lists)
		if err != nil {
			// Acceptable failure modes only.
			return errors.Is(err, ErrNoResults) || errors.Is(err, ErrEmptyAnswer)
		}
		k := TruncateLength(lists)
		if len(pool) != k*len(lists) {
			return false
		}
		// Count per-source prefix (10.i.x.x encodes the source list).
		counts := make(map[byte]int)
		for _, a := range pool {
			counts[a.As4()[1]]++
		}
		for _, c := range counts {
			if c != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: truncation is idempotent and never grows a list.
func TestPropertyTruncate(t *testing.T) {
	f := func(shape []uint8, kRaw uint8) bool {
		lists := listsFromBytes(shape)
		k := int(kRaw % 12)
		once := Truncate(lists, k)
		twice := Truncate(once, k)
		if !reflect.DeepEqual(once, twice) {
			return false
		}
		for i, l := range once {
			if len(l) > k || len(l) > len(lists[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the majority filter never admits an address seen by fewer
// than a strict majority of resolvers.
func TestPropertyMajoritySoundness(t *testing.T) {
	f := func(shape []uint8) bool {
		lists := listsFromBytes(shape)
		if len(lists) == 0 {
			return true
		}
		kept := MajorityFilter(lists)
		for _, a := range kept {
			votes := 0
			for _, l := range lists {
				for _, x := range l {
					if x == a {
						votes++
						break
					}
				}
			}
			if votes <= len(lists)/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Combine preserves total length and order; Dedupe output is
// duplicate-free and a subset of input.
func TestPropertyCombineDedupe(t *testing.T) {
	f := func(shape []uint8) bool {
		lists := listsFromBytes(shape)
		combined := Combine(lists)
		total := 0
		for _, l := range lists {
			total += len(l)
		}
		if len(combined) != total {
			return false
		}
		dd := Dedupe(combined)
		seen := map[netip.Addr]bool{}
		for _, a := range dd {
			if seen[a] {
				return false
			}
			seen[a] = true
		}
		inInput := map[netip.Addr]bool{}
		for _, a := range combined {
			inInput[a] = true
		}
		for _, a := range dd {
			if !inInput[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property (Section III-a reproduced on the pure algorithm): if an
// attacker fully controls m of n resolvers (and the benign lists carry no
// attacker addresses), the attacker's pool fraction is exactly m/n —
// never more, regardless of how many addresses the attacker injects.
func TestPropertyAttackerFractionBound(t *testing.T) {
	f := func(nRaw, mRaw, inflate uint8) bool {
		n := int(nRaw%7) + 1
		m := int(mRaw) % (n + 1)
		benignLen := 4
		lists := make([][]netip.Addr, 0, n)
		for i := 0; i < n; i++ {
			if i < m {
				// Attacker list, possibly inflated.
				l := make([]netip.Addr, benignLen+int(inflate%50))
				for j := range l {
					l[j] = netip.AddrFrom4([4]byte{198, 18, byte(i), byte(j)})
				}
				lists = append(lists, l)
			} else {
				l := make([]netip.Addr, benignLen)
				for j := range l {
					l[j] = netip.AddrFrom4([4]byte{192, 0, 2, byte(i*10 + j)})
				}
				lists = append(lists, l)
			}
		}
		pool, err := GeneratePool(lists)
		if err != nil {
			return false
		}
		attackerFrac := Fraction(pool, func(a netip.Addr) bool {
			b := a.As4()
			return b[0] == 198 && b[1] == 18
		})
		want := float64(m) / float64(n)
		return attackerFrac == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
