package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dohpool/internal/dnscache"
)

// Refresher defaults.
const (
	// DefaultRefreshInterval is how often the refresher scans the pool
	// cache for entries due a background regeneration.
	DefaultRefreshInterval = time.Second
	// DefaultRefreshBackoff is the base delay before re-attempting a key
	// whose background refresh failed; it doubles per consecutive
	// failure up to maxRefreshBackoffShift doublings.
	DefaultRefreshBackoff = 5 * time.Second
	// maxRefreshBackoffShift caps the exponential backoff at
	// base << maxRefreshBackoffShift (32× the base).
	maxRefreshBackoffShift = 5
	// DefaultRefreshConcurrency bounds concurrent background
	// regenerations when EngineConfig.RefreshConcurrency is 0: enough to
	// keep a busy cache warm, small enough that a correlated expiry of
	// thousands of entries cannot fan out to every resolver at once.
	DefaultRefreshConcurrency = 8
)

// refresher is the always-warm half of the engine: a background loop
// that watches the pool cache and re-runs Algorithm 1 for entries
// approaching their TTL, so the synchronous lookup path almost never
// generates inline. It refreshes an entry once it has lived fraction of
// its TTL, skips entries colder than minHits, launches at most one
// refresh per key at a time, and backs a key off exponentially while its
// refreshes keep failing (the cached pool is kept and keeps serving —
// through the stale window if need be).
type refresher struct {
	eng         *Engine
	fraction    float64
	minHits     uint64
	interval    time.Duration
	backoff     time.Duration
	maxInflight int
	stopOnce    sync.Once
	stop        chan struct{}
	done        chan struct{}

	attempts atomic.Uint64
	wins     atomic.Uint64
	failures atomic.Uint64

	// Claim/settle bookkeeping shared with every lookup's refresh check.
	//dohlint:hotlock
	mu       sync.Mutex
	inflight int // refreshes currently running, bounded by maxInflight
	state    map[string]*refreshState
}

// refreshState is the refresher's per-key bookkeeping.
type refreshState struct {
	// inflight guards against launching a second refresh for the key
	// while one is still running.
	inflight bool
	// hitsSeen is the entry's hit count when its last successful refresh
	// launched; the popularity check compares against hits gained since,
	// so a key nobody reads anymore stops being kept warm instead of
	// earning eternal refreshes from ancient traffic.
	hitsSeen uint64
	// failures is the current consecutive-failure streak.
	failures int
	// notBefore delays the next attempt after failures (zero = no
	// backoff).
	notBefore time.Time
}

func newRefresher(e *Engine, ecfg EngineConfig) *refresher {
	interval := ecfg.RefreshInterval
	if interval <= 0 {
		interval = DefaultRefreshInterval
	}
	backoff := ecfg.RefreshBackoff
	if backoff <= 0 {
		backoff = DefaultRefreshBackoff
	}
	maxInflight := ecfg.RefreshConcurrency
	if maxInflight <= 0 {
		maxInflight = DefaultRefreshConcurrency
	}
	return &refresher{
		eng:         e,
		fraction:    ecfg.RefreshAhead,
		minHits:     ecfg.RefreshMinHits,
		interval:    interval,
		backoff:     backoff,
		maxInflight: maxInflight,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		state:       make(map[string]*refreshState),
	}
}

// start launches the scan loop.
func (r *refresher) start() {
	go r.run()
}

// stopLoop halts the scan loop and waits for it to exit. It does not
// wait for in-flight refreshes — those are drained by Engine.Close via
// the engine's refresh WaitGroup.
func (r *refresher) stopLoop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *refresher) run() {
	defer close(r.done)
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.scan()
		}
	}
}

// refreshCandidate is one claimed launch from a scan pass.
type refreshCandidate struct {
	key   string
	spec  wireSpec
	regen func(context.Context) (*Pool, error)
	hits  uint64
}

// scan walks the cache once and launches a background regeneration for
// every due entry, returning how many were launched. A due entry has
// lived at least fraction of its TTL (or is already expired but still in
// the stale window), gained at least minHits hits since its last
// refresh, has no refresh in flight, is not backing off a recent
// failure, and fits under the refresh concurrency cap (entries past the
// cap simply wait for a later scan). The whole selection runs under one
// acquisition of r.mu — per-tick cost is one cache snapshot plus one
// lock, O(entries) either way (a due-time heap would beat it at
// millions of entries; at the default capacity a linear pass is cheap).
func (r *refresher) scan() int {
	now := r.eng.now()
	entries := r.eng.cache.Entries()
	live := make(map[string]bool, len(entries))
	var cands []refreshCandidate
	r.mu.Lock()
	for _, en := range entries {
		live[en.Key] = true
		if !r.due(en) {
			continue
		}
		st := r.stateFor(en.Key)
		if st.hitsSeen > en.Hits {
			// The entry was evicted and re-inserted since we last saw
			// it; its hit counter restarted.
			st.hitsSeen = 0
		}
		if en.Hits-st.hitsSeen < r.minHits || !r.claimLocked(st, now) {
			continue
		}
		cands = append(cands, refreshCandidate{key: en.Key, spec: en.Val.spec, regen: en.Val.regen, hits: en.Hits})
	}
	// Prune bookkeeping for keys the cache no longer holds so evicted
	// entries cannot leak state forever.
	for key, st := range r.state {
		if !live[key] && !st.inflight {
			delete(r.state, key)
		}
	}
	r.mu.Unlock()

	launched := 0
	for _, c := range cands {
		if !r.launch(c.key, c.spec, c.regen, c.hits) {
			// The engine is closing; undo the remaining claims.
			r.mu.Lock()
			for _, rest := range cands[launched:] {
				r.state[rest.key].inflight = false
				r.inflight--
			}
			r.mu.Unlock()
			return launched
		}
		launched++
	}
	return launched
}

// stateFor returns (creating if needed) key's bookkeeping; r.mu must be
// held.
func (r *refresher) stateFor(key string) *refreshState {
	st := r.state[key]
	if st == nil {
		st = &refreshState{}
		r.state[key] = st
	}
	return st
}

// claimLocked reserves a launch slot for st when it is idle, not backing
// off, and under the concurrency cap; r.mu must be held.
func (r *refresher) claimLocked(st *refreshState, now time.Time) bool {
	if st.inflight || now.Before(st.notBefore) || r.inflight >= r.maxInflight {
		return false
	}
	st.inflight = true
	r.inflight++
	return true
}

// tryRefreshStale is the stale-serve path's entry point: it launches a
// revalidation for key unless the refresher's bookkeeping says not to —
// a refresh already in flight, a backed-off failure streak, or the
// concurrency cap. Without this, every stale hit would re-fan-out to
// resolvers the backoff just decided to leave alone.
func (r *refresher) tryRefreshStale(key string, spec wireSpec, regen func(context.Context) (*Pool, error)) {
	now := r.eng.now()
	r.mu.Lock()
	st := r.stateFor(key)
	if !r.claimLocked(st, now) {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	// hitsAtLaunch 0: a stale-triggered refresh proves live traffic, so
	// it must not advance the popularity baseline.
	if !r.launch(key, spec, regen, 0) {
		r.mu.Lock()
		st.inflight = false
		r.inflight--
		r.mu.Unlock()
	}
}

// due reports whether the entry has consumed its refresh-ahead fraction
// of lifetime. An already-expired entry (still cached thanks to the
// stale window) is always due.
func (r *refresher) due(en dnscache.Entry[*poolEntry]) bool {
	if en.Remaining <= 0 {
		return true
	}
	total := en.Age + en.Remaining
	if total <= 0 {
		return false
	}
	return float64(en.Age) >= r.fraction*float64(total)
}

// launch starts one background regeneration for key, reporting false
// when the engine is closing. hitsAtLaunch is the entry's hit count the
// scan observed, recorded as the popularity baseline on success. The
// refresh shares the engine's singleflight group, so a concurrent inline
// miss for the same key coalesces onto it rather than doubling the
// fan-out.
func (r *refresher) launch(key string, spec wireSpec, regen func(context.Context) (*Pool, error), hitsAtLaunch uint64) bool {
	e := r.eng
	e.refreshMu.Lock()
	if e.closed {
		e.refreshMu.Unlock()
		return false
	}
	e.refreshWG.Add(1)
	e.refreshMu.Unlock()

	r.attempts.Add(1)
	e.inst.refreshAttempts.Inc()
	go func() {
		defer e.refreshWG.Done()
		p, err := e.fetch(context.Background(), key, spec, regen, true)
		if err == nil && p != nil && p.TTL == 0 {
			// The run succeeded but produced an uncacheable pool
			// (TTL 0): nothing replaced the dying entry, and without
			// backoff the still-due key would be re-fetched every scan
			// tick. Treat it as a failed refresh.
			err = errUncacheableRefresh
		}
		r.settle(key, err, hitsAtLaunch)
	}()
	return true
}

// errUncacheableRefresh marks a refresh whose regenerated pool carried
// TTL 0 and therefore could not replace the cached entry.
var errUncacheableRefresh = errors.New("refreshed pool is uncacheable (TTL 0)")

// settle records a refresh outcome: success clears the key's failure
// streak and advances its popularity baseline, failure extends the
// streak and schedules the exponential backoff. The cache entry's own
// refresh metadata is updated either way (a key evicted mid-refresh
// simply has nothing to record against).
func (r *refresher) settle(key string, err error, hitsAtLaunch uint64) {
	now := r.eng.now()
	r.mu.Lock()
	st := r.state[key]
	if st == nil {
		st = &refreshState{}
		r.state[key] = st
	}
	st.inflight = false
	r.inflight--
	if err == nil && st.hitsSeen < hitsAtLaunch {
		st.hitsSeen = hitsAtLaunch
	}
	if err != nil {
		st.failures++
		shift := st.failures - 1
		if shift > maxRefreshBackoffShift {
			shift = maxRefreshBackoffShift
		}
		st.notBefore = now.Add(r.backoff << shift)
	} else {
		st.failures = 0
		st.notBefore = time.Time{}
	}
	r.mu.Unlock()

	if err != nil {
		r.failures.Add(1)
		r.eng.inst.refreshFailures.Inc()
		r.eng.cache.RecordRefresh(key, false)
	} else {
		r.wins.Add(1)
		r.eng.inst.refreshWins.Inc()
		r.eng.cache.RecordRefresh(key, true)
	}
}
