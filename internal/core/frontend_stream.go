package core

import (
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
)

// This file is the stream half of the wire-format answer cache: the
// same pre-encoded entries the UDP reader serves are copied onto TCP,
// DoT and DoH responses with the same three-field patch (transaction
// ID, RD/CD echo, aged TTLs). The TCP/DoT loop serves a cached hit as
// one Write of the entry's pre-framed form (RFC 7766 length prefix
// included), touching neither the decoder nor the encoder and
// allocating nothing in steady state; DoH writes the unframed form
// straight to the ResponseWriter. Anything the strict parser cannot
// prove falls through to the classic decode → respond → encode path,
// which behaves exactly as before.

// streamScratch is the pooled per-connection working set of the stream
// fast path: the frame read buffer, the cache-key scratch and the
// response copy target. Like udpPacket, the key lives here rather than
// on the stack because it crosses the wireBackend interface boundary,
// which defeats escape analysis.
type streamScratch struct {
	// q buffers one length-prefixed inbound frame: 2 prefix bytes then
	// up to udpPacketBuf of query. Queries longer than that (legal on a
	// stream, vanishingly rare) fall back to a heap buffer.
	q [2 + udpPacketBuf]byte
	// key is parseWireQuery's cache-key scratch.
	key [wireKeyMax]byte
	// out is the response copy target, grown on demand and retained
	// across queries and connections.
	out []byte
}

// outBuf returns scratch capacity for an n-byte response, growing the
// retained buffer when a pool outgrows it (amortised: steady state
// serves from the same backing array forever).
func (s *streamScratch) outBuf(n int) []byte {
	if cap(s.out) < n {
		s.out = make([]byte, 0, n+512)
	}
	return s.out[:n]
}

// serveStreamConnFast is serveStreamConn for wire-capable backends: it
// reads raw frames and serves cache hits without constructing a single
// message value, falling back per query to the classic path.
func (f *Frontend) serveStreamConnFast(conn net.Conn, inst *protoInstruments) {
	s := f.streamPool.Get().(*streamScratch)
	defer f.streamPool.Put(s)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(f.cfg.TCPIdleTimeout))
		q, err := readStreamFrame(conn, s)
		if err != nil {
			return
		}
		served, err := f.answerStreamWire(conn, q, s, inst)
		if err != nil {
			return
		}
		if served {
			continue
		}
		// Slow path: decode the frame we already read and answer through
		// the regular responder. An undecodable frame closes the
		// connection, exactly as transport.ReadTCPMessage would have.
		query, err := dnswire.Decode(q)
		if err != nil {
			return
		}
		if !f.respondStream(conn, query, inst) {
			return
		}
	}
}

// readStreamFrame reads one RFC 7766 length-prefixed message into the
// scratch buffer (or, for frames larger than the scratch, a one-off
// heap buffer) and returns the message bytes.
//
//dohlint:noalloc
func readStreamFrame(conn net.Conn, s *streamScratch) ([]byte, error) {
	if _, err := io.ReadFull(conn, s.q[:2]); err != nil {
		return nil, err
	}
	n := int(s.q[0])<<8 | int(s.q[1])
	buf := s.q[2 : 2+udpPacketBuf]
	if n > udpPacketBuf {
		// Oversized frames (legal on a stream, vanishingly rare) pay a
		// one-off heap buffer; steady state stays on pooled scratch.
		// dohlint:allow(noalloc)
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// answerStreamWire serves one stream query from the wire cache,
// reporting whether it was served and any connection-fatal write error.
// A miss (or unprovable query) returns (false, nil) so the caller can
// fall back; nothing is written in that case. It allocates nothing in
// steady state: the response is one copy of the entry's pre-framed form
// into pooled scratch, patched in place, then one Write.
//
//dohlint:noalloc
func (f *Frontend) answerStreamWire(conn net.Conn, q []byte, s *streamScratch, inst *protoInstruments) (bool, error) {
	key, _, _, ok := parseWireQuery(q, s.key[:])
	if !ok {
		return false, nil
	}
	we, age, ok := f.wire.WireLookup(key)
	if !ok {
		return false, nil
	}
	// Streams never truncate — the slow path writes the full message
	// whatever payload size an EDNS OPT advertised — so the framed full
	// form is always the right one (and always fits the 64 KiB frame).
	out := s.outBuf(len(we.FullFramed)) // dohlint:allow(noalloc) — amortised growth inside outBuf
	copy(out, we.FullFramed)
	body := out[2:]
	dnswire.PatchID(body, uint16(q[0])<<8|uint16(q[1]))
	dnswire.EchoFlags(body, q)
	dnswire.PatchAnswerTTLs(body, we.TTLOffsets, agedTTL(we.TTL, age))

	// Committed: mirror the fast path's UDP instrument sequence for one
	// answered query on this transport.
	inst.queries.Inc()
	inst.inflight.Inc()
	_, err := conn.Write(out)
	if err == nil {
		f.served.Add(1)
		f.inst.rcode(dnswire.RCodeSuccess).Inc()
	} else if !f.closed.Load() {
		inst.writeErrs.Inc()
	}
	inst.inflight.Dec()
	return true, err
}

// answerDoHWire is the doh.Handler.Wire hook: it serves a cache hit by
// writing the patched pre-encoded body straight to the ResponseWriter,
// with the same headers the slow path would set. Queries carrying any
// EDNS option data fall through — the slow path reacts to options
// (RFC 8467 padding in particular), and the fast path must never serve
// bytes the slow path would have shaped differently.
//
// Unlike the UDP and stream serves this one cannot be allocation-free
// end to end: net/http header insertion copies its values. The waived
// lines below are exactly that HTTP boundary; everything else —
// parse, lookup, copy, patch — holds the noalloc contract.
//
//dohlint:noalloc
func (f *Frontend) answerDoHWire(w http.ResponseWriter, query []byte) bool {
	if f.wire == nil {
		return false
	}
	s := f.streamPool.Get().(*streamScratch)
	defer f.streamPool.Put(s)
	key, _, optData, ok := parseWireQuery(query, s.key[:])
	if !ok || optData != 0 {
		return false
	}
	we, age, ok := f.wire.WireLookup(key)
	if !ok {
		return false
	}
	body := s.outBuf(len(we.Full)) // dohlint:allow(noalloc) — amortised growth inside outBuf
	copy(body, we.Full)
	dnswire.PatchID(body, uint16(query[0])<<8|uint16(query[1]))
	dnswire.EchoFlags(body, query)
	ttl := agedTTL(we.TTL, age)
	dnswire.PatchAnswerTTLs(body, we.TTLOffsets, ttl)

	inst := &f.inst.doh
	inst.queries.Inc()
	inst.inflight.Inc()
	h := w.Header()
	h.Set("Content-Type", doh.MediaType) // dohlint:allow(noalloc) — net/http header insertion copies
	// max-age mirrors the slow path's resp.MinAnswerTTL(0): the aged
	// answer TTL, or 0 for an answerless response.
	maxAge := uint32(0)
	if len(we.TTLOffsets) > 0 {
		maxAge = ttl
	}
	h.Set("Cache-Control", "max-age="+strconv.FormatUint(uint64(maxAge), 10)) // dohlint:allow(noalloc) — header value built per response
	h.Set("Content-Length", strconv.Itoa(len(body)))                          // dohlint:allow(noalloc) — header value built per response
	if _, err := w.Write(body); err == nil {
		f.served.Add(1)
		f.inst.rcode(dnswire.RCodeSuccess).Inc()
	}
	inst.inflight.Dec()
	return true
}
