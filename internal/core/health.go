package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dohpool/internal/dnswire"
)

// ErrCircuitOpen reports a resolver skipped because its circuit breaker is
// open (too many consecutive failures); the resolver counts as failed for
// quorum purposes without burning a network attempt.
var ErrCircuitOpen = errors.New("resolver circuit breaker open")

// Health-tracking defaults.
const (
	// DefaultBreakerThreshold is how many consecutive failures open a
	// resolver's circuit breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open breaker rejects attempts
	// before admitting a probe.
	DefaultBreakerCooldown = 10 * time.Second
	// ewmaAlpha weights new RTT samples in the moving average.
	ewmaAlpha = 0.25
	// minHedgeDelay floors the adaptive hedge delay so a lucky fast sample
	// cannot make every later query hedge immediately.
	minHedgeDelay = 2 * time.Millisecond
	// maxHedgeDelay caps the adaptive hedge delay; beyond this the
	// per-query timeout is the real backstop.
	maxHedgeDelay = 2 * time.Second
)

// ResolverHealth is a point-in-time snapshot of one resolver's health.
type ResolverHealth struct {
	Name string
	URL  string
	// EWMARTT is the exponentially weighted moving average of successful
	// exchange RTTs (zero before the first success).
	EWMARTT time.Duration
	// Successes and Failures count completed exchanges.
	Successes uint64
	Failures  uint64
	// Hedges counts backup attempts fired because the primary straggled.
	Hedges uint64
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int
	// CircuitOpen reports whether the breaker currently rejects attempts.
	CircuitOpen bool
}

// HealthTracker maintains per-resolver EWMA RTT and a consecutive-failure
// circuit breaker, keyed by endpoint URL. All methods are safe for
// concurrent use.
type HealthTracker struct {
	mu        sync.Mutex
	states    map[string]*resolverState
	threshold int // <= 0 disables the breaker
	cooldown  time.Duration
	now       func() time.Time
	inst      healthInstruments
}

type resolverState struct {
	ewma      time.Duration
	successes uint64
	failures  uint64
	hedges    uint64
	streak    int
	openUntil time.Time
}

// NewHealthTracker builds a tracker. threshold <= 0 disables the breaker;
// cooldown <= 0 uses DefaultBreakerCooldown; clock nil uses time.Now.
func NewHealthTracker(threshold int, cooldown time.Duration, clock func() time.Time) *HealthTracker {
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if clock == nil {
		clock = time.Now
	}
	return &HealthTracker{
		states:    make(map[string]*resolverState),
		threshold: threshold,
		cooldown:  cooldown,
		now:       clock,
	}
}

// instrument attaches metric instruments fed by Observe and the hedging
// layer. Call before the tracker sees traffic (NewEngine does).
func (h *HealthTracker) instrument(inst healthInstruments) {
	h.inst = inst
}

func (h *HealthTracker) state(url string) *resolverState {
	st, ok := h.states[url]
	if !ok {
		st = &resolverState{}
		h.states[url] = st
	}
	return st
}

// Allow reports whether an attempt against url may proceed. An open
// breaker rejects attempts until its cooldown passes, then admits a probe
// (half-open); the probe's Observe outcome closes or re-opens the circuit.
func (h *HealthTracker) Allow(url string) bool {
	if h.threshold <= 0 {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state(url)
	if st.streak < h.threshold {
		return true
	}
	if h.now().Before(st.openUntil) {
		return false
	}
	// Half-open: admit this probe and push the next one a cooldown out so
	// a thundering herd cannot pile onto a struggling resolver.
	st.openUntil = h.now().Add(h.cooldown)
	return true
}

// Observe records the outcome of one exchange with url.
func (h *HealthTracker) Observe(url string, rtt time.Duration, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state(url)
	if err != nil {
		st.failures++
		st.streak++
		if h.threshold > 0 && st.streak >= h.threshold {
			st.openUntil = h.now().Add(h.cooldown)
		}
		// streak == threshold exactly at the closed→open crossing; later
		// failures only extend an already-open breaker.
		h.inst.observe(url, st.ewma, err, h.threshold > 0 && st.streak == h.threshold, false)
		return
	}
	st.successes++
	closedNow := h.threshold > 0 && st.streak >= h.threshold
	st.streak = 0
	st.openUntil = time.Time{}
	if st.ewma == 0 {
		st.ewma = rtt
	} else {
		st.ewma = time.Duration((1-ewmaAlpha)*float64(st.ewma) + ewmaAlpha*float64(rtt))
	}
	h.inst.observe(url, st.ewma, nil, false, closedNow)
}

// hedgeDelay returns how long to wait for a primary attempt against url
// before firing a backup. A positive fixed delay wins; otherwise the delay
// adapts to the resolver's EWMA RTT (2×, clamped), and 0 — no history
// yet — means "do not hedge".
func (h *HealthTracker) hedgeDelay(url string, fixed time.Duration) time.Duration {
	if fixed > 0 {
		return fixed
	}
	h.mu.Lock()
	ewma := h.state(url).ewma
	h.mu.Unlock()
	if ewma == 0 {
		return 0
	}
	d := 2 * ewma
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

func (h *HealthTracker) recordHedge(url string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.state(url).hedges++
	h.inst.series(url).hedges.Inc()
}

// recordHedgeWin notes that a backup attempt, not the primary, produced
// the answer.
func (h *HealthTracker) recordHedgeWin(url string) {
	h.inst.series(url).hedgeWins.Inc()
}

// Snapshot reports health for each endpoint (unknown endpoints yield a
// zero-valued entry).
func (h *HealthTracker) Snapshot(endpoints []Endpoint) []ResolverHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	out := make([]ResolverHealth, len(endpoints))
	for i, ep := range endpoints {
		st := h.state(ep.URL)
		out[i] = ResolverHealth{
			Name:                ep.Name,
			URL:                 ep.URL,
			EWMARTT:             st.ewma,
			Successes:           st.successes,
			Failures:            st.failures,
			Hedges:              st.hedges,
			ConsecutiveFailures: st.streak,
			CircuitOpen:         h.threshold > 0 && st.streak >= h.threshold && now.Before(st.openUntil),
		}
	}
	return out
}

// hedgedQuerier wraps a Querier with the health tracker: it fails fast on
// open breakers, fires one backup attempt when the primary straggles past
// the hedge delay (RFC 8305 "happy eyeballs" spirit, applied per
// resolver), and feeds every outcome back into the tracker. Algorithm 1's
// quorum and truncation semantics are untouched — hedging only re-asks the
// same resolver, never substitutes a different one. With a trust tracker
// wired in, hedging is weighted by trust: a distrusted resolver gets no
// backup attempts — its answer will be quarantined anyway, so burning a
// second exchange on it only adds load the attacker controls.
type hedgedQuerier struct {
	inner   Querier
	health  *HealthTracker
	trust   *TrustTracker // nil: hedge on health alone
	fixed   time.Duration // > 0: fixed hedge delay; 0: adaptive
	disable bool
}

// Query implements Querier.
func (h *hedgedQuerier) Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	if !h.health.Allow(url) {
		return nil, fmt.Errorf("%s: %w", url, ErrCircuitOpen)
	}
	start := time.Now()
	resp, err := h.query(ctx, url, name, typ)
	h.health.Observe(url, time.Since(start), err)
	return resp, err
}

func (h *hedgedQuerier) query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	var delay time.Duration
	if !h.disable && (h.trust == nil || h.trust.Trusted(url)) {
		delay = h.health.hedgeDelay(url, h.fixed)
	}
	if delay <= 0 {
		return h.inner.Query(ctx, url, name, typ)
	}

	type outcome struct {
		resp   *dnswire.Message
		err    error
		backup bool
	}
	results := make(chan outcome, 2)
	attempt := func(backup bool) {
		resp, err := h.inner.Query(ctx, url, name, typ)
		results <- outcome{resp, err, backup}
	}
	// Hedged attempts are bounded fire-and-forget: the inner Query
	// carries ctx's deadline and the results channel is buffered for
	// both attempts, so a loser can never block or outlive the timeout.
	go attempt(false) // dohlint:allow(golifecycle) — bounded by ctx deadline, buffered channel
	outstanding := 1

	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C

	var lastErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				if r.backup {
					h.health.recordHedgeWin(url)
				}
				return r.resp, nil
			}
			lastErr = r.err
			if outstanding == 0 {
				return nil, lastErr
			}
		case <-timerC:
			timerC = nil
			h.health.recordHedge(url)
			outstanding++
			go attempt(true) // dohlint:allow(golifecycle) — bounded by ctx deadline, buffered channel
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
