package core

import (
	"net/netip"
	"sort"
	"sync"

	"dohpool/internal/attack"
	"dohpool/internal/metrics"
)

// Trust-scoring defaults.
const (
	// DefaultTrustWindow is how many recent pool generations feed a
	// resolver's trust score when EngineConfig.TrustWindow is 0.
	DefaultTrustWindow = 16
	// overlapFloor is the lowest value the corroboration signal alone can
	// drive a generation score to. Benign resolvers can legitimately see
	// disjoint rotation windows of a large pool RRset, so lack of overlap
	// is only circumstantial.
	overlapFloor = 0.5
	// majorityFloor bounds the majority-ejection penalty the same way.
	majorityFloor = 0.5
	// softFloor bounds the *combined* soft penalty (Overlap × Majority):
	// both soft signals share the same root cause (uncorroborated
	// answers), so they must not compound below what either could reach
	// alone. This is what makes the documented invariant true: at the
	// recommended TrustMinScore of 0.5 a resolver can never be distrusted
	// on corroboration misses alone — only the hard signals (bogus
	// prefix, inflation, shortfall) push below it.
	softFloor = 0.5
)

// TrustSignals is the per-generation component breakdown behind one
// resolver's trust observation. Every component lies in [0, 1]; the
// generation score is their product.
type TrustSignals struct {
	// Bogus is 1 minus the fraction of the answer inside the attacker
	// prefix (198.18.0.0/15, the RFC 2544 range — a bogon in any real
	// deployment, and the range every in-repo adversary injects from).
	Bogus float64
	// Inflation penalises answers longer than the consensus reference
	// length (the response-inflation attack truncation defends against):
	// reference/len when longer, else 1.
	Inflation float64
	// Shortfall penalises answers shorter than the reference — the
	// signal behind the footnote-2 truncation DoS (an empty answer drags
	// TruncateLength to zero): len/reference when shorter, else 1.
	Shortfall float64
	// Overlap is the soft corroboration signal: the fraction of the
	// resolver's distinct answers also returned by at least one other
	// resolver this generation, mapped onto [overlapFloor, 1].
	Overlap float64
	// Majority is the soft majority-vote signal when the filter ran: 1
	// minus half the fraction of the resolver's answers the vote ejected
	// (1.0 when the majority filter is off or the generation failed
	// before the vote).
	Majority float64
	// Score is the product of the hard components (Bogus, Inflation,
	// Shortfall) and the combined soft penalty (Overlap × Majority,
	// jointly floored at softFloor), clamped to [0, 1].
	Score float64
}

// ResolverTrust is a point-in-time snapshot of one resolver's trust.
type ResolverTrust struct {
	Name string
	URL  string
	// Score is the windowed mean of recent generation scores (1.0 before
	// the first observation: innocent until observed outlying).
	Score float64
	// Samples is how many generations currently sit in the window.
	Samples int
	// Distrusted reports whether the score is below the configured
	// minimum (always false when enforcement is off).
	Distrusted bool
	// Last is the most recent generation's component breakdown.
	Last TrustSignals
}

// TrustTracker maintains per-resolver trust over a sliding window of pool
// generations, keyed by endpoint URL. It is the adversarial-resilience
// counterpart of HealthTracker: health says "is the resolver answering",
// trust says "do its answers survive consensus". All methods are safe for
// concurrent use. The tracker sits entirely on the generation path —
// cached lookups never touch it.
type TrustTracker struct {
	// Scoring and recording run under this lock on every generation.
	//dohlint:hotlock
	mu       sync.Mutex
	window   int
	minScore float64
	states   map[string]*trustState
	inst     trustInstruments
}

type trustState struct {
	ring  []float64
	next  int
	count int
	last  TrustSignals
}

// NewTrustTracker builds a tracker scoring over the last window
// generations (0 uses DefaultTrustWindow). minScore is the distrust
// threshold; <= 0 keeps scoring observational only (no resolver is ever
// reported distrusted).
func NewTrustTracker(window int, minScore float64) *TrustTracker {
	if window <= 0 {
		window = DefaultTrustWindow
	}
	return &TrustTracker{
		window:   window,
		minScore: minScore,
		states:   make(map[string]*trustState),
	}
}

// instrument attaches metric instruments. Call before traffic (NewEngine
// does).
func (t *TrustTracker) instrument(inst trustInstruments) {
	t.inst = inst
}

func (t *TrustTracker) state(url string) *trustState {
	st, ok := t.states[url]
	if !ok {
		st = &trustState{ring: make([]float64, t.window)}
		t.states[url] = st
	}
	return st
}

// scoreLocked computes the windowed mean; t.mu must be held.
func (st *trustState) score() float64 {
	if st.count == 0 {
		return 1
	}
	sum := 0.0
	for i := 0; i < st.count; i++ {
		sum += st.ring[i]
	}
	return sum / float64(st.count)
}

// Score returns url's current trust score in [0, 1] (1.0 before any
// observation).
func (t *TrustTracker) Score(url string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state(url).score()
}

// Trusted reports whether url's score clears the distrust threshold.
// With enforcement off (minScore <= 0) every resolver is trusted.
func (t *TrustTracker) Trusted(url string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.minScore <= 0 || t.state(url).score() >= t.minScore
}

// Enforcing reports whether a distrust threshold is configured.
func (t *TrustTracker) Enforcing() bool { return t.minScore > 0 }

// Snapshot reports trust for each endpoint (unknown endpoints yield the
// neutral score).
func (t *TrustTracker) Snapshot(endpoints []Endpoint) []ResolverTrust {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ResolverTrust, len(endpoints))
	for i, ep := range endpoints {
		st := t.state(ep.URL)
		score := st.score()
		out[i] = ResolverTrust{
			Name:       ep.Name,
			URL:        ep.URL,
			Score:      score,
			Samples:    st.count,
			Distrusted: t.minScore > 0 && score < t.minScore,
			Last:       st.last,
		}
	}
	return out
}

// annotate stamps each contributing result with the resolver's score as
// of *before* this generation — exclusion decisions must rest on history,
// never on the observation the generation itself is about to add.
func (t *TrustTracker) annotate(results []ResolverResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range results {
		if results[i].Err == nil {
			results[i].TrustScore = t.state(results[i].Endpoint.URL).score()
		}
	}
}

// observeGeneration folds one generation's per-resolver conduct into the
// windows. majorityRan reports that the majority vote actually executed
// this generation (majority is its result, possibly empty); on failed
// generations it is false, so honest responders are not scored as if
// everything they said had been ejected by a vote that never happened.
// Failed resolvers contribute no observation — errors are the
// HealthTracker's domain, trust judges only answers.
func (t *TrustTracker) observeGeneration(results []ResolverResult, majority []netip.Addr, majorityRan bool) {
	type contribution struct {
		idx      int
		distinct map[netip.Addr]bool
	}
	var contrib []contribution
	lens := make([]int, 0, len(results))
	for i := range results {
		if results[i].Err != nil {
			continue
		}
		set := make(map[netip.Addr]bool, len(results[i].Addrs))
		for _, a := range results[i].Addrs {
			set[a] = true
		}
		contrib = append(contrib, contribution{idx: i, distinct: set})
		lens = append(lens, len(results[i].Addrs))
	}
	if len(contrib) == 0 {
		return
	}
	// Upper median as the consensus reference length: robust against a
	// minority dragging it down (empty answers) or up (inflated answers).
	sorted := append([]int(nil), lens...)
	sort.Ints(sorted)
	ref := sorted[len(sorted)/2]

	majoritySet := make(map[netip.Addr]bool, len(majority))
	for _, a := range majority {
		majoritySet[a] = true
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range contrib {
		r := &results[c.idx]
		sig := TrustSignals{Bogus: 1, Inflation: 1, Shortfall: 1, Overlap: 1, Majority: 1}

		n := len(r.Addrs)
		if n > 0 {
			bogus := 0
			for _, a := range r.Addrs {
				if attack.IsAttackerAddr(a) {
					bogus++
				}
			}
			sig.Bogus = 1 - float64(bogus)/float64(n)
		}
		if ref > 0 {
			if n > ref {
				sig.Inflation = float64(ref) / float64(n)
			}
			if n < ref {
				sig.Shortfall = float64(n) / float64(ref)
			}
		}
		if len(c.distinct) > 0 && len(contrib) > 1 {
			corroborated := 0
			for a := range c.distinct {
				for _, other := range contrib {
					if other.idx != c.idx && other.distinct[a] {
						corroborated++
						break
					}
				}
			}
			frac := float64(corroborated) / float64(len(c.distinct))
			sig.Overlap = overlapFloor + (1-overlapFloor)*frac
		}
		if majorityRan && len(c.distinct) > 0 {
			ejected := 0
			for a := range c.distinct {
				if !majoritySet[a] {
					ejected++
				}
			}
			frac := float64(ejected) / float64(len(c.distinct))
			sig.Majority = 1 - (1-majorityFloor)*frac
		}

		soft := sig.Overlap * sig.Majority
		if soft < softFloor {
			soft = softFloor
		}
		sig.Score = sig.Bogus * sig.Inflation * sig.Shortfall * soft
		if sig.Score < 0 {
			sig.Score = 0
		}
		if sig.Score > 1 {
			sig.Score = 1
		}

		st := t.state(r.Endpoint.URL)
		st.ring[st.next] = sig.Score
		st.next = (st.next + 1) % t.window
		if st.count < t.window {
			st.count++
		}
		st.last = sig
		t.inst.setScore(r.Endpoint, st.score())
	}
}

// excludeSet decides which contributing results to quarantine this
// generation: every distrusted resolver — but only while the trusted
// contributors still form a strict majority of all contributors, the
// trust-weighted quorum rule. (If distrust ever spreads to half the
// responding set, something other than a compromised minority is wrong,
// and the generator fails open to the paper's plain Algorithm 1 rather
// than concentrating the pool on a shrinking subset.) Returned indices
// index into results.
func (t *TrustTracker) excludeSet(results []ResolverResult) []int {
	if !t.Enforcing() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var excluded []int
	contributing := 0
	for i := range results {
		if results[i].Err != nil {
			continue
		}
		contributing++
		if t.state(results[i].Endpoint.URL).score() < t.minScore {
			excluded = append(excluded, i)
		}
	}
	trusted := contributing - len(excluded)
	if len(excluded) == 0 || trusted <= contributing/2 {
		return nil
	}
	return excluded
}

// recordFiltered counts one generation-level filtering event by reason.
func (t *TrustTracker) recordFiltered(reason string) {
	t.inst.filtered(reason)
}

// trustInstruments holds the tracker's pre-resolved instruments. The zero
// value no-ops.
type trustInstruments struct {
	scoreByURL  map[string]*metrics.Gauge
	scoreVec    *metrics.GaugeVec
	filteredVec *metrics.CounterVec
	// pre-resolved reasons emitted by the generator.
	filteredDistrust *metrics.Counter
	filteredDoS      *metrics.Counter
}

func newTrustInstruments(reg *metrics.Registry, endpoints []Endpoint) trustInstruments {
	inst := trustInstruments{
		scoreByURL: make(map[string]*metrics.Gauge, len(endpoints)),
		scoreVec: reg.GaugeVec(MetricResolverTrust,
			"Windowed trust score per resolver in [0,1]: how often its answers survive consensus (1 = never outlying).",
			"resolver"),
		filteredVec: reg.CounterVec(MetricGenerationsFiltered,
			"Pool generations where trust enforcement quarantined resolver contributions, by reason.",
			"reason"),
	}
	inst.filteredDistrust = inst.filteredVec.With("distrust")
	inst.filteredDoS = inst.filteredVec.With("truncation_dos")
	for _, ep := range endpoints {
		label := ep.Name
		if label == "" {
			label = ep.URL
		}
		g := inst.scoreVec.With(label)
		g.Set(1) // neutral score visible from the first scrape
		inst.scoreByURL[ep.URL] = g
	}
	return inst
}

func (ti *trustInstruments) setScore(ep Endpoint, score float64) {
	if g, ok := ti.scoreByURL[ep.URL]; ok {
		g.Set(score)
		return
	}
	label := ep.Name
	if label == "" {
		label = ep.URL
	}
	ti.scoreVec.With(label).Set(score)
}

func (ti *trustInstruments) filtered(reason string) {
	switch reason {
	case "distrust":
		ti.filteredDistrust.Inc()
	case "truncation_dos":
		ti.filteredDoS.Inc()
	default:
		ti.filteredVec.With(reason).Inc()
	}
}

// AttackerEntries counts pool members inside the attacker prefix — the
// poisoned-entry figure the chaos smoke job and the live experiments
// assert on.
func (p *Pool) AttackerEntries() int {
	n := 0
	for _, a := range p.Addrs {
		if attack.IsAttackerAddr(a) {
			n++
		}
	}
	return n
}
