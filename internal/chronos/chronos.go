// Package chronos implements the Chronos NTP client algorithm of Deutsch,
// Rotem Schiff, Dolev and Schapira (NDSS 2018), the mechanism the paper
// deploys "in tandem" with distributed-DoH pool generation. Chronos
// samples a random subset of the server pool, crops outlier time samples,
// and only accepts an update when the surviving samples agree — so a
// minority of malicious servers inside the pool cannot shift the clock.
//
// The paper's division of labour: distributed DoH guarantees the *pool*
// has an honest majority at the DNS layer; Chronos turns an
// honest-majority pool into a trustworthy *clock* at the NTP layer.
package chronos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"
)

// Chronos errors.
var (
	// ErrEmptyPool reports a poll against an empty pool.
	ErrEmptyPool = errors.New("chronos pool is empty")
	// ErrNoSamples reports that no sampled server answered.
	ErrNoSamples = errors.New("no ntp samples gathered")
	// ErrPanicFailed reports that even the panic routine could not gather
	// agreeing samples.
	ErrPanicFailed = errors.New("panic routine failed to converge")
)

// Defaults per the Chronos paper's recommended operating point.
const (
	// DefaultSampleSize is m, the servers sampled per poll.
	DefaultSampleSize = 6
	// DefaultOmega is ω, the allowed spread among surviving samples.
	DefaultOmega = 100 * time.Millisecond
	// DefaultDriftBound bounds |avg offset| before a sample set is deemed
	// suspicious (the ERR+drift term of the Chronos condition).
	DefaultDriftBound = 30 * time.Second
	// DefaultMaxRetries is K, resampling attempts before panic.
	DefaultMaxRetries = 3
)

// Sampler obtains one time-offset sample from one pool server. The
// testbed backs this with the SNTP client plus an address directory.
type Sampler interface {
	Sample(ctx context.Context, server netip.Addr) (time.Duration, error)
}

// SamplerFunc adapts a function to Sampler.
type SamplerFunc func(ctx context.Context, server netip.Addr) (time.Duration, error)

// Sample implements Sampler.
func (f SamplerFunc) Sample(ctx context.Context, server netip.Addr) (time.Duration, error) {
	return f(ctx, server)
}

var _ Sampler = SamplerFunc(nil)

// Config configures a Chronos client.
type Config struct {
	// Pool is the NTP server pool (from Algorithm 1; duplicates allowed
	// and meaningful).
	Pool []netip.Addr
	// Sampler gathers offset samples.
	Sampler Sampler
	// SampleSize is m (default DefaultSampleSize, capped at |Pool|).
	SampleSize int
	// CropPerSide is d, samples cropped from each end (default m/3).
	CropPerSide int
	// Omega is the agreement bound ω.
	Omega time.Duration
	// DriftBound bounds the accepted |average offset|.
	DriftBound time.Duration
	// MaxRetries is K, resample attempts before the panic routine.
	MaxRetries int
	// Seed makes sampling deterministic (0 draws a random seed).
	Seed int64
}

// Client is a Chronos NTP client.
type Client struct {
	cfg Config
	rng *rand.Rand
}

// New validates cfg and builds a Client.
func New(cfg Config) (*Client, error) {
	if len(cfg.Pool) == 0 {
		return nil, ErrEmptyPool
	}
	if cfg.Sampler == nil {
		return nil, errors.New("chronos needs a Sampler")
	}
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = DefaultSampleSize
	}
	if cfg.SampleSize > len(cfg.Pool) {
		cfg.SampleSize = len(cfg.Pool)
	}
	if cfg.CropPerSide < 0 {
		return nil, fmt.Errorf("crop %d must be >= 0", cfg.CropPerSide)
	}
	if cfg.CropPerSide == 0 {
		cfg.CropPerSide = cfg.SampleSize / 3
	}
	if 2*cfg.CropPerSide >= cfg.SampleSize {
		return nil, fmt.Errorf("crop %d per side leaves no samples of %d", cfg.CropPerSide, cfg.SampleSize)
	}
	if cfg.Omega <= 0 {
		cfg.Omega = DefaultOmega
	}
	if cfg.DriftBound <= 0 {
		cfg.DriftBound = DefaultDriftBound
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// Sample is one per-server measurement.
type Sample struct {
	Server netip.Addr
	Offset time.Duration
	Err    error
}

// PollResult is the outcome of one Chronos poll.
type PollResult struct {
	// Offset is the accepted clock offset.
	Offset time.Duration
	// Panicked reports whether the panic routine was needed.
	Panicked bool
	// Retries counts failed sampling rounds before acceptance.
	Retries int
	// Samples holds the final round's raw measurements.
	Samples []Sample
}

// Poll runs the Chronos algorithm once: sample m random pool servers,
// crop d from each end, accept if the survivors agree within ω and their
// average is within the drift bound; otherwise resample up to K times and
// finally fall back to the panic routine (query the whole pool).
func (c *Client) Poll(ctx context.Context) (PollResult, error) {
	var result PollResult
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		servers := c.drawSample()
		samples := c.gather(ctx, servers)
		result.Samples = samples
		offset, ok := c.evaluate(samples, c.cfg.CropPerSide)
		if ok {
			result.Offset = offset
			result.Retries = attempt
			return result, nil
		}
		result.Retries = attempt + 1
	}

	// Panic routine: sample every server in the pool, crop a third per
	// side, accept the average unconditionally on spread (the Chronos
	// guarantee: with < 1/3 malicious servers the cropped average is
	// safe) but still require samples.
	samples := c.gather(ctx, c.cfg.Pool)
	result.Samples = samples
	result.Panicked = true
	good := successful(samples)
	if len(good) == 0 {
		return result, ErrNoSamples
	}
	crop := len(good) / 3
	if 2*crop >= len(good) {
		crop = (len(good) - 1) / 2
	}
	offset, ok := average(good, crop)
	if !ok {
		return result, ErrPanicFailed
	}
	result.Offset = offset
	return result, nil
}

// drawSample selects m pool members uniformly without replacement of
// *positions* (the same address may appear twice if the pool lists it
// twice — duplicates are individual servers per the paper's Section IV).
func (c *Client) drawSample() []netip.Addr {
	m := c.cfg.SampleSize
	idx := c.rng.Perm(len(c.cfg.Pool))[:m]
	servers := make([]netip.Addr, m)
	for i, j := range idx {
		servers[i] = c.cfg.Pool[j]
	}
	return servers
}

// gather queries every server, collecting samples (errors included).
func (c *Client) gather(ctx context.Context, servers []netip.Addr) []Sample {
	samples := make([]Sample, len(servers))
	for i, s := range servers {
		offset, err := c.cfg.Sampler.Sample(ctx, s)
		samples[i] = Sample{Server: s, Offset: offset, Err: err}
	}
	return samples
}

// evaluate applies the Chronos acceptance test to one round of samples.
func (c *Client) evaluate(samples []Sample, crop int) (time.Duration, bool) {
	good := successful(samples)
	// Failed samples reduce confidence; insist on a full round.
	if len(good) < len(samples) || len(good) == 0 {
		return 0, false
	}
	offsets := sortedOffsets(good)
	survivors := offsets[crop : len(offsets)-crop]
	if len(survivors) == 0 {
		return 0, false
	}
	// Condition 1: survivors agree within ω.
	if survivors[len(survivors)-1]-survivors[0] > c.cfg.Omega {
		return 0, false
	}
	// Condition 2: the implied clock shift is sane.
	avg := mean(survivors)
	if avg > c.cfg.DriftBound || avg < -c.cfg.DriftBound {
		return 0, false
	}
	return avg, true
}

func successful(samples []Sample) []Sample {
	good := make([]Sample, 0, len(samples))
	for _, s := range samples {
		if s.Err == nil {
			good = append(good, s)
		}
	}
	return good
}

func sortedOffsets(samples []Sample) []time.Duration {
	offsets := make([]time.Duration, len(samples))
	for i, s := range samples {
		offsets[i] = s.Offset
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	return offsets
}

// average crops and averages successful samples; ok is false when
// cropping eats everything.
func average(samples []Sample, crop int) (time.Duration, bool) {
	offsets := sortedOffsets(samples)
	if 2*crop >= len(offsets) {
		return 0, false
	}
	return mean(offsets[crop : len(offsets)-crop]), true
}

func mean(offsets []time.Duration) time.Duration {
	if len(offsets) == 0 {
		return 0
	}
	var total time.Duration
	for _, o := range offsets {
		total += o
	}
	return total / time.Duration(len(offsets))
}
