package chronos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

// poolAddr returns a synthetic benign (192.0.2.x) or malicious
// (198.18.0.x) address.
func benignAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)})
}

func maliciousAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{198, 18, 0, byte(i + 1)})
}

// simSampler answers with jittered truth for benign servers and a fixed
// shift for malicious ones (the Chronos adversary).
type simSampler struct {
	shift  time.Duration
	jitter time.Duration
	rng    *rand.Rand
	fail   map[netip.Addr]bool
	calls  int
}

func newSimSampler(shift time.Duration) *simSampler {
	return &simSampler{
		shift:  shift,
		jitter: 2 * time.Millisecond,
		rng:    rand.New(rand.NewSource(1)),
		fail:   make(map[netip.Addr]bool),
	}
}

func (s *simSampler) Sample(_ context.Context, server netip.Addr) (time.Duration, error) {
	s.calls++
	if s.fail[server] {
		return 0, errors.New("server unreachable")
	}
	j := time.Duration(s.rng.Int63n(int64(2*s.jitter))) - s.jitter
	if server.As4()[0] == 198 { // attacker prefix
		return s.shift + j, nil
	}
	return j, nil
}

// makePool builds a pool with the given benign and malicious counts.
func makePool(benign, malicious int) []netip.Addr {
	pool := make([]netip.Addr, 0, benign+malicious)
	for i := 0; i < benign; i++ {
		pool = append(pool, benignAddr(i))
	}
	for i := 0; i < malicious; i++ {
		pool = append(pool, maliciousAddr(i))
	}
	return pool
}

func TestConfigValidation(t *testing.T) {
	sampler := newSimSampler(0)
	if _, err := New(Config{Sampler: sampler}); !errors.Is(err, ErrEmptyPool) {
		t.Errorf("empty pool: %v", err)
	}
	if _, err := New(Config{Pool: makePool(3, 0)}); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := New(Config{Pool: makePool(9, 0), Sampler: sampler, SampleSize: 4, CropPerSide: 2}); err == nil {
		t.Error("crop eating all samples accepted")
	}
	if _, err := New(Config{Pool: makePool(9, 0), Sampler: sampler, CropPerSide: -1}); err == nil {
		t.Error("negative crop accepted")
	}
}

func TestBenignPoolAccepts(t *testing.T) {
	sampler := newSimSampler(0)
	c, err := New(Config{Pool: makePool(12, 0), Sampler: sampler, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Panicked {
		t.Error("benign pool triggered panic")
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d", res.Retries)
	}
	if res.Offset < -10*time.Millisecond || res.Offset > 10*time.Millisecond {
		t.Errorf("offset = %v, want ~0", res.Offset)
	}
}

// The Chronos guarantee reproduced: with less than a third of the pool
// malicious (shifted by 10 minutes), the accepted offset stays tiny over
// many polls — cropping plus the agreement test filter the liars out.
func TestMinorityAttackerCannotShiftClock(t *testing.T) {
	sampler := newSimSampler(600 * time.Second)
	pool := makePool(9, 3) // 25% malicious
	c, err := New(Config{Pool: pool, Sampler: sampler, SampleSize: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		res, err := c.Poll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Offset < -50*time.Millisecond || res.Offset > 50*time.Millisecond {
			t.Fatalf("poll %d: accepted offset %v under minority attack", i, res.Offset)
		}
	}
}

// The converse: a malicious *majority* (what a successful DNS attack
// produces) shifts the Chronos clock — demonstrating why the DNS layer
// needs the paper's mechanism.
func TestMajorityAttackerShiftsClock(t *testing.T) {
	const shift = 600 * time.Second
	sampler := newSimSampler(shift)
	pool := makePool(2, 10) // 83% malicious
	c, err := New(Config{
		Pool: pool, Sampler: sampler, SampleSize: 6, Seed: 3,
		// Attacker-chosen shift within the drift bound evades cond. 2.
		DriftBound: 2 * shift,
	})
	if err != nil {
		t.Fatal(err)
	}
	shifted := false
	for i := 0; i < 20 && !shifted; i++ {
		res, err := c.Poll(context.Background())
		if err != nil {
			continue
		}
		if res.Offset > shift/2 {
			shifted = true
		}
	}
	if !shifted {
		t.Fatal("malicious majority never captured the clock — attack model broken")
	}
}

func TestDriftBoundRejectsHugeShift(t *testing.T) {
	// All-malicious pool with an enormous shift: condition 2 keeps
	// rejecting rounds; panic routine then averages the (all-lying)
	// samples — but the accepted offset is flagged via Panicked so the
	// caller can alert.
	sampler := newSimSampler(3600 * time.Second)
	pool := makePool(0, 9)
	c, err := New(Config{Pool: pool, Sampler: sampler, SampleSize: 6, Seed: 5,
		DriftBound: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Panicked {
		t.Fatal("huge uniform shift accepted without panic")
	}
	if res.Retries != DefaultMaxRetries+1 {
		t.Errorf("retries = %d, want %d", res.Retries, DefaultMaxRetries+1)
	}
}

func TestDisagreeingSamplesForceRetry(t *testing.T) {
	// Malicious servers answer with scattered shifts wider than ω, so any
	// sample containing enough of them fails condition 1.
	scatter := SamplerFunc(func(_ context.Context, server netip.Addr) (time.Duration, error) {
		if server.As4()[0] == 198 {
			return time.Duration(server.As4()[3]) * time.Minute, nil
		}
		return 0, nil
	})
	pool := makePool(4, 8)
	c, err := New(Config{Pool: pool, Sampler: scatter, SampleSize: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 && !res.Panicked {
		t.Skip("lucky draw — all-benign sample on first try")
	}
}

func TestFailedServersForceRetryThenPanic(t *testing.T) {
	sampler := newSimSampler(0)
	pool := makePool(9, 0)
	for i := 0; i < 9; i++ {
		sampler.fail[benignAddr(i)] = true
	}
	c, err := New(Config{Pool: pool, Sampler: sampler, SampleSize: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Poll(context.Background())
	if !errors.Is(err, ErrNoSamples) {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
}

func TestPartialFailuresStillConverge(t *testing.T) {
	sampler := newSimSampler(0)
	pool := makePool(12, 0)
	// Two dead servers: rounds containing them fail, but retries find
	// clean rounds (or panic succeeds on the survivors).
	sampler.fail[benignAddr(0)] = true
	sampler.fail[benignAddr(1)] = true
	c, err := New(Config{Pool: pool, Sampler: sampler, SampleSize: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Offset < -20*time.Millisecond || res.Offset > 20*time.Millisecond {
		t.Errorf("offset = %v", res.Offset)
	}
}

func TestSampleSizeCappedAtPool(t *testing.T) {
	sampler := newSimSampler(0)
	c, err := New(Config{Pool: makePool(3, 0), Sampler: sampler, SampleSize: 50, CropPerSide: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 3 {
		t.Errorf("sampled %d servers from pool of 3", len(res.Samples))
	}
}

func TestDuplicatePoolEntriesAreSampledIndividually(t *testing.T) {
	// A pool of one address repeated: sampling must still work, treating
	// each occurrence as a server (paper §IV requirement).
	pool := make([]netip.Addr, 6)
	for i := range pool {
		pool[i] = benignAddr(0)
	}
	sampler := newSimSampler(0)
	c, err := New(Config{Pool: pool, Sampler: sampler, SampleSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 4 {
		t.Errorf("samples = %d", len(res.Samples))
	}
}

// Monte-Carlo flavoured check: success probability of the attacker grows
// with its pool share, crossing over around the crop threshold.
func TestAttackSuccessGrowsWithPoolShare(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const shift = 120 * time.Second
	captureRate := func(malicious int) float64 {
		captured := 0
		const polls = 60
		for trial := 0; trial < polls; trial++ {
			sampler := newSimSampler(shift)
			pool := makePool(12-malicious, malicious)
			c, err := New(Config{Pool: pool, Sampler: sampler, SampleSize: 6,
				Seed: int64(trial + 1), DriftBound: 10 * shift})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Poll(context.Background())
			if err != nil {
				continue
			}
			if res.Offset > shift/2 {
				captured++
			}
		}
		return float64(captured) / polls
	}
	low := captureRate(2)   // 17% malicious
	high := captureRate(10) // 83% malicious
	if low > 0.05 {
		t.Errorf("17%% malicious captured clock at rate %.2f", low)
	}
	if high < 0.5 {
		t.Errorf("83%% malicious captured clock only at rate %.2f", high)
	}
}

func TestSamplerFuncAdapter(t *testing.T) {
	called := false
	f := SamplerFunc(func(context.Context, netip.Addr) (time.Duration, error) {
		called = true
		return 5 * time.Millisecond, nil
	})
	got, err := f.Sample(context.Background(), benignAddr(0))
	if err != nil || got != 5*time.Millisecond || !called {
		t.Fatalf("adapter broken: %v %v %t", got, err, called)
	}
}

func ExampleClient_Poll() {
	sampler := SamplerFunc(func(_ context.Context, _ netip.Addr) (time.Duration, error) {
		return 1 * time.Millisecond, nil
	})
	pool := makePool(9, 0)
	c, err := New(Config{Pool: pool, Sampler: sampler, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := c.Poll(context.Background())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("offset=%v panicked=%t\n", res.Offset, res.Panicked)
	// Output: offset=1ms panicked=false
}

// Condition 2 (the drift bound) is the defence E10 relies on: a uniform
// shift larger than the bound is rejected in sampling rounds even though
// the samples agree perfectly with each other.
func TestDriftBoundRejectsAgreeingButShiftedRounds(t *testing.T) {
	const shift = 120 * time.Second
	uniform := SamplerFunc(func(context.Context, netip.Addr) (time.Duration, error) {
		return shift, nil // all servers agree on a 2-minute lie
	})
	c, err := New(Config{
		Pool:       makePool(0, 9),
		Sampler:    uniform,
		SampleSize: 6,
		Seed:       4,
		DriftBound: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Panicked {
		t.Fatal("agreeing-but-shifted rounds accepted without panic — condition 2 broken")
	}
	// Conversely, a shift inside the bound passes condition 2.
	small := SamplerFunc(func(context.Context, netip.Addr) (time.Duration, error) {
		return 10 * time.Second, nil
	})
	c2, err := New(Config{
		Pool:       makePool(9, 0),
		Sampler:    small,
		SampleSize: 6,
		Seed:       4,
		DriftBound: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Panicked || res2.Offset != 10*time.Second {
		t.Fatalf("in-bound shift rejected: %+v", res2)
	}
}
