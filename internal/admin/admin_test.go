package admin

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
	"dohpool/internal/metrics"
)

// fakeQuerier answers every resolver URL with a fixed list, or fails
// when broken.
type fakeQuerier struct {
	lists  map[string][]netip.Addr
	broken bool
}

func (f *fakeQuerier) Query(_ context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	if f.broken {
		return nil, errors.New("resolver down")
	}
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(query)
	for _, a := range f.lists[url] {
		resp.Answers = append(resp.Answers, dnswire.AddressRecord(name, a, 120))
	}
	return resp, nil
}

func engineUnderTest(t *testing.T, reg *metrics.Registry, q core.Querier, threshold int) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.Config{
		Resolvers: []core.Endpoint{
			{Name: "r0", URL: "u0"},
			{Name: "r1", URL: "u1"},
			{Name: "r2", URL: "u2"},
		},
		Querier: q,
	}, core.EngineConfig{Metrics: reg, BreakerThreshold: threshold, DisableHedging: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng
}

func workingQuerier() *fakeQuerier {
	return &fakeQuerier{lists: map[string][]netip.Addr{
		"u0": {netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.2")},
		"u1": {netip.MustParseAddr("192.0.2.3"), netip.MustParseAddr("192.0.2.4")},
		"u2": {netip.MustParseAddr("192.0.2.5"), netip.MustParseAddr("192.0.2.6")},
	}}
}

func serverUnderTest(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpointParsesAsPrometheusText(t *testing.T) {
	reg := metrics.New()
	eng := engineUnderTest(t, reg, workingQuerier(), 0)
	if _, err := eng.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	srv := serverUnderTest(t, Config{Registry: reg, Engine: eng})

	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if err := metrics.ValidatePrometheusText(body); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text format: %v\n%s", err, body)
	}
	for _, want := range []string{
		core.MetricEngineLookups + `{outcome="network"} 1`,
		core.MetricCacheMisses + " 1",
		core.MetricResolverExchanges + `{resolver="r0",result="ok"} 1`,
		core.MetricBreakerState + `{resolver="r2"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestHealthzFlipsWhenAllBreakersOpen(t *testing.T) {
	reg := metrics.New()
	q := workingQuerier()
	eng := engineUnderTest(t, reg, q, 2)
	srv := serverUnderTest(t, Config{Registry: reg, Engine: eng})
	url := "http://" + srv.Addr() + "/healthz"

	code, body := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET /healthz before failures = %d (%s)", code, body)
	}
	var h struct {
		Status    string `json:"status"`
		Resolvers []struct {
			Name        string `json:"name"`
			CircuitOpen bool   `json:"circuit_open"`
		} `json:"resolvers"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || len(h.Resolvers) != 3 {
		t.Fatalf("healthz = %+v", h)
	}

	// Open every breaker: two failing fan-outs reach threshold 2 on all
	// three resolvers.
	q.broken = true
	for i := 0; i < 2; i++ {
		if _, err := eng.Lookup(context.Background(), fmt.Sprintf("m%d.test.", i), dnswire.TypeA); err == nil {
			t.Fatal("lookup against dead resolvers succeeded")
		}
	}
	code, body = get(t, url)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz with all breakers open = %d (%s)", code, body)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "unavailable" {
		t.Fatalf("status = %q, want unavailable", h.Status)
	}
	for _, r := range h.Resolvers {
		if !r.CircuitOpen {
			t.Errorf("resolver %s reported closed breaker", r.Name)
		}
	}
}

func TestPoolzReflectsCachedPool(t *testing.T) {
	reg := metrics.New()
	eng := engineUnderTest(t, reg, workingQuerier(), 0)
	srv := serverUnderTest(t, Config{Registry: reg, Engine: eng})
	url := "http://" + srv.Addr() + "/poolz"

	code, body := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET /poolz = %d", code)
	}
	var p struct {
		Pools []struct {
			Key            string   `json:"key"`
			Addrs          []string `json:"addrs"`
			TruncateLength int      `json:"truncate_length"`
			Responding     int      `json:"responding"`
			TTLSeconds     float64  `json:"ttl_seconds"`
			Stale          bool     `json:"stale"`
			Hits           uint64   `json:"hits"`
			Refreshes      uint64   `json:"refreshes"`
			LastRefresh    string   `json:"last_refresh"`
		} `json:"pools"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/poolz is not JSON: %v\n%s", err, body)
	}
	if len(p.Pools) != 0 {
		t.Fatalf("poolz before any lookup = %d pools", len(p.Pools))
	}

	if _, err := eng.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, url)
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Pools) != 1 {
		t.Fatalf("poolz = %d pools, want 1\n%s", len(p.Pools), body)
	}
	pool := p.Pools[0]
	if !strings.HasPrefix(pool.Key, "pool.test.|") {
		t.Errorf("key = %q", pool.Key)
	}
	if len(pool.Addrs) != 6 || pool.TruncateLength != 2 || pool.Responding != 3 {
		t.Errorf("pool = %+v", pool)
	}
	if pool.Addrs[0] != "192.0.2.1" {
		t.Errorf("addrs[0] = %q", pool.Addrs[0])
	}
	if pool.TTLSeconds <= 0 || pool.TTLSeconds > 120 || pool.Stale {
		t.Errorf("ttl_seconds = %v stale = %v", pool.TTLSeconds, pool.Stale)
	}
	if pool.Refreshes != 0 || pool.LastRefresh != "none" {
		t.Errorf("fresh entry refresh state = %d/%q, want 0/none", pool.Refreshes, pool.LastRefresh)
	}

	// A second lookup is a cache hit; /poolz must reflect it in the
	// entry's popularity counter.
	if _, err := eng.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, url)
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Pools) != 1 || p.Pools[0].Hits != 1 {
		t.Errorf("hits after one cached lookup = %d, want 1\n%s", p.Pools[0].Hits, body)
	}
}

// TestMetricsExposeRefreshAndShardFamilies verifies the refresh-ahead
// counters and the per-shard hit distribution reach /metrics.
func TestMetricsExposeRefreshAndShardFamilies(t *testing.T) {
	reg := metrics.New()
	eng := engineUnderTest(t, reg, workingQuerier(), 0)
	for i := 0; i < 3; i++ {
		if _, err := eng.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	srv := serverUnderTest(t, Config{Registry: reg, Engine: eng})
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if err := metrics.ValidatePrometheusText(body); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		core.MetricRefreshAttempts + " 0",
		core.MetricRefreshWins + " 0",
		core.MetricRefreshFailures + " 0",
		core.MetricEngineGenerations + `{trigger="inline"} 1`,
		core.MetricEngineGenerations + `{trigger="background"} 0`,
		core.MetricCacheShardHits + `{shard="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The shard hit distribution must sum to the aggregate hit counter.
	var shardSum, total float64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, core.MetricCacheShardHits+"{") {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
				t.Fatalf("bad shard line %q: %v", line, err)
			}
			shardSum += v
		}
		if strings.HasPrefix(line, core.MetricCacheHits+" ") {
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &total); err != nil {
				t.Fatalf("bad hits line %q: %v", line, err)
			}
		}
	}
	if shardSum != total || total != 2 {
		t.Errorf("shard hits sum = %v, aggregate = %v (want equal, 2)", shardSum, total)
	}
}

// TestListenerStateOnHealthzAndPoolz checks both endpoints surface the
// serving frontend's live listener set (and an empty array, not null,
// before any frontend serves).
func TestListenerStateOnHealthzAndPoolz(t *testing.T) {
	bare := serverUnderTest(t, Config{})
	for _, path := range []string{"/healthz", "/poolz"} {
		_, body := get(t, "http://"+bare.Addr()+path)
		if !strings.Contains(body, `"listeners": []`) {
			t.Errorf("%s without a frontend = %s, want empty listeners array", path, body)
		}
	}

	listeners := []core.ListenerInfo{
		{Proto: "udp", Addr: "127.0.0.1:5353"},
		{Proto: "tcp", Addr: "127.0.0.1:5353"},
		{Proto: "dot", Addr: "127.0.0.1:8853", Encrypted: true},
		{Proto: "doh", Addr: "127.0.0.1:8443", Encrypted: true},
	}
	srv := serverUnderTest(t, Config{Listeners: func() []core.ListenerInfo { return listeners }})
	for _, path := range []string{"/healthz", "/poolz"} {
		code, body := get(t, "http://"+srv.Addr()+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, code)
		}
		for _, l := range listeners {
			if !strings.Contains(body, `"proto": "`+l.Proto+`"`) || !strings.Contains(body, l.Addr) {
				t.Errorf("%s missing %s listener %s: %s", path, l.Proto, l.Addr, body)
			}
		}
		if !strings.Contains(body, `"encrypted": true`) {
			t.Errorf("%s missing encrypted flag: %s", path, body)
		}
	}
}

func TestUnknownPathIs404(t *testing.T) {
	srv := serverUnderTest(t, Config{})
	code, _ := get(t, "http://"+srv.Addr()+"/nope")
	if code != http.StatusNotFound {
		t.Fatalf("GET /nope = %d", code)
	}
}

// TestTrustzReportsScoresAndQuarantine drives one poisoned generation
// through the engine and checks /trustz exposes the per-resolver scores
// (with the bogus-prefix signal) and /poolz the attacker-entry count.
func TestTrustzReportsScoresAndQuarantine(t *testing.T) {
	reg := metrics.New()
	q := workingQuerier()
	q.lists["u2"] = attack.AttackerAddrs(2)
	eng, err := core.NewEngine(core.Config{
		Resolvers: []core.Endpoint{
			{Name: "r0", URL: "u0"},
			{Name: "r1", URL: "u1"},
			{Name: "r2", URL: "u2"},
		},
		Querier: q,
	}, core.EngineConfig{
		Metrics:        reg,
		DisableHedging: true,
		CacheSize:      -1,
		TrustWindow:    4,
		TrustMinScore:  0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	if _, err := eng.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	srv := serverUnderTest(t, Config{Registry: reg, Engine: eng})

	code, body := get(t, "http://"+srv.Addr()+"/trustz")
	if code != http.StatusOK {
		t.Fatalf("GET /trustz = %d", code)
	}
	var tr struct {
		Enabled   bool `json:"enabled"`
		Resolvers []struct {
			Name       string  `json:"name"`
			Score      float64 `json:"score"`
			Distrusted bool    `json:"distrusted"`
			LastBogus  float64 `json:"last_bogus"`
		} `json:"resolvers"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("bad /trustz JSON: %v\n%s", err, body)
	}
	if !tr.Enabled || len(tr.Resolvers) != 3 {
		t.Fatalf("/trustz enabled=%v resolvers=%d, want enabled with 3", tr.Enabled, len(tr.Resolvers))
	}
	for _, r := range tr.Resolvers {
		switch r.Name {
		case "r2":
			if r.Score > 0.1 || r.LastBogus != 0 {
				t.Errorf("poisoning resolver r2 = %+v, want near-zero score and bogus=0", r)
			}
		default:
			if r.Score < 0.5 {
				t.Errorf("benign resolver %s score = %v", r.Name, r.Score)
			}
		}
	}

	// /metrics carries the same signal.
	_, metricsBody := get(t, "http://"+srv.Addr()+"/metrics")
	if !strings.Contains(metricsBody, core.MetricResolverTrust+`{resolver="r2"} 0`) {
		t.Errorf("/metrics missing zeroed trust gauge for r2:\n%s", metricsBody)
	}
	if !strings.Contains(metricsBody, core.MetricPoolAttackerEntries+" 2") {
		t.Errorf("/metrics missing %s 2", core.MetricPoolAttackerEntries)
	}
}

// TestPoolzCarriesAttackerEntries checks the cached-pool dump surfaces
// poisoning visibility per entry.
func TestPoolzCarriesAttackerEntries(t *testing.T) {
	reg := metrics.New()
	q := workingQuerier()
	q.lists["u1"] = attack.AttackerAddrs(2)
	eng := engineUnderTest(t, reg, q, 0)
	if _, err := eng.Lookup(context.Background(), "pool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	srv := serverUnderTest(t, Config{Registry: reg, Engine: eng})

	code, body := get(t, "http://"+srv.Addr()+"/poolz")
	if code != http.StatusOK {
		t.Fatalf("GET /poolz = %d", code)
	}
	var pr struct {
		Pools []struct {
			Key             string `json:"key"`
			AttackerEntries int    `json:"attacker_entries"`
		} `json:"pools"`
	}
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatalf("bad /poolz JSON: %v\n%s", err, body)
	}
	if len(pr.Pools) != 1 {
		t.Fatalf("pools = %d, want 1", len(pr.Pools))
	}
	if pr.Pools[0].AttackerEntries != 2 {
		t.Errorf("attacker_entries = %d, want 2", pr.Pools[0].AttackerEntries)
	}
}
