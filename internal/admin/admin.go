// Package admin is the observability surface of a running consensus
// engine: a small HTTP server exposing Prometheus metrics, breaker-aware
// readiness and a dump of the cached pools. It is deliberately separate
// from the DNS frontend — the admin port is an operator interface and is
// typically bound to loopback or a management network, never exposed
// where DNS clients live.
//
// Endpoints:
//
//	GET /metrics  Prometheus text-format exposition (version 0.0.4)
//	GET /healthz  200 while at least one resolver can be asked;
//	              503 when every resolver's circuit breaker is open
//	GET /poolz    JSON dump of the cached consensus pools with TTLs,
//	              per-entry refresh-ahead state (hits, refreshes, last
//	              refresh outcome) and poisoning visibility (attacker-
//	              prefix entry counts, quarantined resolvers)
//	GET /trustz   JSON dump of per-resolver trust: windowed score,
//	              distrust state and the latest generation's signal
//	              breakdown (bogus prefix, inflation, shortfall,
//	              overlap, majority survival)
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"dohpool/internal/core"
	"dohpool/internal/metrics"
)

// Engine is the view of the consensus engine the admin server needs.
// *core.Engine implements it.
type Engine interface {
	Health() []core.ResolverHealth
	Ready() bool
	CachedPools() []core.CachedPool
	// Trust reports per-resolver trust (nil when trust tracking is
	// disabled).
	Trust() []core.ResolverTrust
}

// Config wires the admin server to its data sources.
type Config struct {
	// Registry backs /metrics. Nil renders an empty exposition.
	Registry *metrics.Registry
	// Engine backs /healthz and /poolz. Nil reports ready and no pools.
	Engine Engine
	// Listeners, when non-nil, reports the serving frontend's live
	// listener state (udp/tcp/dot/doh, addresses, encrypted or not) for
	// /healthz and /poolz. It is a callback because the frontend
	// typically starts after the admin server.
	Listeners func() []core.ListenerInfo
}

// Server is a running admin HTTP server. Create with Start, stop with
// Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (e.g. "127.0.0.1:8053", ":0" for ephemeral) and
// serves the admin endpoints until Close.
func Start(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin listen: %w", err)
	}
	s := &Server{ln: ln}
	s.srv = &http.Server{
		Handler:           Handler(cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// The Serve loop has no Done/close to observe statically: Close tears
	// down the listener, which makes Serve return immediately.
	go func() { _ = s.srv.Serve(ln) }() // dohlint:allow(golifecycle) — joined via srv.Close unblocking Serve
	return s, nil
}

// Addr returns the server's host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately (scrapes are short-lived; there is
// nothing worth draining).
func (s *Server) Close() error {
	return s.srv.Close()
}

// Handler builds the admin endpoint mux — exported so embedding
// applications can mount the endpoints on their own server.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeHealth(w, cfg.Engine, listenerState(cfg))
	})
	mux.HandleFunc("GET /poolz", func(w http.ResponseWriter, r *http.Request) {
		writePools(w, cfg.Engine, listenerState(cfg))
	})
	mux.HandleFunc("GET /trustz", func(w http.ResponseWriter, r *http.Request) {
		writeTrust(w, cfg.Engine)
	})
	return mux
}

// listenerState snapshots the frontend's listeners ([] when no
// frontend is serving yet, so the JSON field is always present).
func listenerState(cfg Config) []core.ListenerInfo {
	out := []core.ListenerInfo{}
	if cfg.Listeners != nil {
		out = append(out, cfg.Listeners()...)
	}
	return out
}

// healthResponse is the /healthz JSON body.
type healthResponse struct {
	Status string `json:"status"` // "ok" | "unavailable"
	// Listeners is the serving frontend's live listener state — which
	// transports (udp/tcp/dot/doh) are answering, and where.
	Listeners []core.ListenerInfo `json:"listeners"`
	Resolvers []resolverHealth    `json:"resolvers"`
}

type resolverHealth struct {
	Name                string  `json:"name"`
	URL                 string  `json:"url"`
	EWMARTTSeconds      float64 `json:"ewma_rtt_seconds"`
	Successes           uint64  `json:"successes"`
	Failures            uint64  `json:"failures"`
	Hedges              uint64  `json:"hedges"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	CircuitOpen         bool    `json:"circuit_open"`
}

func writeHealth(w http.ResponseWriter, eng Engine, listeners []core.ListenerInfo) {
	resp := healthResponse{Status: "ok", Listeners: listeners}
	if eng != nil {
		for _, h := range eng.Health() {
			resp.Resolvers = append(resp.Resolvers, resolverHealth{
				Name:                h.Name,
				URL:                 h.URL,
				EWMARTTSeconds:      h.EWMARTT.Seconds(),
				Successes:           h.Successes,
				Failures:            h.Failures,
				Hedges:              h.Hedges,
				ConsecutiveFailures: h.ConsecutiveFailures,
				CircuitOpen:         h.CircuitOpen,
			})
		}
		if !eng.Ready() {
			resp.Status = "unavailable"
		}
	}
	code := http.StatusOK
	if resp.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// poolsResponse is the /poolz JSON body.
type poolsResponse struct {
	// Listeners names the transports the cached pools are being served
	// over.
	Listeners []core.ListenerInfo `json:"listeners"`
	Pools     []cachedPool        `json:"pools"`
}

type cachedPool struct {
	Key            string   `json:"key"`
	Addrs          []string `json:"addrs"`
	TruncateLength int      `json:"truncate_length"`
	Responding     int      `json:"responding"`
	// AttackerEntries counts pool members inside the attacker prefix
	// (198.18.0.0/15); non-zero means a poisoned consensus is cached.
	AttackerEntries int `json:"attacker_entries"`
	// Distrusted names resolvers whose contributions trust enforcement
	// quarantined when this pool was generated.
	Distrusted []string `json:"distrusted,omitempty"`
	AgeSeconds float64  `json:"age_seconds"`
	TTLSeconds float64  `json:"ttl_seconds"` // negative once expired
	Stale      bool     `json:"stale"`
	// Refresh-ahead state: lifetime hits (the popularity signal),
	// background regenerations recorded, and how the latest one ended
	// ("none" | "ok" | "failed").
	Hits        uint64 `json:"hits"`
	Refreshes   uint64 `json:"refreshes"`
	LastRefresh string `json:"last_refresh"`
}

func writePools(w http.ResponseWriter, eng Engine, listeners []core.ListenerInfo) {
	resp := poolsResponse{Listeners: listeners, Pools: []cachedPool{}}
	if eng != nil {
		for _, p := range eng.CachedPools() {
			cp := cachedPool{
				Key:             p.Key,
				Addrs:           make([]string, len(p.Addrs)),
				TruncateLength:  p.TruncateLength,
				Responding:      p.Responding,
				AttackerEntries: p.AttackerEntries,
				Distrusted:      p.Distrusted,
				AgeSeconds:      p.Age.Seconds(),
				TTLSeconds:      p.Remaining.Seconds(),
				Stale:           p.Remaining < 0,
				Hits:            p.Hits,
				Refreshes:       p.Refreshes,
				LastRefresh:     p.LastRefresh.String(),
			}
			for i, a := range p.Addrs {
				cp.Addrs[i] = a.String()
			}
			resp.Pools = append(resp.Pools, cp)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// trustResponse is the /trustz JSON body.
type trustResponse struct {
	// Enabled is false when the engine runs without trust tracking.
	Enabled   bool            `json:"enabled"`
	Resolvers []resolverTrust `json:"resolvers"`
}

type resolverTrust struct {
	Name       string  `json:"name"`
	URL        string  `json:"url"`
	Score      float64 `json:"score"`
	Samples    int     `json:"samples"`
	Distrusted bool    `json:"distrusted"`
	// Last generation's signal components, each in [0,1].
	LastBogus     float64 `json:"last_bogus"`
	LastInflation float64 `json:"last_inflation"`
	LastShortfall float64 `json:"last_shortfall"`
	LastOverlap   float64 `json:"last_overlap"`
	LastMajority  float64 `json:"last_majority"`
	LastScore     float64 `json:"last_score"`
}

func writeTrust(w http.ResponseWriter, eng Engine) {
	resp := trustResponse{Resolvers: []resolverTrust{}}
	if eng != nil {
		if snap := eng.Trust(); snap != nil {
			resp.Enabled = true
			for _, t := range snap {
				resp.Resolvers = append(resp.Resolvers, resolverTrust{
					Name:          t.Name,
					URL:           t.URL,
					Score:         t.Score,
					Samples:       t.Samples,
					Distrusted:    t.Distrusted,
					LastBogus:     t.Last.Bogus,
					LastInflation: t.Last.Inflation,
					LastShortfall: t.Last.Shortfall,
					LastOverlap:   t.Last.Overlap,
					LastMajority:  t.Last.Majority,
					LastScore:     t.Last.Score,
				})
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
