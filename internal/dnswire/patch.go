package dnswire

import "fmt"

// Wire-patching primitives for the frontend's pre-encoded answer cache.
// A cached hit is served by copying stored response bytes and patching
// the few octets that depend on the individual query — transaction ID,
// the RD/CD echo bits, and the aged answer TTLs — instead of running the
// decode → build → encode round trip. Every helper here operates on raw
// wire bytes and allocates nothing.

// Flag-byte masks within the 12-octet header (RFC 1035 §4.1.1). Byte 2
// holds QR/Opcode/AA/TC/RD, byte 3 holds RA/Z/AD/CD/RCode.
const (
	flagByteRD = 0x01 // bit 8 of the flags word, low bit of byte 2
	flagByteTC = 0x02 // bit 9 of the flags word
	flagByteCD = 0x10 // bit 4 of the flags word, in byte 3
)

// PatchID overwrites the transaction ID of an encoded message in place.
// The slice must hold at least the 12-octet header.
//
//dohlint:noalloc
func PatchID(wire []byte, id uint16) {
	wire[0] = byte(id >> 8)
	wire[1] = byte(id)
}

// WireID returns the transaction ID of an encoded message.
//
//dohlint:noalloc
func WireID(wire []byte) uint16 {
	return uint16(wire[0])<<8 | uint16(wire[1])
}

// EchoFlags copies the RD and CD bits of an encoded query into an
// encoded response in place, leaving every other response flag bit
// untouched. These are the only header flags a response echoes verbatim
// from its query (RFC 1035 §4.1.1 for RD, RFC 4035 §3.2.2 for CD), so
// together with PatchID they make one stored response form serve every
// client.
//
//dohlint:noalloc
func EchoFlags(resp, query []byte) {
	resp[2] = resp[2]&^flagByteRD | query[2]&flagByteRD
	resp[3] = resp[3]&^flagByteCD | query[3]&flagByteCD
}

// WireTruncated reports whether an encoded message has the TC bit set.
//
//dohlint:noalloc
func WireTruncated(wire []byte) bool {
	return wire[2]&flagByteTC != 0
}

// skipName advances past one (possibly compressed) encoded name starting
// at off and returns the offset of the first byte after it. It does not
// follow pointers — it only needs the in-stream length.
func skipName(wire []byte, off int) (int, error) {
	pos := off
	for {
		if pos >= len(wire) {
			return 0, fmt.Errorf("offset %d: %w", pos, ErrTruncatedName)
		}
		c := int(wire[pos])
		switch {
		case c == 0:
			return pos + 1, nil
		case c&0xC0 == 0xC0:
			if pos+1 >= len(wire) {
				return 0, fmt.Errorf("offset %d: %w", pos, ErrTruncatedName)
			}
			return pos + 2, nil
		case c&0xC0 != 0:
			return 0, fmt.Errorf("offset %d: %w", pos, ErrBadLabelLength)
		default:
			pos += 1 + c
		}
	}
}

// AnswerTTLOffsets walks an encoded message and returns the byte offset
// of every answer record's 4-octet TTL field. The offsets stay valid for
// any byte-for-byte copy of the message, which is how the wire cache
// ages TTLs on served copies without re-encoding.
func AnswerTTLOffsets(wire []byte) ([]int, error) {
	if len(wire) < 12 {
		return nil, fmt.Errorf("message of %d octets: %w", len(wire), ErrTruncatedMessage)
	}
	qd := int(readUint16(wire, 4))
	an := int(readUint16(wire, 6))
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		if off, err = skipName(wire, off); err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		off += 4 // QTYPE + QCLASS
		if off > len(wire) {
			return nil, fmt.Errorf("question %d: %w", i, ErrTruncatedMessage)
		}
	}
	offsets := make([]int, 0, an)
	for i := 0; i < an; i++ {
		if off, err = skipName(wire, off); err != nil {
			return nil, fmt.Errorf("answer %d: %w", i, err)
		}
		if off+10 > len(wire) {
			return nil, fmt.Errorf("answer %d fixed fields: %w", i, ErrTruncatedMessage)
		}
		offsets = append(offsets, off+4)
		rdLen := int(readUint16(wire, off+8))
		off += 10 + rdLen
		if off > len(wire) {
			return nil, fmt.Errorf("answer %d rdata: %w", i, ErrTruncatedMessage)
		}
	}
	return offsets, nil
}

// PatchAnswerTTLs writes ttl into wire at each offset previously found
// by AnswerTTLOffsets.
//
//dohlint:noalloc
func PatchAnswerTTLs(wire []byte, offsets []int, ttl uint32) {
	for _, off := range offsets {
		wire[off] = byte(ttl >> 24)
		wire[off+1] = byte(ttl >> 16)
		wire[off+2] = byte(ttl >> 8)
		wire[off+3] = byte(ttl)
	}
}
