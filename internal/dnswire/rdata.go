package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// RData errors.
var (
	ErrBadRData     = errors.New("malformed rdata")
	ErrRDataTooLong = errors.New("rdata exceeds 65535 octets")
)

// RData is the typed payload of a resource record. Implementations encode
// themselves into wire format and render a presentation string.
type RData interface {
	// Type returns the record type this payload belongs to.
	Type() Type
	// appendTo appends the wire encoding (without the RDLENGTH prefix).
	// cmap is non-nil only for types whose RDATA may be compressed
	// (NS, CNAME, PTR, SOA, MX per RFC 1035 / RFC 3597 §4).
	appendTo(buf []byte, cmap compressionMap) ([]byte, error)
	// String renders the presentation form of the payload.
	String() string
}

// Compile-time interface checks.
var (
	_ RData = (*ARecord)(nil)
	_ RData = (*AAAARecord)(nil)
	_ RData = (*NSRecord)(nil)
	_ RData = (*CNAMERecord)(nil)
	_ RData = (*SOARecord)(nil)
	_ RData = (*TXTRecord)(nil)
	_ RData = (*MXRecord)(nil)
	_ RData = (*PTRRecord)(nil)
	_ RData = (*OPTRecord)(nil)
	_ RData = (*OpaqueRecord)(nil)
)

// ARecord is an IPv4 address record (RFC 1035 §3.4.1).
type ARecord struct {
	Addr netip.Addr
}

// Type implements RData.
func (r *ARecord) Type() Type { return TypeA }

func (r *ARecord) appendTo(buf []byte, _ compressionMap) ([]byte, error) {
	if !r.Addr.Is4() {
		return buf, fmt.Errorf("A record with non-IPv4 address %v: %w", r.Addr, ErrBadRData)
	}
	a4 := r.Addr.As4()
	return append(buf, a4[:]...), nil
}

// String implements RData.
func (r *ARecord) String() string { return r.Addr.String() }

// AAAARecord is an IPv6 address record (RFC 3596).
type AAAARecord struct {
	Addr netip.Addr
}

// Type implements RData.
func (r *AAAARecord) Type() Type { return TypeAAAA }

func (r *AAAARecord) appendTo(buf []byte, _ compressionMap) ([]byte, error) {
	if !r.Addr.Is6() || r.Addr.Is4In6() {
		return buf, fmt.Errorf("AAAA record with non-IPv6 address %v: %w", r.Addr, ErrBadRData)
	}
	a16 := r.Addr.As16()
	return append(buf, a16[:]...), nil
}

// String implements RData.
func (r *AAAARecord) String() string { return r.Addr.String() }

// NSRecord is an authoritative-nameserver record (RFC 1035 §3.3.11).
type NSRecord struct {
	Host string
}

// Type implements RData.
func (r *NSRecord) Type() Type { return TypeNS }

func (r *NSRecord) appendTo(buf []byte, cmap compressionMap) ([]byte, error) {
	return appendName(buf, r.Host, cmap)
}

// String implements RData.
func (r *NSRecord) String() string { return CanonicalName(r.Host) }

// CNAMERecord is a canonical-name alias record (RFC 1035 §3.3.1).
type CNAMERecord struct {
	Target string
}

// Type implements RData.
func (r *CNAMERecord) Type() Type { return TypeCNAME }

func (r *CNAMERecord) appendTo(buf []byte, cmap compressionMap) ([]byte, error) {
	return appendName(buf, r.Target, cmap)
}

// String implements RData.
func (r *CNAMERecord) String() string { return CanonicalName(r.Target) }

// PTRRecord is a pointer record (RFC 1035 §3.3.12).
type PTRRecord struct {
	Target string
}

// Type implements RData.
func (r *PTRRecord) Type() Type { return TypePTR }

func (r *PTRRecord) appendTo(buf []byte, cmap compressionMap) ([]byte, error) {
	return appendName(buf, r.Target, cmap)
}

// String implements RData.
func (r *PTRRecord) String() string { return CanonicalName(r.Target) }

// SOARecord is a start-of-authority record (RFC 1035 §3.3.13).
type SOARecord struct {
	MName   string // primary nameserver
	RName   string // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32 // negative-caching TTL (RFC 2308)
}

// Type implements RData.
func (r *SOARecord) Type() Type { return TypeSOA }

func (r *SOARecord) appendTo(buf []byte, cmap compressionMap) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, r.MName, cmap); err != nil {
		return buf, err
	}
	if buf, err = appendName(buf, r.RName, cmap); err != nil {
		return buf, err
	}
	for _, v := range [...]uint32{r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum} {
		buf = appendUint32(buf, v)
	}
	return buf, nil
}

// String implements RData.
func (r *SOARecord) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		CanonicalName(r.MName), CanonicalName(r.RName),
		r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

// TXTRecord is a text record carrying one or more character strings
// (RFC 1035 §3.3.14).
type TXTRecord struct {
	Strings []string
}

// Type implements RData.
func (r *TXTRecord) Type() Type { return TypeTXT }

func (r *TXTRecord) appendTo(buf []byte, _ compressionMap) ([]byte, error) {
	if len(r.Strings) == 0 {
		// A TXT record must carry at least one (possibly empty) string.
		return append(buf, 0), nil
	}
	for _, s := range r.Strings {
		if len(s) > 255 {
			return buf, fmt.Errorf("txt string of %d octets: %w", len(s), ErrBadRData)
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

// String implements RData.
func (r *TXTRecord) String() string {
	parts := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// MXRecord is a mail-exchange record (RFC 1035 §3.3.9).
type MXRecord struct {
	Preference uint16
	Host       string
}

// Type implements RData.
func (r *MXRecord) Type() Type { return TypeMX }

func (r *MXRecord) appendTo(buf []byte, cmap compressionMap) ([]byte, error) {
	buf = appendUint16(buf, r.Preference)
	return appendName(buf, r.Host, cmap)
}

// String implements RData.
func (r *MXRecord) String() string {
	return fmt.Sprintf("%d %s", r.Preference, CanonicalName(r.Host))
}

// OPTRecord is the EDNS0 pseudo-record (RFC 6891). Its fixed RR fields are
// reinterpreted by the Message codec; this payload carries only the raw
// option bytes.
type OPTRecord struct {
	Options []byte
}

// Type implements RData.
func (r *OPTRecord) Type() Type { return TypeOPT }

func (r *OPTRecord) appendTo(buf []byte, _ compressionMap) ([]byte, error) {
	return append(buf, r.Options...), nil
}

// String implements RData.
func (r *OPTRecord) String() string { return fmt.Sprintf("OPT %d octets", len(r.Options)) }

// OpaqueRecord carries the RDATA of a record type this package does not
// interpret, preserved byte-for-byte (RFC 3597 behaviour).
type OpaqueRecord struct {
	RType Type
	Data  []byte
}

// Type implements RData.
func (r *OpaqueRecord) Type() Type { return r.RType }

func (r *OpaqueRecord) appendTo(buf []byte, _ compressionMap) ([]byte, error) {
	return append(buf, r.Data...), nil
}

// String implements RData.
func (r *OpaqueRecord) String() string {
	return fmt.Sprintf("\\# %d %x", len(r.Data), r.Data)
}

// decodeRData decodes the RDATA of a record of the given type occupying
// msg[off:off+length]. The full message is required because RDATA of some
// types may contain compressed names.
func decodeRData(msg []byte, off, length int, typ Type) (RData, error) {
	end := off + length
	if end > len(msg) {
		return nil, fmt.Errorf("rdata extends past message: %w", ErrBadRData)
	}
	switch typ {
	case TypeA:
		if length != 4 {
			return nil, fmt.Errorf("A rdata length %d: %w", length, ErrBadRData)
		}
		var a4 [4]byte
		copy(a4[:], msg[off:end])
		return &ARecord{Addr: netip.AddrFrom4(a4)}, nil
	case TypeAAAA:
		if length != 16 {
			return nil, fmt.Errorf("AAAA rdata length %d: %w", length, ErrBadRData)
		}
		var a16 [16]byte
		copy(a16[:], msg[off:end])
		return &AAAARecord{Addr: netip.AddrFrom16(a16)}, nil
	case TypeNS:
		host, n, err := decodeName(msg, off)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("NS rdata trailing bytes: %w", ErrBadRData)
		}
		return &NSRecord{Host: host}, nil
	case TypeCNAME:
		target, n, err := decodeName(msg, off)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("CNAME rdata trailing bytes: %w", ErrBadRData)
		}
		return &CNAMERecord{Target: target}, nil
	case TypePTR:
		target, n, err := decodeName(msg, off)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("PTR rdata trailing bytes: %w", ErrBadRData)
		}
		return &PTRRecord{Target: target}, nil
	case TypeSOA:
		mname, n, err := decodeName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, n, err := decodeName(msg, n)
		if err != nil {
			return nil, err
		}
		if end-n != 20 {
			return nil, fmt.Errorf("SOA fixed fields length %d: %w", end-n, ErrBadRData)
		}
		return &SOARecord{
			MName:   mname,
			RName:   rname,
			Serial:  readUint32(msg, n),
			Refresh: readUint32(msg, n+4),
			Retry:   readUint32(msg, n+8),
			Expire:  readUint32(msg, n+12),
			Minimum: readUint32(msg, n+16),
		}, nil
	case TypeTXT:
		var strs []string
		pos := off
		for pos < end {
			l := int(msg[pos])
			pos++
			if pos+l > end {
				return nil, fmt.Errorf("TXT string overruns rdata: %w", ErrBadRData)
			}
			strs = append(strs, string(msg[pos:pos+l]))
			pos += l
		}
		return &TXTRecord{Strings: strs}, nil
	case TypeMX:
		if length < 3 {
			return nil, fmt.Errorf("MX rdata length %d: %w", length, ErrBadRData)
		}
		host, n, err := decodeName(msg, off+2)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("MX rdata trailing bytes: %w", ErrBadRData)
		}
		return &MXRecord{Preference: readUint16(msg, off), Host: host}, nil
	case TypeOPT:
		opts := make([]byte, length)
		copy(opts, msg[off:end])
		return &OPTRecord{Options: opts}, nil
	default:
		data := make([]byte, length)
		copy(data, msg[off:end])
		return &OpaqueRecord{RType: typ, Data: data}, nil
	}
}

func appendUint16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

func appendUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readUint16(b []byte, off int) uint16 {
	return uint16(b[off])<<8 | uint16(b[off+1])
}

func readUint32(b []byte, off int) uint32 {
	return uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
}
