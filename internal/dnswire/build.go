package dnswire

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net/netip"
)

// NewQuery builds a recursive query for (name, type) in class IN with a
// cryptographically random transaction ID and an EDNS0 OPT record
// advertising DefaultEDNSSize.
func NewQuery(name string, typ Type) (*Message, error) {
	id, err := RandomID()
	if err != nil {
		return nil, err
	}
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	m := &Message{
		Header: Header{
			ID:               id,
			Opcode:           OpcodeQuery,
			RecursionDesired: true,
		},
		Questions: []Question{{
			Name:  CanonicalName(name),
			Type:  typ,
			Class: ClassINET,
		}},
	}
	m.SetEDNS(DefaultEDNSSize)
	return m, nil
}

// RandomID draws a transaction ID from crypto/rand. Predictable IDs are
// exactly the weakness off-path DNS attackers exploit, so even the testbed
// uses strong IDs.
func RandomID() (uint16, error) {
	var b [2]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("random id: %w", err)
	}
	return binary.BigEndian.Uint16(b[:]), nil
}

// SetEDNS appends (or replaces) the EDNS0 OPT pseudo-record advertising
// the given UDP payload size (RFC 6891 §6.1.2: size is carried in the
// CLASS field, extended RCODE and flags in the TTL field).
func (m *Message) SetEDNS(udpSize uint16) {
	kept := m.Additional[:0]
	for _, r := range m.Additional {
		if r.Type != TypeOPT {
			kept = append(kept, r)
		}
	}
	m.Additional = append(kept, Record{
		Name:  ".",
		Type:  TypeOPT,
		Class: Class(udpSize),
		TTL:   0,
		Data:  &OPTRecord{},
	})
}

// EDNSSize returns the advertised EDNS0 UDP payload size, or (0, false)
// if the message carries no OPT record.
func (m *Message) EDNSSize() (uint16, bool) {
	for _, r := range m.Additional {
		if r.Type == TypeOPT {
			return uint16(r.Class), true
		}
	}
	return 0, false
}

// NewResponse builds a response skeleton for the given query: same ID and
// question, QR set, recursion bits mirrored, CD echoed (RFC 4035
// §3.2.2).
func NewResponse(query *Message) *Message {
	resp := &Message{
		Header: Header{
			ID:               query.Header.ID,
			Response:         true,
			Opcode:           query.Header.Opcode,
			RecursionDesired: query.Header.RecursionDesired,
			CheckingDisabled: query.Header.CheckingDisabled,
		},
	}
	resp.Questions = append(resp.Questions, query.Questions...)
	return resp
}

// NewErrorResponse builds a response carrying only an RCode.
func NewErrorResponse(query *Message, rcode RCode) *Message {
	resp := NewResponse(query)
	resp.Header.RCode = rcode
	return resp
}

// AddressRecord builds an A or AAAA record for addr with the given owner
// name and TTL, choosing the type from the address family.
func AddressRecord(name string, addr netip.Addr, ttl uint32) Record {
	addr = addr.Unmap()
	r := Record{
		Name:  CanonicalName(name),
		Class: ClassINET,
		TTL:   ttl,
	}
	if addr.Is4() {
		r.Type = TypeA
		r.Data = &ARecord{Addr: addr}
	} else {
		r.Type = TypeAAAA
		r.Data = &AAAARecord{Addr: addr}
	}
	return r
}

// AnswerAddrs extracts every A/AAAA address from the answer section, in
// order, following no CNAME indirection (callers resolve CNAMEs first).
func (m *Message) AnswerAddrs() []netip.Addr {
	addrs := make([]netip.Addr, 0, len(m.Answers))
	for _, r := range m.Answers {
		switch d := r.Data.(type) {
		case *ARecord:
			addrs = append(addrs, d.Addr)
		case *AAAARecord:
			addrs = append(addrs, d.Addr)
		}
	}
	return addrs
}

// Question returns the first question, or a zero Question if none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// MinAnswerTTL returns the smallest TTL across answer records, or def when
// the answer section is empty.
func (m *Message) MinAnswerTTL(def uint32) uint32 {
	min := def
	for i, r := range m.Answers {
		if i == 0 || r.TTL < min {
			min = r.TTL
		}
	}
	return min
}
