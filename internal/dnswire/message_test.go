package dnswire

import (
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustQuery(t *testing.T, name string, typ Type) *Message {
	t.Helper()
	q, err := NewQuery(name, typ)
	if err != nil {
		t.Fatalf("NewQuery(%q, %v): %v", name, typ, err)
	}
	return q
}

func TestQueryRoundTrip(t *testing.T) {
	q := mustQuery(t, "pool.ntp.org", TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Header.ID != q.Header.ID {
		t.Errorf("ID = %d, want %d", got.Header.ID, q.Header.ID)
	}
	if !got.Header.RecursionDesired {
		t.Error("RD bit lost")
	}
	if got.Header.Response {
		t.Error("QR bit set on query")
	}
	if len(got.Questions) != 1 {
		t.Fatalf("%d questions, want 1", len(got.Questions))
	}
	if got.Questions[0].Name != "pool.ntp.org." {
		t.Errorf("question name %q", got.Questions[0].Name)
	}
	if size, ok := got.EDNSSize(); !ok || size != DefaultEDNSSize {
		t.Errorf("EDNSSize = %d,%t, want %d,true", size, ok, DefaultEDNSSize)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := mustQuery(t, "pool.ntp.org", TypeA)
	resp := NewResponse(q)
	resp.Header.RecursionAvailable = true
	resp.Header.Authoritative = true
	for _, ip := range []string{"192.0.2.1", "192.0.2.2", "192.0.2.3"} {
		resp.Answers = append(resp.Answers,
			AddressRecord("pool.ntp.org", netip.MustParseAddr(ip), 150))
	}
	resp.Authority = append(resp.Authority, Record{
		Name: "ntp.org.", Type: TypeNS, Class: ClassINET, TTL: 3600,
		Data: &NSRecord{Host: "c.ntpns.org."},
	})
	resp.Additional = append(resp.Additional,
		AddressRecord("c.ntpns.org", netip.MustParseAddr("198.51.100.5"), 3600))

	wire, err := resp.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.Header.Response || !got.Header.Authoritative || !got.Header.RecursionAvailable {
		t.Errorf("flags lost: %+v", got.Header)
	}
	if len(got.Answers) != 3 || len(got.Authority) != 1 || len(got.Additional) != 1 {
		t.Fatalf("sections %d/%d/%d, want 3/1/1",
			len(got.Answers), len(got.Authority), len(got.Additional))
	}
	addrs := got.AnswerAddrs()
	want := []netip.Addr{
		netip.MustParseAddr("192.0.2.1"),
		netip.MustParseAddr("192.0.2.2"),
		netip.MustParseAddr("192.0.2.3"),
	}
	if !reflect.DeepEqual(addrs, want) {
		t.Errorf("AnswerAddrs = %v, want %v", addrs, want)
	}
	ns, ok := got.Authority[0].Data.(*NSRecord)
	if !ok || ns.Host != "c.ntpns.org." {
		t.Errorf("authority rdata = %v", got.Authority[0].Data)
	}
}

func TestRDataRoundTrip(t *testing.T) {
	records := []Record{
		{Name: "a.example.", Type: TypeA, Class: ClassINET, TTL: 60,
			Data: &ARecord{Addr: netip.MustParseAddr("203.0.113.9")}},
		{Name: "a.example.", Type: TypeAAAA, Class: ClassINET, TTL: 60,
			Data: &AAAARecord{Addr: netip.MustParseAddr("2001:db8::9")}},
		{Name: "example.", Type: TypeNS, Class: ClassINET, TTL: 60,
			Data: &NSRecord{Host: "ns1.example."}},
		{Name: "www.example.", Type: TypeCNAME, Class: ClassINET, TTL: 60,
			Data: &CNAMERecord{Target: "a.example."}},
		{Name: "example.", Type: TypeSOA, Class: ClassINET, TTL: 60,
			Data: &SOARecord{MName: "ns1.example.", RName: "hostmaster.example.",
				Serial: 2020101901, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
		{Name: "example.", Type: TypeTXT, Class: ClassINET, TTL: 60,
			Data: &TXTRecord{Strings: []string{"hello", "world"}}},
		{Name: "example.", Type: TypeMX, Class: ClassINET, TTL: 60,
			Data: &MXRecord{Preference: 10, Host: "mail.example."}},
		{Name: "9.113.0.203.in-addr.arpa.", Type: TypePTR, Class: ClassINET, TTL: 60,
			Data: &PTRRecord{Target: "a.example."}},
		{Name: "example.", Type: Type(999), Class: ClassINET, TTL: 60,
			Data: &OpaqueRecord{RType: Type(999), Data: []byte{1, 2, 3, 4}}},
	}
	for _, rec := range records {
		t.Run(rec.Type.String(), func(t *testing.T) {
			m := &Message{
				Header:  Header{ID: 7, Response: true},
				Answers: []Record{rec},
			}
			wire, err := m.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := Decode(wire)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if len(got.Answers) != 1 {
				t.Fatalf("%d answers", len(got.Answers))
			}
			if got.Answers[0].String() != rec.String() {
				t.Errorf("round trip:\n got %s\nwant %s", got.Answers[0], rec)
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"short header": {0, 1, 2},
		"counts lie":   {0, 1, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
	}
	for name, wire := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Decode(wire); err == nil {
				t.Error("Decode accepted garbage")
			}
		})
	}
}

func TestDecodeRejectsOverflowingRData(t *testing.T) {
	q := mustQuery(t, "x.example", TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Claim one answer but provide none.
	wire[7] = 1
	if _, err := Decode(wire); !errors.Is(err, ErrTruncatedMessage) && err == nil {
		t.Fatalf("Decode = %v, want truncation error", err)
	}
}

func TestAddressRecordPicksFamily(t *testing.T) {
	r4 := AddressRecord("x.example", netip.MustParseAddr("192.0.2.7"), 30)
	if r4.Type != TypeA {
		t.Errorf("v4 type = %v", r4.Type)
	}
	r6 := AddressRecord("x.example", netip.MustParseAddr("2001:db8::7"), 30)
	if r6.Type != TypeAAAA {
		t.Errorf("v6 type = %v", r6.Type)
	}
	// 4-in-6 mapped should unmap to A.
	rm := AddressRecord("x.example", netip.MustParseAddr("::ffff:192.0.2.7"), 30)
	if rm.Type != TypeA {
		t.Errorf("mapped type = %v", rm.Type)
	}
}

func TestMinAnswerTTL(t *testing.T) {
	m := &Message{}
	if got := m.MinAnswerTTL(77); got != 77 {
		t.Errorf("empty MinAnswerTTL = %d, want default 77", got)
	}
	m.Answers = []Record{
		AddressRecord("x.example", netip.MustParseAddr("192.0.2.1"), 300),
		AddressRecord("x.example", netip.MustParseAddr("192.0.2.2"), 60),
		AddressRecord("x.example", netip.MustParseAddr("192.0.2.3"), 900),
	}
	if got := m.MinAnswerTTL(77); got != 60 {
		t.Errorf("MinAnswerTTL = %d, want 60", got)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	m := &Message{
		Header:  Header{ID: 9},
		Answers: []Record{AddressRecord("x.example", netip.MustParseAddr("192.0.2.1"), 30)},
	}
	c := m.Copy()
	c.Answers = append(c.Answers, AddressRecord("x.example", netip.MustParseAddr("192.0.2.2"), 30))
	c.Header.ID = 10
	if len(m.Answers) != 1 || m.Header.ID != 9 {
		t.Error("Copy shares state with original")
	}
}

// TestDecodeNeverPanics feeds random bytes to the decoder; it must reject
// or accept them but never panic.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", data, r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeAddressesProperty checks that any set of IPv4 answers
// survives an encode/decode round trip in order.
func TestEncodeDecodeAddressesProperty(t *testing.T) {
	f := func(octets [][4]byte) bool {
		if len(octets) > 100 {
			octets = octets[:100]
		}
		m := &Message{Header: Header{ID: 42, Response: true}}
		m.Questions = []Question{{Name: "pool.example.", Type: TypeA, Class: ClassINET}}
		want := make([]netip.Addr, 0, len(octets))
		for _, o := range octets {
			addr := netip.AddrFrom4(o)
			want = append(want, addr)
			m.Answers = append(m.Answers, AddressRecord("pool.example.", addr, 60))
		}
		wire, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.AnswerAddrs(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressionRoundTripProperty: messages with many records sharing
// suffixes must decode identically despite compression.
func TestCompressionRoundTripProperty(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%20) + 1
		m := &Message{Header: Header{ID: 1, Response: true}}
		for i := 0; i < count; i++ {
			m.Answers = append(m.Answers, Record{
				Name: "srv.pool.ntp.example.", Type: TypeNS, Class: ClassINET, TTL: 60,
				Data: &NSRecord{Host: "ns.pool.ntp.example."},
			})
		}
		wire, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		if len(got.Answers) != count {
			return false
		}
		for _, r := range got.Answers {
			ns, ok := r.Data.(*NSRecord)
			if !ok || ns.Host != "ns.pool.ntp.example." || r.Name != "srv.pool.ntp.example." {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomIDsVary(t *testing.T) {
	seen := make(map[uint16]bool)
	for i := 0; i < 64; i++ {
		id, err := RandomID()
		if err != nil {
			t.Fatal(err)
		}
		seen[id] = true
	}
	// With 64 draws from 65536 values, collisions are possible but seeing
	// fewer than 8 distinct values would indicate a broken generator.
	if len(seen) < 8 {
		t.Fatalf("only %d distinct IDs in 64 draws", len(seen))
	}
}

func TestTypeAndClassStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeAAAA.String() != "AAAA" {
		t.Error("type mnemonics broken")
	}
	if Type(4711).String() != "TYPE4711" {
		t.Errorf("unknown type = %q", Type(4711).String())
	}
	if ClassINET.String() != "IN" {
		t.Error("class mnemonic broken")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" {
		t.Error("rcode mnemonic broken")
	}
	if got, ok := ParseType("AAAA"); !ok || got != TypeAAAA {
		t.Errorf("ParseType(AAAA) = %v,%t", got, ok)
	}
	if _, ok := ParseType("NOPE"); ok {
		t.Error("ParseType accepted junk")
	}
}

func TestQuestionKey(t *testing.T) {
	a := Question{Name: "Pool.NTP.org", Type: TypeA, Class: ClassINET}
	b := Question{Name: "pool.ntp.org.", Type: TypeA, Class: ClassINET}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := Question{Name: "pool.ntp.org.", Type: TypeAAAA, Class: ClassINET}
	if a.Key() == c.Key() {
		t.Error("A and AAAA share a key")
	}
}
