package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name-handling errors. They are exported within the package boundary via
// errors.Is on the wrapped forms returned from Decode/Encode.
var (
	ErrNameTooLong    = errors.New("domain name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("empty label inside name")
	ErrBadPointer     = errors.New("bad compression pointer")
	ErrPointerLoop    = errors.New("compression pointer loop")
	ErrTruncatedName  = errors.New("truncated domain name")
	ErrBadLabelLength = errors.New("reserved label length bits")
	ErrBadLabelByte   = errors.New("label contains unsupported byte")
)

// CanonicalName lower-cases a presentation-format domain name and ensures
// it carries a trailing dot. The empty string canonicalises to "." (the
// root).
func CanonicalName(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" || s == "." {
		return "."
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// SplitLabels splits a canonical name into its labels, excluding the root.
// "example.org." yields ["example", "org"]; "." yields nil.
func SplitLabels(name string) []string {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	return strings.Split(strings.TrimSuffix(name, "."), ".")
}

// IsSubdomain reports whether child equals parent or lies beneath it.
// Both arguments are canonicalised first.
func IsSubdomain(child, parent string) bool {
	child, parent = CanonicalName(child), CanonicalName(parent)
	if parent == "." {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// ValidateName checks presentation-format name length constraints.
func ValidateName(name string) error {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	// Wire form length: one length octet per label plus label bytes plus
	// the terminating zero octet.
	wireLen := 1
	for _, label := range SplitLabels(name) {
		if len(label) == 0 {
			return fmt.Errorf("%q: %w", name, ErrEmptyLabel)
		}
		if len(label) > MaxLabelLength {
			return fmt.Errorf("%q: %w", name, ErrLabelTooLong)
		}
		wireLen += 1 + len(label)
	}
	if wireLen > MaxNameLength {
		return fmt.Errorf("%q: %w", name, ErrNameTooLong)
	}
	return nil
}

// compressionMap records, for every name suffix already emitted, its offset
// in the message so later occurrences can be replaced with a pointer
// (RFC 1035 §4.1.4). Pointers must fit in 14 bits.
type compressionMap map[string]int

// appendName appends the wire form of name to buf, using and updating cmap
// for compression. Passing a nil cmap disables compression (required for
// names inside RDATA of types where compression is forbidden).
func appendName(buf []byte, name string, cmap compressionMap) ([]byte, error) {
	if err := ValidateName(name); err != nil {
		return buf, err
	}
	name = CanonicalName(name)
	labels := SplitLabels(name)
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if cmap != nil {
			if off, ok := cmap[suffix]; ok {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			if off := len(buf); off < 0x3FFF {
				cmap[suffix] = off
			}
		}
		buf = append(buf, byte(len(labels[i])))
		buf = append(buf, labels[i]...)
	}
	return append(buf, 0), nil
}

// decodeName reads a possibly compressed name starting at off. It returns
// the canonical presentation form and the offset of the first byte after
// the name (after the first pointer if the name is compressed).
func decodeName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	ptrBudget := 64 // generous loop guard: names have at most 127 labels
	pos := off
	end := -1 // offset after the name in the original stream
	octets := 0
	for {
		if pos >= len(msg) {
			return "", 0, fmt.Errorf("offset %d: %w", pos, ErrTruncatedName)
		}
		c := int(msg[pos])
		switch {
		case c == 0:
			if end < 0 {
				end = pos + 1
			}
			if sb.Len() == 0 {
				return ".", end, nil
			}
			return sb.String(), end, nil
		case c&0xC0 == 0xC0:
			if pos+1 >= len(msg) {
				return "", 0, fmt.Errorf("offset %d: %w", pos, ErrTruncatedName)
			}
			target := (c&0x3F)<<8 | int(msg[pos+1])
			if end < 0 {
				end = pos + 2
			}
			if target >= pos {
				// Forward (or self) pointers are invalid and would loop.
				return "", 0, fmt.Errorf("offset %d -> %d: %w", pos, target, ErrBadPointer)
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrPointerLoop
			}
			pos = target
		case c&0xC0 != 0:
			return "", 0, fmt.Errorf("offset %d: %w", pos, ErrBadLabelLength)
		default:
			if pos+1+c > len(msg) {
				return "", 0, fmt.Errorf("offset %d: %w", pos, ErrTruncatedName)
			}
			octets += 1 + c
			if octets+1 > MaxNameLength {
				return "", 0, ErrNameTooLong
			}
			label := msg[pos+1 : pos+1+c]
			for _, b := range label {
				// Lower-case on the fly to keep names canonical.
				if b >= 'A' && b <= 'Z' {
					b += 'a' - 'A'
				}
				// This implementation keeps names in presentation form
				// internally, so a '.' inside a label would be ambiguous
				// and control bytes could smuggle data into logs. Such
				// labels never occur in hostname lookups (the only kind
				// the pool-generation system performs); reject them
				// instead of escaping (RFC 4343 would escape).
				if b == '.' || b < 0x21 || b > 0x7E {
					return "", 0, fmt.Errorf("byte %#x at offset %d: %w", b, pos, ErrBadLabelByte)
				}
				sb.WriteByte(b)
			}
			sb.WriteByte('.')
			pos += 1 + c
		}
	}
}
