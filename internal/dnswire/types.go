// Package dnswire implements the DNS message wire format of RFC 1035 with
// the EDNS0 extensions of RFC 6891. It provides encoding and decoding of
// complete messages, including domain-name compression, and typed resource
// record data for the record types used by the secure pool-generation
// system (A, AAAA, NS, CNAME, SOA, TXT, MX, PTR, OPT).
//
// The package is self-contained and has no dependencies outside the Go
// standard library. Every other DNS component in this repository
// (authoritative server, recursive resolver, DoH client and server,
// attacker models) speaks through this package.
package dnswire

import "strconv"

// Type is a DNS resource record type (RFC 1035 §3.2.2 and successors).
type Type uint16

// Resource record types understood by this package. Unknown types are
// carried opaquely.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

var _typeNames = map[Type]string{
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeOPT:   "OPT",
	TypeANY:   "ANY",
}

// String returns the conventional mnemonic for the type, or "TYPEn" for
// unknown values (RFC 3597 §5 style).
func (t Type) String() string {
	if s, ok := _typeNames[t]; ok {
		return s
	}
	return "TYPE" + strconv.Itoa(int(t))
}

// ParseType maps a mnemonic such as "A" or "AAAA" back to its Type value.
// The second return value reports whether the mnemonic was recognised.
func ParseType(s string) (Type, bool) {
	for t, name := range _typeNames {
		if name == s {
			return t, true
		}
	}
	return 0, false
}

// Class is a DNS class. Only IN (Internet) is used by the system, but the
// value is preserved on the wire.
type Class uint16

// DNS classes.
const (
	ClassINET Class = 1
	ClassCH   Class = 3
	ClassANY  Class = 255
)

// String returns the conventional mnemonic for the class.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	default:
		return "CLASS" + strconv.Itoa(int(c))
	}
}

// RCode is a DNS response code (RFC 1035 §4.1.1).
type RCode uint8

// Response codes.
const (
	RCodeSuccess  RCode = 0 // NOERROR
	RCodeFormErr  RCode = 1 // FORMERR
	RCodeServFail RCode = 2 // SERVFAIL
	RCodeNXDomain RCode = 3 // NXDOMAIN
	RCodeNotImp   RCode = 4 // NOTIMP
	RCodeRefused  RCode = 5 // REFUSED
)

var _rcodeNames = map[RCode]string{
	RCodeSuccess:  "NOERROR",
	RCodeFormErr:  "FORMERR",
	RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN",
	RCodeNotImp:   "NOTIMP",
	RCodeRefused:  "REFUSED",
}

// String returns the conventional mnemonic for the response code.
func (r RCode) String() string {
	if s, ok := _rcodeNames[r]; ok {
		return s
	}
	return "RCODE" + strconv.Itoa(int(r))
}

// Opcode is a DNS operation code. Only Query is used by the system.
type Opcode uint8

// Operation codes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String returns the conventional mnemonic for the opcode.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	default:
		return "OPCODE" + strconv.Itoa(int(o))
	}
}

// MaxUDPSize is the classic maximum DNS payload over UDP without EDNS0
// (RFC 1035 §2.3.4).
const MaxUDPSize = 512

// DefaultEDNSSize is the EDNS0 UDP payload size this implementation
// advertises by default.
const DefaultEDNSSize = 1232

// MaxMessageSize is the maximum encodable message (TCP length prefix is 16
// bits).
const MaxMessageSize = 65535

// MaxNameLength is the maximum length of a domain name in wire format
// (RFC 1035 §2.3.4).
const MaxNameLength = 255

// MaxLabelLength is the maximum length of a single label.
const MaxLabelLength = 63
