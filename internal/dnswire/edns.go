package dnswire

import (
	"errors"
	"fmt"
)

// EDNS option codes used by this implementation.
const (
	// EDNSOptionPadding is the Padding option of RFC 7830. RFC 8467
	// recommends padding DoH queries to 128-octet and responses to
	// 468-octet blocks so message sizes do not leak query identity
	// through the encrypted channel.
	EDNSOptionPadding uint16 = 12
)

// RFC 8467 recommended padding block sizes.
const (
	QueryPaddingBlock    = 128
	ResponsePaddingBlock = 468
)

// ErrBadEDNSOption reports malformed option bytes in an OPT record.
var ErrBadEDNSOption = errors.New("malformed edns option")

// EDNSOption is one {code, data} option inside an OPT pseudo-record
// (RFC 6891 §6.1.2).
type EDNSOption struct {
	Code uint16
	Data []byte
}

// EncodeEDNSOptions serialises options into OPT rdata bytes.
func EncodeEDNSOptions(opts []EDNSOption) []byte {
	size := 0
	for _, o := range opts {
		size += 4 + len(o.Data)
	}
	buf := make([]byte, 0, size)
	for _, o := range opts {
		buf = appendUint16(buf, o.Code)
		buf = appendUint16(buf, uint16(len(o.Data)))
		buf = append(buf, o.Data...)
	}
	return buf
}

// DecodeEDNSOptions parses OPT rdata bytes into options.
func DecodeEDNSOptions(data []byte) ([]EDNSOption, error) {
	var opts []EDNSOption
	pos := 0
	for pos < len(data) {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("option header at %d: %w", pos, ErrBadEDNSOption)
		}
		code := readUint16(data, pos)
		length := int(readUint16(data, pos+2))
		pos += 4
		if pos+length > len(data) {
			return nil, fmt.Errorf("option %d data at %d: %w", code, pos, ErrBadEDNSOption)
		}
		opts = append(opts, EDNSOption{
			Code: code,
			Data: append([]byte(nil), data[pos:pos+length]...),
		})
		pos += length
	}
	return opts, nil
}

// EDNSOptions returns the decoded options of the message's OPT record, or
// nil when there is none.
func (m *Message) EDNSOptions() ([]EDNSOption, error) {
	for _, r := range m.Additional {
		if r.Type != TypeOPT {
			continue
		}
		opt, ok := r.Data.(*OPTRecord)
		if !ok {
			return nil, ErrBadEDNSOption
		}
		return DecodeEDNSOptions(opt.Options)
	}
	return nil, nil
}

// PadTo appends (or extends) an RFC 7830 Padding option so the encoded
// message length becomes the smallest multiple of block that fits it. The
// message must already carry an OPT record (call SetEDNS first). Messages
// whose padded size would exceed the wire limit are left unpadded.
func (m *Message) PadTo(block int) error {
	if block <= 0 {
		return fmt.Errorf("pad block %d must be positive", block)
	}
	var opt *OPTRecord
	for _, r := range m.Additional {
		if r.Type == TypeOPT {
			if o, ok := r.Data.(*OPTRecord); ok {
				opt = o
			}
		}
	}
	if opt == nil {
		return errors.New("pad: message has no OPT record (call SetEDNS first)")
	}

	// Strip any existing padding so PadTo is idempotent.
	opts, err := DecodeEDNSOptions(opt.Options)
	if err != nil {
		return err
	}
	kept := opts[:0]
	for _, o := range opts {
		if o.Code != EDNSOptionPadding {
			kept = append(kept, o)
		}
	}
	opt.Options = EncodeEDNSOptions(kept)

	wire, err := m.Encode()
	if err != nil {
		return err
	}
	unpadded := len(wire)
	// The padding option itself costs 4 octets of header.
	target := ((unpadded + 4 + block - 1) / block) * block
	padLen := target - unpadded - 4
	if padLen < 0 {
		padLen = 0
	}
	if target > MaxMessageSize {
		return nil // cannot pad without overflowing; send unpadded
	}
	opt.Options = append(opt.Options, EncodeEDNSOptions([]EDNSOption{
		{Code: EDNSOptionPadding, Data: make([]byte, padLen)},
	})...)
	return nil
}
