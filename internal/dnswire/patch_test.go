package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// testResponseWire builds an encoded response with the given answer count
// and TTL, returning the wire bytes and the decoded form.
func testResponseWire(t *testing.T, answers int, ttl uint32) []byte {
	t.Helper()
	q, err := NewQuery("pool.ntp.org", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewResponse(q)
	resp.Header.RecursionAvailable = true
	for i := 0; i < answers; i++ {
		addr := netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)})
		resp.Answers = append(resp.Answers, AddressRecord("pool.ntp.org", addr, ttl))
	}
	wire, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestPatchID(t *testing.T) {
	wire := testResponseWire(t, 2, 60)
	PatchID(wire, 0xBEEF)
	if got := WireID(wire); got != 0xBEEF {
		t.Fatalf("WireID = %#x, want 0xBEEF", got)
	}
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 0xBEEF {
		t.Fatalf("decoded ID = %#x, want 0xBEEF", m.Header.ID)
	}
}

func TestEchoFlags(t *testing.T) {
	cases := []struct{ rd, cd bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	}
	for _, tc := range cases {
		q, err := NewQuery("pool.ntp.org", TypeA)
		if err != nil {
			t.Fatal(err)
		}
		q.Header.RecursionDesired = tc.rd
		q.Header.CheckingDisabled = tc.cd
		qwire, err := q.Encode()
		if err != nil {
			t.Fatal(err)
		}
		// Stored form: RD/CD clear, RA set.
		resp := testResponseWire(t, 1, 60)
		resp[2] &^= flagByteRD
		resp[3] &^= flagByteCD
		EchoFlags(resp, qwire)
		m, err := Decode(resp)
		if err != nil {
			t.Fatal(err)
		}
		if m.Header.RecursionDesired != tc.rd || m.Header.CheckingDisabled != tc.cd {
			t.Fatalf("rd=%t cd=%t after echo, want rd=%t cd=%t",
				m.Header.RecursionDesired, m.Header.CheckingDisabled, tc.rd, tc.cd)
		}
		if !m.Header.Response || !m.Header.RecursionAvailable {
			t.Fatal("EchoFlags clobbered non-echoed flag bits")
		}
	}
}

func TestAnswerTTLOffsetsAndPatch(t *testing.T) {
	for _, answers := range []int{0, 1, 3, 7} {
		wire := testResponseWire(t, answers, 300)
		offsets, err := AnswerTTLOffsets(wire)
		if err != nil {
			t.Fatal(err)
		}
		if len(offsets) != answers {
			t.Fatalf("%d answers: got %d offsets", answers, len(offsets))
		}
		PatchAnswerTTLs(wire, offsets, 42)
		m, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range m.Answers {
			if r.TTL != 42 {
				t.Fatalf("answer TTL = %d, want 42", r.TTL)
			}
		}
		// Patching TTLs must not disturb the rest of the message.
		ref := testResponseWire(t, answers, 42)
		PatchID(ref, WireID(wire))
		if !bytes.Equal(wire, ref) {
			t.Fatal("TTL patch produced different bytes than encoding with that TTL")
		}
	}
}

func TestAnswerTTLOffsetsRejectsTruncated(t *testing.T) {
	wire := testResponseWire(t, 2, 60)
	for _, cut := range []int{4, 11, 14, len(wire) - 3} {
		if _, err := AnswerTTLOffsets(wire[:cut]); err == nil {
			t.Fatalf("cut at %d: want error", cut)
		}
	}
}

func TestWireTruncated(t *testing.T) {
	wire := testResponseWire(t, 1, 60)
	if WireTruncated(wire) {
		t.Fatal("TC set on untruncated response")
	}
	wire[2] |= flagByteTC
	if !WireTruncated(wire) {
		t.Fatal("TC not observed")
	}
}

func TestPatchHelpersAllocateNothing(t *testing.T) {
	wire := testResponseWire(t, 3, 60)
	offsets, err := AnswerTTLOffsets(wire)
	if err != nil {
		t.Fatal(err)
	}
	query := testResponseWire(t, 0, 60)
	if n := testing.AllocsPerRun(100, func() {
		PatchID(wire, 7)
		EchoFlags(wire, query)
		PatchAnswerTTLs(wire, offsets, 9)
	}); n != 0 {
		t.Fatalf("patch helpers allocate %v per run, want 0", n)
	}
}
