package dnswire

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEDNSOptionsRoundTrip(t *testing.T) {
	opts := []EDNSOption{
		{Code: 10, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}, // cookie-ish
		{Code: EDNSOptionPadding, Data: make([]byte, 16)},
		{Code: 999, Data: nil},
	}
	wire := EncodeEDNSOptions(opts)
	got, err := DecodeEDNSOptions(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(opts) {
		t.Fatalf("decoded %d options", len(got))
	}
	for i := range opts {
		if got[i].Code != opts[i].Code || len(got[i].Data) != len(opts[i].Data) {
			t.Errorf("option %d: %+v != %+v", i, got[i], opts[i])
		}
	}
}

func TestDecodeEDNSOptionsRejectsTruncation(t *testing.T) {
	cases := [][]byte{
		{0x00},                   // half a code
		{0x00, 0x0C, 0x00},       // half a length
		{0x00, 0x0C, 0x00, 0x05}, // claims 5 data bytes, has none
	}
	for i, data := range cases {
		if _, err := DecodeEDNSOptions(data); !errors.Is(err, ErrBadEDNSOption) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestPadTo(t *testing.T) {
	q, err := NewQuery("pool.ntp.org.", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.PadTo(QueryPaddingBlock); err != nil {
		t.Fatal(err)
	}
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire)%QueryPaddingBlock != 0 {
		t.Fatalf("padded size %d not a multiple of %d", len(wire), QueryPaddingBlock)
	}
	// The message must still decode and carry the padding option.
	decoded, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := decoded.EDNSOptions()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range opts {
		if o.Code == EDNSOptionPadding {
			found = true
		}
	}
	if !found {
		t.Fatal("padding option missing after decode")
	}
}

func TestPadToIsIdempotent(t *testing.T) {
	q, err := NewQuery("a.very.long.name.under.pool.ntp.org.", TypeAAAA)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.PadTo(QueryPaddingBlock); err != nil {
		t.Fatal(err)
	}
	first, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.PadTo(QueryPaddingBlock); err != nil {
		t.Fatal(err)
	}
	second, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("repadding changed size: %d -> %d", len(first), len(second))
	}
}

func TestPadToRequiresOPT(t *testing.T) {
	m := &Message{Header: Header{ID: 1}}
	if err := m.PadTo(128); err == nil {
		t.Fatal("padding without OPT accepted")
	}
	q, err := NewQuery("x.test.", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.PadTo(0); err == nil {
		t.Fatal("block 0 accepted")
	}
}

// Property: for any name, padding to 128 always produces a multiple of
// 128 and never corrupts the message.
func TestPadToProperty(t *testing.T) {
	f := func(labelByte uint8, typ bool) bool {
		label := "x"
		for i := 0; i < int(labelByte%40); i++ {
			label += "a"
		}
		qt := TypeA
		if typ {
			qt = TypeAAAA
		}
		q, err := NewQuery(label+".pool.test.", qt)
		if err != nil {
			return false
		}
		if err := q.PadTo(QueryPaddingBlock); err != nil {
			return false
		}
		wire, err := q.Encode()
		if err != nil {
			return false
		}
		if len(wire)%QueryPaddingBlock != 0 {
			return false
		}
		_, err = Decode(wire)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
