package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Message-level errors.
var (
	ErrTruncatedMessage = errors.New("truncated message")
	ErrMessageTooLarge  = errors.New("message exceeds 65535 octets")
	ErrTooManyRecords   = errors.New("unreasonable record count")
)

// Header holds the fixed 12-octet DNS message header (RFC 1035 §4.1.1),
// with the flag bits unpacked into booleans.
type Header struct {
	ID                 uint16
	Response           bool   // QR
	Opcode             Opcode // 4 bits
	Authoritative      bool   // AA
	Truncated          bool   // TC
	RecursionDesired   bool   // RD
	RecursionAvailable bool   // RA
	AuthenticData      bool   // AD (RFC 4035)
	CheckingDisabled   bool   // CD (RFC 4035)
	RCode              RCode  // 4 bits
}

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like presentation form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

// Key returns a canonical cache key for the question.
func (q Question) Key() string {
	return CanonicalName(q.Name) + "|" + q.Class.String() + "|" + q.Type.String()
}

// Record is a decoded resource record.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the record in zone-file-like presentation form.
func (r Record) String() string {
	return fmt.Sprintf("%s %d %s %s %s",
		CanonicalName(r.Name), r.TTL, r.Class, r.Type, r.Data.String())
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// Copy returns a deep-enough copy of the message: the section slices are
// fresh, record structs are copied by value, and RData payloads are shared
// (they are treated as immutable throughout this repository).
func (m *Message) Copy() *Message {
	c := &Message{Header: m.Header}
	c.Questions = append([]Question(nil), m.Questions...)
	c.Answers = append([]Record(nil), m.Answers...)
	c.Authority = append([]Record(nil), m.Authority...)
	c.Additional = append([]Record(nil), m.Additional...)
	return c
}

// String renders a dig-like multi-line summary, useful in logs and tests.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id=%d opcode=%s rcode=%s qr=%t aa=%t tc=%t rd=%t ra=%t\n",
		m.Header.ID, m.Header.Opcode, m.Header.RCode,
		m.Header.Response, m.Header.Authoritative, m.Header.Truncated,
		m.Header.RecursionDesired, m.Header.RecursionAvailable)
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";; question: %s\n", q)
	}
	for _, r := range m.Answers {
		fmt.Fprintf(&sb, "answer: %s\n", r)
	}
	for _, r := range m.Authority {
		fmt.Fprintf(&sb, "authority: %s\n", r)
	}
	for _, r := range m.Additional {
		fmt.Fprintf(&sb, "additional: %s\n", r)
	}
	return sb.String()
}

// Encode serialises the message into wire format with name compression.
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 0, 512)
	cmap := make(compressionMap, 8)

	buf = appendUint16(buf, m.Header.ID)
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.Opcode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	if m.Header.AuthenticData {
		flags |= 1 << 5
	}
	if m.Header.CheckingDisabled {
		flags |= 1 << 4
	}
	flags |= uint16(m.Header.RCode & 0xF)
	buf = appendUint16(buf, flags)
	buf = appendUint16(buf, uint16(len(m.Questions)))
	buf = appendUint16(buf, uint16(len(m.Answers)))
	buf = appendUint16(buf, uint16(len(m.Authority)))
	buf = appendUint16(buf, uint16(len(m.Additional)))

	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, cmap); err != nil {
			return nil, fmt.Errorf("encode question %q: %w", q.Name, err)
		}
		buf = appendUint16(buf, uint16(q.Type))
		buf = appendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for _, r := range section {
			if buf, err = appendRecord(buf, r, cmap); err != nil {
				return nil, fmt.Errorf("encode record %q %s: %w", r.Name, r.Type, err)
			}
		}
	}
	if len(buf) > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	return buf, nil
}

// appendRecord appends one resource record, including the RDLENGTH prefix.
func appendRecord(buf []byte, r Record, cmap compressionMap) ([]byte, error) {
	if r.Data == nil {
		return buf, fmt.Errorf("record %q has nil rdata: %w", r.Name, ErrBadRData)
	}
	var err error
	if buf, err = appendName(buf, r.Name, cmap); err != nil {
		return buf, err
	}
	buf = appendUint16(buf, uint16(r.Type))
	buf = appendUint16(buf, uint16(r.Class))
	buf = appendUint32(buf, r.TTL)
	lenOff := len(buf)
	buf = appendUint16(buf, 0) // placeholder for RDLENGTH

	// Only these types may use compression inside RDATA; everything else
	// gets a nil map so names are emitted verbatim.
	var rdataMap compressionMap
	switch r.Type {
	case TypeNS, TypeCNAME, TypePTR, TypeSOA, TypeMX:
		rdataMap = cmap
	}
	buf, err = r.Data.appendTo(buf, rdataMap)
	if err != nil {
		return buf, err
	}
	rdLen := len(buf) - lenOff - 2
	if rdLen > 0xFFFF {
		return buf, ErrRDataTooLong
	}
	buf[lenOff] = byte(rdLen >> 8)
	buf[lenOff+1] = byte(rdLen)
	return buf, nil
}

// Decode parses a complete DNS message from wire format.
func Decode(msg []byte) (*Message, error) {
	if len(msg) < 12 {
		return nil, fmt.Errorf("message of %d octets: %w", len(msg), ErrTruncatedMessage)
	}
	m := &Message{}
	m.Header.ID = readUint16(msg, 0)
	flags := readUint16(msg, 2)
	m.Header.Response = flags&(1<<15) != 0
	m.Header.Opcode = Opcode(flags >> 11 & 0xF)
	m.Header.Authoritative = flags&(1<<10) != 0
	m.Header.Truncated = flags&(1<<9) != 0
	m.Header.RecursionDesired = flags&(1<<8) != 0
	m.Header.RecursionAvailable = flags&(1<<7) != 0
	m.Header.AuthenticData = flags&(1<<5) != 0
	m.Header.CheckingDisabled = flags&(1<<4) != 0
	m.Header.RCode = RCode(flags & 0xF)

	qd := int(readUint16(msg, 4))
	an := int(readUint16(msg, 6))
	ns := int(readUint16(msg, 8))
	ar := int(readUint16(msg, 10))
	// A 12-octet-header message cannot hold more records than bytes;
	// reject absurd counts before allocating.
	if qd+an+ns+ar > len(msg) {
		return nil, ErrTooManyRecords
	}

	off := 12
	var err error
	m.Questions = make([]Question, 0, qd)
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = decodeName(msg, off)
		if err != nil {
			return nil, fmt.Errorf("decode question %d: %w", i, err)
		}
		if off+4 > len(msg) {
			return nil, fmt.Errorf("question %d fixed fields: %w", i, ErrTruncatedMessage)
		}
		q.Type = Type(readUint16(msg, off))
		q.Class = Class(readUint16(msg, off+2))
		off += 4
		m.Questions = append(m.Questions, q)
	}

	decodeSection := func(count int, section string) ([]Record, error) {
		records := make([]Record, 0, count)
		for i := 0; i < count; i++ {
			var r Record
			r.Name, off, err = decodeName(msg, off)
			if err != nil {
				return nil, fmt.Errorf("decode %s record %d: %w", section, i, err)
			}
			if off+10 > len(msg) {
				return nil, fmt.Errorf("%s record %d fixed fields: %w", section, i, ErrTruncatedMessage)
			}
			r.Type = Type(readUint16(msg, off))
			r.Class = Class(readUint16(msg, off+2))
			r.TTL = readUint32(msg, off+4)
			rdLen := int(readUint16(msg, off+8))
			off += 10
			if off+rdLen > len(msg) {
				return nil, fmt.Errorf("%s record %d rdata: %w", section, i, ErrTruncatedMessage)
			}
			r.Data, err = decodeRData(msg, off, rdLen, r.Type)
			if err != nil {
				return nil, fmt.Errorf("decode %s record %d rdata: %w", section, i, err)
			}
			off += rdLen
			records = append(records, r)
		}
		return records, nil
	}

	if m.Answers, err = decodeSection(an, "answer"); err != nil {
		return nil, err
	}
	if m.Authority, err = decodeSection(ns, "authority"); err != nil {
		return nil, err
	}
	if m.Additional, err = decodeSection(ar, "additional"); err != nil {
		return nil, err
	}
	return m, nil
}
