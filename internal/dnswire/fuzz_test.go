package dnswire

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the message decoder: arbitrary input must never
// panic, and anything that decodes must re-encode and decode again to an
// equivalent message (idempotent canonicalisation).
func FuzzDecode(f *testing.F) {
	// Seed corpus: a real query and a real response.
	q, err := NewQuery("pool.ntp.org.", TypeA)
	if err != nil {
		f.Fatal(err)
	}
	qWire, err := q.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(qWire)

	resp := NewResponse(q)
	resp.Answers = append(resp.Answers, Record{
		Name: "pool.ntp.org.", Type: TypeTXT, Class: ClassINET, TTL: 60,
		Data: &TXTRecord{Strings: []string{"seed"}},
	})
	rWire, err := resp.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rWire)
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		reencoded, err := msg.Encode()
		if err != nil {
			// Some decodable messages are not re-encodable (e.g. counts
			// of unsupported shapes); acceptable as long as no panic.
			return
		}
		again, err := Decode(reencoded)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		// Canonical stability: encoding the re-decoded message must
		// reproduce the same bytes.
		third, err := again.Encode()
		if err != nil {
			t.Fatalf("third encode failed: %v", err)
		}
		if !bytes.Equal(reencoded, third) {
			t.Fatalf("encoding not canonical:\n1: %x\n2: %x", reencoded, third)
		}
	})
}

// FuzzDecodeName exercises the compression-pointer handling specifically.
func FuzzDecodeName(f *testing.F) {
	wire, err := appendName(nil, "a.b.example.org.", nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire, 0)
	f.Add([]byte{0xC0, 0x00}, 0)
	f.Add([]byte{1, 'a', 0xC0, 0x00}, 2)

	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 {
			off = -off
		}
		name, n, err := decodeName(data, off%maxInt(len(data)+1, 1))
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("decodeName consumed out-of-range offset %d of %d", n, len(data))
		}
		if err := ValidateName(name); err != nil {
			t.Fatalf("decodeName produced invalid name %q: %v", name, err)
		}
	})
}

// FuzzEDNSOptions round-trips option bytes.
func FuzzEDNSOptions(f *testing.F) {
	f.Add(EncodeEDNSOptions([]EDNSOption{{Code: 12, Data: make([]byte, 8)}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		opts, err := DecodeEDNSOptions(data)
		if err != nil {
			return
		}
		re := EncodeEDNSOptions(opts)
		if !bytes.Equal(re, data) {
			t.Fatalf("options not canonical: %x -> %x", data, re)
		}
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
