package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzDecode hammers the message decoder: arbitrary input must never
// panic, and anything that decodes must re-encode and decode again to an
// equivalent message (idempotent canonicalisation).
func FuzzDecode(f *testing.F) {
	// Seed corpus: a real query and a real response.
	q, err := NewQuery("pool.ntp.org.", TypeA)
	if err != nil {
		f.Fatal(err)
	}
	qWire, err := q.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(qWire)

	resp := NewResponse(q)
	resp.Answers = append(resp.Answers, Record{
		Name: "pool.ntp.org.", Type: TypeTXT, Class: ClassINET, TTL: 60,
		Data: &TXTRecord{Strings: []string{"seed"}},
	})
	rWire, err := resp.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rWire)
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		reencoded, err := msg.Encode()
		if err != nil {
			// Some decodable messages are not re-encodable (e.g. counts
			// of unsupported shapes); acceptable as long as no panic.
			return
		}
		again, err := Decode(reencoded)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		// Canonical stability: encoding the re-decoded message must
		// reproduce the same bytes.
		third, err := again.Encode()
		if err != nil {
			t.Fatalf("third encode failed: %v", err)
		}
		if !bytes.Equal(reencoded, third) {
			t.Fatalf("encoding not canonical:\n1: %x\n2: %x", reencoded, third)
		}
	})
}

// FuzzDecodeName exercises the compression-pointer handling specifically.
func FuzzDecodeName(f *testing.F) {
	wire, err := appendName(nil, "a.b.example.org.", nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire, 0)
	f.Add([]byte{0xC0, 0x00}, 0)
	f.Add([]byte{1, 'a', 0xC0, 0x00}, 2)

	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 {
			off = -off
		}
		name, n, err := decodeName(data, off%maxInt(len(data)+1, 1))
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("decodeName consumed out-of-range offset %d of %d", n, len(data))
		}
		if err := ValidateName(name); err != nil {
			t.Fatalf("decodeName produced invalid name %q: %v", name, err)
		}
	})
}

// FuzzEDNSOptions round-trips option bytes.
func FuzzEDNSOptions(f *testing.F) {
	f.Add(EncodeEDNSOptions([]EDNSOption{{Code: 12, Data: make([]byte, 8)}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		opts, err := DecodeEDNSOptions(data)
		if err != nil {
			return
		}
		re := EncodeEDNSOptions(opts)
		if !bytes.Equal(re, data) {
			t.Fatalf("options not canonical: %x -> %x", data, re)
		}
	})
}

// FuzzHeaderPatch covers the in-place header patchers the wire cache
// serves with: PatchID/WireID must round-trip and touch only the ID
// octets, and EchoFlags must copy exactly the RD and CD bits from the
// query, leaving every other bit — TC included — alone.
func FuzzHeaderPatch(f *testing.F) {
	q, err := NewQuery("pool.ntp.org.", TypeA)
	if err != nil {
		f.Fatal(err)
	}
	qWire, err := q.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(qWire, uint16(0xBEEF), byte(0xFF), byte(0xFF))
	f.Add(make([]byte, 12), uint16(0), byte(0x01), byte(0x10))

	f.Fuzz(func(t *testing.T, data []byte, id uint16, q2, q3 byte) {
		if len(data) < 12 {
			return // the patchers' documented contract starts at a full header
		}
		orig := append([]byte(nil), data...)

		patched := append([]byte(nil), data...)
		PatchID(patched, id)
		if got := WireID(patched); got != id {
			t.Fatalf("WireID after PatchID = %#x, want %#x", got, id)
		}
		if !bytes.Equal(patched[2:], orig[2:]) {
			t.Fatal("PatchID modified bytes beyond the ID field")
		}
		PatchID(patched, WireID(orig))
		if !bytes.Equal(patched, orig) {
			t.Fatal("PatchID does not round-trip")
		}

		query := []byte{0, 0, q2, q3}
		EchoFlags(patched, query)
		wantB2 := orig[2]&^byte(0x01) | q2&0x01
		wantB3 := orig[3]&^byte(0x10) | q3&0x10
		if patched[2] != wantB2 || patched[3] != wantB3 {
			t.Fatalf("EchoFlags bytes = %#x %#x, want %#x %#x", patched[2], patched[3], wantB2, wantB3)
		}
		if patched[2]&0x02 != orig[2]&0x02 {
			t.Fatal("EchoFlags changed the TC bit")
		}
		if !bytes.Equal(patched[4:], orig[4:]) || !bytes.Equal(patched[:2], orig[:2]) {
			t.Fatal("EchoFlags modified bytes beyond the flag octets")
		}

		// Decoder agreement: if the original decodes, the patched form
		// must still decode, carrying the patched ID and echoed bits.
		if _, err := Decode(orig); err != nil {
			return
		}
		PatchID(patched, id)
		msg, err := Decode(patched)
		if err != nil {
			t.Fatalf("patched message no longer decodes: %v", err)
		}
		if msg.Header.ID != id {
			t.Fatalf("decoded ID = %#x, want %#x", msg.Header.ID, id)
		}
		if msg.Header.RecursionDesired != (q2&0x01 != 0) || msg.Header.CheckingDisabled != (q3&0x10 != 0) {
			t.Fatal("decoded RD/CD do not match the echoed query bits")
		}
	})
}

// FuzzAnswerTTLPatch holds the TTL-aging patcher against the full
// decoder: offsets must stay inside the message and inside the answer
// section, patching must touch only those four-octet windows, and a
// decodable message must still decode afterwards with every answer TTL
// rewritten — exactly what the wire cache relies on when it ages served
// copies without re-encoding.
func FuzzAnswerTTLPatch(f *testing.F) {
	q, err := NewQuery("pool.ntp.org.", TypeA)
	if err != nil {
		f.Fatal(err)
	}
	qWire, err := q.Encode()
	if err != nil {
		f.Fatal(err)
	}
	resp := NewResponse(q)
	resp.Answers = append(resp.Answers,
		AddressRecord("pool.ntp.org.", netip.MustParseAddr("192.0.2.1"), 300),
		AddressRecord("pool.ntp.org.", netip.MustParseAddr("192.0.2.2"), 60),
	)
	rWire, err := resp.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rWire, uint32(120))
	f.Add(qWire, uint32(0))
	f.Add([]byte{}, uint32(1))

	f.Fuzz(func(t *testing.T, data []byte, ttl uint32) {
		msg, decErr := Decode(data)
		offsets, err := AnswerTTLOffsets(data)
		if err != nil {
			if decErr == nil {
				t.Fatalf("message decodes but AnswerTTLOffsets rejects it: %v", err)
			}
			return
		}
		prevEnd := 12
		for i, off := range offsets {
			if off < prevEnd || off+4 > len(data) {
				t.Fatalf("offset %d (#%d of %d) outside the message or out of order", off, i, len(offsets))
			}
			prevEnd = off + 4
		}

		patched := append([]byte(nil), data...)
		PatchAnswerTTLs(patched, offsets, ttl)
		inWindow := make([]bool, len(data))
		for _, off := range offsets {
			for i := off; i < off+4; i++ {
				inWindow[i] = true
			}
		}
		for i := range data {
			if !inWindow[i] && patched[i] != data[i] {
				t.Fatalf("PatchAnswerTTLs modified byte %d outside every TTL window", i)
			}
		}

		// Offsets are documented to survive byte-for-byte copies; they
		// must therefore survive their own patch.
		again, err := AnswerTTLOffsets(patched)
		if err != nil || len(again) != len(offsets) {
			t.Fatalf("offsets unstable after patching: %v (%d -> %d)", err, len(offsets), len(again))
		}
		for i := range again {
			if again[i] != offsets[i] {
				t.Fatalf("offset %d moved: %d -> %d", i, offsets[i], again[i])
			}
		}

		if decErr != nil {
			return
		}
		msgP, err := Decode(patched)
		if err != nil {
			t.Fatalf("patched message no longer decodes: %v", err)
		}
		if len(msgP.Answers) != len(msg.Answers) || len(offsets) != len(msg.Answers) {
			t.Fatalf("answer counts diverged: %d offsets, %d answers before, %d after",
				len(offsets), len(msg.Answers), len(msgP.Answers))
		}
		for i, a := range msgP.Answers {
			if a.TTL != ttl {
				t.Fatalf("answer %d TTL = %d after patch, want %d", i, a.TTL, ttl)
			}
		}
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
