package dnswire

import (
	"errors"
	"strings"
	"testing"
)

func TestCanonicalName(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{"", "."},
		{".", "."},
		{"example.org", "example.org."},
		{"example.org.", "example.org."},
		{"EXAMPLE.ORG", "example.org."},
		{"  pool.NTP.org  ", "pool.ntp.org."},
	}
	for _, tt := range tests {
		if got := CanonicalName(tt.give); got != tt.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestSplitLabels(t *testing.T) {
	tests := []struct {
		give string
		want []string
	}{
		{".", nil},
		{"org.", []string{"org"}},
		{"pool.ntp.org.", []string{"pool", "ntp", "org"}},
	}
	for _, tt := range tests {
		got := SplitLabels(tt.give)
		if len(got) != len(tt.want) {
			t.Fatalf("SplitLabels(%q) = %v, want %v", tt.give, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("SplitLabels(%q)[%d] = %q, want %q", tt.give, i, got[i], tt.want[i])
			}
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	tests := []struct {
		child, parent string
		want          bool
	}{
		{"a.example.org", "example.org", true},
		{"example.org", "example.org", true},
		{"example.org", "a.example.org", false},
		{"badexample.org", "example.org", false},
		{"anything.at.all", ".", true},
		{"A.EXAMPLE.org", "example.ORG.", true},
	}
	for _, tt := range tests {
		if got := IsSubdomain(tt.child, tt.parent); got != tt.want {
			t.Errorf("IsSubdomain(%q, %q) = %t, want %t", tt.child, tt.parent, got, tt.want)
		}
	}
}

func TestValidateName(t *testing.T) {
	longLabel := strings.Repeat("a", 64)
	okLabel := strings.Repeat("a", 63)
	longName := strings.Repeat("abcdefg.", 32) // 256 octets in wire form

	tests := []struct {
		name    string
		give    string
		wantErr error
	}{
		{"root", ".", nil},
		{"simple", "example.org", nil},
		{"max label", okLabel + ".org", nil},
		{"label too long", longLabel + ".org", ErrLabelTooLong},
		{"name too long", longName, ErrNameTooLong},
		{"empty label", "a..b", ErrEmptyLabel},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := ValidateName(tt.give)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("ValidateName(%q) = %v, want nil", tt.give, err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("ValidateName(%q) = %v, want %v", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestNameRoundTrip(t *testing.T) {
	names := []string{
		".",
		"org.",
		"example.org.",
		"a.b.c.d.e.f.example.org.",
		strings.Repeat("x", 63) + ".org.",
	}
	for _, name := range names {
		buf, err := appendName(nil, name, nil)
		if err != nil {
			t.Fatalf("appendName(%q): %v", name, err)
		}
		got, n, err := decodeName(buf, 0)
		if err != nil {
			t.Fatalf("decodeName(%q wire): %v", name, err)
		}
		if got != name {
			t.Errorf("round trip %q = %q", name, got)
		}
		if n != len(buf) {
			t.Errorf("decodeName(%q) consumed %d of %d bytes", name, n, len(buf))
		}
	}
}

func TestNameCompression(t *testing.T) {
	cmap := make(compressionMap)
	buf, err := appendName(nil, "pool.ntp.org.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	full := len(buf)
	buf, err = appendName(buf, "a.pool.ntp.org.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	// Second name should be "a" label (2 bytes) + 2-byte pointer.
	if got := len(buf) - full; got != 4 {
		t.Fatalf("compressed suffix occupies %d bytes, want 4", got)
	}
	name, _, err := decodeName(buf, full)
	if err != nil {
		t.Fatal(err)
	}
	if name != "a.pool.ntp.org." {
		t.Fatalf("decoded %q, want a.pool.ntp.org.", name)
	}
}

func TestDecodeNameRejectsForwardPointer(t *testing.T) {
	// Pointer at offset 0 pointing to offset 0 (self-loop).
	buf := []byte{0xC0, 0x00}
	if _, _, err := decodeName(buf, 0); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("err = %v, want ErrBadPointer", err)
	}
}

func TestDecodeNameRejectsTruncation(t *testing.T) {
	cases := [][]byte{
		{},       // nothing at all
		{5, 'a'}, // label overruns
		{0xC0},   // half a pointer
		{3, 'a', 'b'} /* label claims 3 bytes, has 2 */}
	for i, buf := range cases {
		if _, _, err := decodeName(buf, 0); err == nil {
			t.Errorf("case %d: decodeName accepted truncated input", i)
		}
	}
}

func TestDecodeNameLowercases(t *testing.T) {
	buf := []byte{3, 'O', 'r', 'G', 0}
	name, _, err := decodeName(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != "org." {
		t.Fatalf("decoded %q, want org.", name)
	}
}

func TestDecodeNameRejectsOverlongAssembled(t *testing.T) {
	// Build a wire name of 5 labels x 63 bytes = over 255 octets, without
	// compression, and make sure assembly is rejected.
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = append(buf, 63)
		buf = append(buf, []byte(strings.Repeat("a", 63))...)
	}
	buf = append(buf, 0)
	if _, _, err := decodeName(buf, 0); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("err = %v, want ErrNameTooLong", err)
	}
}

func TestDecodeNameRejectsNonHostnameBytes(t *testing.T) {
	// Labels carrying '.' or control bytes would be ambiguous in the
	// presentation-form internal representation; the decoder rejects
	// them (found by FuzzDecodeName).
	cases := [][]byte{
		{3, '.', '0', '0', 0}, // dot inside a label
		{2, 'a', 0x07, 0},     // control byte
		{2, 'a', ' ', 0},      // space
		{2, 'a', 0xFF, 0},     // high byte
	}
	for i, wire := range cases {
		if _, _, err := decodeName(wire, 0); !errors.Is(err, ErrBadLabelByte) {
			t.Errorf("case %d: err = %v, want ErrBadLabelByte", i, err)
		}
	}
	// Ordinary hostname bytes still pass, including '-' and '_'.
	ok := []byte{4, 'a', '-', '_', '9', 0}
	if _, _, err := decodeName(ok, 0); err != nil {
		t.Errorf("hostname-safe label rejected: %v", err)
	}
}
