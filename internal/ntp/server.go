package ntp

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrServerClosed is returned by methods on a closed Server.
var ErrServerClosed = errors.New("ntp server closed")

// Server is a UDP SNTP server with a configurable clock. A benign server
// reports true time; a malicious one reports time shifted by a fixed
// offset — the adversary of the Chronos threat model (time-shifting
// servers inside the pool).
type Server struct {
	conn    *net.UDPConn
	clock   func() time.Time
	shift   time.Duration
	stratum uint8

	closed atomic.Bool
	wg     sync.WaitGroup
	served atomic.Uint64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithShift makes the server malicious: every timestamp it reports is
// shifted by d.
func WithShift(d time.Duration) ServerOption {
	return func(s *Server) { s.shift = d }
}

// WithClock injects the time source (tests use synthetic clocks).
func WithClock(clock func() time.Time) ServerOption {
	return func(s *Server) { s.clock = clock }
}

// WithStratum overrides the advertised stratum (default 2).
func WithStratum(stratum uint8) ServerOption {
	return func(s *Server) { s.stratum = stratum }
}

// NewServer starts an SNTP server on addr ("127.0.0.1:0" for ephemeral).
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	s := &Server{conn: conn, clock: time.Now, stratum: 2}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the server's host:port.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Shift returns the configured malicious shift (0 for benign servers).
func (s *Server) Shift() time.Duration { return s.shift }

// Served returns how many requests were answered.
func (s *Server) Served() uint64 { return s.served.Load() }

// Close stops the server.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return ErrServerClosed
	}
	s.conn.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 512)
	for {
		n, client, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if s.closed.Load() {
				return
			}
			continue
		}
		req, err := DecodePacket(buf[:n])
		if err != nil || req.Mode != ModeClient {
			continue
		}
		recv := s.clock().Add(s.shift)
		resp := &Packet{
			Leap:          LeapNone,
			Version:       Version,
			Mode:          ModeServer,
			Stratum:       s.stratum,
			Poll:          req.Poll,
			Precision:     -20,
			RefID:         0x7F000001,
			ReferenceTime: ToTime64(recv.Add(-10 * time.Second)),
			OriginTime:    req.TransmitTime,
			ReceiveTime:   ToTime64(recv),
			TransmitTime:  ToTime64(s.clock().Add(s.shift)),
		}
		s.served.Add(1)
		_, _ = s.conn.WriteToUDP(resp.Encode(), client)
	}
}
