package ntp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// Client errors.
var (
	// ErrOriginMismatch reports a response that does not echo our
	// transmit timestamp — a blind-spoofing defence.
	ErrOriginMismatch = errors.New("origin timestamp mismatch")
)

// DefaultClientTimeout bounds one SNTP exchange when the context carries
// no deadline.
const DefaultClientTimeout = 2 * time.Second

// Measurement is the outcome of one SNTP exchange.
type Measurement struct {
	// Offset is the estimated local-clock error: add it to local time to
	// get server time.
	Offset time.Duration
	// Delay is the round-trip delay.
	Delay time.Duration
	// Stratum is the server's advertised stratum.
	Stratum uint8
}

// Client queries SNTP servers.
type Client struct {
	// Clock is the local time source (injectable for tests).
	Clock func() time.Time
	// Dialer optionally overrides dialing.
	Dialer net.Dialer
}

// NewClient builds an SNTP client reading the system clock.
func NewClient() *Client {
	return &Client{Clock: time.Now}
}

// Query performs one SNTP exchange with server (host:port) and returns
// the measured offset and delay.
func (c *Client) Query(ctx context.Context, server string) (Measurement, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultClientTimeout)
		defer cancel()
	}
	clock := c.Clock
	if clock == nil {
		clock = time.Now
	}

	conn, err := c.Dialer.DialContext(ctx, "udp", server)
	if err != nil {
		return Measurement{}, fmt.Errorf("dial %s: %w", server, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return Measurement{}, err
		}
	}

	t1 := clock()
	req := &Packet{
		Version:      Version,
		Mode:         ModeClient,
		TransmitTime: ToTime64(t1),
	}
	if _, err := conn.Write(req.Encode()); err != nil {
		return Measurement{}, fmt.Errorf("send to %s: %w", server, err)
	}
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		return Measurement{}, fmt.Errorf("receive from %s: %w", server, err)
	}
	t4 := clock()

	resp, err := DecodePacket(buf[:n])
	if err != nil {
		return Measurement{}, fmt.Errorf("decode from %s: %w", server, err)
	}
	if resp.Mode != ModeServer {
		return Measurement{}, fmt.Errorf("%s: mode %d: %w", server, resp.Mode, ErrBadMode)
	}
	if resp.Stratum == 0 {
		return Measurement{}, fmt.Errorf("%s: %w", server, ErrKissOfDeath)
	}
	if resp.OriginTime != req.TransmitTime {
		return Measurement{}, fmt.Errorf("%s: %w", server, ErrOriginMismatch)
	}

	t2 := resp.ReceiveTime.ToTime()
	t3 := resp.TransmitTime.ToTime()
	return Measurement{
		Offset:  Offset(t1, t2, t3, t4),
		Delay:   RoundTripDelay(t1, t2, t3, t4),
		Stratum: resp.Stratum,
	}, nil
}
