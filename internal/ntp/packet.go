// Package ntp implements the SNTP subset of the Network Time Protocol
// (RFC 4330 / RFC 5905 on-wire format): packet codec, a UDP time server
// with a configurable clock (benign servers tell the truth, malicious
// servers apply a shift — exactly how the Chronos paper models its
// adversary), and a client computing clock offset from the four-timestamp
// exchange. This is the application substrate the paper's pool-generation
// mechanism protects.
package ntp

import (
	"errors"
	"fmt"
	"time"
)

// PacketSize is the fixed SNTP packet size (no extensions).
const PacketSize = 48

// Packet errors.
var (
	// ErrShortPacket reports fewer than 48 octets.
	ErrShortPacket = errors.New("ntp packet shorter than 48 octets")
	// ErrKissOfDeath reports a stratum-0 response.
	ErrKissOfDeath = errors.New("kiss-of-death response")
	// ErrBadMode reports an unexpected association mode.
	ErrBadMode = errors.New("unexpected ntp mode")
)

// Mode is the NTP association mode.
type Mode uint8

// Association modes.
const (
	ModeClient Mode = 3
	ModeServer Mode = 4
)

// LeapIndicator warns of impending leap seconds.
type LeapIndicator uint8

// Leap indicator values.
const (
	LeapNone   LeapIndicator = 0
	LeapAddSec LeapIndicator = 1
	LeapSubSec LeapIndicator = 2
	LeapUnsync LeapIndicator = 3
)

// Version is the NTP protocol version this package speaks.
const Version = 4

// ntpEpochOffset is the difference between the NTP epoch (1900-01-01) and
// the Unix epoch (1970-01-01) in seconds.
const ntpEpochOffset = 2208988800

// Time64 is a 64-bit NTP timestamp: 32 bits of seconds since 1900 and 32
// bits of binary fraction.
type Time64 uint64

// ToTime64 converts wall-clock time to NTP format. The 32-bit seconds
// field wraps at the NTP era boundary (7 Feb 2036); ToTime applies the
// standard era disambiguation on the way back.
func ToTime64(t time.Time) Time64 {
	if t.IsZero() {
		return 0
	}
	secs := uint64(t.Unix()+ntpEpochOffset) & 0xFFFFFFFF
	frac := uint64(t.Nanosecond()) << 32 / 1e9
	return Time64(secs<<32 | frac)
}

// ToTime converts an NTP timestamp back to wall-clock time. The zero
// timestamp maps to the zero time. Seconds values that would land before
// the Unix epoch are interpreted as NTP era 1 (2036–2106), the standard
// pivot for systems deployed after 1970.
func (n Time64) ToTime() time.Time {
	if n == 0 {
		return time.Time{}
	}
	secs := int64(n >> 32)
	if secs < ntpEpochOffset {
		secs += 1 << 32 // era 1
	}
	nanos := (uint64(n&0xFFFFFFFF) * 1e9) >> 32
	return time.Unix(secs-ntpEpochOffset, int64(nanos)).UTC()
}

// Packet is a decoded SNTP packet.
type Packet struct {
	Leap      LeapIndicator
	Version   uint8
	Mode      Mode
	Stratum   uint8
	Poll      int8
	Precision int8
	RootDelay uint32 // 16.16 fixed point seconds
	RootDisp  uint32 // 16.16 fixed point seconds
	RefID     uint32

	ReferenceTime Time64 // last clock update
	OriginTime    Time64 // T1 as echoed by the server
	ReceiveTime   Time64 // T2: server receive
	TransmitTime  Time64 // T3: server transmit
}

// Encode serialises the packet into 48 octets.
func (p *Packet) Encode() []byte {
	buf := make([]byte, PacketSize)
	buf[0] = byte(p.Leap)<<6 | (p.Version&0x7)<<3 | byte(p.Mode)&0x7
	buf[1] = p.Stratum
	buf[2] = byte(p.Poll)
	buf[3] = byte(p.Precision)
	put32 := func(off int, v uint32) {
		buf[off] = byte(v >> 24)
		buf[off+1] = byte(v >> 16)
		buf[off+2] = byte(v >> 8)
		buf[off+3] = byte(v)
	}
	put64 := func(off int, v Time64) {
		put32(off, uint32(v>>32))
		put32(off+4, uint32(v))
	}
	put32(4, p.RootDelay)
	put32(8, p.RootDisp)
	put32(12, p.RefID)
	put64(16, p.ReferenceTime)
	put64(24, p.OriginTime)
	put64(32, p.ReceiveTime)
	put64(40, p.TransmitTime)
	return buf
}

// DecodePacket parses 48 octets into a Packet.
func DecodePacket(buf []byte) (*Packet, error) {
	if len(buf) < PacketSize {
		return nil, fmt.Errorf("%d octets: %w", len(buf), ErrShortPacket)
	}
	get32 := func(off int) uint32 {
		return uint32(buf[off])<<24 | uint32(buf[off+1])<<16 | uint32(buf[off+2])<<8 | uint32(buf[off+3])
	}
	get64 := func(off int) Time64 {
		return Time64(get32(off))<<32 | Time64(get32(off+4))
	}
	return &Packet{
		Leap:          LeapIndicator(buf[0] >> 6),
		Version:       buf[0] >> 3 & 0x7,
		Mode:          Mode(buf[0] & 0x7),
		Stratum:       buf[1],
		Poll:          int8(buf[2]),
		Precision:     int8(buf[3]),
		RootDelay:     get32(4),
		RootDisp:      get32(8),
		RefID:         get32(12),
		ReferenceTime: get64(16),
		OriginTime:    get64(24),
		ReceiveTime:   get64(32),
		TransmitTime:  get64(40),
	}, nil
}

// Offset computes the client clock offset from the four timestamps of an
// SNTP exchange per RFC 4330: θ = ((T2 − T1) + (T3 − T4)) / 2.
func Offset(t1, t2, t3, t4 time.Time) time.Duration {
	return (t2.Sub(t1) + t3.Sub(t4)) / 2
}

// RoundTripDelay computes δ = (T4 − T1) − (T3 − T2).
func RoundTripDelay(t1, t2, t3, t4 time.Time) time.Duration {
	return t4.Sub(t1) - t3.Sub(t2)
}
