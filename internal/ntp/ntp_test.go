package ntp

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestTime64RoundTrip(t *testing.T) {
	times := []time.Time{
		time.Unix(1700000000, 0).UTC(),
		time.Unix(1700000000, 123456789).UTC(),
		time.Unix(0, 1).UTC(),
		time.Date(2036, 2, 7, 6, 28, 15, 0, time.UTC), // near NTP era end
	}
	for _, want := range times {
		got := ToTime64(want).ToTime()
		if d := got.Sub(want); d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("round trip %v = %v (Δ %v)", want, got, d)
		}
	}
	if !ToTime64(time.Time{}).ToTime().IsZero() {
		t.Error("zero time not preserved")
	}
}

func TestTime64RoundTripProperty(t *testing.T) {
	f := func(secs uint32, nanos uint32) bool {
		want := time.Unix(int64(secs), int64(nanos%1e9)).UTC()
		got := ToTime64(want).ToTime()
		d := got.Sub(want)
		return d > -time.Microsecond && d < time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Leap:          LeapAddSec,
		Version:       Version,
		Mode:          ModeServer,
		Stratum:       2,
		Poll:          6,
		Precision:     -20,
		RootDelay:     0x00010000,
		RootDisp:      0x00000800,
		RefID:         0x47505300, // "GPS"
		ReferenceTime: ToTime64(time.Unix(1700000000, 0)),
		OriginTime:    ToTime64(time.Unix(1700000001, 0)),
		ReceiveTime:   ToTime64(time.Unix(1700000002, 0)),
		TransmitTime:  ToTime64(time.Unix(1700000003, 0)),
	}
	wire := p.Encode()
	if len(wire) != PacketSize {
		t.Fatalf("encoded %d octets", len(wire))
	}
	got, err := DecodePacket(wire)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodeShortPacket(t *testing.T) {
	if _, err := DecodePacket(make([]byte, 40)); !errors.Is(err, ErrShortPacket) {
		t.Fatalf("err = %v", err)
	}
}

func TestOffsetComputation(t *testing.T) {
	base := time.Unix(1700000000, 0)
	// Server clock is 10s ahead; symmetric 100ms path each way.
	t1 := base
	t2 := base.Add(10*time.Second + 100*time.Millisecond)
	t3 := base.Add(10*time.Second + 110*time.Millisecond)
	t4 := base.Add(210 * time.Millisecond)
	if got := Offset(t1, t2, t3, t4); got != 10*time.Second {
		t.Errorf("offset = %v, want 10s", got)
	}
	if got := RoundTripDelay(t1, t2, t3, t4); got != 200*time.Millisecond {
		t.Errorf("delay = %v, want 200ms", got)
	}
}

func TestClientServerBenign(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	m, err := NewClient().Query(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Loopback: true offset ~0, generous bound.
	if m.Offset < -200*time.Millisecond || m.Offset > 200*time.Millisecond {
		t.Errorf("benign offset = %v", m.Offset)
	}
	if m.Stratum != 2 {
		t.Errorf("stratum = %d", m.Stratum)
	}
	if srv.Served() != 1 {
		t.Errorf("served = %d", srv.Served())
	}
}

func TestClientServerMalicious(t *testing.T) {
	const shift = 300 * time.Second
	srv, err := NewServer("127.0.0.1:0", WithShift(shift))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if srv.Shift() != shift {
		t.Fatalf("Shift = %v", srv.Shift())
	}

	m, err := NewClient().Query(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if m.Offset < shift-time.Second || m.Offset > shift+time.Second {
		t.Errorf("malicious offset = %v, want ~%v", m.Offset, shift)
	}
}

func TestKissOfDeathRejected(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", WithStratum(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	_, err = NewClient().Query(context.Background(), srv.Addr())
	if !errors.Is(err, ErrKissOfDeath) {
		t.Fatalf("err = %v, want ErrKissOfDeath", err)
	}
}

func TestQueryTimeout(t *testing.T) {
	// Nothing listens on this port.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err := NewClient().Query(ctx, "127.0.0.1:1")
	if err == nil {
		t.Fatal("query against dead server succeeded")
	}
}

func TestServerCloseIdempotency(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("second close = %v", err)
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	// Send garbage first; the server must survive and keep answering.
	c := NewClient()
	conn, err := c.Dialer.DialContext(context.Background(), "udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte{1, 2, 3})
	conn.Close()

	if _, err := c.Query(context.Background(), srv.Addr()); err != nil {
		t.Fatalf("query after garbage: %v", err)
	}
}
