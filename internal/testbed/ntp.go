package testbed

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/chronos"
	"dohpool/internal/ntp"
)

// ErrUnknownNTPServer reports a pool address with no running NTP server.
var ErrUnknownNTPServer = errors.New("pool address has no ntp server")

// NTPFleet runs the simulated NTP servers behind the pool addresses: one
// benign server per genuine pool address and one shared malicious server
// answering for every attacker-controlled address. It implements
// chronos.Sampler so Chronos consumes the DNS-generated pools directly.
type NTPFleet struct {
	client    *ntp.Client
	directory map[netip.Addr]string
	servers   []*ntp.Server
	malicious *ntp.Server
}

var _ chronos.Sampler = (*NTPFleet)(nil)

// NTPFleetConfig configures an NTPFleet.
type NTPFleetConfig struct {
	// BenignAddrs are the pool addresses to back with truthful servers.
	BenignAddrs []netip.Addr
	// MaliciousShift is the time shift of the attacker's NTP server
	// (default 600 s — ten minutes of time travel).
	MaliciousShift time.Duration
	// MaliciousBenign marks benign-looking pool addresses that are in
	// fact attacker-operated NTP servers (the Section IV caveat: the
	// attacker may simply join the pool).
	MaliciousBenign []netip.Addr
}

// StartNTPFleet boots the servers.
func StartNTPFleet(cfg NTPFleetConfig) (fleet *NTPFleet, err error) {
	if cfg.MaliciousShift == 0 {
		cfg.MaliciousShift = 600 * time.Second
	}
	fleet = &NTPFleet{
		client:    ntp.NewClient(),
		directory: make(map[netip.Addr]string, len(cfg.BenignAddrs)),
	}
	defer func() {
		if err != nil {
			fleet.Close()
		}
	}()

	maliciousLookalike := make(map[netip.Addr]bool, len(cfg.MaliciousBenign))
	for _, a := range cfg.MaliciousBenign {
		maliciousLookalike[a] = true
	}

	for _, a := range cfg.BenignAddrs {
		var opts []ntp.ServerOption
		if maliciousLookalike[a] {
			opts = append(opts, ntp.WithShift(cfg.MaliciousShift))
		}
		srv, err := ntp.NewServer("127.0.0.1:0", opts...)
		if err != nil {
			return nil, fmt.Errorf("ntp server for %v: %w", a, err)
		}
		fleet.servers = append(fleet.servers, srv)
		fleet.directory[a] = srv.Addr()
	}

	fleet.malicious, err = ntp.NewServer("127.0.0.1:0", ntp.WithShift(cfg.MaliciousShift))
	if err != nil {
		return nil, fmt.Errorf("malicious ntp server: %w", err)
	}
	return fleet, nil
}

// Sample implements chronos.Sampler: resolve the pool address to a
// running server and measure the offset. Attacker-prefix addresses route
// to the malicious server, exactly as DNS poisoning would steer a client.
func (f *NTPFleet) Sample(ctx context.Context, server netip.Addr) (time.Duration, error) {
	addr, ok := f.directory[server]
	if !ok {
		if attack.IsAttackerAddr(server) {
			addr = f.malicious.Addr()
		} else {
			return 0, fmt.Errorf("%v: %w", server, ErrUnknownNTPServer)
		}
	}
	m, err := f.client.Query(ctx, addr)
	if err != nil {
		return 0, err
	}
	return m.Offset, nil
}

// MaliciousShift returns the attacker server's configured shift.
func (f *NTPFleet) MaliciousShift() time.Duration { return f.malicious.Shift() }

// Close stops every NTP server. Safe on partially started fleets.
func (f *NTPFleet) Close() error {
	var errs []error
	for _, s := range f.servers {
		if s != nil {
			if err := s.Close(); err != nil && !errors.Is(err, ntp.ErrServerClosed) {
				errs = append(errs, err)
			}
		}
	}
	if f.malicious != nil {
		if err := f.malicious.Close(); err != nil && !errors.Is(err, ntp.ErrServerClosed) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
