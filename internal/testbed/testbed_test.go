package testbed

import (
	"context"
	"testing"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/chronos"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func startClean(t *testing.T, cfg Config) *Testbed {
	t.Helper()
	tb, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tb.Close() })
	return tb
}

func TestFigure1Pipeline(t *testing.T) {
	tb := startClean(t, Config{})
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(testCtx(t), tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	// N=3 resolvers, each answering 4 (MaxAnswers default) of 8 addrs.
	if pool.TruncateLength != 4 {
		t.Errorf("K = %d, want 4", pool.TruncateLength)
	}
	if len(pool.Addrs) != 12 {
		t.Errorf("pool size = %d, want 12", len(pool.Addrs))
	}
	for _, a := range pool.Addrs {
		if attack.IsAttackerAddr(a) {
			t.Errorf("clean testbed produced attacker address %v", a)
		}
	}
	if pool.Responding() != 3 {
		t.Errorf("responding = %d", pool.Responding())
	}
}

func TestRotationMakesResolverViewsDiffer(t *testing.T) {
	tb := startClean(t, Config{DisableResolverCache: true})
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(testCtx(t), tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	// With per-server round-robin rotation the union across resolvers
	// generally exceeds one resolver's slice.
	unique := core.Dedupe(pool.Addrs)
	if len(unique) <= pool.TruncateLength {
		t.Logf("union %d not larger than K=%d (rotation may align); acceptable but rare",
			len(unique), pool.TruncateLength)
	}
}

func TestCompromisedResolverInjectsOnlyItsShare(t *testing.T) {
	tb := startClean(t, Config{
		Adversary: AdversaryResolver,
		Plan:      attack.FixedPlan(3, 1),
	})
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(testCtx(t), tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr)
	want := 1.0 / 3
	if frac != want {
		t.Fatalf("attacker fraction = %v, want exactly %v (Section III-a)", frac, want)
	}
}

func TestOnPathMitMSameBound(t *testing.T) {
	tb := startClean(t, Config{
		Adversary: AdversaryOnPath,
		Plan:      attack.FixedPlan(3, 0),
	})
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(testCtx(t), tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr)
	if frac != 1.0/3 {
		t.Fatalf("on-path attacker fraction = %v, want 1/3", frac)
	}
}

func TestOffPathProbabilisticPoisoning(t *testing.T) {
	// p=1 off-path attacker on one resolver behaves like a full
	// compromise of that path.
	tb := startClean(t, Config{
		Adversary:            AdversaryOffPath,
		Plan:                 attack.FixedPlan(3, 2),
		OffPathProb:          1.0,
		DisableResolverCache: true,
	})
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(testCtx(t), tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr); frac != 1.0/3 {
		t.Fatalf("fraction = %v, want 1/3", frac)
	}

	// p=0 never poisons.
	tb2 := startClean(t, Config{
		Adversary:            AdversaryOffPath,
		Plan:                 attack.FixedPlan(3, 2),
		OffPathProb:          0,
		DisableResolverCache: true,
	})
	gen2, err := tb2.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool2, err := gen2.Lookup(testCtx(t), tb2.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if frac := core.Fraction(pool2.Addrs, attack.IsAttackerAddr); frac != 0 {
		t.Fatalf("p=0 fraction = %v", frac)
	}
}

func TestInflationDefeatedByTruncation(t *testing.T) {
	tb := startClean(t, Config{
		Adversary: AdversaryResolver,
		Plan:      attack.FixedPlan(3, 0),
		Payload:   attack.PayloadInflate,
	})
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(testCtx(t), tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker inflated to 100 records but benign lists have 4, so
	// K=4 and the attacker still owns exactly 1/3.
	if pool.TruncateLength != 4 {
		t.Errorf("K = %d, want 4 (truncation must ignore inflated list)", pool.TruncateLength)
	}
	if frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr); frac != 1.0/3 {
		t.Fatalf("inflation achieved fraction %v, want 1/3", frac)
	}
}

func TestEmptyAnswerDoS(t *testing.T) {
	tb := startClean(t, Config{
		Adversary: AdversaryResolver,
		Plan:      attack.FixedPlan(3, 0),
		Payload:   attack.PayloadEmpty,
	})
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = gen.Lookup(testCtx(t), tb.Domain(), dnswire.TypeA)
	if err == nil {
		t.Fatal("empty-answer attack did not DoS pool generation (footnote 2)")
	}
}

func TestFlushResolverCaches(t *testing.T) {
	tb := startClean(t, Config{})
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	if _, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	before := tb.Auth[0].Stats().UDPQueries + tb.Auth[1].Stats().UDPQueries + tb.Auth[2].Stats().UDPQueries
	tb.FlushResolverCaches()
	if _, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	after := tb.Auth[0].Stats().UDPQueries + tb.Auth[1].Stats().UDPQueries + tb.Auth[2].Stats().UDPQueries
	if after <= before {
		t.Fatalf("flush did not force upstream queries (%d → %d)", before, after)
	}
}

func TestIterativeTopology(t *testing.T) {
	// Full production topology: resolvers start at a root server and
	// follow the delegation to the pool zone.
	tb := startClean(t, Config{Iterative: true})
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(testCtx(t), tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if pool.TruncateLength != 4 || len(pool.Addrs) != 12 {
		t.Fatalf("iterative pool K=%d size=%d", pool.TruncateLength, len(pool.Addrs))
	}
	// The extra auth server is the root.
	if len(tb.Auth) != 4 {
		t.Fatalf("auth servers = %d, want 3 pool + 1 root", len(tb.Auth))
	}
	root := tb.Auth[3]
	if root.Stats().UDPQueries == 0 {
		t.Fatal("root server never queried — resolvers did not iterate")
	}

	// On-path adversary still bounded under the iterative topology.
	tb2 := startClean(t, Config{
		Iterative: true,
		Adversary: AdversaryOnPath,
		Plan:      attack.FixedPlan(3, 0),
	})
	gen2, err := tb2.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool2, err := gen2.Lookup(testCtx(t), tb2.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if frac := core.Fraction(pool2.Addrs, attack.IsAttackerAddr); frac != 1.0/3 {
		t.Fatalf("iterative on-path fraction = %v", frac)
	}
}

func TestWANLatencySimulation(t *testing.T) {
	tb := startClean(t, Config{
		WANLatencyBase: 30 * time.Millisecond,
		WANLatencyStep: 10 * time.Millisecond,
	})
	// Concurrent fan-out: total ≈ max latency (50ms for resolver 2), not
	// the 120ms sum.
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	start := time.Now()
	pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	concurrent := time.Since(start)
	if concurrent < 50*time.Millisecond {
		t.Errorf("concurrent lookup %v faster than slowest resolver's 50ms", concurrent)
	}
	if concurrent > 100*time.Millisecond {
		t.Errorf("concurrent lookup %v — barrier not at max(RTT)", concurrent)
	}
	// Per-resolver RTTs reflect the configured spread.
	for i, r := range pool.Results {
		want := 30*time.Millisecond + time.Duration(i)*10*time.Millisecond
		if r.RTT < want {
			t.Errorf("resolver %d RTT %v < injected %v", i, r.RTT, want)
		}
	}

	// Sequential fan-out pays the sum.
	seq, err := tb.Generator(GeneratorOptions{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	tb.FlushResolverCaches()
	start = time.Now()
	if _, err := seq.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	sequential := time.Since(start)
	if sequential < 120*time.Millisecond {
		t.Errorf("sequential lookup %v < 120ms sum", sequential)
	}
	if sequential < concurrent {
		t.Error("sequential faster than concurrent under WAN latency")
	}
}

func TestNTPFleetSampling(t *testing.T) {
	tb := startClean(t, Config{})
	fleet, err := StartNTPFleet(NTPFleetConfig{BenignAddrs: tb.BenignAddrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fleet.Close() })

	ctx := testCtx(t)
	// Benign address: near-zero offset.
	off, err := fleet.Sample(ctx, tb.BenignAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if off < -time.Second || off > time.Second {
		t.Errorf("benign offset = %v", off)
	}
	// Attacker address: shifted.
	off, err = fleet.Sample(ctx, attack.AttackerAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	if off < fleet.MaliciousShift()-time.Second {
		t.Errorf("malicious offset = %v, want ~%v", off, fleet.MaliciousShift())
	}
	// Unknown address errors.
	if _, err := fleet.Sample(ctx, tb.BenignAddrs[0].Next().Next().Next().Next().Next().Next().Next().Next()); err == nil {
		t.Error("unknown pool address sampled successfully")
	}
}

func TestEndToEndChronosOverDoHPool(t *testing.T) {
	// The paper's full story: DoH-consensus pool + Chronos = correct time
	// even with one compromised resolver.
	tb := startClean(t, Config{
		PoolSize:  9,
		Adversary: AdversaryResolver,
		Plan:      attack.FixedPlan(3, 2),
	})
	fleet, err := StartNTPFleet(NTPFleetConfig{BenignAddrs: tb.BenignAddrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fleet.Close() })

	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	// One of three resolvers compromised → exactly 1/3 attacker share,
	// below Chronos' 1/3-crop threshold at sample size 6 (crop 2/side).
	cl, err := chronos.New(chronos.Config{
		Pool:    pool.Addrs,
		Sampler: fleet,
		Seed:    17,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offset < -100*time.Millisecond || res.Offset > 100*time.Millisecond {
		t.Fatalf("Chronos over poisoned-minority pool accepted offset %v", res.Offset)
	}
}

func TestExtraPoolDomainsResolve(t *testing.T) {
	tb := startClean(t, Config{ExtraPoolDomains: 3})
	domains := tb.PoolDomains()
	if len(domains) != 4 {
		t.Fatalf("PoolDomains = %v, want primary + 3 extras", domains)
	}
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range domains {
		pool, err := gen.Lookup(testCtx(t), d, dnswire.TypeA)
		if err != nil {
			t.Fatalf("lookup %s: %v", d, err)
		}
		if len(pool.Addrs) == 0 {
			t.Fatalf("lookup %s: empty pool", d)
		}
	}
}

func TestNetChaosDelayAtExchangerSeam(t *testing.T) {
	// Delay on the resolver→authoritative path: resolution still works,
	// and the shared injector records the delayed exchanges.
	tb := startClean(t, Config{
		NetChaos:             attack.NetChaosOptions{Delay: 5 * time.Millisecond},
		DisableResolverCache: true,
	})
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(testCtx(t), tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) == 0 {
		t.Fatal("empty pool under delay-only net chaos")
	}
	for _, r := range pool.Results {
		if r.Err == nil && r.RTT < 5*time.Millisecond {
			t.Errorf("resolver %s RTT %v, must include the injected delay", r.Endpoint.Name, r.RTT)
		}
	}
}
