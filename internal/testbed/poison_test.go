package testbed

import (
	"testing"

	"dohpool/internal/attack"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
)

// One won off-path race poisons a resolver's CACHE, and the damage
// persists across every subsequent lookup until the TTL expires — yet
// the combined pool still bounds the attacker at that resolver's share.
func TestCachePoisoningPersistsButStaysBounded(t *testing.T) {
	tb := startClean(t, Config{}) // caches enabled
	forger := attack.NewForger(tb.Domain(), attack.PayloadReplace)

	// The attacker won one race against resolver 1 at some point in the
	// past; its cache now holds the forged RRset.
	if err := attack.PoisonCache(tb.Resolvers[1].Cache(), forger,
		tb.Domain(), dnswire.TypeA, 4, 300); err != nil {
		t.Fatal(err)
	}

	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	for round := 0; round < 3; round++ {
		pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr)
		if frac != 1.0/3 {
			t.Fatalf("round %d: attacker fraction %v, want persistent 1/3", round, frac)
		}
	}

	// Cache flush (standing in for TTL expiry) heals the resolver.
	tb.FlushResolverCaches()
	pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr); frac != 0 {
		t.Fatalf("after expiry: attacker fraction %v", frac)
	}
}

func TestPoisonCacheRejectsNonAddressType(t *testing.T) {
	tb := startClean(t, Config{})
	forger := attack.NewForger(tb.Domain(), attack.PayloadReplace)
	err := attack.PoisonCache(tb.Resolvers[0].Cache(), forger,
		tb.Domain(), dnswire.TypeTXT, 4, 300)
	if err == nil {
		t.Fatal("TXT poisoning accepted")
	}
}

// The paper's single-resolver baseline: poisoning the ONE resolver's
// cache poisons 100% of the pool for the TTL lifetime.
func TestCachePoisoningOwnsSingleResolverPool(t *testing.T) {
	tb := startClean(t, Config{Resolvers: 1})
	forger := attack.NewForger(tb.Domain(), attack.PayloadReplace)
	if err := attack.PoisonCache(tb.Resolvers[0].Cache(), forger,
		tb.Domain(), dnswire.TypeA, 4, 300); err != nil {
		t.Fatal(err)
	}
	gen, err := tb.Generator(GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Lookup(testCtx(t), tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr); frac != 1 {
		t.Fatalf("single-resolver poisoned fraction = %v, want 1", frac)
	}
}
