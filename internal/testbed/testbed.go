// Package testbed assembles the complete system of the paper's Figure 1
// on the loopback interface: authoritative nameservers for the NTP-pool
// zone (c/d/e.ntpns.org in the figure), N independent DoH resolvers (each
// with its own recursive engine, cache and TLS identity), a client-side
// DoH fan-out, and optionally an adversary compromising a subset of
// resolvers or the paths behind them. A second half of the package runs
// simulated NTP servers so the Chronos experiments can consume the pools
// the DNS side generates.
package testbed

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/authserver"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/resolver"
	"dohpool/internal/testpki"
	"dohpool/internal/transport"
	"dohpool/internal/zone"
)

// AdversaryMode selects how compromised resolvers are attacked.
type AdversaryMode int

// Adversary modes.
const (
	// AdversaryNone runs a clean testbed.
	AdversaryNone AdversaryMode = iota
	// AdversaryResolver fully compromises the resolver itself (it forges
	// answers for the target domain).
	AdversaryResolver
	// AdversaryOnPath places a MitM on the resolver's paths to the
	// authoritative servers.
	AdversaryOnPath
	// AdversaryOffPath races genuine responses on the resolver's paths
	// with blind spoofing, succeeding with Config.OffPathProb per query.
	AdversaryOffPath
)

// Config describes the testbed to build.
type Config struct {
	// ZoneOrigin is the pool zone (default "ntppool.test.").
	ZoneOrigin string
	// Domain is the pool name inside the zone (default
	// "pool.ntppool.test.").
	Domain string
	// PoolSize is how many benign A records the pool name holds
	// (default 8).
	PoolSize int
	// MaxAnswers caps answers per query, pool.ntp.org style (default 4,
	// 0 = unlimited).
	MaxAnswers int
	// Rotation is the zone rotation policy (default RotateRoundRobin).
	Rotation zone.RotationPolicy
	// AuthServers is the number of authoritative servers (default 3).
	AuthServers int
	// Resolvers is N, the number of DoH resolvers (default 3).
	Resolvers int
	// TTL stamps the pool records (default 150, pool.ntp.org's choice).
	TTL uint32
	// DisableResolverCache makes every client query hit the
	// authoritative servers (needed by Monte-Carlo trials).
	DisableResolverCache bool

	// Adversary selects the attack model; AdversaryNone for clean runs.
	Adversary AdversaryMode
	// Plan marks which resolvers are compromised.
	Plan attack.Plan
	// Payload is what a successful attacker injects (default
	// PayloadReplace).
	Payload attack.Payload
	// OffPathProb is the per-query success probability for
	// AdversaryOffPath.
	OffPathProb float64
	// Seed drives all attack randomness (default 1).
	Seed int64

	// WANLatencyBase, when non-zero, simulates wide-area RTTs: resolver i
	// delays each DoH response by WANLatencyBase + i*WANLatencyStep
	// (deterministic spread across resolvers). This is what makes the
	// concurrent-vs-sequential fan-out comparison (ablation A3)
	// meaningful — on bare loopback every exchange completes in
	// microseconds and the fan-out strategy is invisible.
	WANLatencyBase time.Duration
	// WANLatencyStep is the per-resolver latency increment (default
	// WANLatencyBase/4 when WANLatencyBase is set).
	WANLatencyStep time.Duration

	// NetChaos, when active, interposes network-level faults (packet
	// loss, delay, partition windows, resolver churn) on every
	// resolver's upstream exchanger — the path between the recursive
	// resolvers and the authoritative servers — complementing the
	// payload adversaries above, which attack what resolvers answer
	// rather than whether the network delivers it.
	NetChaos attack.NetChaosOptions

	// ExtraPoolDomains adds this many extra pool names to the zone —
	// pool-0.<origin> … pool-(n-1).<origin>, each holding the same
	// benign RRset — so load generators can spread queries over a
	// zipfian domain population instead of hammering one cache key.
	ExtraPoolDomains int

	// Iterative switches the resolvers from stub/forward configuration to
	// full iterative resolution: a root zone ("test.") is served by its
	// own nameserver and delegates the pool zone to the pool's
	// authoritative servers; resolvers start at the root and follow the
	// referral — the realistic production topology.
	Iterative bool
}

func (c *Config) applyDefaults() {
	if c.ZoneOrigin == "" {
		c.ZoneOrigin = "ntppool.test."
	}
	if c.Domain == "" {
		c.Domain = "pool." + c.ZoneOrigin
	}
	if c.PoolSize == 0 {
		c.PoolSize = 8
	}
	if c.MaxAnswers == 0 {
		c.MaxAnswers = 4
	}
	if c.Rotation == 0 {
		c.Rotation = zone.RotateRoundRobin
	}
	if c.AuthServers == 0 {
		c.AuthServers = 3
	}
	if c.Resolvers == 0 {
		c.Resolvers = 3
	}
	if c.TTL == 0 {
		c.TTL = 150
	}
	if c.Payload == 0 {
		c.Payload = attack.PayloadReplace
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.WANLatencyBase > 0 && c.WANLatencyStep == 0 {
		c.WANLatencyStep = c.WANLatencyBase / 4
	}
}

// delayedResponder adds a fixed delay to every response, simulating the
// WAN RTT to a remote DoH resolver.
type delayedResponder struct {
	inner doh.QueryResponder
	delay time.Duration
}

var _ doh.QueryResponder = delayedResponder{}

// Respond implements doh.QueryResponder.
func (d delayedResponder) Respond(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	timer := time.NewTimer(d.delay)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.inner.Respond(ctx, query)
}

// planGate holds the current attack plan; resolver wrappers consult it on
// every query so Monte-Carlo trials can swap plans without rebuilding the
// testbed.
type planGate struct {
	mu   sync.RWMutex
	plan attack.Plan
}

func (g *planGate) compromised(i int) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.plan.Compromised(i)
}

func (g *planGate) set(p attack.Plan) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.plan = p
}

// gatedResponder routes to the evil responder only while the gate marks
// this resolver compromised.
type gatedResponder struct {
	idx   int
	gate  *planGate
	clean doh.QueryResponder
	evil  doh.QueryResponder
}

var _ doh.QueryResponder = gatedResponder{}

// Respond implements doh.QueryResponder.
func (g gatedResponder) Respond(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	if g.gate.compromised(g.idx) {
		return g.evil.Respond(ctx, query)
	}
	return g.clean.Respond(ctx, query)
}

// gatedExchanger is the transport-level analogue of gatedResponder.
type gatedExchanger struct {
	idx   int
	gate  *planGate
	clean transport.Exchanger
	evil  transport.Exchanger
}

var _ transport.Exchanger = gatedExchanger{}

// Exchange implements transport.Exchanger.
func (g gatedExchanger) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	if g.gate.compromised(g.idx) {
		return g.evil.Exchange(ctx, query, server)
	}
	return g.clean.Exchange(ctx, query, server)
}

// Testbed is a running Figure 1 deployment.
type Testbed struct {
	cfg  Config
	gate planGate

	// CA anchors the DoH channel trust.
	CA *testpki.CA
	// Auth are the authoritative nameservers.
	Auth []*authserver.Server
	// DoH are the resolver endpoints, index-aligned with Resolvers.
	DoH []*doh.Server
	// Resolvers are the recursive engines inside the DoH servers.
	Resolvers []*resolver.Resolver
	// Endpoints are ready-made core.Endpoint values for the generator.
	Endpoints []core.Endpoint
	// Client is a DoH client trusting the testbed CA.
	Client *doh.Client
	// Forger is the adversary's payload builder (nil when clean).
	Forger *attack.Forger
	// BenignAddrs are the pool's genuine addresses.
	BenignAddrs []netip.Addr
}

// Start builds and starts the full testbed.
func Start(cfg Config) (*Testbed, error) {
	cfg.applyDefaults()
	tb := &Testbed{cfg: cfg}
	started := false
	// Close the local tb, not the named return: the error paths below
	// `return nil, err`, which would nil a named return before this
	// cleanup ran and both panic and leak the partially started
	// components.
	defer func() {
		if !started {
			_ = tb.Close()
		}
	}()

	var err error
	tb.CA, err = testpki.NewCA()
	if err != nil {
		return nil, fmt.Errorf("testbed pki: %w", err)
	}

	// Benign pool addresses: 192.0.2.0/24 (TEST-NET-1).
	tb.BenignAddrs = make([]netip.Addr, cfg.PoolSize)
	for i := range tb.BenignAddrs {
		tb.BenignAddrs[i] = netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)})
	}

	// Authoritative servers: same records, independent rotation state —
	// like anycast replicas of the pool zone.
	authAddrs := make([]string, 0, cfg.AuthServers)
	for i := 0; i < cfg.AuthServers; i++ {
		z := zone.New(cfg.ZoneOrigin,
			zone.WithRotation(cfg.Rotation),
			zone.WithMaxAnswers(cfg.MaxAnswers),
			zone.WithSeed(cfg.Seed+int64(i)))
		if err := addZoneData(z, cfg, tb.BenignAddrs); err != nil {
			return nil, err
		}
		srv, err := authserver.Listen("127.0.0.1:0", z)
		if err != nil {
			return nil, fmt.Errorf("auth server %d: %w", i, err)
		}
		tb.Auth = append(tb.Auth, srv)
		authAddrs = append(authAddrs, srv.Addr())
	}

	// Iterative topology: one root server for "test." delegating the pool
	// zone to the authoritative servers above. Glue carries 127.0.0.1; a
	// GlueDialer rewrites it to the pool servers' ephemeral ports.
	var rootServers []string
	var glueDialer func(netip.Addr) string
	if cfg.Iterative {
		rootZone := zone.New("test.")
		nsHosts := []string{"c.ntpns.test.", "d.ntpns.test.", "e.ntpns.test."}
		for i := range tb.Auth {
			host := nsHosts[i%len(nsHosts)]
			if err := rootZone.Add(dnswire.Record{
				Name: cfg.ZoneOrigin, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 3600,
				Data: &dnswire.NSRecord{Host: host},
			}); err != nil {
				return nil, err
			}
			if err := rootZone.AddAddress(host, netip.MustParseAddr("127.0.0.1"), 3600); err != nil {
				return nil, err
			}
		}
		rootSrv, err := authserver.Listen("127.0.0.1:0", rootZone)
		if err != nil {
			return nil, fmt.Errorf("root server: %w", err)
		}
		tb.Auth = append(tb.Auth, rootSrv)
		rootServers = []string{rootSrv.Addr()}
		// Every glue address points at loopback; fan out deterministically
		// across the pool servers (round-robin on a counter would be
		// racy; first server is fine — failover handles the rest).
		poolAddrs := authAddrs
		glueDialer = func(netip.Addr) string { return poolAddrs[0] }
	}

	if cfg.Adversary != AdversaryNone {
		tb.Forger = attack.NewForger(cfg.Domain, cfg.Payload)
	}

	tb.gate.set(cfg.Plan)

	// One shared fault injector across all resolvers, so churn rotates
	// over the fleet rather than each resolver churning independently.
	netChaos := attack.NewNetChaos(cfg.NetChaos)

	// DoH resolvers. Attack wrappers are installed on every resolver but
	// gated on the current plan, so plans can change at runtime.
	for i := 0; i < cfg.Resolvers; i++ {
		var ex transport.Exchanger = &transport.Auto{}
		ex = netChaos.WrapExchanger(ex) // no-op when NetChaos is inactive
		switch cfg.Adversary {
		case AdversaryOnPath:
			ex = gatedExchanger{idx: i, gate: &tb.gate,
				clean: ex, evil: attack.NewOnPath(ex, tb.Forger)}
		case AdversaryOffPath:
			ex = gatedExchanger{idx: i, gate: &tb.gate,
				clean: ex, evil: attack.NewOffPath(ex, tb.Forger, cfg.OffPathProb, cfg.Seed+int64(i)*7919)}
		}
		resolverCfg := resolver.Config{
			Transport:    ex,
			DisableCache: cfg.DisableResolverCache,
		}
		if cfg.Iterative {
			resolverCfg.RootServers = rootServers
			resolverCfg.GlueDialer = glueDialer
		} else {
			resolverCfg.Authorities = map[string][]string{cfg.ZoneOrigin: authAddrs}
		}
		res := resolver.New(resolverCfg)
		tb.Resolvers = append(tb.Resolvers, res)

		var responder doh.QueryResponder = resolverResponder{res}
		if cfg.Adversary == AdversaryResolver {
			responder = gatedResponder{idx: i, gate: &tb.gate,
				clean: responder, evil: attack.Compromise(responder, tb.Forger)}
		}
		if cfg.WANLatencyBase > 0 {
			responder = delayedResponder{
				inner: responder,
				delay: cfg.WANLatencyBase + time.Duration(i)*cfg.WANLatencyStep,
			}
		}

		tlsCfg, err := tb.CA.ServerTLS("127.0.0.1")
		if err != nil {
			return nil, fmt.Errorf("resolver %d tls: %w", i, err)
		}
		srv, err := doh.NewServer("127.0.0.1:0", tlsCfg, responder)
		if err != nil {
			return nil, fmt.Errorf("doh server %d: %w", i, err)
		}
		tb.DoH = append(tb.DoH, srv)
		tb.Endpoints = append(tb.Endpoints, core.Endpoint{
			Name: fmt.Sprintf("resolver-%d", i),
			URL:  srv.URL(),
		})
	}

	tb.Client = doh.NewClient(doh.WithTLSConfig(tb.CA.ClientTLS()))
	started = true
	return tb, nil
}

// addZoneData fills a pool zone: SOA, NS records and the pool A RRset.
func addZoneData(z *zone.Zone, cfg Config, pool []netip.Addr) error {
	origin := dnswire.CanonicalName(cfg.ZoneOrigin)
	if err := z.Add(dnswire.Record{
		Name: origin, Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.SOARecord{
			MName: "c.ntpns.test.", RName: "hostmaster." + origin,
			Serial: 2020101901, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 60,
		},
	}); err != nil {
		return err
	}
	for _, ns := range []string{"c.ntpns.test.", "d.ntpns.test.", "e.ntpns.test."} {
		if err := z.Add(dnswire.Record{
			Name: origin, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 3600,
			Data: &dnswire.NSRecord{Host: ns},
		}); err != nil {
			return err
		}
	}
	for _, a := range pool {
		if err := z.AddAddress(cfg.Domain, a, cfg.TTL); err != nil {
			return err
		}
	}
	for _, name := range extraPoolDomains(cfg) {
		for _, a := range pool {
			if err := z.AddAddress(name, a, cfg.TTL); err != nil {
				return err
			}
		}
	}
	return nil
}

// extraPoolDomains enumerates the Config.ExtraPoolDomains names.
func extraPoolDomains(cfg Config) []string {
	names := make([]string, 0, cfg.ExtraPoolDomains)
	for i := 0; i < cfg.ExtraPoolDomains; i++ {
		names = append(names, fmt.Sprintf("pool-%d.%s", i, dnswire.CanonicalName(cfg.ZoneOrigin)))
	}
	return names
}

// resolverResponder adapts resolver.Resolver to doh.QueryResponder.
type resolverResponder struct {
	res *resolver.Resolver
}

var _ doh.QueryResponder = resolverResponder{}

// Respond implements doh.QueryResponder.
func (rr resolverResponder) Respond(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	if len(query.Questions) != 1 {
		return dnswire.NewErrorResponse(query, dnswire.RCodeFormErr), nil
	}
	q := query.Questions[0]
	resp, err := rr.res.Resolve(ctx, q.Name, q.Type)
	if err != nil {
		return nil, err
	}
	resp.Header.ID = query.Header.ID
	return resp, nil
}

// Generator builds a core.Generator over the testbed's resolvers.
func (tb *Testbed) Generator(opts GeneratorOptions) (*core.Generator, error) {
	return core.NewGenerator(core.Config{
		Resolvers:    tb.Endpoints,
		Querier:      tb.Client,
		MinResolvers: opts.MinResolvers,
		Sequential:   opts.Sequential,
		WithMajority: opts.WithMajority,
		DualStack:    opts.DualStack,
		QueryTimeout: opts.QueryTimeout,
	})
}

// GeneratorOptions mirrors the tunable parts of core.Config.
type GeneratorOptions struct {
	MinResolvers int
	Sequential   bool
	WithMajority bool
	DualStack    core.DualStackPolicy
	QueryTimeout time.Duration
}

// Engine builds a long-lived consensus engine over the testbed's
// resolvers — the live-serving counterpart of Generator, used by the
// chaos experiments to run the full cache/refresh/trust stack against a
// configured adversary. Close the engine before closing the testbed.
func (tb *Testbed) Engine(opts GeneratorOptions, ecfg core.EngineConfig) (*core.Engine, error) {
	return core.NewEngine(core.Config{
		Resolvers:    tb.Endpoints,
		Querier:      tb.Client,
		MinResolvers: opts.MinResolvers,
		Sequential:   opts.Sequential,
		WithMajority: opts.WithMajority,
		DualStack:    opts.DualStack,
		QueryTimeout: opts.QueryTimeout,
	}, ecfg)
}

// Domain returns the pool domain under test.
func (tb *Testbed) Domain() string { return tb.cfg.Domain }

// PoolDomains returns every pool name the zone serves: the primary
// Domain plus the Config.ExtraPoolDomains names — the domain population
// a load generator draws from.
func (tb *Testbed) PoolDomains() []string {
	return append([]string{tb.cfg.Domain}, extraPoolDomains(tb.cfg)...)
}

// SetPlan swaps the attack plan at runtime (Monte-Carlo trials draw a
// fresh plan per trial without rebuilding the testbed).
func (tb *Testbed) SetPlan(p attack.Plan) { tb.gate.set(p) }

// FlushResolverCaches empties every resolver's cache (between Monte-Carlo
// trials).
func (tb *Testbed) FlushResolverCaches() {
	for _, r := range tb.Resolvers {
		r.Cache().Flush()
	}
}

// Close shuts every component down. Safe on a partially started (or, as
// Start's error-path cleanup relies on after a `return nil, err`, a nil)
// testbed.
func (tb *Testbed) Close() error {
	if tb == nil {
		return nil
	}
	var errs []error
	for _, s := range tb.DoH {
		if s != nil {
			if err := s.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	for _, s := range tb.Auth {
		if s != nil {
			if err := s.Close(); err != nil && !errors.Is(err, authserver.ErrClosed) {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
