// Package analysis reproduces the paper's Section III security analysis:
// the fraction bound x ≥ y (III-a) and the attack-success probability
// p^⌈xN⌉ for independently attackable resolvers (III-b), together with
// the exact binomial tail and Monte-Carlo estimation helpers used to
// validate the analytical claims against the real pipeline.
package analysis

import (
	"errors"
	"fmt"
	"math"
)

// Argument errors.
var (
	// ErrBadProbability reports a probability outside [0, 1].
	ErrBadProbability = errors.New("probability outside [0,1]")
	// ErrBadFraction reports a fraction outside (0, 1].
	ErrBadFraction = errors.New("fraction outside (0,1]")
	// ErrBadCount reports a non-positive count.
	ErrBadCount = errors.New("count must be positive")
)

// RequiredResolverFraction returns x, the minimum fraction of DoH
// resolvers an attacker must control to own a fraction y of the generated
// pool. Section III-a: every resolver contributes exactly K of the N·K
// pool entries, so yK ≤ xK forces x ≥ y.
func RequiredResolverFraction(y float64) (float64, error) {
	if y <= 0 || y > 1 {
		return 0, fmt.Errorf("y = %v: %w", y, ErrBadFraction)
	}
	return y, nil
}

// RequiredResolverCount returns M = ⌈xN⌉, the number of resolvers the
// attacker must compromise out of N to reach pool fraction x.
func RequiredResolverCount(n int, x float64) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("n = %d: %w", n, ErrBadCount)
	}
	if x <= 0 || x > 1 {
		return 0, fmt.Errorf("x = %v: %w", x, ErrBadFraction)
	}
	m := int(math.Ceil(x * float64(n)))
	if m < 1 {
		m = 1
	}
	return m, nil
}

// PaperSuccessProbability is the paper's headline formula: the attacker
// succeeds with probability p^M, M = ⌈xN⌉ — the probability that all M
// targeted resolvers fall. This models an attacker who needs M specific
// successes and treats additional compromises as irrelevant; it is the
// quantity Section III-b reports (e.g. N=3, x≥2/3 ⇒ p²).
func PaperSuccessProbability(p float64, n int, x float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("p = %v: %w", p, ErrBadProbability)
	}
	m, err := RequiredResolverCount(n, x)
	if err != nil {
		return 0, err
	}
	return math.Pow(p, float64(m)), nil
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p), computed in log
// space for numerical stability at large n.
func BinomialPMF(n, k int, p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("p = %v: %w", p, ErrBadProbability)
	}
	if n < 0 || k < 0 || k > n {
		return 0, nil
	}
	if p == 0 {
		if k == 0 {
			return 1, nil
		}
		return 0, nil
	}
	if p == 1 {
		if k == n {
			return 1, nil
		}
		return 0, nil
	}
	logC := logChoose(n, k)
	logP := logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(logP), nil
}

// BinomialTail returns P(X ≥ m) for X ~ Binomial(n, p): the exact
// probability that an attacker compromising each of n resolvers
// independently with probability p ends up controlling at least m of
// them. This is the rigorous counterpart of PaperSuccessProbability when
// the attacker attacks *all* resolvers rather than a targeted subset.
func BinomialTail(n, m int, p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("p = %v: %w", p, ErrBadProbability)
	}
	if n <= 0 {
		return 0, fmt.Errorf("n = %d: %w", n, ErrBadCount)
	}
	if m <= 0 {
		return 1, nil
	}
	if m > n {
		return 0, nil
	}
	total := 0.0
	for k := m; k <= n; k++ {
		pmf, err := BinomialPMF(n, k, p)
		if err != nil {
			return 0, err
		}
		total += pmf
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return lgN - lgK - lgNK
}

// SecurityGainBits expresses the paper's "asymptotic advantage like
// increasing a key size": the negative log2 of the attack probability.
// Doubling N (at fixed x, p) adds proportionally many bits.
func SecurityGainBits(p float64, n int, x float64) (float64, error) {
	prob, err := PaperSuccessProbability(p, n, x)
	if err != nil {
		return 0, err
	}
	if prob == 0 {
		return math.Inf(1), nil
	}
	return -math.Log2(prob), nil
}

// Estimate is a Monte-Carlo estimate with its Wilson 95% confidence
// interval.
type Estimate struct {
	Successes int
	Trials    int
	Rate      float64
	Low       float64 // Wilson interval lower bound
	High      float64 // Wilson interval upper bound
}

// String renders the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f] (%d/%d)", e.Rate, e.Low, e.High, e.Successes, e.Trials)
}

// NewEstimate computes the rate and Wilson 95% interval for successes out
// of trials.
func NewEstimate(successes, trials int) (Estimate, error) {
	if trials <= 0 {
		return Estimate{}, fmt.Errorf("trials = %d: %w", trials, ErrBadCount)
	}
	if successes < 0 || successes > trials {
		return Estimate{}, fmt.Errorf("successes = %d of %d: %w", successes, trials, ErrBadCount)
	}
	const z = 1.959963984540054 // 97.5th percentile of the normal
	n := float64(trials)
	pHat := float64(successes) / n
	denom := 1 + z*z/n
	centre := pHat + z*z/(2*n)
	margin := z * math.Sqrt(pHat*(1-pHat)/n+z*z/(4*n*n))
	low := (centre - margin) / denom
	high := (centre + margin) / denom
	if low < 0 {
		low = 0
	}
	if high > 1 {
		high = 1
	}
	return Estimate{Successes: successes, Trials: trials, Rate: pHat, Low: low, High: high}, nil
}

// MonteCarlo runs trial() the given number of times and estimates the
// success probability. trial errors abort the run.
func MonteCarlo(trials int, trial func(i int) (bool, error)) (Estimate, error) {
	if trials <= 0 {
		return Estimate{}, fmt.Errorf("trials = %d: %w", trials, ErrBadCount)
	}
	successes := 0
	for i := 0; i < trials; i++ {
		ok, err := trial(i)
		if err != nil {
			return Estimate{}, fmt.Errorf("trial %d: %w", i, err)
		}
		if ok {
			successes++
		}
	}
	return NewEstimate(successes, trials)
}
