package analysis

import (
	"fmt"
	"math"
)

// MaxReasonableResolvers bounds the search in MinResolversForTarget; in
// practice there are only a few dozen independent public DoH operators.
const MaxReasonableResolvers = 128

// MinResolversForTarget returns the smallest resolver count N such that
// an attacker who independently compromises each resolver with
// probability p succeeds in controlling a pool fraction ≥ x with
// probability at most target (exact binomial model). This is the
// deployment-sizing question the paper's "key size" analogy invites:
// how many resolvers buy a given security level.
//
// It returns an error when p ≥ x' threshold makes the target
// unreachable: for p ≥ 1/2 and x = 1/2 the tail never drops below ~1/2
// no matter how large N grows.
func MinResolversForTarget(p, x, target float64) (int, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("p = %v: %w", p, ErrBadProbability)
	}
	if target <= 0 || target > 1 {
		return 0, fmt.Errorf("target = %v: %w", target, ErrBadProbability)
	}
	if x <= 0 || x > 1 {
		return 0, fmt.Errorf("x = %v: %w", x, ErrBadFraction)
	}
	for n := 1; n <= MaxReasonableResolvers; n++ {
		m, err := RequiredResolverCount(n, x)
		if err != nil {
			return 0, err
		}
		tail, err := BinomialTail(n, m, p)
		if err != nil {
			return 0, err
		}
		if tail <= target {
			return n, nil
		}
	}
	return 0, fmt.Errorf("no N <= %d reaches target %v at p=%v x=%v (law of large numbers: "+
		"need p < x)", MaxReasonableResolvers, target, p, x)
}

// ExpectedAttackerFraction returns E[fraction of pool controlled] under
// the independent-compromise model: each of the N resolvers contributes
// exactly K entries, so the expected fraction equals p regardless of N —
// distribution reduces the *variance* and the majority-capture
// probability, not the mean. Exposed because the distinction matters
// when reasoning about what the mechanism does and does not buy.
func ExpectedAttackerFraction(p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("p = %v: %w", p, ErrBadProbability)
	}
	return p, nil
}

// FractionStdDev returns the standard deviation of the attacker's pool
// fraction for N resolvers at compromise probability p: sqrt(p(1-p)/N).
// It shrinks as 1/sqrt(N) — the concentration that makes majority
// capture exponentially unlikely.
func FractionStdDev(p float64, n int) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("p = %v: %w", p, ErrBadProbability)
	}
	if n <= 0 {
		return 0, fmt.Errorf("n = %d: %w", n, ErrBadCount)
	}
	return math.Sqrt(p * (1 - p) / float64(n)), nil
}
