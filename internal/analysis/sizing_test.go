package analysis

import (
	"errors"
	"math"
	"testing"
)

func TestMinResolversForTarget(t *testing.T) {
	tailAt := func(n int, p, x float64) float64 {
		t.Helper()
		m, err := RequiredResolverCount(n, x)
		if err != nil {
			t.Fatal(err)
		}
		tail, err := BinomialTail(n, m, p)
		if err != nil {
			t.Fatal(err)
		}
		return tail
	}
	tests := []struct {
		p, x, target float64
	}{
		{0.1, 0.5, 0.05},
		{0.1, 0.5, 0.01},
		{0.1, 0.5, 0.001},
		{0.3, 0.5, 0.01},
		{0.2, 2.0 / 3, 0.005},
	}
	for _, tt := range tests {
		got, err := MinResolversForTarget(tt.p, tt.x, tt.target)
		if err != nil {
			t.Fatalf("p=%v target=%v: %v", tt.p, tt.target, err)
		}
		// The returned N reaches the target...
		if tail := tailAt(got, tt.p, tt.x); tail > tt.target {
			t.Errorf("N=%d has tail %v > target %v", got, tail, tt.target)
		}
		// ...and is minimal: every smaller N misses it.
		for n := 1; n < got; n++ {
			if tail := tailAt(n, tt.p, tt.x); tail <= tt.target {
				t.Errorf("N=%d already reaches target %v (tail %v) but MinResolvers returned %d",
					n, tt.target, tail, got)
			}
		}
		// More resolvers never hurt (monotone in odd/even pairs is not
		// guaranteed pointwise, but the found N+2 of same parity is).
		if got+2 <= MaxReasonableResolvers {
			if tail := tailAt(got+2, tt.p, tt.x); tail > tt.target {
				t.Errorf("N=%d (same parity as %d) regressed above target", got+2, got)
			}
		}
	}
}

func TestMinResolversUnreachable(t *testing.T) {
	// p >= x: the tail converges to 1 (or 1/2 at the boundary), never to
	// a small target.
	if _, err := MinResolversForTarget(0.6, 0.5, 0.01); err == nil {
		t.Fatal("unreachable target reported reachable")
	}
	if _, err := MinResolversForTarget(0.5, 0.5, 0.1); err == nil {
		t.Fatal("boundary p=x target reported reachable")
	}
}

func TestMinResolversValidation(t *testing.T) {
	if _, err := MinResolversForTarget(-1, 0.5, 0.1); !errors.Is(err, ErrBadProbability) {
		t.Error("bad p accepted")
	}
	if _, err := MinResolversForTarget(0.1, 0, 0.1); !errors.Is(err, ErrBadFraction) {
		t.Error("bad x accepted")
	}
	if _, err := MinResolversForTarget(0.1, 0.5, 0); !errors.Is(err, ErrBadProbability) {
		t.Error("bad target accepted")
	}
}

func TestExpectedFractionAndStdDev(t *testing.T) {
	mean, err := ExpectedAttackerFraction(0.3)
	if err != nil || mean != 0.3 {
		t.Fatalf("mean = %v err = %v", mean, err)
	}
	s3, err := FractionStdDev(0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s12, err := FractionStdDev(0.3, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Quadrupling N halves the standard deviation.
	if math.Abs(s3/s12-2) > 1e-9 {
		t.Errorf("stddev ratio = %v, want 2", s3/s12)
	}
	if _, err := FractionStdDev(0.3, 0); !errors.Is(err, ErrBadCount) {
		t.Error("n=0 accepted")
	}
	if _, err := ExpectedAttackerFraction(2); !errors.Is(err, ErrBadProbability) {
		t.Error("p=2 accepted")
	}
}

// Cross-check the sizing function against the empirical behaviour: at
// the returned N the simulated capture rate is at or below the target
// (within sampling noise).
func TestMinResolversMatchesSimulation(t *testing.T) {
	const p, x, target = 0.2, 0.5, 0.02
	n, err := MinResolversForTarget(p, x, target)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RequiredResolverCount(n, x)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := BinomialTail(n, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if tail > target {
		t.Fatalf("tail %v > target %v at N=%d", tail, target, n)
	}
}
