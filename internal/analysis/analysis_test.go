package analysis

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRequiredResolverFraction(t *testing.T) {
	// Section III-a: x = y exactly.
	for _, y := range []float64{0.25, 1.0 / 3, 0.5, 2.0 / 3, 1} {
		x, err := RequiredResolverFraction(y)
		if err != nil {
			t.Fatal(err)
		}
		if x != y {
			t.Errorf("x(%v) = %v", y, x)
		}
	}
	for _, y := range []float64{0, -0.1, 1.1} {
		if _, err := RequiredResolverFraction(y); !errors.Is(err, ErrBadFraction) {
			t.Errorf("y=%v: %v", y, err)
		}
	}
}

func TestRequiredResolverCount(t *testing.T) {
	tests := []struct {
		n    int
		x    float64
		want int
	}{
		{3, 2.0 / 3, 2}, // paper's N=3 majority example ⇒ p²
		{3, 0.5, 2},     // ⌈1.5⌉
		{5, 0.5, 3},     // ⌈2.5⌉
		{4, 0.5, 2},     // exactly half
		{15, 2.0 / 3, 10},
		{1, 1, 1},
		{9, 0.01, 1}, // floor at 1
	}
	for _, tt := range tests {
		got, err := RequiredResolverCount(tt.n, tt.x)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("M(%d, %v) = %d, want %d", tt.n, tt.x, got, tt.want)
		}
	}
	if _, err := RequiredResolverCount(0, 0.5); !errors.Is(err, ErrBadCount) {
		t.Error("n=0 accepted")
	}
	if _, err := RequiredResolverCount(3, 0); !errors.Is(err, ErrBadFraction) {
		t.Error("x=0 accepted")
	}
}

func TestPaperSuccessProbability(t *testing.T) {
	// The paper's worked example: N=3, x ≥ 2/3 ⇒ p².
	got, err := PaperSuccessProbability(0.3, 3, 2.0/3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.09, 1e-12) {
		t.Errorf("p² = %v, want 0.09", got)
	}
	// Exponential decay in N: doubling N squares the probability
	// (for x holding M proportional).
	p5, err := PaperSuccessProbability(0.5, 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p10, err := PaperSuccessProbability(0.5, 12, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p10, p5*p5, 1e-12) {
		t.Errorf("doubling N: %v vs %v²", p10, p5)
	}
	if _, err := PaperSuccessProbability(1.5, 3, 0.5); !errors.Is(err, ErrBadProbability) {
		t.Error("p=1.5 accepted")
	}
}

func TestPaperProbabilityMonotoneDecreasingInN(t *testing.T) {
	prev := 2.0
	for n := 1; n <= 30; n++ {
		p, err := PaperSuccessProbability(0.3, n, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-15 {
			t.Fatalf("probability increased at N=%d: %v > %v", n, p, prev)
		}
		prev = p
	}
}

func TestBinomialPMF(t *testing.T) {
	tests := []struct {
		n, k int
		p    float64
		want float64
	}{
		{3, 0, 0.5, 0.125},
		{3, 1, 0.5, 0.375},
		{3, 3, 0.5, 0.125},
		{10, 0, 0, 1},
		{10, 10, 1, 1},
		{10, 3, 1, 0},
		{5, 7, 0.5, 0}, // k > n
	}
	for _, tt := range tests {
		got, err := BinomialPMF(tt.n, tt.k, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("PMF(%d,%d,%v) = %v, want %v", tt.n, tt.k, tt.p, got, tt.want)
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 17, 64} {
		for _, p := range []float64{0.1, 0.5, 0.93} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				pmf, err := BinomialPMF(n, k, p)
				if err != nil {
					t.Fatal(err)
				}
				sum += pmf
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("PMF over n=%d p=%v sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomialTail(t *testing.T) {
	// P(X >= 2), X ~ B(3, 0.5) = 0.5.
	got, err := BinomialTail(3, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("tail = %v, want 0.5", got)
	}
	// m <= 0 is certain; m > n impossible.
	if got, _ := BinomialTail(3, 0, 0.2); got != 1 {
		t.Errorf("m=0 tail = %v", got)
	}
	if got, _ := BinomialTail(3, 4, 0.2); got != 0 {
		t.Errorf("m>n tail = %v", got)
	}
}

// The paper's p^M formula lower-bounds the exact all-resolvers-attacked
// binomial tail (compromising extra resolvers also succeeds), and the two
// agree when M = N.
func TestPaperFormulaVsBinomialTail(t *testing.T) {
	for _, n := range []int{3, 5, 9, 15} {
		for _, p := range []float64{0.05, 0.2, 0.5, 0.8} {
			for _, x := range []float64{0.5, 2.0 / 3} {
				m, err := RequiredResolverCount(n, x)
				if err != nil {
					t.Fatal(err)
				}
				paper, err := PaperSuccessProbability(p, n, x)
				if err != nil {
					t.Fatal(err)
				}
				tail, err := BinomialTail(n, m, p)
				if err != nil {
					t.Fatal(err)
				}
				if paper > tail+1e-12 {
					t.Errorf("n=%d p=%v x=%v: paper %v > tail %v", n, p, x, paper, tail)
				}
			}
		}
		paperAll, _ := PaperSuccessProbability(0.3, n, 1)
		tailAll, _ := BinomialTail(n, n, 0.3)
		if !almostEqual(paperAll, tailAll, 1e-12) {
			t.Errorf("n=%d M=N: %v vs %v", n, paperAll, tailAll)
		}
	}
}

func TestBinomialTailMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n, m, p, trials = 7, 4, 0.35, 30000
	hits := 0
	for i := 0; i < trials; i++ {
		k := 0
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				k++
			}
		}
		if k >= m {
			hits++
		}
	}
	want, err := BinomialTail(n, m, p)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(hits) / trials
	if !almostEqual(got, want, 0.01) {
		t.Fatalf("simulated %v vs analytical %v", got, want)
	}
}

func TestSecurityGainBits(t *testing.T) {
	// p = 0.5, M = ⌈N/2⌉ → exactly M bits.
	bits, err := SecurityGainBits(0.5, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(bits, 4, 1e-9) {
		t.Errorf("bits = %v, want 4", bits)
	}
	// Bits grow linearly in N — the "key size" analogy.
	b1, _ := SecurityGainBits(0.25, 10, 0.5)
	b2, _ := SecurityGainBits(0.25, 20, 0.5)
	if !almostEqual(b2, 2*b1, 1e-9) {
		t.Errorf("bits(20) = %v, want 2*bits(10) = %v", b2, 2*b1)
	}
	inf, err := SecurityGainBits(0, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(inf, 1) {
		t.Errorf("p=0 bits = %v", inf)
	}
}

func TestNewEstimate(t *testing.T) {
	e, err := NewEstimate(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rate != 0.5 {
		t.Errorf("rate = %v", e.Rate)
	}
	if e.Low >= e.Rate || e.High <= e.Rate {
		t.Errorf("interval [%v, %v] does not bracket rate", e.Low, e.High)
	}
	if e.Low < 0 || e.High > 1 {
		t.Errorf("interval outside [0,1]: [%v, %v]", e.Low, e.High)
	}
	if _, err := NewEstimate(5, 0); !errors.Is(err, ErrBadCount) {
		t.Error("trials=0 accepted")
	}
	if _, err := NewEstimate(11, 10); !errors.Is(err, ErrBadCount) {
		t.Error("successes > trials accepted")
	}
	if e.String() == "" {
		t.Error("empty String()")
	}
}

func TestWilsonIntervalCoversTruth(t *testing.T) {
	// For a fair coin, the 95% interval over 1000 trials should cover 0.5
	// nearly always across repeated experiments.
	rng := rand.New(rand.NewSource(5))
	covered := 0
	const experiments = 200
	for e := 0; e < experiments; e++ {
		succ := 0
		for i := 0; i < 1000; i++ {
			if rng.Float64() < 0.5 {
				succ++
			}
		}
		est, err := NewEstimate(succ, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if est.Low <= 0.5 && 0.5 <= est.High {
			covered++
		}
	}
	if covered < experiments*90/100 {
		t.Fatalf("interval covered truth in only %d/%d experiments", covered, experiments)
	}
}

func TestMonteCarlo(t *testing.T) {
	est, err := MonteCarlo(1000, func(i int) (bool, error) { return i%4 == 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(est.Rate, 0.25, 1e-9) {
		t.Errorf("rate = %v", est.Rate)
	}
	wantErr := errors.New("boom")
	if _, err := MonteCarlo(10, func(i int) (bool, error) { return false, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("trial error not propagated: %v", err)
	}
	if _, err := MonteCarlo(0, func(int) (bool, error) { return true, nil }); !errors.Is(err, ErrBadCount) {
		t.Error("trials=0 accepted")
	}
}

// Property: binomial tail is monotone in p and in -m.
func TestPropertyTailMonotone(t *testing.T) {
	f := func(nRaw, mRaw uint8, pRaw uint16) bool {
		n := int(nRaw%20) + 1
		m := int(mRaw)%n + 1
		p := float64(pRaw) / 65535
		t1, err := BinomialTail(n, m, p)
		if err != nil {
			return false
		}
		pHigher := p + (1-p)/2
		t2, err := BinomialTail(n, m, pHigher)
		if err != nil {
			return false
		}
		if t2+1e-12 < t1 {
			return false
		}
		if m > 1 {
			tEasier, err := BinomialTail(n, m-1, p)
			if err != nil {
				return false
			}
			if tEasier+1e-12 < t1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
