package resolver

import (
	"context"
	"errors"
	"fmt"

	"dohpool/internal/dnswire"
)

// Iterative-resolution errors.
var (
	// ErrReferralLoop reports that iteration exceeded the referral depth
	// bound without reaching an authoritative answer.
	ErrReferralLoop = errors.New("too many referrals")
	// ErrLameDelegation reports a referral whose nameservers could not be
	// reached or resolved.
	ErrLameDelegation = errors.New("lame delegation")
)

// maxReferralDepth bounds the delegation chain a single lookup follows.
const maxReferralDepth = 12

// maxGluelessDepth bounds nested NS-address resolution for glueless
// delegations.
const maxGluelessDepth = 4

// iterate resolves (name, typ) by walking the delegation tree from the
// configured root servers: query a server, follow referrals (using glue
// when present, resolving nameserver addresses when not) until an
// authoritative answer or a terminal error emerges. This is the classic
// RFC 1034 §5.3.3 algorithm restricted to the in-bailiwick behaviour the
// testbed needs.
func (r *Resolver) iterate(ctx context.Context, name string, typ dnswire.Type, depth int) (*dnswire.Message, error) {
	servers := append([]string(nil), r.roots...)
	for hop := 0; hop < maxReferralDepth; hop++ {
		resp, err := r.queryAny(ctx, servers, name, typ)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.Header.RCode == dnswire.RCodeNXDomain,
			resp.Header.RCode == dnswire.RCodeSuccess && len(resp.Answers) > 0,
			resp.Header.RCode == dnswire.RCodeSuccess && len(referralNS(resp)) == 0:
			// Terminal: authoritative answer, NXDOMAIN, or NODATA.
			return resp, nil
		}

		nsHosts := referralNS(resp)
		next := r.glueAddresses(resp, nsHosts)
		if len(next) == 0 {
			// Glueless delegation: resolve a nameserver's address
			// ourselves (bounded, to tame circular delegations).
			if depth >= maxGluelessDepth {
				return nil, fmt.Errorf("resolve %q: %w (glueless depth)", name, ErrLameDelegation)
			}
			for _, host := range nsHosts {
				addrResp, err := r.iterate(ctx, host, dnswire.TypeA, depth+1)
				if err != nil {
					continue
				}
				for _, a := range addrResp.AnswerAddrs() {
					next = append(next, r.glueDial(a))
				}
				if len(next) > 0 {
					break
				}
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("resolve %q: %w", name, ErrLameDelegation)
		}
		servers = next
	}
	return nil, fmt.Errorf("resolve %q: %w", name, ErrReferralLoop)
}

// queryAny tries the servers in order until one produces a usable
// response.
func (r *Resolver) queryAny(ctx context.Context, servers []string, name string, typ dnswire.Type) (*dnswire.Message, error) {
	var lastErr error
	for _, server := range servers {
		query, err := dnswire.NewQuery(name, typ)
		if err != nil {
			return nil, err
		}
		resp, err := r.ex.Exchange(ctx, query, server)
		r.upstream.Add(1)
		if err != nil {
			lastErr = err
			continue
		}
		switch resp.Header.RCode {
		case dnswire.RCodeSuccess, dnswire.RCodeNXDomain:
			return resp, nil
		default:
			lastErr = fmt.Errorf("server %s answered %v", server, resp.Header.RCode)
		}
	}
	return nil, fmt.Errorf("query %q %v: %w (last: %v)", name, typ, ErrAllServersFailed, lastErr)
}

// referralNS extracts the nameserver hosts of a referral (non-AA response
// with NS records in the authority section).
func referralNS(resp *dnswire.Message) []string {
	if resp.Header.Authoritative {
		return nil
	}
	var hosts []string
	for _, rec := range resp.Authority {
		if ns, ok := rec.Data.(*dnswire.NSRecord); ok {
			hosts = append(hosts, dnswire.CanonicalName(ns.Host))
		}
	}
	return hosts
}

// glueAddresses extracts additional-section addresses for the given
// nameserver hosts, mapped to dial strings via the configured GlueDialer.
func (r *Resolver) glueAddresses(resp *dnswire.Message, nsHosts []string) []string {
	wanted := make(map[string]bool, len(nsHosts))
	for _, h := range nsHosts {
		wanted[h] = true
	}
	var servers []string
	for _, rec := range resp.Additional {
		if !wanted[dnswire.CanonicalName(rec.Name)] {
			continue
		}
		switch d := rec.Data.(type) {
		case *dnswire.ARecord:
			servers = append(servers, r.glueDial(d.Addr))
		case *dnswire.AAAARecord:
			servers = append(servers, r.glueDial(d.Addr))
		}
	}
	return servers
}
