package resolver

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dohpool/internal/authserver"
	"dohpool/internal/dnswire"
	"dohpool/internal/zone"
)

// delegationTree builds a two-level hierarchy on loopback:
//
//	test.                 (the "root" for this test)
//	└── ntppool.test.     delegated to ns.ntppool.test. (glue 127.0.0.1)
//
// The child server's real ephemeral port is injected via GlueDialer.
func delegationTree(t *testing.T, glueless bool) (rootAddr string, glue func(netip.Addr) string) {
	t.Helper()

	child := zone.New("ntppool.test.")
	for i := 1; i <= 4; i++ {
		ip := netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})
		if err := child.AddAddress("pool.ntppool.test.", ip, 150); err != nil {
			t.Fatal(err)
		}
	}
	if err := child.AddAddress("ns.ntppool.test.", netip.MustParseAddr("127.0.0.1"), 3600); err != nil {
		t.Fatal(err)
	}
	childSrv, err := authserver.Listen("127.0.0.1:0", child)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = childSrv.Close() })

	root := zone.New("test.")
	if err := root.Add(dnswire.Record{
		Name: "ntppool.test.", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 3600,
		Data: &dnswire.NSRecord{Host: "ns.ntppool.test."},
	}); err != nil {
		t.Fatal(err)
	}
	if !glueless {
		// Glue: the child NS host's address lives in the parent zone.
		if err := root.AddAddress("ns.ntppool.test.", netip.MustParseAddr("127.0.0.1"), 3600); err != nil {
			t.Fatal(err)
		}
	}
	rootSrv, err := authserver.Listen("127.0.0.1:0", root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rootSrv.Close() })

	// All glue points at 127.0.0.1; the dialer rewrites it to the child
	// server's ephemeral port (stand-in for port 53).
	return rootSrv.Addr(), func(netip.Addr) string { return childSrv.Addr() }
}

func iterCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestReferralFollowedWithGlue(t *testing.T) {
	rootAddr, glue := delegationTree(t, false)
	r := New(Config{
		RootServers: []string{rootAddr},
		GlueDialer:  glue,
	})
	resp, err := r.Resolve(iterCtx(t), "pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.AnswerAddrs()); got != 4 {
		t.Fatalf("answers = %d, want 4 (delegation not followed?)", got)
	}
}

func TestGluelessDelegation(t *testing.T) {
	// The parent zone carries no glue but the resolver can still resolve
	// the NS host... only through the delegation itself — which makes the
	// delegation circularly glueless and therefore lame. Verify we fail
	// cleanly rather than loop.
	rootAddr, glue := delegationTree(t, true)
	r := New(Config{
		RootServers: []string{rootAddr},
		GlueDialer:  glue,
	})
	_, err := r.Resolve(iterCtx(t), "pool.ntppool.test.", dnswire.TypeA)
	if !errors.Is(err, ErrLameDelegation) {
		t.Fatalf("err = %v, want ErrLameDelegation", err)
	}
}

func TestIterativeNXDomain(t *testing.T) {
	rootAddr, glue := delegationTree(t, false)
	r := New(Config{RootServers: []string{rootAddr}, GlueDialer: glue})
	resp, err := r.Resolve(iterCtx(t), "missing.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestIterativeAnswerAtRoot(t *testing.T) {
	// Names owned by the root zone itself need no referral.
	root := zone.New("test.")
	if err := root.AddAddress("direct.test.", netip.MustParseAddr("192.0.2.50"), 60); err != nil {
		t.Fatal(err)
	}
	rootSrv, err := authserver.Listen("127.0.0.1:0", root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rootSrv.Close() })

	r := New(Config{RootServers: []string{rootSrv.Addr()}})
	resp, err := r.Resolve(iterCtx(t), "direct.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatalf("answers = %v", resp.AnswerAddrs())
	}
}

func TestIterativeResultsCached(t *testing.T) {
	rootAddr, glue := delegationTree(t, false)
	r := New(Config{RootServers: []string{rootAddr}, GlueDialer: glue})
	ctx := iterCtx(t)
	if _, err := r.Resolve(ctx, "pool.ntppool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	upstreamAfterFirst := r.Stats().Upstream
	if _, err := r.Resolve(ctx, "pool.ntppool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Upstream; got != upstreamAfterFirst {
		t.Fatalf("second lookup hit upstream (%d -> %d)", upstreamAfterFirst, got)
	}
}

func TestStubAuthorityPreferredOverIteration(t *testing.T) {
	// When a stub authority covers the name, iteration must not be used.
	child := zone.New("ntppool.test.")
	if err := child.AddAddress("pool.ntppool.test.", netip.MustParseAddr("192.0.2.9"), 60); err != nil {
		t.Fatal(err)
	}
	childSrv, err := authserver.Listen("127.0.0.1:0", child)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = childSrv.Close() })

	r := New(Config{
		Authorities: map[string][]string{"ntppool.test.": {childSrv.Addr()}},
		RootServers: []string{"127.0.0.1:1"}, // dead root: must not matter
	})
	resp, err := r.Resolve(iterCtx(t), "pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatal("stub authority not used")
	}
}

func TestZoneCutReferral(t *testing.T) {
	// Direct zone-level check: names under a cut produce referrals with
	// glue, names in-zone answer normally.
	z := zone.New("test.")
	if err := z.Add(dnswire.Record{
		Name: "child.test.", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.NSRecord{Host: "ns.child.test."},
	}); err != nil {
		t.Fatal(err)
	}
	if err := z.AddAddress("ns.child.test.", netip.MustParseAddr("198.51.100.7"), 60); err != nil {
		t.Fatal(err)
	}
	if err := z.AddAddress("top.test.", netip.MustParseAddr("198.51.100.8"), 60); err != nil {
		t.Fatal(err)
	}

	res, err := z.Lookup("deep.child.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Referral) != 1 || len(res.Glue) != 1 {
		t.Fatalf("referral=%d glue=%d", len(res.Referral), len(res.Glue))
	}
	if len(res.Records) != 0 {
		t.Fatal("referral carries answer records")
	}

	res, err = z.Lookup("top.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Referral) != 0 || len(res.Records) != 1 {
		t.Fatalf("in-zone answer broken: %+v", res)
	}
}
