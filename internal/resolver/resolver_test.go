package resolver

import (
	"context"
	"errors"
	"net/netip"
	"strconv"
	"testing"
	"time"

	"dohpool/internal/authserver"
	"dohpool/internal/dnswire"
	"dohpool/internal/transport"
	"dohpool/internal/zone"
)

// testSetup starts one authoritative server for ntppool.test. and returns
// a resolver pointed at it.
func testSetup(t *testing.T, zoneOpts []zone.Option, cfg Config) (*Resolver, *authserver.Server, *zone.Zone) {
	t.Helper()
	z := zone.New("ntppool.test.", zoneOpts...)
	if err := z.Add(dnswire.Record{
		Name: "ntppool.test.", Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.SOARecord{MName: "ns1.ntppool.test.", RName: "hostmaster.ntppool.test.",
			Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 45},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		ip := netip.MustParseAddr("192.0.2." + strconv.Itoa(i))
		if err := z.AddAddress("pool.ntppool.test.", ip, 150); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := authserver.Listen("127.0.0.1:0", z)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	if cfg.Authorities == nil {
		cfg.Authorities = map[string][]string{"ntppool.test.": {srv.Addr()}}
	}
	return New(cfg), srv, z
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestResolveBasic(t *testing.T) {
	r, _, _ := testSetup(t, nil, Config{})
	resp, err := r.Resolve(ctx(t), "pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if !resp.Header.RecursionAvailable {
		t.Error("RA bit clear")
	}
	if got := len(resp.AnswerAddrs()); got != 4 {
		t.Fatalf("%d addrs, want 4", got)
	}
}

func TestResolveUsesCache(t *testing.T) {
	r, srv, _ := testSetup(t, nil, Config{})
	c := ctx(t)
	if _, err := r.Resolve(c, "pool.ntppool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(c, "pool.ntppool.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.UDPQueries != 1 {
		t.Fatalf("upstream saw %d queries, want 1 (cache miss only)", st.UDPQueries)
	}
	if st := r.Stats(); st.CacheHits != 1 || st.Queries != 2 {
		t.Fatalf("resolver stats = %+v", st)
	}
}

func TestDisableCache(t *testing.T) {
	r, srv, _ := testSetup(t, nil, Config{DisableCache: true})
	c := ctx(t)
	for i := 0; i < 3; i++ {
		if _, err := r.Resolve(c, "pool.ntppool.test.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Stats(); st.UDPQueries != 3 {
		t.Fatalf("upstream saw %d queries, want 3", st.UDPQueries)
	}
}

func TestCNAMEChase(t *testing.T) {
	r, _, z := testSetup(t, nil, Config{})
	if err := z.Add(dnswire.Record{
		Name: "www.ntppool.test.", Type: dnswire.TypeCNAME, Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.CNAMERecord{Target: "pool.ntppool.test."},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := r.Resolve(ctx(t), "www.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.AnswerAddrs()); got != 4 {
		t.Fatalf("%d addrs after chase, want 4", got)
	}
	if resp.Answers[0].Type != dnswire.TypeCNAME {
		t.Error("CNAME record missing from combined answer")
	}
}

func TestCNAMELoopDetected(t *testing.T) {
	r, _, z := testSetup(t, nil, Config{})
	add := func(from, to string) {
		t.Helper()
		if err := z.Add(dnswire.Record{
			Name: from, Type: dnswire.TypeCNAME, Class: dnswire.ClassINET, TTL: 60,
			Data: &dnswire.CNAMERecord{Target: to},
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("a.ntppool.test.", "b.ntppool.test.")
	add("b.ntppool.test.", "a.ntppool.test.")
	_, err := r.Resolve(ctx(t), "a.ntppool.test.", dnswire.TypeA)
	if !errors.Is(err, ErrCNAMELoop) {
		t.Fatalf("err = %v, want ErrCNAMELoop", err)
	}
}

func TestNXDomainPropagates(t *testing.T) {
	r, _, _ := testSetup(t, nil, Config{})
	resp, err := r.Resolve(ctx(t), "missing.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestNoAuthority(t *testing.T) {
	r, _, _ := testSetup(t, nil, Config{})
	_, err := r.Resolve(ctx(t), "unrelated.example.", dnswire.TypeA)
	if !errors.Is(err, ErrNoAuthority) {
		t.Fatalf("err = %v, want ErrNoAuthority", err)
	}
}

func TestFailoverAcrossServers(t *testing.T) {
	// First server address is dead; resolver must fail over to the live
	// one.
	z := zone.New("x.test.")
	if err := z.AddAddress("h.x.test.", netip.MustParseAddr("192.0.2.1"), 60); err != nil {
		t.Fatal(err)
	}
	srv, err := authserver.Listen("127.0.0.1:0", z)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	r := New(Config{Authorities: map[string][]string{
		"x.test.": {"127.0.0.1:1", srv.Addr()}, // port 1: nothing listens
	}})
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := r.Resolve(c, "h.x.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatal("failover lost the answer")
	}
}

func TestAllServersFailed(t *testing.T) {
	r := New(Config{Authorities: map[string][]string{
		"x.test.": {"127.0.0.1:1"},
	}})
	c, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := r.Resolve(c, "h.x.test.", dnswire.TypeA)
	if !errors.Is(err, ErrAllServersFailed) {
		t.Fatalf("err = %v, want ErrAllServersFailed", err)
	}
}

func TestLongestSuffixWins(t *testing.T) {
	// Two authorities: x.test. (dead) and sub.x.test. (live). Queries for
	// sub.x.test. must go to the live, more specific authority.
	z := zone.New("sub.x.test.")
	if err := z.AddAddress("h.sub.x.test.", netip.MustParseAddr("192.0.2.5"), 60); err != nil {
		t.Fatal(err)
	}
	srv, err := authserver.Listen("127.0.0.1:0", z)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	r := New(Config{Authorities: map[string][]string{
		"x.test.":     {"127.0.0.1:1"},
		"sub.x.test.": {srv.Addr()},
	}})
	resp, err := r.Resolve(ctx(t), "h.sub.x.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatal("wrong authority selected")
	}
	if got := r.Origins(); len(got) != 2 || got[0] != "sub.x.test." {
		t.Errorf("Origins = %v", got)
	}
}

func TestNegativeCaching(t *testing.T) {
	r, srv, _ := testSetup(t, nil, Config{})
	c := ctx(t)
	for i := 0; i < 2; i++ {
		resp, err := r.Resolve(c, "nothing.ntppool.test.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.RCode != dnswire.RCodeNXDomain {
			t.Fatalf("rcode = %v", resp.Header.RCode)
		}
	}
	if st := srv.Stats(); st.UDPQueries != 1 {
		t.Fatalf("negative answer not cached: %d upstream queries", st.UDPQueries)
	}
}

func TestTransportInjection(t *testing.T) {
	// A custom transport that returns a fixed answer regardless of server
	// proves the injection point the attack package uses.
	fixed := transport.Func(func(_ context.Context, q *dnswire.Message, _ string) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(q)
		resp.Answers = append(resp.Answers,
			dnswire.AddressRecord(q.Questions[0].Name, netip.MustParseAddr("203.0.113.99"), 60))
		return resp, nil
	})
	r := New(Config{
		Authorities: map[string][]string{"x.test.": {"irrelevant:53"}},
		Transport:   fixed,
	})
	resp, err := r.Resolve(ctx(t), "h.x.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	addrs := resp.AnswerAddrs()
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("203.0.113.99") {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestResolveRejectsBadName(t *testing.T) {
	r, _, _ := testSetup(t, nil, Config{})
	if _, err := r.Resolve(ctx(t), "bad..name.test.", dnswire.TypeA); err == nil {
		t.Fatal("accepted malformed name")
	}
}

func TestResolveAddrsRejectsNonAddressType(t *testing.T) {
	r, _, _ := testSetup(t, nil, Config{})
	if _, err := r.ResolveAddrs(ctx(t), "pool.ntppool.test.", dnswire.TypeTXT); err == nil {
		t.Fatal("accepted TXT")
	}
}
