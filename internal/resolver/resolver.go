// Package resolver implements the recursive resolution engine inside each
// DoH resolver of the testbed. It resolves queries against a configured
// set of authoritative servers (longest-suffix match, like production
// stub/forward zones), chases CNAME chains, retries across servers, and
// caches responses with TTL semantics.
//
// Each resolver instance owns its own cache and its own transport. That
// independence is the point of the paper: an attacker who poisons one
// resolver's cache or one resolver's path to the authoritative servers
// affects only that resolver's contribution to the combined pool.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync/atomic"

	"dohpool/internal/dnscache"
	"dohpool/internal/dnswire"
	"dohpool/internal/transport"
)

// Resolution errors.
var (
	// ErrNoAuthority reports that no configured authority covers the name.
	ErrNoAuthority = errors.New("no authority configured for name")
	// ErrCNAMELoop reports a CNAME chain exceeding the depth limit.
	ErrCNAMELoop = errors.New("cname chain too long")
	// ErrAllServersFailed reports that every authoritative server for the
	// zone failed to answer.
	ErrAllServersFailed = errors.New("all authoritative servers failed")
)

// DefaultMaxCNAMEDepth bounds CNAME chasing.
const DefaultMaxCNAMEDepth = 8

// DefaultNegativeTTL is the cache lifetime for negative answers lacking a
// usable SOA minimum.
const DefaultNegativeTTL = 30

// Config configures a Resolver.
type Config struct {
	// Authorities maps zone origins to the addresses of their
	// authoritative servers. The longest matching suffix wins.
	Authorities map[string][]string
	// RootServers, when set, enables iterative resolution: names not
	// covered by Authorities are resolved by walking the delegation tree
	// from these servers (RFC 1034 §5.3.3), following referrals and glue.
	RootServers []string
	// GlueDialer maps a glue address from a referral to the dial string
	// of that nameserver. The default appends port 53 (production
	// behaviour); the loopback testbed injects its ephemeral port map.
	GlueDialer func(addr netip.Addr) string
	// Transport performs the resolver→authoritative exchanges. The attack
	// package wraps this to model on-path adversaries. Defaults to
	// transport.Auto (UDP with TCP fallback).
	Transport transport.Exchanger
	// Cache holds responses; nil creates a private cache.
	Cache *dnscache.Cache
	// MaxCNAMEDepth bounds alias chasing; 0 means DefaultMaxCNAMEDepth.
	MaxCNAMEDepth int
	// DisableCache bypasses the cache entirely (used by experiments that
	// need every query to hit the wire).
	DisableCache bool
}

// Resolver resolves DNS queries recursively on behalf of clients.
type Resolver struct {
	authorities map[string][]string
	roots       []string
	glueDial    func(addr netip.Addr) string
	ex          transport.Exchanger
	cache       *dnscache.Cache
	maxDepth    int
	noCache     bool

	queries   atomic.Uint64
	cacheHits atomic.Uint64
	upstream  atomic.Uint64
}

// New creates a Resolver from cfg.
func New(cfg Config) *Resolver {
	r := &Resolver{
		authorities: make(map[string][]string, len(cfg.Authorities)),
		roots:       append([]string(nil), cfg.RootServers...),
		glueDial:    cfg.GlueDialer,
		ex:          cfg.Transport,
		cache:       cfg.Cache,
		maxDepth:    cfg.MaxCNAMEDepth,
		noCache:     cfg.DisableCache,
	}
	if r.glueDial == nil {
		r.glueDial = func(addr netip.Addr) string {
			return net.JoinHostPort(addr.String(), "53")
		}
	}
	for origin, servers := range cfg.Authorities {
		r.authorities[dnswire.CanonicalName(origin)] = append([]string(nil), servers...)
	}
	if r.ex == nil {
		r.ex = &transport.Auto{}
	}
	if r.cache == nil {
		r.cache = dnscache.New()
	}
	if r.maxDepth <= 0 {
		r.maxDepth = DefaultMaxCNAMEDepth
	}
	return r
}

// Stats holds resolver counters.
type Stats struct {
	Queries   uint64
	CacheHits uint64
	Upstream  uint64
}

// Stats returns a snapshot of the resolver counters.
func (r *Resolver) Stats() Stats {
	return Stats{
		Queries:   r.queries.Load(),
		CacheHits: r.cacheHits.Load(),
		Upstream:  r.upstream.Load(),
	}
}

// Cache exposes the resolver's cache (tests poison it directly to model
// cache-poisoning attacks that already succeeded).
func (r *Resolver) Cache() *dnscache.Cache { return r.cache }

// Resolve answers (name, type): it returns a response message whose answer
// section contains the full CNAME chain followed by the final records.
// The RCode reflects the final lookup.
func (r *Resolver) Resolve(ctx context.Context, name string, typ dnswire.Type) (*dnswire.Message, error) {
	r.queries.Add(1)
	name = dnswire.CanonicalName(name)
	if err := dnswire.ValidateName(name); err != nil {
		return nil, err
	}

	resp := &dnswire.Message{
		Header: dnswire.Header{
			Response:           true,
			RecursionDesired:   true,
			RecursionAvailable: true,
		},
		Questions: []dnswire.Question{{Name: name, Type: typ, Class: dnswire.ClassINET}},
	}

	current := name
	for depth := 0; depth <= r.maxDepth; depth++ {
		step, err := r.lookupOne(ctx, current, typ)
		if err != nil {
			return nil, err
		}
		resp.Answers = append(resp.Answers, step.Answers...)
		resp.Header.RCode = step.Header.RCode
		if step.Header.RCode != dnswire.RCodeSuccess {
			resp.Authority = append(resp.Authority, step.Authority...)
			return resp, nil
		}
		target, isAlias := cnameTarget(step, current, typ)
		if !isAlias {
			resp.Authority = append(resp.Authority, step.Authority...)
			return resp, nil
		}
		current = target
	}
	return nil, fmt.Errorf("resolve %q: %w", name, ErrCNAMELoop)
}

// ResolveAddrs resolves name to its A (v4) or AAAA (v6) addresses.
func (r *Resolver) ResolveAddrs(ctx context.Context, name string, typ dnswire.Type) (*dnswire.Message, error) {
	if typ != dnswire.TypeA && typ != dnswire.TypeAAAA {
		return nil, fmt.Errorf("ResolveAddrs supports A/AAAA, got %v", typ)
	}
	return r.Resolve(ctx, name, typ)
}

// lookupOne answers a single (name, type) without CNAME chasing, using
// cache then upstream.
func (r *Resolver) lookupOne(ctx context.Context, name string, typ dnswire.Type) (*dnswire.Message, error) {
	q := dnswire.Question{Name: name, Type: typ, Class: dnswire.ClassINET}
	if !r.noCache {
		if cached, ok := r.cache.Get(q); ok {
			r.cacheHits.Add(1)
			return cached, nil
		}
	}

	servers, err := r.serversFor(name)
	if errors.Is(err, ErrNoAuthority) && len(r.roots) > 0 {
		// No stub authority covers the name: iterate from the roots.
		resp, err := r.iterate(ctx, name, typ, 0)
		if err != nil {
			return nil, err
		}
		if !r.noCache {
			r.cache.Put(q, resp, negativeTTL(resp))
		}
		return resp, nil
	}
	if err != nil {
		return nil, err
	}

	var lastErr error
	for _, server := range servers {
		query, err := dnswire.NewQuery(name, typ)
		if err != nil {
			return nil, err
		}
		resp, err := r.ex.Exchange(ctx, query, server)
		r.upstream.Add(1)
		if err != nil {
			lastErr = err
			continue
		}
		switch resp.Header.RCode {
		case dnswire.RCodeSuccess, dnswire.RCodeNXDomain:
			if !r.noCache {
				r.cache.Put(q, resp, negativeTTL(resp))
			}
			return resp, nil
		default:
			lastErr = fmt.Errorf("server %s answered %v", server, resp.Header.RCode)
		}
	}
	return nil, fmt.Errorf("resolve %q %v: %w (last: %v)", name, typ, ErrAllServersFailed, lastErr)
}

// serversFor picks the authoritative servers for the longest zone suffix
// covering name.
func (r *Resolver) serversFor(name string) ([]string, error) {
	bestLen := -1
	var best []string
	for origin, servers := range r.authorities {
		if !dnswire.IsSubdomain(name, origin) {
			continue
		}
		if l := len(origin); l > bestLen {
			bestLen = l
			best = servers
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%q: %w", name, ErrNoAuthority)
	}
	return best, nil
}

// Origins lists configured zone origins, sorted (for logs and tests).
func (r *Resolver) Origins() []string {
	origins := make([]string, 0, len(r.authorities))
	for o := range r.authorities {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	return origins
}

// cnameTarget inspects a single-step response: if the answer for (name,
// typ) is an alias and typ itself is not CNAME, it returns the chase
// target.
func cnameTarget(resp *dnswire.Message, name string, typ dnswire.Type) (string, bool) {
	if typ == dnswire.TypeCNAME {
		return "", false
	}
	sawFinal := false
	target := ""
	for _, rec := range resp.Answers {
		if rec.Type == typ {
			sawFinal = true
		}
		if rec.Type == dnswire.TypeCNAME && strings.EqualFold(rec.Name, name) {
			if c, ok := rec.Data.(*dnswire.CNAMERecord); ok {
				target = c.Target
			}
		}
	}
	if sawFinal || target == "" {
		return "", false
	}
	return target, true
}

// negativeTTL derives the negative-cache TTL from the SOA minimum if the
// response carries one (RFC 2308 §5).
func negativeTTL(resp *dnswire.Message) uint32 {
	for _, rec := range resp.Authority {
		if soa, ok := rec.Data.(*dnswire.SOARecord); ok {
			ttl := soa.Minimum
			if rec.TTL < ttl {
				ttl = rec.TTL
			}
			if ttl > 0 {
				return ttl
			}
		}
	}
	return DefaultNegativeTTL
}
