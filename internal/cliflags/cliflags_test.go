package cliflags

import (
	"flag"
	"io"
	"reflect"
	"testing"
	"time"

	"dohpool"
)

func newSet(t *testing.T, args ...string) (*flag.FlagSet, *Set) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	set := RegisterAll(fs, ServeOptions{})
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return fs, set
}

// flagFor maps every exported field of the grouped config sub-structs
// to the flag that sets it. The drift test below walks the structs by
// reflection, so adding a field to the library without deciding on its
// CLI spelling (or deliberately recording it as flagless here) fails.
var flagFor = map[string]string{
	"CacheConfig.Size":                 "cache-size",
	"CacheConfig.Shards":               "cache-shards",
	"CacheConfig.StaleWhileRevalidate": "stale-while-revalidate",

	"RefreshConfig.Ahead":   "refresh-ahead",
	"RefreshConfig.MinHits": "refresh-min-hits",

	"HealthConfig.HedgeDelay":       "hedge-delay",
	"HealthConfig.DisableHedging":   "no-hedge",
	"HealthConfig.BreakerThreshold": "breaker-threshold",
	"HealthConfig.BreakerCooldown":  "breaker-cooldown",

	"TrustConfig.Window":   "trust-window",
	"TrustConfig.MinScore": "trust-min-score",

	"ChaosConfig.Payload":   "chaos-payload",
	"ChaosConfig.Resolvers": "chaos-resolvers",
	"ChaosConfig.Prob":      "chaos-prob",
	"ChaosConfig.Seed":      "chaos-seed",
	"ChaosConfig.Net":       "", // expanded via NetChaosConfig below

	"NetChaosConfig.DropProb":       "net-chaos-drop",
	"NetChaosConfig.Delay":          "net-chaos-delay",
	"NetChaosConfig.Jitter":         "net-chaos-jitter",
	"NetChaosConfig.PartitionEvery": "net-chaos-partition-every",
	"NetChaosConfig.PartitionFor":   "net-chaos-partition-for",
	"NetChaosConfig.ChurnEvery":     "net-chaos-churn-every",
	"NetChaosConfig.ChurnDowntime":  "net-chaos-churn-downtime",
	"NetChaosConfig.Resolvers":      "net-chaos-resolvers",

	"ServeConfig.UDPWorkers":    "udp-workers",
	"ServeConfig.UDPBatch":      "udp-batch",
	"ServeConfig.UDPSockets":    "udp-sockets",
	"ServeConfig.MaxTCPConns":   "max-tcp-conns",
	"ServeConfig.DoHAddr":       "doh-addr",
	"ServeConfig.DoTAddr":       "dot-addr",
	"ServeConfig.TLSCert":       "tls-cert",
	"ServeConfig.TLSKey":        "tls-key",
	"ServeConfig.TLSSelfSigned": "tls-self-signed",
	"ServeConfig.AdminAddr":     "admin",
}

func TestEveryGroupedFieldHasAFlag(t *testing.T) {
	fs, _ := newSet(t)
	registered := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { registered[f.Name] = true })

	for _, typ := range []reflect.Type{
		reflect.TypeOf(dohpool.CacheConfig{}),
		reflect.TypeOf(dohpool.RefreshConfig{}),
		reflect.TypeOf(dohpool.HealthConfig{}),
		reflect.TypeOf(dohpool.TrustConfig{}),
		reflect.TypeOf(dohpool.ChaosConfig{}),
		reflect.TypeOf(dohpool.NetChaosConfig{}),
		reflect.TypeOf(dohpool.ServeConfig{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			field := typ.Name() + "." + typ.Field(i).Name
			name, ok := flagFor[field]
			if !ok {
				t.Errorf("config field %s has no entry in flagFor: pick a flag spelling in cliflags (or record it as flagless here)", field)
				continue
			}
			if name == "" {
				continue
			}
			if !registered[name] {
				t.Errorf("flagFor maps %s to -%s, but no such flag is registered", field, name)
			}
		}
	}
	// The reverse direction: a mapping naming a dead field means the
	// library dropped it and this table (and likely a flag) is stale.
	known := map[string]bool{}
	for _, typ := range []reflect.Type{
		reflect.TypeOf(dohpool.CacheConfig{}),
		reflect.TypeOf(dohpool.RefreshConfig{}),
		reflect.TypeOf(dohpool.HealthConfig{}),
		reflect.TypeOf(dohpool.TrustConfig{}),
		reflect.TypeOf(dohpool.ChaosConfig{}),
		reflect.TypeOf(dohpool.NetChaosConfig{}),
		reflect.TypeOf(dohpool.ServeConfig{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			known[typ.Name()+"."+typ.Field(i).Name] = true
		}
	}
	for field := range flagFor {
		if !known[field] {
			t.Errorf("flagFor entry %s names a field that no longer exists", field)
		}
	}
}

func TestApplyWritesGroupedFields(t *testing.T) {
	_, set := newSet(t,
		"-quorum=3", "-majority", "-timeout=2s",
		"-cache-size=512", "-cache-shards=8", "-stale-while-revalidate=45s",
		"-refresh-ahead=0.8", "-refresh-min-hits=4",
		"-hedge-delay=25ms", "-no-hedge", "-breaker-threshold=7", "-breaker-cooldown=9s",
		"-trust-window=32", "-trust-min-score=0.5",
		"-chaos-payload=replace", "-chaos-resolvers=0,2", "-chaos-prob=0.25", "-chaos-seed=42",
		"-net-chaos-drop=0.1", "-net-chaos-delay=5ms", "-net-chaos-jitter=2ms",
		"-net-chaos-partition-every=10s", "-net-chaos-partition-for=1s",
		"-net-chaos-churn-every=30s", "-net-chaos-churn-downtime=3s",
		"-net-chaos-resolvers=1",
		"-udp-workers=4", "-udp-batch=32", "-udp-sockets=3", "-max-tcp-conns=64",
		"-doh-addr=127.0.0.1:8443", "-dot-addr=127.0.0.1:8853",
		"-tls-cert=c.pem", "-tls-key=k.pem", "-tls-self-signed",
		"-admin=127.0.0.1:9090",
	)
	var cfg dohpool.Config
	if err := set.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.MinResolvers != 3 || !cfg.WithMajority || cfg.QueryTimeout != 2*time.Second {
		t.Errorf("consensus = %d/%v/%v", cfg.MinResolvers, cfg.WithMajority, cfg.QueryTimeout)
	}
	wantCache := dohpool.CacheConfig{Size: 512, Shards: 8, StaleWhileRevalidate: 45 * time.Second}
	if cfg.Cache != wantCache {
		t.Errorf("Cache = %+v, want %+v", cfg.Cache, wantCache)
	}
	wantRefresh := dohpool.RefreshConfig{Ahead: 0.8, MinHits: 4}
	if cfg.Refresh != wantRefresh {
		t.Errorf("Refresh = %+v, want %+v", cfg.Refresh, wantRefresh)
	}
	wantHealth := dohpool.HealthConfig{
		HedgeDelay: 25 * time.Millisecond, DisableHedging: true,
		BreakerThreshold: 7, BreakerCooldown: 9 * time.Second,
	}
	if cfg.Health != wantHealth {
		t.Errorf("Health = %+v, want %+v", cfg.Health, wantHealth)
	}
	wantTrust := dohpool.TrustConfig{Window: 32, MinScore: 0.5}
	if cfg.Trust != wantTrust {
		t.Errorf("Trust = %+v, want %+v", cfg.Trust, wantTrust)
	}
	if cfg.Chaos.Payload != "replace" || cfg.Chaos.Prob != 0.25 || cfg.Chaos.Seed != 42 {
		t.Errorf("Chaos = %+v", cfg.Chaos)
	}
	if !reflect.DeepEqual(cfg.Chaos.Resolvers, []int{0, 2}) {
		t.Errorf("Chaos.Resolvers = %v", cfg.Chaos.Resolvers)
	}
	wantNet := dohpool.NetChaosConfig{
		DropProb: 0.1, Delay: 5 * time.Millisecond, Jitter: 2 * time.Millisecond,
		PartitionEvery: 10 * time.Second, PartitionFor: time.Second,
		ChurnEvery: 30 * time.Second, ChurnDowntime: 3 * time.Second,
		Resolvers: []int{1},
	}
	if !reflect.DeepEqual(cfg.Chaos.Net, wantNet) {
		t.Errorf("Chaos.Net = %+v, want %+v", cfg.Chaos.Net, wantNet)
	}
	wantServe := dohpool.ServeConfig{
		UDPWorkers: 4, UDPBatch: 32, UDPSockets: 3, MaxTCPConns: 64,
		DoHAddr: "127.0.0.1:8443", DoTAddr: "127.0.0.1:8853",
		TLSCert: "c.pem", TLSKey: "k.pem", TLSSelfSigned: true,
		AdminAddr: "127.0.0.1:9090",
	}
	if cfg.Serve != wantServe {
		t.Errorf("Serve = %+v, want %+v", cfg.Serve, wantServe)
	}
}

func TestApplyMaxStaleAliasAndDefaults(t *testing.T) {
	_, set := newSet(t, "-max-stale=30s")
	var cfg dohpool.Config
	if err := set.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Cache.StaleWhileRevalidate != 30*time.Second {
		t.Errorf("-max-stale alone: SWR = %v, want 30s", cfg.Cache.StaleWhileRevalidate)
	}

	_, set = newSet(t, "-max-stale=30s", "-stale-while-revalidate=10s")
	cfg = dohpool.Config{}
	if err := set.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Cache.StaleWhileRevalidate != 10*time.Second {
		t.Errorf("both staleness flags: SWR = %v, want the non-deprecated 10s", cfg.Cache.StaleWhileRevalidate)
	}

	// Defaults must leave the zero Config zero so the library's own
	// defaulting still decides (except QueryTimeout and MinHits, whose
	// flag defaults are the documented daemon defaults).
	_, set = newSet(t)
	cfg = dohpool.Config{}
	if err := set.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.QueryTimeout != 4*time.Second || cfg.Refresh.MinHits != 1 {
		t.Errorf("flag defaults: timeout=%v minhits=%d", cfg.QueryTimeout, cfg.Refresh.MinHits)
	}
	if cfg.Cache != (dohpool.CacheConfig{}) || cfg.Health != (dohpool.HealthConfig{}) ||
		cfg.Trust != (dohpool.TrustConfig{}) || cfg.Serve != (dohpool.ServeConfig{}) {
		t.Errorf("zero flags perturbed grouped config: %+v", cfg)
	}
	if cfg.Chaos.Net.Active() {
		t.Error("zero flags turned net chaos on")
	}
}

func TestApplyBadIndexList(t *testing.T) {
	_, set := newSet(t, "-chaos-resolvers=0,x")
	var cfg dohpool.Config
	if err := set.Apply(&cfg); err == nil {
		t.Fatal("bad -chaos-resolvers accepted")
	}
	_, set = newSet(t, "-net-chaos-resolvers=,")
	if err := set.Apply(&cfg); err == nil {
		t.Fatal("bad -net-chaos-resolvers accepted")
	}
}

func TestParseIndexList(t *testing.T) {
	got, err := ParseIndexList(" 0, 2,5")
	if err != nil || !reflect.DeepEqual(got, []int{0, 2, 5}) {
		t.Fatalf("ParseIndexList = %v, %v", got, err)
	}
	if got, err := ParseIndexList(""); err != nil || got != nil {
		t.Fatalf("empty = %v, %v", got, err)
	}
	if _, err := ParseIndexList("1,"); err == nil {
		t.Fatal("trailing comma accepted")
	}
}

func TestServeAdminDefault(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := RegisterServe(fs, ServeOptions{AdminDefault: "127.0.0.1:8053"})
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var cfg dohpool.Config
	s.Apply(&cfg)
	if cfg.Serve.AdminAddr != "127.0.0.1:8053" {
		t.Fatalf("AdminAddr default = %q", cfg.Serve.AdminAddr)
	}
}
