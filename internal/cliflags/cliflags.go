// Package cliflags is the single mapping between dohpool's grouped
// configuration surface (dohpool.CacheConfig, HealthConfig, …) and its
// CLI flag spellings. Every binary that configures a Client —
// dohpoold, loadgen's self-hosted mode, testbed's chaos aliases —
// registers groups from here instead of declaring its own flag set, so
// a knob added to the library either gets a flag in exactly one place
// or visibly has none (the drift test in this package enumerates the
// config fields and fails on unmapped ones).
//
// Each Register* function declares one group's flags on a
// flag.FlagSet and returns a holder whose Apply method writes the
// parsed values into the *grouped* fields of a dohpool.Config — never
// the deprecated flat aliases.
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dohpool"
)

// ParseIndexList parses a comma-separated index list ("0,2") as used
// by the chaos resolver-selection flags. Empty input yields nil.
func ParseIndexList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var idx []int
	for _, part := range strings.Split(s, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad index %q: %v", part, err)
		}
		idx = append(idx, i)
	}
	return idx, nil
}

// Consensus holds the consensus-level flags. These map to top-level
// Config fields (not a grouped sub-struct): the quorum semantics are
// the paper's Algorithm 1 itself, not a tunable layer around it.
type Consensus struct {
	Quorum   *int
	Majority *bool
	Timeout  *time.Duration
}

// RegisterConsensus declares -quorum, -majority and -timeout.
func RegisterConsensus(fs *flag.FlagSet) *Consensus {
	return &Consensus{
		Quorum:   fs.Int("quorum", 0, "resolvers that must answer (0 = all)"),
		Majority: fs.Bool("majority", false, "answer only majority-confirmed addresses"),
		Timeout:  fs.Duration("timeout", 4*time.Second, "per-resolver query timeout"),
	}
}

// Apply writes the parsed values into cfg.
func (c *Consensus) Apply(cfg *dohpool.Config) {
	cfg.MinResolvers = *c.Quorum
	cfg.WithMajority = *c.Majority
	cfg.QueryTimeout = *c.Timeout
}

// Cache holds the dohpool.CacheConfig flags.
type Cache struct {
	Size     *int
	Shards   *int
	SWR      *time.Duration
	MaxStale *time.Duration
}

// RegisterCache declares -cache-size, -cache-shards,
// -stale-while-revalidate and its deprecated alias -max-stale.
func RegisterCache(fs *flag.FlagSet) *Cache {
	return &Cache{
		Size:     fs.Int("cache-size", 0, "consensus cache capacity in entries (0 = default, -1 = disable)"),
		Shards:   fs.Int("cache-shards", 0, "consensus cache lock shards, rounded up to a power of two (0 = from GOMAXPROCS)"),
		SWR:      fs.Duration("stale-while-revalidate", 0, "serve expired pools up to this long past TTL while refreshing (wins over -max-stale)"),
		MaxStale: fs.Duration("max-stale", 0, "deprecated alias for -stale-while-revalidate"),
	}
}

// Apply writes the parsed values into cfg.Cache, resolving the
// -stale-while-revalidate / -max-stale alias pair here so the library
// receives one value through the grouped field.
func (c *Cache) Apply(cfg *dohpool.Config) {
	cfg.Cache.Size = *c.Size
	cfg.Cache.Shards = *c.Shards
	swr := *c.SWR
	if swr == 0 {
		swr = *c.MaxStale
	}
	cfg.Cache.StaleWhileRevalidate = swr
}

// Refresh holds the dohpool.RefreshConfig flags.
type Refresh struct {
	Ahead   *float64
	MinHits *uint64
}

// RegisterRefresh declares -refresh-ahead and -refresh-min-hits.
func RegisterRefresh(fs *flag.FlagSet) *Refresh {
	return &Refresh{
		Ahead:   fs.Float64("refresh-ahead", 0, "regenerate cached pools in the background at this fraction of TTL, e.g. 0.8 (0 = disabled)"),
		MinHits: fs.Uint64("refresh-min-hits", 1, "minimum hits since the last refresh before a pool stays on refresh-ahead (0 uses the default of 1)"),
	}
}

// Apply writes the parsed values into cfg.Refresh.
func (r *Refresh) Apply(cfg *dohpool.Config) {
	cfg.Refresh.Ahead = *r.Ahead
	cfg.Refresh.MinHits = *r.MinHits
}

// Health holds the dohpool.HealthConfig flags.
type Health struct {
	HedgeDelay       *time.Duration
	NoHedge          *bool
	BreakerThreshold *int
	BreakerCooldown  *time.Duration
}

// RegisterHealth declares -hedge-delay, -no-hedge, -breaker-threshold
// and -breaker-cooldown.
func RegisterHealth(fs *flag.FlagSet) *Health {
	return &Health{
		HedgeDelay:       fs.Duration("hedge-delay", 0, "fixed straggler hedge delay (0 = adaptive from EWMA RTT)"),
		NoHedge:          fs.Bool("no-hedge", false, "disable straggler hedging"),
		BreakerThreshold: fs.Int("breaker-threshold", 0, "consecutive failures opening a resolver's circuit breaker (0 = default, -1 = disable)"),
		BreakerCooldown:  fs.Duration("breaker-cooldown", 0, "how long an open breaker rejects attempts (0 = default)"),
	}
}

// Apply writes the parsed values into cfg.Health.
func (h *Health) Apply(cfg *dohpool.Config) {
	cfg.Health.HedgeDelay = *h.HedgeDelay
	cfg.Health.DisableHedging = *h.NoHedge
	cfg.Health.BreakerThreshold = *h.BreakerThreshold
	cfg.Health.BreakerCooldown = *h.BreakerCooldown
}

// Trust holds the dohpool.TrustConfig flags.
type Trust struct {
	Window   *int
	MinScore *float64
}

// RegisterTrust declares -trust-window and -trust-min-score.
func RegisterTrust(fs *flag.FlagSet) *Trust {
	return &Trust{
		Window:   fs.Int("trust-window", 0, "pool generations feeding each resolver's trust score (0 = default 16, negative = disable)"),
		MinScore: fs.Float64("trust-min-score", 0, "quarantine resolvers whose trust score falls below this (0 = observe only; 0.5 recommended)"),
	}
}

// Apply writes the parsed values into cfg.Trust.
func (t *Trust) Apply(cfg *dohpool.Config) {
	cfg.Trust.Window = *t.Window
	cfg.Trust.MinScore = *t.MinScore
}

// Chaos holds the dohpool.ChaosConfig flags: the payload adversary plus
// the network-fault layer (ChaosConfig.Net).
type Chaos struct {
	Payload   *string
	Resolvers *string
	Prob      *float64
	Seed      *int64

	NetDrop           *float64
	NetDelay          *time.Duration
	NetJitter         *time.Duration
	NetPartitionEvery *time.Duration
	NetPartitionFor   *time.Duration
	NetChurnEvery     *time.Duration
	NetChurnDowntime  *time.Duration
	NetResolvers      *string
}

// RegisterChaos declares the -chaos-* payload-adversary flags and the
// -net-chaos-* network-fault flags.
func RegisterChaos(fs *flag.FlagSet) *Chaos {
	return &Chaos{
		Payload:   fs.String("chaos-payload", "", "CHAOS MODE: forge targeted resolvers' answers with this payload: replace | inflate | empty (\"\" = off)"),
		Resolvers: fs.String("chaos-resolvers", "", "comma-separated resolver indices the chaos adversary compromises (default \"0\")"),
		Prob:      fs.Float64("chaos-prob", 1, "per-exchange probability a targeted exchange is forged"),
		Seed:      fs.Int64("chaos-seed", 0, "seed for all chaos randomness, payload and network (0 uses seed 1)"),

		NetDrop:           fs.Float64("net-chaos-drop", 0, "NET CHAOS: probability a resolver exchange is dropped (blocks until its deadline)"),
		NetDelay:          fs.Duration("net-chaos-delay", 0, "NET CHAOS: delay added to every resolver exchange"),
		NetJitter:         fs.Duration("net-chaos-jitter", 0, "NET CHAOS: uniform random extra delay in [0, jitter)"),
		NetPartitionEvery: fs.Duration("net-chaos-partition-every", 0, "NET CHAOS: partition cycle length (requires -net-chaos-partition-for)"),
		NetPartitionFor:   fs.Duration("net-chaos-partition-for", 0, "NET CHAOS: hard-partition duration at the start of each cycle"),
		NetChurnEvery:     fs.Duration("net-chaos-churn-every", 0, "NET CHAOS: resolver restart cycle length (requires -net-chaos-churn-downtime)"),
		NetChurnDowntime:  fs.Duration("net-chaos-churn-downtime", 0, "NET CHAOS: how long the rotating victim resolver refuses connections per cycle"),
		NetResolvers:      fs.String("net-chaos-resolvers", "", "comma-separated resolver indices the network faults hit (default: all)"),
	}
}

// Apply writes the parsed values into cfg.Chaos. Index-list parse
// errors are returned, not panicked, since they carry user input.
func (c *Chaos) Apply(cfg *dohpool.Config) error {
	idx, err := ParseIndexList(*c.Resolvers)
	if err != nil {
		return fmt.Errorf("-chaos-resolvers: %w", err)
	}
	netIdx, err := ParseIndexList(*c.NetResolvers)
	if err != nil {
		return fmt.Errorf("-net-chaos-resolvers: %w", err)
	}
	cfg.Chaos.Payload = *c.Payload
	cfg.Chaos.Resolvers = idx
	cfg.Chaos.Prob = *c.Prob
	cfg.Chaos.Seed = *c.Seed
	cfg.Chaos.Net = dohpool.NetChaosConfig{
		DropProb:       *c.NetDrop,
		Delay:          *c.NetDelay,
		Jitter:         *c.NetJitter,
		PartitionEvery: *c.NetPartitionEvery,
		PartitionFor:   *c.NetPartitionFor,
		ChurnEvery:     *c.NetChurnEvery,
		ChurnDowntime:  *c.NetChurnDowntime,
		Resolvers:      netIdx,
	}
	return nil
}

// ServeOptions adjusts per-binary defaults of the Serve group.
type ServeOptions struct {
	// AdminDefault is the -admin default ("" disables by default).
	AdminDefault string
}

// Serve holds the dohpool.ServeConfig flags.
type Serve struct {
	UDPWorkers    *int
	UDPBatch      *int
	UDPSockets    *int
	MaxTCPConns   *int
	DoHAddr       *string
	DoTAddr       *string
	TLSCert       *string
	TLSKey        *string
	TLSSelfSigned *bool
	AdminAddr     *string
}

// RegisterServe declares the serving-plane flags: -udp-workers,
// -udp-batch, -udp-sockets, -max-tcp-conns, -doh-addr, -dot-addr,
// -tls-cert, -tls-key, -tls-self-signed and -admin.
func RegisterServe(fs *flag.FlagSet, opts ServeOptions) *Serve {
	return &Serve{
		UDPWorkers:    fs.Int("udp-workers", 0, "UDP worker pool size (0 = sized from GOMAXPROCS)"),
		UDPBatch:      fs.Int("udp-batch", 0, "UDP datagrams moved per syscall via recvmmsg/sendmmsg on Linux (0 = default 16, 1 = portable path)"),
		UDPSockets:    fs.Int("udp-sockets", 0, "SO_REUSEPORT UDP sockets sharing the serving port on Linux (0 = sized from NumCPU, 1 = single socket)"),
		MaxTCPConns:   fs.Int("max-tcp-conns", 0, "max concurrently served TCP connections (0 = default)"),
		DoHAddr:       fs.String("doh-addr", "", "additionally serve DNS over HTTPS (RFC 8484) on this address (\"\" disables)"),
		DoTAddr:       fs.String("dot-addr", "", "additionally serve DNS over TLS (RFC 7858) on this address (\"\" disables)"),
		TLSCert:       fs.String("tls-cert", "", "PEM certificate chain for the encrypted listeners"),
		TLSKey:        fs.String("tls-key", "", "PEM private key for the encrypted listeners"),
		TLSSelfSigned: fs.Bool("tls-self-signed", false, "DEV MODE: generate an ephemeral self-signed serving identity instead of -tls-cert/-tls-key"),
		AdminAddr:     fs.String("admin", opts.AdminDefault, "observability HTTP listen address for /metrics, /healthz, /poolz (\"\" disables)"),
	}
}

// Apply writes the parsed values into cfg.Serve.
func (s *Serve) Apply(cfg *dohpool.Config) {
	cfg.Serve.UDPWorkers = *s.UDPWorkers
	cfg.Serve.UDPBatch = *s.UDPBatch
	cfg.Serve.UDPSockets = *s.UDPSockets
	cfg.Serve.MaxTCPConns = *s.MaxTCPConns
	cfg.Serve.DoHAddr = *s.DoHAddr
	cfg.Serve.DoTAddr = *s.DoTAddr
	cfg.Serve.TLSCert = *s.TLSCert
	cfg.Serve.TLSKey = *s.TLSKey
	cfg.Serve.TLSSelfSigned = *s.TLSSelfSigned
	cfg.Serve.AdminAddr = *s.AdminAddr
}

// Set bundles every group for binaries that expose the full library
// surface (dohpoold, loadgen -selfhost).
type Set struct {
	Consensus *Consensus
	Cache     *Cache
	Refresh   *Refresh
	Health    *Health
	Trust     *Trust
	Chaos     *Chaos
	Serve     *Serve
}

// RegisterAll declares every group's flags on fs.
func RegisterAll(fs *flag.FlagSet, opts ServeOptions) *Set {
	return &Set{
		Consensus: RegisterConsensus(fs),
		Cache:     RegisterCache(fs),
		Refresh:   RegisterRefresh(fs),
		Health:    RegisterHealth(fs),
		Trust:     RegisterTrust(fs),
		Chaos:     RegisterChaos(fs),
		Serve:     RegisterServe(fs, opts),
	}
}

// Apply writes every group's parsed values into cfg.
func (s *Set) Apply(cfg *dohpool.Config) error {
	s.Consensus.Apply(cfg)
	s.Cache.Apply(cfg)
	s.Refresh.Apply(cfg)
	s.Health.Apply(cfg)
	s.Trust.Apply(cfg)
	if err := s.Chaos.Apply(cfg); err != nil {
		return err
	}
	s.Serve.Apply(cfg)
	return nil
}
