// Package transport defines the hop abstraction every DNS exchange in the
// system goes through: client → DoH resolver and resolver → authoritative
// server alike. Concrete implementations exchange messages over UDP and
// TCP; the attack package wraps any Exchanger to model compromised paths
// (on-path MitM) and off-path injection, exactly the adversary classes of
// the paper's Section III.
package transport

import (
	"context"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"dohpool/internal/dnswire"
)

// Exchange errors.
var (
	// ErrIDMismatch reports a response whose transaction ID does not match
	// the query — dropped exactly as a real resolver drops blind-spoofing
	// attempts with wrong IDs.
	ErrIDMismatch = errors.New("response transaction id mismatch")
	// ErrQuestionMismatch reports a response whose question section does
	// not echo the query.
	ErrQuestionMismatch = errors.New("response question mismatch")
	// ErrResponseTooLarge reports a message exceeding the TCP length
	// prefix.
	ErrResponseTooLarge = errors.New("response exceeds 65535 octets")
)

// DefaultTimeout bounds one exchange when the context has no deadline.
const DefaultTimeout = 3 * time.Second

// Exchanger performs one DNS query/response exchange with a server
// identified by a host:port address.
type Exchanger interface {
	Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error)
}

// Func adapts a function to the Exchanger interface.
type Func func(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error)

// Exchange implements Exchanger.
func (f Func) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	return f(ctx, query, server)
}

// Compile-time interface checks.
var (
	_ Exchanger = Func(nil)
	_ Exchanger = (*UDP)(nil)
	_ Exchanger = (*TCP)(nil)
	_ Exchanger = (*DoT)(nil)
	_ Exchanger = (*Auto)(nil)
)

// Validate checks that a response plausibly answers the query: matching
// transaction ID, QR bit set, and an echoed question. These are exactly
// the (weak, off-path-forgeable over plain UDP) checks classic DNS offers.
func Validate(query, resp *dnswire.Message) error {
	if resp.Header.ID != query.Header.ID {
		return fmt.Errorf("got %d want %d: %w", resp.Header.ID, query.Header.ID, ErrIDMismatch)
	}
	if !resp.Header.Response {
		return fmt.Errorf("qr bit clear: %w", ErrQuestionMismatch)
	}
	if len(query.Questions) > 0 {
		if len(resp.Questions) == 0 {
			return fmt.Errorf("question section empty: %w", ErrQuestionMismatch)
		}
		q, r := query.Questions[0], resp.Questions[0]
		if q.Key() != r.Key() {
			return fmt.Errorf("%s != %s: %w", r.Key(), q.Key(), ErrQuestionMismatch)
		}
	}
	return nil
}

// ValidateGET is Validate for RFC 8484 GET exchanges. §4.1 has the
// client send transaction ID 0 on the wire — identical questions then
// map to identical URLs, so HTTP caches can actually hit — which means
// the server's echo carries ID 0 no matter what ID the in-memory query
// holds. Accept the ID-0 echo alongside an exact match; every other
// check is Validate's.
func ValidateGET(query, resp *dnswire.Message) error {
	if resp.Header.ID == 0 && query.Header.ID != 0 {
		zeroed := query.Copy()
		zeroed.Header.ID = 0
		return Validate(zeroed, resp)
	}
	return Validate(query, resp)
}

// UDP exchanges DNS messages over UDP with ID/question validation and
// truncation reporting via the message's TC bit.
type UDP struct {
	// Dialer optionally overrides the net.Dialer used (tests inject
	// loopback-bound dialers here).
	Dialer net.Dialer
	// PayloadSize caps the receive buffer; defaults to DefaultEDNSSize.
	PayloadSize int
}

// Exchange implements Exchanger.
func (u *UDP) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	ctx, cancel := ensureDeadline(ctx)
	defer cancel()

	wire, err := query.Encode()
	if err != nil {
		return nil, fmt.Errorf("encode query: %w", err)
	}
	conn, err := u.Dialer.DialContext(ctx, "udp", server)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", server, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("set deadline: %w", err)
		}
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("send to %s: %w", server, err)
	}

	size := u.PayloadSize
	if size <= 0 {
		size = dnswire.DefaultEDNSSize
	}
	buf := make([]byte, size)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("receive from %s: %w", server, err)
		}
		resp, err := dnswire.Decode(buf[:n])
		if err != nil {
			// Undecodable datagrams are dropped, not fatal: blind
			// injection with garbage must not kill the wait for the
			// genuine answer.
			continue
		}
		if err := Validate(query, resp); err != nil {
			// Mismatched ID/question: spoofing attempt or stale packet.
			continue
		}
		return resp, nil
	}
}

// TCP exchanges DNS messages over TCP with the 2-octet length prefix of
// RFC 1035 §4.2.2.
type TCP struct {
	Dialer net.Dialer
}

// Exchange implements Exchanger.
func (t *TCP) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	ctx, cancel := ensureDeadline(ctx)
	defer cancel()

	conn, err := t.Dialer.DialContext(ctx, "tcp", server)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", server, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("set deadline: %w", err)
		}
	}
	if err := WriteTCPMessage(conn, query); err != nil {
		return nil, fmt.Errorf("send to %s: %w", server, err)
	}
	resp, err := ReadTCPMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("receive from %s: %w", server, err)
	}
	if err := Validate(query, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// DoT exchanges DNS messages over TLS per RFC 7858: the RFC 1035
// §4.2.2 length-prefixed framing of TCP inside an authenticated TLS
// session, so a stub's exchange is protected from off-path injection
// the same way the DoH hop is.
type DoT struct {
	Dialer net.Dialer
	// TLSConfig authenticates the server (testbed CA trust); nil uses
	// the system trust store against the dialed host name.
	TLSConfig *tls.Config
}

// Exchange implements Exchanger.
func (d *DoT) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	ctx, cancel := ensureDeadline(ctx)
	defer cancel()

	dialer := &tls.Dialer{NetDialer: &d.Dialer, Config: d.TLSConfig}
	conn, err := dialer.DialContext(ctx, "tcp", server)
	if err != nil {
		return nil, fmt.Errorf("dial dot %s: %w", server, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("set deadline: %w", err)
		}
	}
	if err := WriteTCPMessage(conn, query); err != nil {
		return nil, fmt.Errorf("send to %s: %w", server, err)
	}
	resp, err := ReadTCPMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("receive from %s: %w", server, err)
	}
	if err := Validate(query, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Auto exchanges over UDP and retries over TCP when the response arrives
// truncated (TC bit), the standard resolver behaviour.
type Auto struct {
	UDP UDP
	TCP TCP
}

// Exchange implements Exchanger.
func (a *Auto) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	resp, err := a.UDP.Exchange(ctx, query, server)
	if err != nil {
		return nil, err
	}
	if !resp.Header.Truncated {
		return resp, nil
	}
	return a.TCP.Exchange(ctx, query, server)
}

// WriteTCPMessage writes one length-prefixed DNS message.
func WriteTCPMessage(w io.Writer, msg *dnswire.Message) error {
	wire, err := msg.Encode()
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	if len(wire) > dnswire.MaxMessageSize {
		return ErrResponseTooLarge
	}
	var prefix [2]byte
	binary.BigEndian.PutUint16(prefix[:], uint16(len(wire)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err = w.Write(wire)
	return err
}

// ReadTCPMessage reads one length-prefixed DNS message.
func ReadTCPMessage(r io.Reader) (*dnswire.Message, error) {
	var prefix [2]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint16(prefix[:])
	wire := make([]byte, length)
	if _, err := io.ReadFull(r, wire); err != nil {
		return nil, err
	}
	return dnswire.Decode(wire)
}

// ensureDeadline applies DefaultTimeout when the context carries none.
func ensureDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, DefaultTimeout)
}
