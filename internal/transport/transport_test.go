package transport

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	"dohpool/internal/dnswire"
)

func mustQuery(t *testing.T, name string) *dnswire.Message {
	t.Helper()
	q, err := dnswire.NewQuery(name, dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestValidate(t *testing.T) {
	query := mustQuery(t, "x.test.")
	good := dnswire.NewResponse(query)
	if err := Validate(query, good); err != nil {
		t.Fatalf("valid response rejected: %v", err)
	}

	wrongID := dnswire.NewResponse(query)
	wrongID.Header.ID++
	if err := Validate(query, wrongID); !errors.Is(err, ErrIDMismatch) {
		t.Errorf("wrong id: %v", err)
	}

	notResponse := dnswire.NewResponse(query)
	notResponse.Header.Response = false
	if err := Validate(query, notResponse); !errors.Is(err, ErrQuestionMismatch) {
		t.Errorf("qr clear: %v", err)
	}

	wrongQ := dnswire.NewResponse(query)
	wrongQ.Questions[0].Name = "other.test."
	if err := Validate(query, wrongQ); !errors.Is(err, ErrQuestionMismatch) {
		t.Errorf("wrong question: %v", err)
	}

	noQ := dnswire.NewResponse(query)
	noQ.Questions = nil
	if err := Validate(query, noQ); !errors.Is(err, ErrQuestionMismatch) {
		t.Errorf("empty question: %v", err)
	}
}

func TestValidateGET(t *testing.T) {
	query := mustQuery(t, "x.test.")
	query.Header.ID = 0x1234

	// The RFC 8484 §4.1 echo: the server saw (and echoes) ID 0 because
	// the GET wire form zeroed it for HTTP cache friendliness.
	zeroEcho := dnswire.NewResponse(query)
	zeroEcho.Header.ID = 0
	if err := ValidateGET(query, zeroEcho); err != nil {
		t.Fatalf("ID-0 echo rejected: %v", err)
	}
	if err := Validate(query, zeroEcho); !errors.Is(err, ErrIDMismatch) {
		t.Fatalf("plain Validate accepted the ID-0 echo: %v", err)
	}

	// An exact match still validates (a server handed a non-zero ID).
	exact := dnswire.NewResponse(query)
	if err := ValidateGET(query, exact); err != nil {
		t.Fatalf("exact-ID response rejected: %v", err)
	}

	// Everything else stays rejected: a third ID, and an ID-0 echo whose
	// question does not match the query.
	wrongID := dnswire.NewResponse(query)
	wrongID.Header.ID = 0x5678
	if err := ValidateGET(query, wrongID); !errors.Is(err, ErrIDMismatch) {
		t.Errorf("mismatched id: %v", err)
	}
	wrongQ := dnswire.NewResponse(query)
	wrongQ.Header.ID = 0
	wrongQ.Questions[0].Name = "other.test."
	if err := ValidateGET(query, wrongQ); !errors.Is(err, ErrQuestionMismatch) {
		t.Errorf("id-0 echo with wrong question: %v", err)
	}

	// A genuine ID-0 query behaves exactly like Validate.
	zeroQuery := mustQuery(t, "x.test.")
	zeroQuery.Header.ID = 0
	if err := ValidateGET(zeroQuery, dnswire.NewResponse(zeroQuery)); err != nil {
		t.Errorf("id-0 query round trip: %v", err)
	}
}

func TestTCPMessageFraming(t *testing.T) {
	msg := mustQuery(t, "frame.test.")
	var buf bytes.Buffer
	if err := WriteTCPMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCPMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "frame.test." {
		t.Fatalf("question = %v", got.Questions[0])
	}
	// Two messages back to back.
	if err := WriteTCPMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	if err := WriteTCPMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := ReadTCPMessage(&buf); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
	if _, err := ReadTCPMessage(&buf); err == nil {
		t.Fatal("read from empty stream succeeded")
	}
}

func TestReadTCPMessageTruncatedPrefix(t *testing.T) {
	if _, err := ReadTCPMessage(bytes.NewReader([]byte{0x00})); err == nil {
		t.Fatal("half a length prefix accepted")
	}
	if _, err := ReadTCPMessage(bytes.NewReader([]byte{0x00, 0x10, 0x01})); err == nil {
		t.Fatal("short body accepted")
	}
}

// spoofServer is a UDP server that first sends garbage and wrong-ID
// spoofs, then the genuine answer — the UDP client must skip the junk.
func spoofServer(t *testing.T, answers int) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 4096)
		for {
			n, client, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			query, err := dnswire.Decode(buf[:n])
			if err != nil {
				continue
			}
			// 1: pure garbage.
			_, _ = conn.WriteToUDP([]byte{0xde, 0xad}, client)
			// 2: well-formed but wrong transaction ID (blind spoof).
			spoof := dnswire.NewResponse(query)
			spoof.Header.ID = query.Header.ID + 1
			spoof.Answers = append(spoof.Answers, dnswire.AddressRecord(
				query.Questions[0].Name, netip.MustParseAddr("198.18.0.1"), 60))
			if wire, err := spoof.Encode(); err == nil {
				_, _ = conn.WriteToUDP(wire, client)
			}
			// 3: wrong question.
			spoof2 := dnswire.NewResponse(query)
			spoof2.Questions[0].Name = "evil.test."
			if wire, err := spoof2.Encode(); err == nil {
				_, _ = conn.WriteToUDP(wire, client)
			}
			// 4: the genuine response.
			genuine := dnswire.NewResponse(query)
			for i := 0; i < answers; i++ {
				genuine.Answers = append(genuine.Answers, dnswire.AddressRecord(
					query.Questions[0].Name, netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)}), 60))
			}
			if wire, err := genuine.Encode(); err == nil {
				_, _ = conn.WriteToUDP(wire, client)
			}
		}
	}()
	return conn.LocalAddr().String()
}

func TestUDPSkipsSpoofedDatagrams(t *testing.T) {
	addr := spoofServer(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := (&UDP{}).Exchange(ctx, mustQuery(t, "x.test."), addr)
	if err != nil {
		t.Fatal(err)
	}
	addrs := resp.AnswerAddrs()
	if len(addrs) != 2 {
		t.Fatalf("answers = %v", addrs)
	}
	for _, a := range addrs {
		if a == netip.MustParseAddr("198.18.0.1") {
			t.Fatal("spoofed answer accepted despite ID mismatch")
		}
	}
}

func TestUDPTimeoutOnSilence(t *testing.T) {
	// A UDP socket that never answers.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = (&UDP{}).Exchange(ctx, mustQuery(t, "x.test."), conn.LocalAddr().String())
	if err == nil {
		t.Fatal("exchange with silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestDefaultTimeoutApplied(t *testing.T) {
	// Without a deadline on the context, the exchange must still bound
	// itself (we only verify it returns, using a quick failure path).
	_, err := (&TCP{}).Exchange(context.Background(), mustQuery(t, "x.test."), "127.0.0.1:1")
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestFuncAdapter(t *testing.T) {
	called := false
	f := Func(func(_ context.Context, q *dnswire.Message, _ string) (*dnswire.Message, error) {
		called = true
		return dnswire.NewResponse(q), nil
	})
	if _, err := f.Exchange(context.Background(), mustQuery(t, "x.test."), "s"); err != nil || !called {
		t.Fatalf("adapter: err=%v called=%t", err, called)
	}
}

func TestWriteTCPMessageEncodeError(t *testing.T) {
	bad := &dnswire.Message{
		Header:  dnswire.Header{ID: 1},
		Answers: []dnswire.Record{{Name: "x.test.", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
	}
	var buf bytes.Buffer
	if err := WriteTCPMessage(&buf, bad); err == nil {
		t.Fatal("nil rdata encoded")
	}
}
