// Package authserver implements an authoritative DNS nameserver serving a
// single zone over UDP and TCP on the loopback testbed. Instances of this
// server play the role of the NTP-pool nameservers (c.ntpns.org,
// d.ntpns.org, e.ntpns.org) in the paper's Figure 1: they receive the
// non-recursive queries of step 3 and return the rotating pool answers of
// step 4.
package authserver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dohpool/internal/dnswire"
	"dohpool/internal/transport"
	"dohpool/internal/zone"
)

// ErrClosed is returned by methods on a server that has been shut down.
var ErrClosed = errors.New("authoritative server closed")

// Stats holds cumulative server counters.
type Stats struct {
	UDPQueries uint64
	TCPQueries uint64
	NXDomain   uint64
	FormErr    uint64
	Refused    uint64
}

// Server is an authoritative nameserver bound to one UDP and one TCP
// socket. Create with Listen, stop with Close.
type Server struct {
	zone *zone.Zone

	udpConn *net.UDPConn
	tcpLn   net.Listener

	closed atomic.Bool
	wg     sync.WaitGroup

	udpQueries atomic.Uint64
	tcpQueries atomic.Uint64
	nxdomain   atomic.Uint64
	formerr    atomic.Uint64
	refused    atomic.Uint64
}

// Listen starts an authoritative server for z on addr ("127.0.0.1:0" for
// an ephemeral testbed port). The same port number is used for UDP and
// TCP.
func Listen(addr string, z *zone.Zone) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("resolve %s: %w", addr, err)
	}
	udpConn, tcpLn, err := listenSamePort(udpAddr)
	if err != nil {
		return nil, err
	}
	s := &Server{zone: z, udpConn: udpConn, tcpLn: tcpLn}
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return s, nil
}

// listenSamePort binds UDP and TCP to one port number. With an ephemeral
// request (port 0) the kernel picks the UDP port without regard for TCP,
// so the TCP bind can collide with an unrelated listener — retry with a
// fresh UDP port instead of failing the whole server (a real CI flake
// under parallel test runs).
func listenSamePort(udpAddr *net.UDPAddr) (*net.UDPConn, net.Listener, error) {
	const attempts = 5
	var lastErr error
	for i := 0; i < attempts; i++ {
		udpConn, err := net.ListenUDP("udp", udpAddr)
		if err != nil {
			return nil, nil, fmt.Errorf("listen udp %s: %w", udpAddr, err)
		}
		tcpLn, err := net.Listen("tcp", udpConn.LocalAddr().String())
		if err == nil {
			return udpConn, tcpLn, nil
		}
		lastErr = fmt.Errorf("listen tcp %s: %w", udpConn.LocalAddr(), err)
		udpConn.Close()
		if udpAddr.Port != 0 {
			break // a fixed port will not change on retry
		}
	}
	return nil, nil, lastErr
}

// Addr returns the host:port the server listens on.
func (s *Server) Addr() string { return s.udpConn.LocalAddr().String() }

// Zone returns the zone this server is authoritative for.
func (s *Server) Zone() *zone.Zone { return s.zone }

// Close shuts both listeners down and waits for the serving goroutines.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return ErrClosed
	}
	s.udpConn.Close()
	s.tcpLn.Close()
	s.wg.Wait()
	return nil
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		UDPQueries: s.udpQueries.Load(),
		TCPQueries: s.tcpQueries.Load(),
		NXDomain:   s.nxdomain.Load(),
		FormErr:    s.formerr.Load(),
		Refused:    s.refused.Load(),
	}
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, dnswire.MaxMessageSize)
	for {
		n, client, err := s.udpConn.ReadFromUDP(buf)
		if err != nil {
			if s.closed.Load() {
				return
			}
			continue
		}
		s.udpQueries.Add(1)
		resp := s.handle(buf[:n], dnswire.MaxUDPSize)
		if resp == nil {
			continue
		}
		if wire, err := resp.Encode(); err == nil {
			_, _ = s.udpConn.WriteToUDP(wire, client)
		}
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			if s.closed.Load() {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			for {
				query, err := transport.ReadTCPMessage(conn)
				if err != nil {
					return
				}
				s.tcpQueries.Add(1)
				resp := s.handleDecoded(query, 0)
				if resp == nil {
					return
				}
				if err := transport.WriteTCPMessage(conn, resp); err != nil {
					return
				}
			}
		}()
	}
}

// handle decodes one query and produces the response, or nil to drop.
// maxSize > 0 enables truncation for UDP.
func (s *Server) handle(wire []byte, maxSize int) *dnswire.Message {
	query, err := dnswire.Decode(wire)
	if err != nil {
		s.formerr.Add(1)
		return nil // undecodable: drop silently
	}
	if maxSize > 0 {
		if size, ok := query.EDNSSize(); ok && int(size) > maxSize {
			maxSize = int(size)
		}
	}
	return s.handleDecoded(query, maxSize)
}

// handleDecoded answers a decoded query. maxSize == 0 disables truncation.
func (s *Server) handleDecoded(query *dnswire.Message, maxSize int) *dnswire.Message {
	if query.Header.Response || query.Header.Opcode != dnswire.OpcodeQuery {
		s.formerr.Add(1)
		return dnswire.NewErrorResponse(query, dnswire.RCodeFormErr)
	}
	if len(query.Questions) != 1 {
		s.formerr.Add(1)
		return dnswire.NewErrorResponse(query, dnswire.RCodeFormErr)
	}
	q := query.Questions[0]

	resp := dnswire.NewResponse(query)
	resp.Header.Authoritative = true
	// Authoritative servers do not offer recursion.
	resp.Header.RecursionAvailable = false

	res, err := s.zone.Lookup(q.Name, q.Type)
	switch {
	case err == nil && len(res.Referral) > 0:
		// Delegation: not authoritative for the child; hand out the cut's
		// NS RRset and glue (RFC 1034 §4.3.2).
		resp.Header.Authoritative = false
		resp.Authority = res.Referral
		resp.Additional = append(resp.Additional, res.Glue...)
	case err == nil:
		resp.Answers = res.Records
	case errors.Is(err, zone.ErrNXDomain):
		s.nxdomain.Add(1)
		resp.Header.RCode = dnswire.RCodeNXDomain
		s.attachSOA(resp)
	case errors.Is(err, zone.ErrNoData):
		// NODATA: NOERROR with empty answer and the SOA in authority.
		s.attachSOA(resp)
	case errors.Is(err, zone.ErrOutOfZone):
		s.refused.Add(1)
		resp.Header.RCode = dnswire.RCodeRefused
	default:
		resp.Header.RCode = dnswire.RCodeServFail
	}

	if maxSize > 0 {
		if wire, err := resp.Encode(); err == nil && len(wire) > maxSize {
			resp.Answers = nil
			resp.Authority = nil
			resp.Additional = nil
			resp.Header.Truncated = true
		}
	}
	return resp
}

func (s *Server) attachSOA(resp *dnswire.Message) {
	if soa, ok := s.zone.SOA(); ok {
		resp.Authority = append(resp.Authority, soa)
	}
}
