package authserver

import (
	"context"
	"net/netip"
	"strconv"
	"testing"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/transport"
	"dohpool/internal/zone"
)

func testZone(t *testing.T, opts ...zone.Option) *zone.Zone {
	t.Helper()
	z := zone.New("ntppool.test.", opts...)
	if err := z.Add(dnswire.Record{
		Name: "ntppool.test.", Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.SOARecord{MName: "ns1.ntppool.test.", RName: "hostmaster.ntppool.test.",
			Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		ip := netip.MustParseAddr("192.0.2." + strconv.Itoa(i))
		if err := z.AddAddress("pool.ntppool.test.", ip, 150); err != nil {
			t.Fatal(err)
		}
	}
	return z
}

func startServer(t *testing.T, z *zone.Zone) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", z)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func exchange(t *testing.T, ex transport.Exchanger, server, name string, typ dnswire.Type) *dnswire.Message {
	t.Helper()
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := ex.Exchange(ctx, query, server)
	if err != nil {
		t.Fatalf("exchange %s %v: %v", name, typ, err)
	}
	return resp
}

func TestUDPQuery(t *testing.T) {
	s := startServer(t, testZone(t))
	resp := exchange(t, &transport.UDP{}, s.Addr(), "pool.ntppool.test.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if !resp.Header.Authoritative {
		t.Error("AA bit clear")
	}
	if resp.Header.RecursionAvailable {
		t.Error("RA bit set on authoritative answer")
	}
	if got := len(resp.AnswerAddrs()); got != 4 {
		t.Fatalf("%d answers, want 4", got)
	}
	if st := s.Stats(); st.UDPQueries != 1 {
		t.Errorf("UDPQueries = %d", st.UDPQueries)
	}
}

func TestTCPQuery(t *testing.T) {
	s := startServer(t, testZone(t))
	resp := exchange(t, &transport.TCP{}, s.Addr(), "pool.ntppool.test.", dnswire.TypeA)
	if got := len(resp.AnswerAddrs()); got != 4 {
		t.Fatalf("%d answers, want 4", got)
	}
	if st := s.Stats(); st.TCPQueries != 1 {
		t.Errorf("TCPQueries = %d", st.TCPQueries)
	}
}

func TestNXDomainCarriesSOA(t *testing.T) {
	s := startServer(t, testZone(t))
	resp := exchange(t, &transport.UDP{}, s.Addr(), "missing.ntppool.test.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %v", resp.Authority)
	}
}

func TestNoDataIsNoErrorEmpty(t *testing.T) {
	s := startServer(t, testZone(t))
	resp := exchange(t, &transport.UDP{}, s.Addr(), "pool.ntppool.test.", dnswire.TypeAAAA)
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if len(resp.Answers) != 0 {
		t.Errorf("answers = %v", resp.Answers)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %v", resp.Authority)
	}
}

func TestOutOfZoneRefused(t *testing.T) {
	s := startServer(t, testZone(t))
	resp := exchange(t, &transport.UDP{}, s.Addr(), "elsewhere.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestRotationAcrossQueries(t *testing.T) {
	s := startServer(t, testZone(t, zone.WithRotation(zone.RotateRoundRobin)))
	first := exchange(t, &transport.UDP{}, s.Addr(), "pool.ntppool.test.", dnswire.TypeA)
	second := exchange(t, &transport.UDP{}, s.Addr(), "pool.ntppool.test.", dnswire.TypeA)
	a, b := first.AnswerAddrs(), second.AnswerAddrs()
	if a[0] == b[0] {
		t.Errorf("no rotation: both start with %v", a[0])
	}
}

func TestTruncationAndTCPFallback(t *testing.T) {
	z := testZone(t)
	// 60 A records make the UDP response exceed 512 bytes without EDNS.
	for i := 10; i < 70; i++ {
		ip := netip.MustParseAddr("203.0.113." + strconv.Itoa(i%250))
		if err := z.AddAddress("big.ntppool.test.", ip, 60); err != nil {
			t.Fatal(err)
		}
	}
	s := startServer(t, z)

	// Plain UDP query without EDNS must come back truncated and empty.
	query, err := dnswire.NewQuery("big.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	query.Additional = nil // strip EDNS
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := (&transport.UDP{}).Exchange(ctx, query, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated {
		t.Fatal("TC bit clear on oversized answer")
	}
	if len(resp.Answers) != 0 {
		t.Fatalf("truncated response carries %d answers", len(resp.Answers))
	}

	// Auto transport must fall back to TCP and get everything.
	query2, err := dnswire.NewQuery("big.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	query2.Additional = nil
	resp2, err := (&transport.Auto{}).Exchange(ctx, query2, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp2.AnswerAddrs()); got != 60 {
		t.Fatalf("TCP fallback returned %d answers, want 60", got)
	}
}

func TestEDNSAvoidsTruncation(t *testing.T) {
	z := testZone(t)
	for i := 10; i < 40; i++ {
		ip := netip.MustParseAddr("203.0.113." + strconv.Itoa(i))
		if err := z.AddAddress("mid.ntppool.test.", ip, 60); err != nil {
			t.Fatal(err)
		}
	}
	s := startServer(t, z)
	// With the default EDNS size of 1232 the ~500-byte answer fits.
	resp := exchange(t, &transport.UDP{}, s.Addr(), "mid.ntppool.test.", dnswire.TypeA)
	if resp.Header.Truncated {
		t.Fatal("truncated despite EDNS")
	}
	if got := len(resp.AnswerAddrs()); got != 30 {
		t.Fatalf("%d answers, want 30", got)
	}
}

func TestMultipleQuestionsRejected(t *testing.T) {
	s := startServer(t, testZone(t))
	query, err := dnswire.NewQuery("pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	query.Questions = append(query.Questions, dnswire.Question{
		Name: "other.ntppool.test.", Type: dnswire.TypeA, Class: dnswire.ClassINET,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := (&transport.UDP{}).Exchange(ctx, query, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeFormErr {
		t.Fatalf("rcode = %v, want FORMERR", resp.Header.RCode)
	}
}

func TestCloseIsIdempotentAndStopsServing(t *testing.T) {
	s := startServer(t, testZone(t))
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != ErrClosed {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	query, err := dnswire.NewQuery("pool.ntppool.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := (&transport.UDP{}).Exchange(ctx, query, addr); err == nil {
		t.Fatal("exchange succeeded against closed server")
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	s := startServer(t, testZone(t))
	// Two sequential queries over separate exchanges both succeed; the
	// server handles multiple connections.
	for i := 0; i < 3; i++ {
		resp := exchange(t, &transport.TCP{}, s.Addr(), "pool.ntppool.test.", dnswire.TypeA)
		if len(resp.AnswerAddrs()) != 4 {
			t.Fatalf("query %d: wrong answers", i)
		}
	}
}
