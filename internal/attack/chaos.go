package attack

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"dohpool/internal/dnswire"
)

// Querier mirrors the consensus engine's DoH lookup seam (core.Querier)
// structurally, so chaos wrappers can interpose there without this
// package importing core (core imports attack for the bogus-prefix trust
// signal; the dependency must stay one-way).
type Querier interface {
	Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error)
}

// ParsePayload maps the chaos flag spelling to a Payload ("replace",
// "inflate", "empty").
func ParsePayload(s string) (Payload, error) {
	switch s {
	case "replace":
		return PayloadReplace, nil
	case "inflate":
		return PayloadInflate, nil
	case "empty":
		return PayloadEmpty, nil
	default:
		return 0, fmt.Errorf("unknown payload %q (want replace, inflate or empty)", s)
	}
}

// ChaosQuerier interposes the Forger at the engine's transport seam: the
// very same long-lived engine — cache, coalescing, hedging, refresh-ahead
// and trust scoring — runs attacked, with a chosen subset of its resolver
// endpoints behaving as fully compromised (each targeted exchange forged
// with probability prob). It sits below the engine's health and hedging
// wrappers, so attacked answers flow through every production layer
// exactly like genuine ones.
type ChaosQuerier struct {
	inner   Querier
	forger  *Forger
	targets map[string]bool // resolver URLs under attack; nil = all
	prob    float64

	mu  sync.Mutex
	rng *rand.Rand

	exchanges atomic.Uint64
	forged    atomic.Uint64
}

// NewChaosQuerier wraps inner so exchanges against the target URLs are
// answered by forger with the given per-exchange probability (values
// outside (0, 1] mean "always"). An empty target list attacks every
// resolver — note that compromising all endpoints exceeds the paper's
// minority assumption, so truncation alone no longer bounds the damage.
// seed drives the probability rolls (deterministic chaos runs).
func NewChaosQuerier(inner Querier, forger *Forger, targetURLs []string, prob float64, seed int64) *ChaosQuerier {
	var targets map[string]bool
	if len(targetURLs) > 0 {
		targets = make(map[string]bool, len(targetURLs))
		for _, u := range targetURLs {
			targets[u] = true
		}
	}
	if prob <= 0 || prob > 1 {
		prob = 1
	}
	return &ChaosQuerier{
		inner:   inner,
		forger:  forger,
		targets: targets,
		prob:    prob,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Exchanges returns how many exchanges against targeted resolvers were
// seen (forged or passed through after a lost roll).
func (c *ChaosQuerier) Exchanges() uint64 { return c.exchanges.Load() }

// Forged returns how many responses were forged.
func (c *ChaosQuerier) Forged() uint64 { return c.forged.Load() }

// roll draws one interposition decision under the lock (the engine fans
// out concurrently; see OffPath.Succeeds).
func (c *ChaosQuerier) roll() bool {
	if c.prob >= 1 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64() < c.prob
}

// Query implements the engine's Querier seam.
func (c *ChaosQuerier) Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	if (c.targets != nil && !c.targets[url]) || !c.forger.Matches(query) {
		return c.inner.Query(ctx, url, name, typ)
	}
	c.exchanges.Add(1)
	if !c.roll() {
		return c.inner.Query(ctx, url, name, typ)
	}
	// Like CompromisedResolver: ask the genuine backend first so
	// PayloadReplace can mimic the genuine answer length. The other
	// payloads ignore the length entirely, so they skip the upstream
	// exchange instead of doubling the targeted resolver's load.
	genuineLen := 0
	if c.forger.Payload == PayloadReplace {
		if genuine, err := c.inner.Query(ctx, url, name, typ); err == nil {
			genuineLen = len(genuine.AnswerAddrs())
		}
	}
	c.forged.Add(1)
	return c.forger.Forge(query, genuineLen), nil
}
