package attack

import (
	"context"
	"math"
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/transport"
)

// genuineResponder answers A queries with n clean addresses.
func genuineResponder(n int) doh.QueryResponder {
	return doh.ResponderFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(q)
		for i := 0; i < n; i++ {
			resp.Answers = append(resp.Answers, dnswire.AddressRecord(
				q.Questions[0].Name, netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)}), 60))
		}
		return resp, nil
	})
}

// genuineTransport answers A queries with n clean addresses regardless of
// server address.
func genuineTransport(n int) transport.Exchanger {
	return transport.Func(func(_ context.Context, q *dnswire.Message, _ string) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(q)
		for i := 0; i < n; i++ {
			resp.Answers = append(resp.Answers, dnswire.AddressRecord(
				q.Questions[0].Name, netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)}), 60))
		}
		return resp, nil
	})
}

func mustQuery(t *testing.T, name string) *dnswire.Message {
	t.Helper()
	q, err := dnswire.NewQuery(name, dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestAttackerAddrSpace(t *testing.T) {
	seen := make(map[netip.Addr]bool)
	for i := 0; i < 1000; i++ {
		a := AttackerAddr(i)
		if !IsAttackerAddr(a) {
			t.Fatalf("AttackerAddr(%d) = %v outside AttackerNet", i, a)
		}
		if seen[a] {
			t.Fatalf("AttackerAddr(%d) = %v repeats", i, a)
		}
		seen[a] = true
	}
	if IsAttackerAddr(netip.MustParseAddr("192.0.2.1")) {
		t.Error("clean address classified as attacker")
	}
	if got := len(AttackerAddrs(5)); got != 5 {
		t.Errorf("AttackerAddrs(5) len = %d", got)
	}
}

func TestForgerMatches(t *testing.T) {
	f := NewForger("pool.ntp.test.", PayloadReplace)
	if !f.Matches(mustQuery(t, "pool.ntp.test.")) {
		t.Error("exact name not matched")
	}
	if !f.Matches(mustQuery(t, "sub.pool.ntp.test.")) {
		t.Error("subdomain not matched")
	}
	if f.Matches(mustQuery(t, "other.test.")) {
		t.Error("unrelated name matched")
	}
	txt, err := dnswire.NewQuery("pool.ntp.test.", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if f.Matches(txt) {
		t.Error("non-address query matched")
	}
}

func TestForgePayloads(t *testing.T) {
	q := mustQuery(t, "pool.ntp.test.")
	tests := []struct {
		payload    Payload
		genuineLen int
		wantCount  int
	}{
		{PayloadReplace, 4, 4},
		{PayloadReplace, 0, 4}, // default
		{PayloadReplace, 7, 7},
		{PayloadInflate, 4, InflateCount},
		{PayloadEmpty, 4, 0},
	}
	for _, tt := range tests {
		t.Run(tt.payload.String(), func(t *testing.T) {
			f := NewForger("pool.ntp.test.", tt.payload)
			resp := f.Forge(q, tt.genuineLen)
			addrs := resp.AnswerAddrs()
			if len(addrs) != tt.wantCount {
				t.Fatalf("forged %d addrs, want %d", len(addrs), tt.wantCount)
			}
			for _, a := range addrs {
				if !IsAttackerAddr(a) {
					t.Fatalf("forged addr %v not attacker-controlled", a)
				}
			}
			if resp.Header.ID != q.Header.ID {
				t.Error("forged response has wrong transaction ID")
			}
		})
	}
}

func TestCompromisedResolver(t *testing.T) {
	forger := NewForger("pool.ntp.test.", PayloadReplace)
	comp := Compromise(genuineResponder(4), forger)
	ctx := context.Background()

	resp, err := comp.Respond(ctx, mustQuery(t, "pool.ntp.test."))
	if err != nil {
		t.Fatal(err)
	}
	addrs := resp.AnswerAddrs()
	if len(addrs) != 4 {
		t.Fatalf("forged answer has %d addrs, want 4 (mimic genuine)", len(addrs))
	}
	for _, a := range addrs {
		if !IsAttackerAddr(a) {
			t.Fatalf("addr %v not attacker-controlled", a)
		}
	}
	// Unrelated queries pass through clean.
	resp2, err := comp.Respond(ctx, mustQuery(t, "clean.test."))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range resp2.AnswerAddrs() {
		if IsAttackerAddr(a) {
			t.Fatal("pass-through query was forged")
		}
	}
	if comp.Forged() != 1 {
		t.Errorf("Forged = %d", comp.Forged())
	}
}

func TestOnPathInterceptsOnlyTarget(t *testing.T) {
	forger := NewForger("pool.ntp.test.", PayloadReplace)
	mitm := NewOnPath(genuineTransport(4), forger)
	ctx := context.Background()

	resp, err := mitm.Exchange(ctx, mustQuery(t, "pool.ntp.test."), "auth:53")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range resp.AnswerAddrs() {
		if !IsAttackerAddr(a) {
			t.Fatal("MitM failed to rewrite")
		}
	}
	resp2, err := mitm.Exchange(ctx, mustQuery(t, "other.test."), "auth:53")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range resp2.AnswerAddrs() {
		if IsAttackerAddr(a) {
			t.Fatal("MitM rewrote unrelated traffic")
		}
	}
	if mitm.Intercepted() != 1 {
		t.Errorf("Intercepted = %d", mitm.Intercepted())
	}
}

func TestOffPathSuccessRate(t *testing.T) {
	const trials = 4000
	const p = 0.3
	forger := NewForger("pool.ntp.test.", PayloadReplace)
	off := NewOffPath(genuineTransport(4), forger, p, 42)
	ctx := context.Background()

	wins := 0
	for i := 0; i < trials; i++ {
		resp, err := off.Exchange(ctx, mustQuery(t, "pool.ntp.test."), "auth:53")
		if err != nil {
			t.Fatal(err)
		}
		addrs := resp.AnswerAddrs()
		if len(addrs) == 0 {
			t.Fatal("no answer")
		}
		if IsAttackerAddr(addrs[0]) {
			wins++
		}
	}
	got := float64(wins) / trials
	if math.Abs(got-p) > 0.03 {
		t.Fatalf("empirical success rate %.3f, want ~%.2f", got, p)
	}
	if off.Attempts() != trials {
		t.Errorf("Attempts = %d", off.Attempts())
	}
	if off.Successes() != uint64(wins) {
		t.Errorf("Successes = %d, counted %d", off.Successes(), wins)
	}
}

func TestOffPathZeroAndOneProbabilities(t *testing.T) {
	ctx := context.Background()
	forger := NewForger("pool.ntp.test.", PayloadReplace)

	never := NewOffPath(genuineTransport(4), forger, 0, 1)
	resp, err := never.Exchange(ctx, mustQuery(t, "pool.ntp.test."), "auth:53")
	if err != nil {
		t.Fatal(err)
	}
	if IsAttackerAddr(resp.AnswerAddrs()[0]) {
		t.Fatal("p=0 attacker won")
	}

	always := NewOffPath(genuineTransport(4), forger, 1, 1)
	resp, err = always.Exchange(ctx, mustQuery(t, "pool.ntp.test."), "auth:53")
	if err != nil {
		t.Fatal(err)
	}
	if !IsAttackerAddr(resp.AnswerAddrs()[0]) {
		t.Fatal("p=1 attacker lost")
	}
}

func TestPlans(t *testing.T) {
	p := FixedPlan(5, 1, 3)
	if p.N() != 5 || p.CountCompromised() != 2 {
		t.Fatalf("FixedPlan: N=%d count=%d", p.N(), p.CountCompromised())
	}
	if !p.Compromised(1) || !p.Compromised(3) || p.Compromised(0) {
		t.Fatal("FixedPlan membership wrong")
	}
	if p.Compromised(-1) || p.Compromised(99) {
		t.Fatal("out-of-range index reported compromised")
	}
	// Ignore out-of-range indices on construction.
	q := FixedPlan(3, 7, -2, 0)
	if q.CountCompromised() != 1 {
		t.Fatalf("FixedPlan with junk indices: count=%d", q.CountCompromised())
	}

	rng := rand.New(rand.NewSource(7))
	total := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		total += BernoulliPlan(10, 0.25, rng).CountCompromised()
	}
	mean := float64(total) / trials
	if math.Abs(mean-2.5) > 0.15 {
		t.Fatalf("Bernoulli mean compromised = %.2f, want ~2.5", mean)
	}
}

func TestForgerAddressesAdvance(t *testing.T) {
	// Successive forgeries draw fresh attacker addresses so duplicates
	// across resolvers are the attacker's deliberate choice, not an
	// artefact.
	f := NewForger("pool.ntp.test.", PayloadReplace)
	q := mustQuery(t, "pool.ntp.test.")
	a := f.Forge(q, 2).AnswerAddrs()
	b := f.Forge(q, 2).AnswerAddrs()
	if a[0] == b[0] {
		t.Fatal("forger reuses addresses across forgeries")
	}
}

// TestAttackerAddrCoversFullPrefix pins the /15 arithmetic: the address
// space is 2^17 hosts, crossing the 2^16 boundary moves into 198.19.0.0/16
// (instead of silently wrapping back to 198.18.0.0), and indices remain
// distinct across the whole range.
func TestAttackerAddrCoversFullPrefix(t *testing.T) {
	if AttackerAddrSpace != 1<<17 {
		t.Fatalf("AttackerAddrSpace = %d, want %d", AttackerAddrSpace, 1<<17)
	}
	if got, want := AttackerAddr(1<<16), netip.MustParseAddr("198.19.0.0"); got != want {
		t.Fatalf("AttackerAddr(2^16) = %v, want %v", got, want)
	}
	if got, want := AttackerAddr(AttackerAddrSpace-1), netip.MustParseAddr("198.19.255.255"); got != want {
		t.Fatalf("AttackerAddr(2^17-1) = %v, want %v", got, want)
	}
	if got, want := AttackerAddr(AttackerAddrSpace), AttackerAddr(0); got != want {
		t.Fatalf("AttackerAddr wraps to %v, want %v", got, want)
	}
	// Boundary-straddling indices must stay inside the prefix and distinct.
	seen := make(map[netip.Addr]bool)
	for i := 1<<16 - 64; i < 1<<16+64; i++ {
		a := AttackerAddr(i)
		if !IsAttackerAddr(a) {
			t.Fatalf("AttackerAddr(%d) = %v outside AttackerNet", i, a)
		}
		if seen[a] {
			t.Fatalf("AttackerAddr(%d) = %v repeats across the 2^16 boundary", i, a)
		}
		seen[a] = true
	}
	if got := AttackerAddr(-1); !IsAttackerAddr(got) {
		t.Fatalf("AttackerAddr(-1) = %v outside AttackerNet", got)
	}
}

// TestAttackerAddrsPanicFree pins the allocation guards: non-positive n
// yields nil, n beyond the address space clamps to it (distinctness
// preserved) instead of wrapping or panicking.
func TestAttackerAddrsPanicFree(t *testing.T) {
	if got := AttackerAddrs(0); got != nil {
		t.Errorf("AttackerAddrs(0) = %v, want nil", got)
	}
	if got := AttackerAddrs(-7); got != nil {
		t.Errorf("AttackerAddrs(-7) = %v, want nil", got)
	}
	got := AttackerAddrs(AttackerAddrSpace + 1000)
	if len(got) != AttackerAddrSpace {
		t.Fatalf("AttackerAddrs(space+1000) len = %d, want %d", len(got), AttackerAddrSpace)
	}
	if got[len(got)-1] == got[0] {
		t.Error("clamped AttackerAddrs wrapped into duplicates")
	}
}

// TestOffPathConcurrentRolls exercises the seeded rng from many
// goroutines at once — the engine's fan-out shape — so -race verifies the
// Succeeds roll is guarded.
func TestOffPathConcurrentRolls(t *testing.T) {
	f := NewForger("pool.ntp.test.", PayloadReplace)
	o := NewOffPath(genuineTransport(4), f, 0.5, 42)
	q := mustQuery(t, "pool.ntp.test.")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := o.Exchange(context.Background(), q, "ignored"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := o.Attempts(); got != 400 {
		t.Fatalf("attempts = %d, want 400", got)
	}
	if s := o.Successes(); s == 0 || s == 400 {
		t.Fatalf("successes = %d, want a mix at prob 0.5", s)
	}
}

// TestOffPathSeededDeterminism pins that guarding the rng kept seeded
// determinism: the same seed draws the same outcome sequence.
func TestOffPathSeededDeterminism(t *testing.T) {
	f := NewForger("pool.ntp.test.", PayloadReplace)
	a := NewOffPath(genuineTransport(4), f, 0.3, 7)
	b := NewOffPath(genuineTransport(4), f, 0.3, 7)
	for i := 0; i < 200; i++ {
		if a.Succeeds() != b.Succeeds() {
			t.Fatalf("roll %d diverged for identical seeds", i)
		}
	}
}

// chaosInner is a Querier answering n clean addresses for every URL.
type chaosInner struct{ n int }

func (c chaosInner) Query(_ context.Context, _, name string, typ dnswire.Type) (*dnswire.Message, error) {
	q, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(q)
	for i := 0; i < c.n; i++ {
		resp.Answers = append(resp.Answers, dnswire.AddressRecord(
			q.Questions[0].Name, netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)}), 60))
	}
	return resp, nil
}

// TestChaosQuerierTargets pins the chaos seam: only targeted resolver
// URLs are forged, untargeted ones pass through clean, and the inflate
// payload carries InflateCount attacker addresses.
func TestChaosQuerierTargets(t *testing.T) {
	f := NewForger(".", PayloadInflate)
	c := NewChaosQuerier(chaosInner{4}, f, []string{"https://evil/dns-query"}, 1, 1)

	resp, err := c.Query(context.Background(), "https://clean/dns-query", "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range resp.AnswerAddrs() {
		if IsAttackerAddr(a) {
			t.Fatalf("untargeted resolver forged: %v", a)
		}
	}

	resp, err = c.Query(context.Background(), "https://evil/dns-query", "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	got := resp.AnswerAddrs()
	if len(got) != InflateCount {
		t.Fatalf("forged answer has %d addrs, want %d", len(got), InflateCount)
	}
	for _, a := range got {
		if !IsAttackerAddr(a) {
			t.Fatalf("forged answer contains clean address %v", a)
		}
	}
	if c.Forged() != 1 || c.Exchanges() != 1 {
		t.Errorf("forged=%d exchanges=%d, want 1/1", c.Forged(), c.Exchanges())
	}
}

// TestChaosQuerierProbability pins that sub-1 probabilities forge roughly
// the expected fraction, deterministically per seed.
func TestChaosQuerierProbability(t *testing.T) {
	f := NewForger(".", PayloadReplace)
	c := NewChaosQuerier(chaosInner{4}, f, nil, 0.3, 99)
	const rounds = 1000
	for i := 0; i < rounds; i++ {
		if _, err := c.Query(context.Background(), "u", "pool.ntp.test.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	rate := float64(c.Forged()) / rounds
	if math.Abs(rate-0.3) > 0.06 {
		t.Fatalf("forge rate = %.3f, want ~0.3", rate)
	}
}
