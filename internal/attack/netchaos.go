package attack

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/transport"
)

// The payload chaos layer (ChaosQuerier/Forger) attacks what resolvers
// *say*; NetChaos attacks whether and when they say it. It models the
// network between the pool generator and its resolvers: packet loss,
// added delay, hard partition windows, and resolver churn (a resolver
// restarting and refusing connections). It interposes at either seam —
// the engine's Querier (WrapQuerier) or the raw transport Exchanger
// (WrapExchanger) — so the same fault schedule can hit a live dohpoold
// or an in-process testbed.

// Errors returned by NetChaos fault injection. Dropped exchanges
// surface only after the caller's context expires (loss looks like a
// timeout, never like a fast failure); churn surfaces immediately (a
// restarting resolver refuses the connection).
var (
	ErrNetDropped    = errors.New("netchaos: packet dropped")
	ErrResolverChurn = errors.New("netchaos: connection refused (resolver restarting)")
)

// NetChaosOptions configures a NetChaos layer. The zero value injects
// no faults (Active reports false).
type NetChaosOptions struct {
	// DropProb is the probability in [0, 1] that an exchange is
	// dropped: the call blocks until the caller's context expires, the
	// way a lost UDP datagram or a blackholed TCP SYN would.
	DropProb float64

	// Delay is added to every non-dropped exchange before it is
	// forwarded; Jitter adds a uniform random extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration

	// PartitionEvery/PartitionFor cycle a hard partition: for the first
	// PartitionFor of every PartitionEvery window, every targeted
	// exchange is dropped regardless of DropProb. Both must be set (and
	// PartitionFor <= PartitionEvery) for partitioning to engage.
	PartitionEvery time.Duration
	PartitionFor   time.Duration

	// ChurnEvery/ChurnDowntime cycle resolver restarts: each
	// ChurnEvery window one resolver (rotating round-robin over the
	// targets seen so far) is down for the first ChurnDowntime of the
	// window and refuses exchanges immediately.
	ChurnEvery    time.Duration
	ChurnDowntime time.Duration

	// Targets restricts faults to these resolver URLs/server addresses;
	// empty means every exchange through the wrapper is eligible.
	Targets []string

	// Seed drives the drop and jitter rolls so runs are reproducible.
	Seed int64

	// Clock injects a time source for partition/churn scheduling in
	// tests. Nil uses time.Now.
	Clock func() time.Time
}

// Active reports whether the options inject any fault at all.
func (o NetChaosOptions) Active() bool {
	return o.DropProb > 0 ||
		o.Delay > 0 || o.Jitter > 0 ||
		(o.PartitionEvery > 0 && o.PartitionFor > 0) ||
		(o.ChurnEvery > 0 && o.ChurnDowntime > 0)
}

// NetChaos injects network-level faults into resolver exchanges. Wrap a
// seam with WrapQuerier or WrapExchanger; one NetChaos can back any
// number of wrappers and keeps shared fault state (churn rotation,
// counters) across them.
type NetChaos struct {
	opts    NetChaosOptions
	targets map[string]bool // nil = all
	start   time.Time
	now     func() time.Time
	sleep   func(ctx context.Context, d time.Duration) error

	mu   sync.Mutex
	rng  *rand.Rand
	seen []string // distinct targets observed, sorted; churn rotates over it

	exchanges atomic.Uint64
	dropped   atomic.Uint64
	delayed   atomic.Uint64
	refused   atomic.Uint64
}

// NewNetChaos builds a fault injector from opts. Returns nil when opts
// injects nothing, so callers can unconditionally build one and wrap
// only when it is non-nil.
func NewNetChaos(opts NetChaosOptions) *NetChaos {
	if !opts.Active() {
		return nil
	}
	var targets map[string]bool
	if len(opts.Targets) > 0 {
		targets = make(map[string]bool, len(opts.Targets))
		for _, t := range opts.Targets {
			targets[t] = true
		}
	}
	now := opts.Clock
	if now == nil {
		now = time.Now
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &NetChaos{
		opts:    opts,
		targets: targets,
		start:   now(),
		now:     now,
		sleep:   sleepCtx,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Exchanges returns how many targeted exchanges were seen.
func (n *NetChaos) Exchanges() uint64 { return n.exchanges.Load() }

// Dropped returns how many exchanges were dropped (loss + partition).
func (n *NetChaos) Dropped() uint64 { return n.dropped.Load() }

// Delayed returns how many exchanges had delay injected.
func (n *NetChaos) Delayed() uint64 { return n.delayed.Load() }

// Refused returns how many exchanges were refused by churn.
func (n *NetChaos) Refused() uint64 { return n.refused.Load() }

// fate decides what happens to one exchange against target. It returns
// the verdict as (drop, refuse, delay): drop blocks until ctx death,
// refuse fails fast, delay sleeps before forwarding.
func (n *NetChaos) fate(target string) (drop, refuse bool, delay time.Duration) {
	if n.targets != nil && !n.targets[target] {
		return false, false, 0
	}
	n.exchanges.Add(1)
	elapsed := n.now().Sub(n.start)

	// Hard partition window: overrides everything.
	if n.opts.PartitionEvery > 0 && n.opts.PartitionFor > 0 &&
		elapsed%n.opts.PartitionEvery < n.opts.PartitionFor {
		return true, false, 0
	}

	// Churn: the rotating victim refuses during its downtime window.
	if n.opts.ChurnEvery > 0 && n.opts.ChurnDowntime > 0 &&
		elapsed%n.opts.ChurnEvery < n.opts.ChurnDowntime &&
		n.churnVictim(elapsed) == target {
		return false, true, 0
	}

	n.mu.Lock()
	if n.opts.DropProb > 0 && n.rng.Float64() < n.opts.DropProb {
		n.mu.Unlock()
		return true, false, 0
	}
	delay = n.opts.Delay
	if n.opts.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.opts.Jitter)))
	}
	n.mu.Unlock()
	return false, false, delay
}

// churnVictim returns the target down during the current churn cycle,
// rotating round-robin over the distinct targets seen so far (sorted,
// so the rotation order is stable regardless of arrival order).
func (n *NetChaos) churnVictim(elapsed time.Duration) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.seen) == 0 {
		return ""
	}
	cycle := int(elapsed / n.opts.ChurnEvery)
	return n.seen[cycle%len(n.seen)]
}

// observe records target as a churn-rotation candidate.
func (n *NetChaos) observe(target string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	i := sort.SearchStrings(n.seen, target)
	if i < len(n.seen) && n.seen[i] == target {
		return
	}
	n.seen = append(n.seen, "")
	copy(n.seen[i+1:], n.seen[i:])
	n.seen[i] = target
}

// apply runs the fault schedule for one exchange against target. A nil
// error means the exchange should be forwarded to the inner layer.
func (n *NetChaos) apply(ctx context.Context, target string) error {
	n.observe(target)
	drop, refuse, delay := n.fate(target)
	switch {
	case drop:
		n.dropped.Add(1)
		<-ctx.Done()
		return fmt.Errorf("%w: %v", ErrNetDropped, ctx.Err())
	case refuse:
		n.refused.Add(1)
		return fmt.Errorf("%w: %s", ErrResolverChurn, target)
	case delay > 0:
		n.delayed.Add(1)
		if err := n.sleep(ctx, delay); err != nil {
			return fmt.Errorf("%w: delayed past deadline: %v", ErrNetDropped, err)
		}
	}
	return nil
}

// WrapQuerier interposes the fault schedule at the engine's Querier
// seam (keyed by resolver URL). A nil NetChaos returns inner unchanged.
func (n *NetChaos) WrapQuerier(inner Querier) Querier {
	if n == nil {
		return inner
	}
	return &netChaosQuerier{net: n, inner: inner}
}

type netChaosQuerier struct {
	net   *NetChaos
	inner Querier
}

func (q *netChaosQuerier) Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	if err := q.net.apply(ctx, url); err != nil {
		return nil, err
	}
	return q.inner.Query(ctx, url, name, typ)
}

// WrapExchanger interposes the fault schedule at the raw transport seam
// (keyed by server address). A nil NetChaos returns inner unchanged.
func (n *NetChaos) WrapExchanger(inner transport.Exchanger) transport.Exchanger {
	if n == nil {
		return inner
	}
	return transport.Func(func(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
		if err := n.apply(ctx, server); err != nil {
			return nil, err
		}
		return inner.Exchange(ctx, query, server)
	})
}
