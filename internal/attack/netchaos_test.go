package attack

import (
	"context"
	"errors"
	"testing"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/transport"
)

type countingQuerier struct{ calls int }

func (c *countingQuerier) Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	c.calls++
	q, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	return q, nil
}

func TestNetChaosInactiveIsNil(t *testing.T) {
	if n := NewNetChaos(NetChaosOptions{}); n != nil {
		t.Fatal("zero options must build a nil NetChaos")
	}
	var n *NetChaos
	inner := &countingQuerier{}
	if got := n.WrapQuerier(inner); got != Querier(inner) {
		t.Fatal("nil NetChaos must return inner unchanged")
	}
	ex := transport.Func(func(ctx context.Context, q *dnswire.Message, s string) (*dnswire.Message, error) { return q, nil })
	if n.WrapExchanger(ex) == nil {
		t.Fatal("nil NetChaos WrapExchanger must return inner")
	}
}

func TestNetChaosDropBlocksUntilDeadline(t *testing.T) {
	n := NewNetChaos(NetChaosOptions{DropProb: 1})
	inner := &countingQuerier{}
	q := n.WrapQuerier(inner)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := q.Query(ctx, "https://r/dns-query", "example.test.", dnswire.TypeA)
	if !errors.Is(err, ErrNetDropped) {
		t.Fatalf("err = %v, want ErrNetDropped", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("drop returned after %v, must block until ctx deadline", elapsed)
	}
	if inner.calls != 0 {
		t.Fatal("dropped exchange must not reach inner")
	}
	if n.Dropped() != 1 || n.Exchanges() != 1 {
		t.Fatalf("counters: dropped=%d exchanges=%d", n.Dropped(), n.Exchanges())
	}
}

func TestNetChaosDropProbability(t *testing.T) {
	n := NewNetChaos(NetChaosOptions{DropProb: 0.5, Seed: 42})
	drops := 0
	for i := 0; i < 1000; i++ {
		drop, refuse, _ := n.fate("r1")
		if refuse {
			t.Fatal("no churn configured, nothing may refuse")
		}
		if drop {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("drops = %d/1000 at p=0.5, want ~500", drops)
	}
	// Same seed, same sequence.
	n2 := NewNetChaos(NetChaosOptions{DropProb: 0.5, Seed: 42})
	drops2 := 0
	for i := 0; i < 1000; i++ {
		if d, _, _ := n2.fate("r1"); d {
			drops2++
		}
	}
	if drops2 != drops {
		t.Fatalf("same seed diverged: %d vs %d", drops, drops2)
	}
}

func TestNetChaosDelay(t *testing.T) {
	n := NewNetChaos(NetChaosOptions{Delay: 5 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 7})
	var slept time.Duration
	n.sleep = func(ctx context.Context, d time.Duration) error {
		slept = d
		return nil
	}
	inner := &countingQuerier{}
	q := n.WrapQuerier(inner)
	if _, err := q.Query(context.Background(), "https://r/dns-query", "example.test.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if slept < 5*time.Millisecond || slept >= 10*time.Millisecond {
		t.Fatalf("injected delay = %v, want in [5ms, 10ms)", slept)
	}
	if inner.calls != 1 {
		t.Fatal("delayed exchange must still reach inner")
	}
	if n.Delayed() != 1 {
		t.Fatalf("delayed counter = %d", n.Delayed())
	}
}

func TestNetChaosDelayPastDeadlineIsDrop(t *testing.T) {
	n := NewNetChaos(NetChaosOptions{Delay: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inner := &countingQuerier{}
	_, err := n.WrapQuerier(inner).Query(ctx, "https://r/dns-query", "example.test.", dnswire.TypeA)
	if !errors.Is(err, ErrNetDropped) {
		t.Fatalf("err = %v, want ErrNetDropped", err)
	}
	if inner.calls != 0 {
		t.Fatal("exchange delayed past deadline must not reach inner")
	}
}

func TestNetChaosPartitionWindows(t *testing.T) {
	now := time.Unix(0, 0)
	n := NewNetChaos(NetChaosOptions{
		PartitionEvery: 10 * time.Second,
		PartitionFor:   3 * time.Second,
		Clock:          func() time.Time { return now },
	})
	at := func(d time.Duration) bool {
		now = time.Unix(0, 0).Add(d)
		drop, _, _ := n.fate("r1")
		return drop
	}
	for _, tc := range []struct {
		at   time.Duration
		drop bool
	}{
		{0, true}, {2 * time.Second, true}, {2999 * time.Millisecond, true},
		{3 * time.Second, false}, {9 * time.Second, false},
		{10 * time.Second, true}, {12 * time.Second, true}, {13 * time.Second, false},
	} {
		if got := at(tc.at); got != tc.drop {
			t.Fatalf("at %v: drop=%v, want %v", tc.at, got, tc.drop)
		}
	}
}

func TestNetChaosChurnRotatesVictims(t *testing.T) {
	now := time.Unix(0, 0)
	n := NewNetChaos(NetChaosOptions{
		ChurnEvery:    10 * time.Second,
		ChurnDowntime: 2 * time.Second,
		Clock:         func() time.Time { return now },
	})
	inner := &countingQuerier{}
	q := n.WrapQuerier(inner)
	ctx := context.Background()
	// Teach the rotation both targets while nothing is down.
	now = time.Unix(0, 0).Add(5 * time.Second)
	for _, u := range []string{"https://a/dns-query", "https://b/dns-query"} {
		if _, err := q.Query(ctx, u, "example.test.", dnswire.TypeA); err != nil {
			t.Fatalf("outside downtime: %v", err)
		}
	}
	query := func(u string) error {
		_, err := q.Query(ctx, u, "example.test.", dnswire.TypeA)
		return err
	}
	// Cycle 1 downtime: victim is seen[1%2] = "https://b/dns-query".
	now = time.Unix(0, 0).Add(10*time.Second + time.Second)
	if err := query("https://a/dns-query"); err != nil {
		t.Fatalf("cycle 1: a must be up: %v", err)
	}
	if err := query("https://b/dns-query"); !errors.Is(err, ErrResolverChurn) {
		t.Fatalf("cycle 1: b err = %v, want ErrResolverChurn", err)
	}
	// Cycle 2 downtime: victim rotates to seen[0] = a.
	now = time.Unix(0, 0).Add(20*time.Second + time.Second)
	if err := query("https://a/dns-query"); !errors.Is(err, ErrResolverChurn) {
		t.Fatalf("cycle 2: a err = %v, want ErrResolverChurn", err)
	}
	if err := query("https://b/dns-query"); err != nil {
		t.Fatalf("cycle 2: b must be up: %v", err)
	}
	// After downtime everyone is back.
	now = time.Unix(0, 0).Add(20*time.Second + 5*time.Second)
	if err := query("https://a/dns-query"); err != nil {
		t.Fatalf("post-downtime: %v", err)
	}
	if n.Refused() != 2 {
		t.Fatalf("refused = %d, want 2", n.Refused())
	}
}

func TestNetChaosTargetsScopeFaults(t *testing.T) {
	n := NewNetChaos(NetChaosOptions{DropProb: 1, Targets: []string{"https://bad/dns-query"}})
	if drop, _, _ := n.fate("https://good/dns-query"); drop {
		t.Fatal("untargeted resolver must not be attacked")
	}
	if drop, _, _ := n.fate("https://bad/dns-query"); !drop {
		t.Fatal("targeted resolver must be attacked")
	}
	if n.Exchanges() != 1 {
		t.Fatalf("exchanges = %d, only targeted exchanges count", n.Exchanges())
	}
}

func TestNetChaosWrapExchanger(t *testing.T) {
	n := NewNetChaos(NetChaosOptions{DropProb: 1})
	calls := 0
	ex := n.WrapExchanger(transport.Func(func(ctx context.Context, q *dnswire.Message, s string) (*dnswire.Message, error) {
		calls++
		return q, nil
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	q, _ := dnswire.NewQuery("example.test.", dnswire.TypeA)
	if _, err := ex.Exchange(ctx, q, "192.0.2.1:53"); !errors.Is(err, ErrNetDropped) {
		t.Fatalf("err = %v, want ErrNetDropped", err)
	}
	if calls != 0 {
		t.Fatal("dropped exchange must not reach inner exchanger")
	}
}
