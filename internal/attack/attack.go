// Package attack implements the adversary models of the paper's threat
// analysis (Section III) and of the companion attack paper "The Impact of
// DNS Insecurity on Time" [1]:
//
//   - a fully compromised DoH resolver (the attacker controls the
//     resolver or its operator),
//   - an on-path man-in-the-middle controlling some of the paths between
//     a resolver and the authoritative servers,
//   - an off-path attacker racing genuine responses with blind spoofing,
//     succeeding per attempt with a configurable probability,
//   - the response-inflation payload used against Chronos (more addresses
//     than usual, to overwhelm the pool) and the empty-answer payload
//     (truncation-driven DoS).
//
// All adversaries are wrappers around the transport.Exchanger or
// doh.QueryResponder interposition points, so the very same client/
// resolver/server binaries run attacked and unattacked.
package attack

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"

	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/transport"
)

// AttackerNet is the prefix all forged addresses are drawn from
// (198.18.0.0/15, the RFC 2544 benchmarking range). Experiments count
// attacker-controlled pool entries by membership in this prefix.
var AttackerNet = netip.MustParsePrefix("198.18.0.0/15")

// IsAttackerAddr reports whether addr belongs to the attacker.
func IsAttackerAddr(addr netip.Addr) bool {
	return addr.Is4() && AttackerNet.Contains(addr)
}

// AttackerAddrSpace is how many distinct host addresses the attacker
// prefix holds (2^17 for a /15).
const AttackerAddrSpace = 1 << (32 - 15)

// AttackerAddr returns the i-th attacker-controlled IPv4 address. i wraps
// at AttackerAddrSpace, so every returned address lies in AttackerNet;
// negative i counts from the top of the range.
func AttackerAddr(i int) netip.Addr {
	i %= AttackerAddrSpace
	if i < 0 {
		i += AttackerAddrSpace
	}
	// The /15 leaves 17 host bits: the low bit of the second octet plus
	// the full third and fourth octets.
	base := AttackerNet.Addr().As4()
	base[1] |= byte(i >> 16)
	base[2] = byte(i >> 8)
	base[3] = byte(i)
	return netip.AddrFrom4(base)
}

// AttackerAddrs returns n distinct attacker-controlled addresses. Only
// AttackerAddrSpace distinct addresses exist, so n is clamped to that
// (and to 0 from below) instead of wrapping into duplicates or panicking
// on absurd allocation sizes.
func AttackerAddrs(n int) []netip.Addr {
	if n <= 0 {
		return nil
	}
	if n > AttackerAddrSpace {
		n = AttackerAddrSpace
	}
	addrs := make([]netip.Addr, n)
	for i := range addrs {
		addrs[i] = AttackerAddr(i)
	}
	return addrs
}

// Payload selects what a successful attacker injects.
type Payload int

// Injection payloads.
const (
	// PayloadReplace substitutes attacker addresses for the genuine
	// answer, matching its length — the classic poisoning goal.
	PayloadReplace Payload = iota + 1
	// PayloadInflate injects many more addresses than a genuine response
	// carries, the attack that overwhelmed Chronos' pool in [1].
	PayloadInflate
	// PayloadEmpty injects a NOERROR answer with zero records, the DoS
	// counterpart of truncation discussed in the paper's footnote 2.
	PayloadEmpty
)

// String returns the payload name.
func (p Payload) String() string {
	switch p {
	case PayloadReplace:
		return "replace"
	case PayloadInflate:
		return "inflate"
	case PayloadEmpty:
		return "empty"
	default:
		return fmt.Sprintf("payload(%d)", int(p))
	}
}

// InflateCount is how many records PayloadInflate injects.
const InflateCount = 100

// Forger builds forged responses for a target domain.
type Forger struct {
	// Target is the domain under attack; queries for other names pass
	// through untouched.
	Target string
	// Payload selects the injection strategy.
	Payload Payload
	// TTL stamps forged records (default 300).
	TTL uint32

	mu   sync.Mutex
	next int // cursor into the attacker address space
}

// NewForger builds a Forger for the target domain.
func NewForger(target string, payload Payload) *Forger {
	return &Forger{Target: dnswire.CanonicalName(target), Payload: payload, TTL: 300}
}

// Matches reports whether the query is for the attack target.
func (f *Forger) Matches(query *dnswire.Message) bool {
	if len(query.Questions) == 0 {
		return false
	}
	q := query.Questions[0]
	if q.Type != dnswire.TypeA && q.Type != dnswire.TypeAAAA {
		return false
	}
	return dnswire.IsSubdomain(q.Name, f.Target)
}

// Forge builds the forged response to query. genuineLen is the length of
// the genuine answer when known (PayloadReplace mimics it; pass 0 to use a
// plausible default of 4, pool.ntp.org's answer size).
func (f *Forger) Forge(query *dnswire.Message, genuineLen int) *dnswire.Message {
	resp := dnswire.NewResponse(query)
	resp.Header.RecursionAvailable = true
	count := 0
	switch f.Payload {
	case PayloadReplace:
		count = genuineLen
		if count <= 0 {
			count = 4
		}
	case PayloadInflate:
		count = InflateCount
	case PayloadEmpty:
		count = 0
	}
	name := query.Questions[0].Name
	f.mu.Lock()
	start := f.next
	f.next += count
	f.mu.Unlock()
	for i := 0; i < count; i++ {
		resp.Answers = append(resp.Answers,
			dnswire.AddressRecord(name, AttackerAddr(start+i), f.TTL))
	}
	return resp
}

// CompromisedResolver wraps a DoH responder so that queries for the target
// domain receive forged answers: the model of a resolver the attacker
// fully controls. Implements doh.QueryResponder.
type CompromisedResolver struct {
	inner  doh.QueryResponder
	forger *Forger

	forged atomic.Uint64
}

var _ doh.QueryResponder = (*CompromisedResolver)(nil)

// Compromise wraps inner so queries matching forger are answered by the
// attacker.
func Compromise(inner doh.QueryResponder, forger *Forger) *CompromisedResolver {
	return &CompromisedResolver{inner: inner, forger: forger}
}

// Forged returns how many responses were forged.
func (c *CompromisedResolver) Forged() uint64 { return c.forged.Load() }

// Respond implements doh.QueryResponder.
func (c *CompromisedResolver) Respond(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	if !c.forger.Matches(query) {
		return c.inner.Respond(ctx, query)
	}
	genuineLen := 0
	if genuine, err := c.inner.Respond(ctx, query); err == nil {
		genuineLen = len(genuine.AnswerAddrs())
	}
	c.forged.Add(1)
	return c.forger.Forge(query, genuineLen), nil
}

// OnPath wraps a resolver→authoritative transport with a man-in-the-middle
// who rewrites responses for the target domain. This models the paper's
// "attacker controls some of the links" adversary: it sits on this one
// path and no other. Implements transport.Exchanger.
type OnPath struct {
	inner  transport.Exchanger
	forger *Forger

	intercepted atomic.Uint64
}

var _ transport.Exchanger = (*OnPath)(nil)

// NewOnPath builds an on-path MitM over inner.
func NewOnPath(inner transport.Exchanger, forger *Forger) *OnPath {
	return &OnPath{inner: inner, forger: forger}
}

// Intercepted returns how many exchanges were rewritten.
func (o *OnPath) Intercepted() uint64 { return o.intercepted.Load() }

// Exchange implements transport.Exchanger.
func (o *OnPath) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	if !o.forger.Matches(query) {
		return o.inner.Exchange(ctx, query, server)
	}
	genuineLen := 0
	if genuine, err := o.inner.Exchange(ctx, query, server); err == nil {
		genuineLen = len(genuine.AnswerAddrs())
	}
	o.intercepted.Add(1)
	// The MitM sees the query, so ID and question match trivially.
	return o.forger.Forge(query, genuineLen), nil
}

// OffPath wraps a transport with a blind spoofing attacker racing the
// genuine response. Each attacked exchange independently succeeds with
// probability SuccessProb — the per-resolver p_attack of Section III-b.
// A failed race delivers the genuine response (the resolver discarded the
// mismatching spoof). Implements transport.Exchanger.
type OffPath struct {
	inner  transport.Exchanger
	forger *Forger
	prob   float64

	mu  sync.Mutex
	rng *rand.Rand

	attempts  atomic.Uint64
	successes atomic.Uint64
}

var _ transport.Exchanger = (*OffPath)(nil)

// NewOffPath builds an off-path attacker over inner with the given
// per-exchange success probability and RNG seed (deterministic
// experiments).
func NewOffPath(inner transport.Exchanger, forger *Forger, successProb float64, seed int64) *OffPath {
	return &OffPath{
		inner:  inner,
		forger: forger,
		prob:   successProb,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Attempts returns how many attacked exchanges occurred.
func (o *OffPath) Attempts() uint64 { return o.attempts.Load() }

// Successes returns how many races the attacker won.
func (o *OffPath) Successes() uint64 { return o.successes.Load() }

// Succeeds rolls one race outcome. The engine fans exchanges out
// concurrently, so the shared seeded rng must only ever be touched under
// the mutex — an unguarded roll is a data race under -race and, worse,
// silently corrupts rand.Rand's internal state. Determinism for tests is
// preserved: a fixed seed still yields a fixed multiset of outcomes (the
// interleaving order may vary, the drawn sequence does not).
func (o *OffPath) Succeeds() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rng.Float64() < o.prob
}

// Exchange implements transport.Exchanger.
func (o *OffPath) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	if !o.forger.Matches(query) {
		return o.inner.Exchange(ctx, query, server)
	}
	o.attempts.Add(1)
	won := o.Succeeds()
	genuine, err := o.inner.Exchange(ctx, query, server)
	if !won {
		return genuine, err
	}
	o.successes.Add(1)
	genuineLen := 0
	if err == nil {
		genuineLen = len(genuine.AnswerAddrs())
	}
	return o.forger.Forge(query, genuineLen), nil
}

// Plan decides, for N resolvers, which are compromised: either an exact
// set (deterministic experiments) or independent Bernoulli draws with
// probability p (Monte-Carlo trials).
type Plan struct {
	compromised []bool
}

// FixedPlan marks exactly the given resolver indices as compromised.
func FixedPlan(n int, compromised ...int) Plan {
	p := Plan{compromised: make([]bool, n)}
	for _, i := range compromised {
		if i >= 0 && i < n {
			p.compromised[i] = true
		}
	}
	return p
}

// BernoulliPlan draws each of n resolvers independently with probability
// prob using rng.
func BernoulliPlan(n int, prob float64, rng *rand.Rand) Plan {
	p := Plan{compromised: make([]bool, n)}
	for i := range p.compromised {
		p.compromised[i] = rng.Float64() < prob
	}
	return p
}

// Compromised reports whether resolver i is compromised under the plan.
func (p Plan) Compromised(i int) bool {
	return i >= 0 && i < len(p.compromised) && p.compromised[i]
}

// CountCompromised returns the number of compromised resolvers.
func (p Plan) CountCompromised() int {
	n := 0
	for _, c := range p.compromised {
		if c {
			n++
		}
	}
	return n
}

// N returns the plan size.
func (p Plan) N() int { return len(p.compromised) }
