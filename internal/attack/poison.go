package attack

import (
	"fmt"

	"dohpool/internal/dnscache"
	"dohpool/internal/dnswire"
)

// PoisonCache plants a forged address RRset for (domain, typ) directly
// into a resolver's cache, modelling an off-path attack that has already
// succeeded once (a Kaminsky-style race won at some earlier time): from
// that moment every client of that resolver receives the attacker's
// answer until the poisoned entry's TTL expires. The count of injected
// addresses mimics a genuine answer so the poisoning is not trivially
// detectable by length.
func PoisonCache(cache *dnscache.Cache, forger *Forger, domain string, typ dnswire.Type, count int, ttl uint32) error {
	if typ != dnswire.TypeA && typ != dnswire.TypeAAAA {
		return fmt.Errorf("poison cache: type %v is not an address type", typ)
	}
	query, err := dnswire.NewQuery(domain, typ)
	if err != nil {
		return fmt.Errorf("poison cache: %w", err)
	}
	forged := forger.Forge(query, count)
	for i := range forged.Answers {
		forged.Answers[i].TTL = ttl
	}
	cache.Put(query.Questions[0], forged, ttl)
	return nil
}
