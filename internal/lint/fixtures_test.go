package lint

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"testing"
)

// The fixture harness is a minimal analysistest: every fixture file
// marks expected diagnostics with trailing comments of the form
//
//	code() // want `regex` `another regex`
//
// and the test fails on any unmatched expectation or unexpected
// diagnostic. Expectations match by (file, line, message-regex).

var wantMarkRE = regexp.MustCompile("`([^`]+)`")

type wantExpectation struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	matched bool
}

// loadWants scans a fixture directory for want comments.
func loadWants(t *testing.T, dir string) []*wantExpectation {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var wants []*wantExpectation
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := wantIndex(c.Text)
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantMarkRE.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", path, pos.Line, m[1], err)
					}
					wants = append(wants, &wantExpectation{
						file: filepath.Base(path),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// wantIndex returns the offset of the "want" marker in a comment, or
// -1. Only "// want" (optionally after whitespace) counts, so prose
// mentioning the word does not create expectations.
func wantIndex(comment string) int {
	re := regexp.MustCompile(`^//\s*want `)
	if m := re.FindString(comment); m != "" {
		return len(m)
	}
	return -1
}

func TestAnalyzerFixtures(t *testing.T) {
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"noalloc", "metricsname", "configalias", "cliflags", "buildtag", "lockcheck", "atomiccheck", "golifecycle"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			pkg, err := LoadDir(moduleRoot, dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags, err := RunAnalyzers(pkg, All())
			if err != nil {
				t.Fatalf("running analyzers: %v", err)
			}
			wants := loadWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want expectations", dir)
			}
			for _, d := range diags {
				base := filepath.Base(d.Pos.Filename)
				found := false
				for _, w := range wants {
					if w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestRealTreeClean is the in-repo guarantee behind the CI gate: the
// analyzers must pass the production tree with zero findings.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(moduleRoot)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
