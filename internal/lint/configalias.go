package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// ConfigAlias turns PR 7's reflection-based config drift tests into a
// compile-time check, from both ends of the alias contract:
//
// In the package declaring `type Config struct` with a `resolved()`
// method (the dohpool root), every flat field marked `Deprecated: use
// Group.Field`:
//
//   - must name a grouped counterpart that actually exists, with an
//     identical type;
//   - must be consumed in resolved() — a deprecated knob that
//     resolved() ignores is silently dead;
//   - its grouped counterpart must be consumed in resolved() too, or
//     the precedence fold cannot be happening.
//
// In a package named cliflags, every leaf field of every grouped
// sub-struct of the imported Config must be written by some
// assignment — `cfg.Group.Field = …`, or a wholesale `cfg.Group = …` /
// `cfg.Group.Sub = Composite{…}`. A grouped knob with no flag entry is
// unreachable from the CLI, which is exactly the drift the old
// reflection test caught at run time.
var ConfigAlias = &Analyzer{
	Name: "configalias",
	Doc:  "deprecated flat Config fields keep grouped counterparts consumed in resolved() and reachable from cliflags",
	Run:  runConfigAlias,
}

// deprecatedUseRE extracts the grouped counterpart from a field's
// deprecation notice: "Deprecated: use Cache.Size."
var deprecatedUseRE = regexp.MustCompile(`Deprecated: use ([A-Z][A-Za-z0-9]*)\.([A-Z][A-Za-z0-9]*)`)

func runConfigAlias(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "cliflags" {
		checkCliflagsCoverage(pass)
		return nil
	}
	checkConfigResolved(pass)
	return nil
}

// --- Config/resolved() side ---

func checkConfigResolved(pass *Pass) {
	configDecl, resolvedDecl := findConfigAndResolved(pass)
	if configDecl == nil {
		return
	}
	flat := deprecatedFields(configDecl)
	if len(flat) == 0 {
		return
	}
	if resolvedDecl == nil {
		pass.Reportf(configDecl.Pos(), "Config has %d deprecated flat fields but no resolved() method to fold them", len(flat))
		return
	}
	consumed := fieldsConsumedIn(pass, resolvedDecl)
	for _, f := range flat {
		checkFlatField(pass, configDecl, f, consumed)
	}
}

// deprecatedField is one flat alias: the struct field plus the grouped
// counterpart its deprecation notice names.
type deprecatedField struct {
	field        *ast.Field
	name         string
	group, leaf  string
	noticeBroken bool
}

// findConfigAndResolved locates `type Config struct` and its resolved()
// method in the package under analysis (test files excluded).
func findConfigAndResolved(pass *Pass) (*ast.StructType, *ast.FuncDecl) {
	var cfg *ast.StructType
	var resolved *ast.FuncDecl
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != "Config" {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						cfg = st
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "resolved" && d.Recv != nil && recvTypeName(d) == "Config" {
					resolved = d
				}
			}
		}
	}
	return cfg, resolved
}

// recvTypeName returns the bare receiver type name of a method
// declaration ("Config" for both `(c Config)` and `(c *Config)`).
func recvTypeName(fn *ast.FuncDecl) string {
	if len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// deprecatedFields collects Config's flat alias fields: those whose doc
// comment carries a "Deprecated: use …" notice.
func deprecatedFields(cfg *ast.StructType) []deprecatedField {
	var out []deprecatedField
	for _, field := range cfg.Fields.List {
		if field.Doc == nil || len(field.Names) == 0 {
			continue
		}
		doc := field.Doc.Text()
		if !strings.Contains(doc, "Deprecated:") {
			continue
		}
		for _, name := range field.Names {
			df := deprecatedField{field: field, name: name.Name}
			// A multi-name field ("TLSCert, TLSKey string" style, or the
			// real tree's separate fields sharing one notice) may name
			// several counterparts; pair them positionally when possible.
			matches := deprecatedUseRE.FindAllStringSubmatch(doc, -1)
			switch {
			case len(matches) == 0:
				df.noticeBroken = true
			case len(matches) >= len(field.Names):
				m := matches[indexOfIdent(field.Names, name)]
				df.group, df.leaf = m[1], m[2]
			default:
				df.group, df.leaf = matches[0][1], matches[0][2]
			}
			out = append(out, df)
		}
	}
	return out
}

func indexOfIdent(names []*ast.Ident, target *ast.Ident) int {
	for i, n := range names {
		if n == target {
			return i
		}
	}
	return 0
}

// fieldsConsumedIn returns the set of struct fields (as types.Object)
// selected anywhere inside fn's body.
func fieldsConsumedIn(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	consumed := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			consumed[s.Obj()] = true
		}
		return true
	})
	return consumed
}

// checkFlatField verifies one flat alias against its grouped
// counterpart and resolved()'s consumption of both.
func checkFlatField(pass *Pass, cfg *ast.StructType, f deprecatedField, consumed map[types.Object]bool) {
	if f.noticeBroken {
		pass.Reportf(f.field.Pos(), "deprecated Config field %s: deprecation notice names no Group.Field counterpart", f.name)
		return
	}
	groupField := structFieldByName(cfg, f.group)
	if groupField == nil {
		pass.Reportf(f.field.Pos(), "deprecated Config field %s: grouped counterpart %s.%s does not exist (no %s field)", f.name, f.group, f.leaf, f.group)
		return
	}
	flatObj := fieldObject(pass, cfg, f.name)
	leafObj := groupLeafObject(pass, groupField, f.leaf)
	if leafObj == nil {
		pass.Reportf(f.field.Pos(), "deprecated Config field %s: grouped counterpart %s.%s does not exist", f.name, f.group, f.leaf)
		return
	}
	if flatObj != nil && !types.Identical(flatObj.Type(), leafObj.Type()) {
		pass.Reportf(f.field.Pos(), "deprecated Config field %s has type %s but grouped counterpart %s.%s has type %s",
			f.name, flatObj.Type(), f.group, f.leaf, leafObj.Type())
	}
	if flatObj != nil && !consumed[flatObj] {
		pass.Reportf(f.field.Pos(), "deprecated Config field %s is not consumed in resolved(): the flat spelling is silently ignored", f.name)
	}
	if !consumed[leafObj] {
		pass.Reportf(f.field.Pos(), "grouped counterpart %s.%s of deprecated field %s is not consumed in resolved()", f.group, f.leaf, f.name)
	}
}

// structFieldByName finds a field of the syntactic struct by name.
func structFieldByName(st *ast.StructType, name string) *ast.Field {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return field
			}
		}
	}
	return nil
}

// fieldObject resolves a field of the syntactic struct to its
// types.Object.
func fieldObject(pass *Pass, st *ast.StructType, name string) types.Object {
	f := structFieldByName(st, name)
	if f == nil {
		return nil
	}
	for _, n := range f.Names {
		if n.Name == name {
			return pass.TypesInfo.Defs[n]
		}
	}
	return nil
}

// groupLeafObject resolves Group.Leaf: groupField's type must be a
// struct with a field named leaf.
func groupLeafObject(pass *Pass, groupField *ast.Field, leaf string) types.Object {
	t := pass.TypesInfo.Types[groupField.Type].Type
	if t == nil {
		return nil
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == leaf {
			return st.Field(i)
		}
	}
	return nil
}

// --- cliflags side ---

// checkCliflagsCoverage verifies that every leaf of every grouped
// sub-struct of the imported Config type is written somewhere in the
// cliflags package.
func checkCliflagsCoverage(pass *Pass) {
	cfgType := importedConfigType(pass)
	if cfgType == nil {
		return
	}
	required := groupedLeaves(cfgType)
	if len(required) == 0 {
		return
	}
	covered := make(map[string]bool)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range assign.Lhs {
				noteConfigWrite(pass, cfgType, lhs, covered)
			}
			return true
		})
	}
	var missing []string
	for leaf := range required {
		group := leaf[:strings.Index(leaf, ".")]
		if !covered[leaf] && !covered[group] {
			missing = append(missing, leaf)
		}
	}
	sort.Strings(missing)
	for _, leaf := range missing {
		pass.Reportf(pass.Files[0].Name.Pos(), "grouped Config field %s has no cliflags assignment: the knob is unreachable from the CLI", leaf)
	}
}

// importedConfigType finds the Config struct type in the packages
// cliflags imports.
func importedConfigType(pass *Pass) *types.Named {
	if pass.Pkg == nil {
		return nil
	}
	for _, imp := range pass.Pkg.Imports() {
		obj := imp.Scope().Lookup("Config")
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); ok {
			return named
		}
	}
	return nil
}

// groupedLeaves enumerates "Group.Leaf" for every field of Config whose
// type is a named struct ending in "Config" — the grouped sub-structs.
func groupedLeaves(cfg *types.Named) map[string]bool {
	st, ok := cfg.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	leaves := make(map[string]bool)
	for i := 0; i < st.NumFields(); i++ {
		group := st.Field(i)
		named, ok := group.Type().(*types.Named)
		if !ok || !strings.HasSuffix(named.Obj().Name(), "Config") {
			continue
		}
		gst, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for j := 0; j < gst.NumFields(); j++ {
			leaves[fmt.Sprintf("%s.%s", group.Name(), gst.Field(j).Name())] = true
		}
	}
	return leaves
}

// noteConfigWrite records which Group[.Leaf] path an assignment LHS
// writes, when the selector chain roots at a (pointer to) Config value.
// A wholesale `cfg.Group = …` covers the whole group; a deeper write
// (`cfg.Chaos.Net.DropProb = …`) still covers its depth-2 leaf.
func noteConfigWrite(pass *Pass, cfg *types.Named, lhs ast.Expr, covered map[string]bool) {
	var path []string
	for {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			break
		}
		path = append([]string{sel.Sel.Name}, path...)
		lhs = sel.X
	}
	if len(path) == 0 {
		return
	}
	t := pass.TypesInfo.Types[lhs].Type
	if t == nil {
		return
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() != cfg.Obj() {
		return
	}
	if len(path) == 1 {
		covered[path[0]] = true
		return
	}
	covered[path[0]+"."+path[1]] = true
}
