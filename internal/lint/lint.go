// Package lint is dohpool's in-tree static-analysis suite: a small,
// dependency-free analyzer framework in the shape of
// golang.org/x/tools/go/analysis (which this module cannot depend on),
// plus the seven project-specific analyzers that prove the serving fast
// path's invariants at compile time:
//
//   - noalloc: functions annotated //dohlint:noalloc must not contain
//     constructs known to allocate (fmt calls, string concatenation,
//     make/new, closures, go statements, boxing conversions). The
//     companion escape gate (see escape.go and `dohlint escape`) closes
//     the loop with the compiler's own -m escape diagnostics.
//   - metricsname: metric registrations use compile-time-constant names
//     matching dohpool_[a-z0-9_]+ with conventional type suffixes, and
//     never happen inside a //dohlint:noalloc hot path.
//   - configalias: every deprecated flat Config field keeps a working
//     grouped counterpart folded in resolved(), and every grouped field
//     stays reachable from the shared internal/cliflags registry.
//   - buildtag: files pinning syscall numbers carry explicit //go:build
//     constraints, and no file references a platform-constrained name
//     on a platform where nothing declares it.
//   - lockcheck: builds a per-package lock-acquisition graph from
//     sync.Mutex/RWMutex call sites, reports acquisition-order cycles,
//     and forbids blocking operations (network I/O, channel operations,
//     Querier/Exchanger invocations, time.Sleep) while a mutex
//     annotated //dohlint:hotlock is held.
//   - atomiccheck: a field touched anywhere via sync/atomic must be
//     accessed atomically at every other site, and 64-bit atomics must
//     sit at 8-byte-aligned offsets for 32-bit platforms.
//   - golifecycle: every go statement in the long-lived packages
//     (core, admin, udpbatch, loadgen) must be joined by a shutdown
//     path — a WaitGroup.Done matched by a Wait, or a close matched by
//     a receive — unless waived line-by-line as fire-and-forget.
//
// Diagnostics on a given line can be waived with a trailing (or
// immediately preceding) comment containing `dohlint:allow`, optionally
// scoped to specific analyzers: `dohlint:allow(noalloc,metricsname)`.
// An unscoped `dohlint:allow` waives every analyzer on that line. Each
// waiver should say why — the escape hatch is for documented,
// understood exceptions (an amortised growth path, a daemon-lifetime
// goroutine reaped by Close), not for silencing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named static check, runnable over a type-checked
// package via a Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow-scopes.
	Name string
	// Doc is the one-paragraph description `dohlint help` prints.
	Doc string
	// Run executes the check, reporting findings through the Pass.
	Run func(*Pass) error
}

// All returns the full dohlint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{NoAlloc, MetricsName, ConfigAlias, BuildTag, LockCheck, AtomicCheck, GoLifecycle}
}

// Diagnostic is one finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed, type-checked source files.
	Files []*ast.File
	// Pkg and TypesInfo hold the type-checker's results. BuildTag, the
	// one purely syntactic analyzer, tolerates both being nil.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package directory on disk, for analyzers (buildtag)
	// that must see sibling files excluded from this build configuration.
	Dir string

	diags *[]Diagnostic
	// allow maps file name → line → analyzer names waived there (nil
	// slice = all analyzers). Populated lazily from comment text.
	allow map[string]map[int][]string
}

// Reportf records a diagnostic at pos unless a dohlint:allow waiver
// covers that line for this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.waived(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// waived reports whether an allow-comment covers position for the
// running analyzer.
func (p *Pass) waived(position token.Position) bool {
	scopes, ok := p.allow[position.Filename][position.Line]
	if !ok {
		return false
	}
	if scopes == nil {
		return true
	}
	for _, s := range scopes {
		if s == p.Analyzer.Name {
			return true
		}
	}
	return false
}

// allowRE matches a waiver comment: `dohlint:allow` with an optional
// parenthesised analyzer list.
var allowRE = regexp.MustCompile(`dohlint:allow(?:\(([a-z, ]+)\))?`)

// noteAllowComments indexes f's dohlint:allow comments so Reportf can
// honour them. A waiver covers its own line and the next one, so it can
// trail the offending expression or sit on its own line above it.
// Analyzers that parse files outside Pass.Files (buildtag) call this
// for each extra file.
func (p *Pass) noteAllowComments(f *ast.File) {
	if p.allow == nil {
		p.allow = make(map[string]map[int][]string)
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			var scopes []string // nil = every analyzer
			if m[1] != "" {
				for _, s := range strings.Split(m[1], ",") {
					if s = strings.TrimSpace(s); s != "" {
						scopes = append(scopes, s)
					}
				}
			}
			position := p.Fset.Position(c.Pos())
			lines := p.allow[position.Filename]
			if lines == nil {
				lines = make(map[int][]string)
				p.allow[position.Filename] = lines
			}
			for _, line := range []int{position.Line, position.Line + 1} {
				if scopes == nil {
					lines[line] = nil
					continue
				}
				if cur, seen := lines[line]; !seen || cur != nil {
					lines[line] = append(cur, scopes...)
				}
			}
		}
	}
}

// noallocDirective is the annotation contract: a function whose doc
// comment carries this directive promises not to allocate, and both the
// noalloc analyzer and the escape gate hold it to that.
const noallocDirective = "//dohlint:noalloc"

// hasNoallocDirective reports whether doc contains the directive.
func hasNoallocDirective(doc *ast.CommentGroup) bool {
	return hasDirective(doc, noallocDirective)
}

// hasDirective reports whether a comment group carries the given
// //dohlint: directive. Directive comments are excluded from
// (*ast.CommentGroup).Text, so the raw list is inspected.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// noallocFuncs returns the functions in file annotated //dohlint:noalloc.
func noallocFuncs(file *ast.File) []*ast.FuncDecl {
	var fns []*ast.FuncDecl
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && hasNoallocDirective(fn.Doc) {
			fns = append(fns, fn)
		}
	}
	return fns
}

// isTestFile reports whether the file position belongs to a _test.go
// file. Every analyzer except buildtag skips test files: annotations
// live in production code, and tests legitimately register throwaway
// metrics and allocate freely.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// RunAnalyzers executes each analyzer over the package and returns the
// combined diagnostics in stable (position, analyzer) order.
func RunAnalyzers(pkg *LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			Dir:       pkg.Dir,
			diags:     &diags,
		}
		for _, f := range pkg.Files {
			pass.noteAllowComments(f)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
