package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// cannedEscapeOutput is real-shaped gc -m=1 output: inline decisions,
// non-escaping parameter notes, and the two diagnostic forms the gate
// acts on.
const cannedEscapeOutput = `# dohpool/internal/core
internal/core/frontend_wire.go:53:22: b does not escape
internal/core/frontend_wire.go:53:25: leaking param: keyScratch to result key level=0
internal/core/frontend_wire.go:150:6: can inline agedTTL
internal/core/frontend_stream.go:47:12: make([]byte, 0, n + 512) escapes to heap
internal/core/frontend_stream.go:99:14: moved to heap: buf
internal/core/frontend_stream.go:60:26: inlining call to readStreamFrame
not a diagnostic line at all
internal/core/frontend_wire.go:bad:1: malformed position survives parsing
`

func TestParseEscapeOutput(t *testing.T) {
	diags := ParseEscapeOutput(cannedEscapeOutput)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	first := diags[0]
	if first.File != "internal/core/frontend_stream.go" || first.Line != 47 || first.Col != 12 {
		t.Errorf("first diagnostic position = %s:%d:%d, want internal/core/frontend_stream.go:47:12",
			first.File, first.Line, first.Col)
	}
	if !strings.Contains(first.Message, "escapes to heap") {
		t.Errorf("first diagnostic message = %q, want an escapes-to-heap note", first.Message)
	}
	second := diags[1]
	if second.Line != 99 || !strings.Contains(second.Message, "moved to heap: buf") {
		t.Errorf("second diagnostic = %+v, want moved-to-heap at line 99", second)
	}
}

func TestParseEscapeOutputEmpty(t *testing.T) {
	if diags := ParseEscapeOutput(""); len(diags) != 0 {
		t.Fatalf("empty output produced %d diagnostics", len(diags))
	}
	if diags := ParseEscapeOutput("# pkg\ncan inline f\n"); len(diags) != 0 {
		t.Fatalf("chatter-only output produced %d diagnostics", len(diags))
	}
}

// TestEscapeGateFixture proves the gate end to end against a package
// whose annotated function leaks a local through a returned pointer —
// invisible to the syntax-level analyzer, caught by the compiler.
func TestEscapeGateFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list and go tool compile")
	}
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := EscapeGate(moduleRoot, "./internal/lint/testdata/escapepkg")
	if err != nil {
		t.Fatalf("escape gate: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if filepath.Base(d.Pos.Filename) != "escapepkg.go" {
		t.Errorf("diagnostic file = %s, want escapepkg.go", d.Pos.Filename)
	}
	if !strings.Contains(d.Message, "moved to heap: x") || !strings.Contains(d.Message, "Leak") {
		t.Errorf("diagnostic %q, want moved-to-heap inside Leak", d.Message)
	}
	if strings.Contains(d.Message, "Stay") {
		t.Errorf("diagnostic blames the allocation-free function: %q", d.Message)
	}
}

// TestEscapeGateCleanTree mirrors the CI gate: the production tree's
// annotated fast paths must compile with zero heap escapes.
func TestEscapeGateCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles every annotated package")
	}
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := EscapeGate(moduleRoot)
	if err != nil {
		t.Fatalf("escape gate: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
