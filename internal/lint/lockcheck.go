package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck is the concurrency-ordering analyzer: it builds a
// per-package lock-acquisition graph from sync.Mutex/sync.RWMutex call
// sites and reports
//
//   - acquisition-order cycles (lock A taken while B is held in one
//     function, B taken while A is held in another — the classic
//     AB/BA inversion that deadlocks only under contention);
//   - re-acquisition of a lock the current path already holds (Go
//     mutexes are not reentrant; this self-deadlocks deterministically);
//   - blocking operations — network I/O, channel send/receive,
//     select without default, Querier/Exchanger invocations,
//     time.Sleep, WaitGroup.Wait — reached while a mutex annotated
//     //dohlint:hotlock is held, directly or through a same-package
//     call chain.
//
// Lock identity is the owning named type plus field name ("shard.mu"),
// so the rule generalises over instances: every element of a shard
// array shares one identity, which is exactly the granularity lock
// ordering is designed at. Package-level mutexes use their variable
// name; function-local mutexes are keyed by declaration site.
//
// The walk is flow-sensitive per function: early-unlock branches drop
// the lock for the code that follows (branch exits are intersected),
// a terminating branch (return, panic, select whose cases all return)
// does not leak its held set past the join, and defer X.Unlock() keeps
// the lock held to the end of the function, as it really is.
// Summaries of same-package callees propagate both acquisitions and
// blocking behaviour one level deep per call edge, to a fixpoint.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "lock-acquisition ordering cycles and blocking calls under //dohlint:hotlock mutexes",
	Run:  runLockCheck,
}

// hotlockDirective marks a mutex whose critical sections are on the
// serving hot path: nothing that can block is allowed while it is held.
const hotlockDirective = "//dohlint:hotlock"

type mutexOpKind int

const (
	mutexAcquire mutexOpKind = iota
	mutexRelease
)

// lockSummary is what one function contributes to its callers: the
// lock identities it may acquire anywhere inside, and a description of
// a blocking operation it may perform ("" when none).
type lockSummary struct {
	acquires map[string]bool
	blocking string
	callees  map[*types.Func]bool
}

type lockChecker struct {
	pass *Pass
	// hot is the set of //dohlint:hotlock lock identities.
	hot map[string]bool
	// decls maps same-package function objects to their declarations.
	decls map[*types.Func]*ast.FuncDecl
	// summaries holds the per-function fixpoint results.
	summaries map[*types.Func]*lockSummary
	// edges[A][B] is the first position where B was acquired while A
	// was held.
	edges map[string]map[string]token.Pos
	// reported dedupes diagnostics by position+message.
	reported map[string]bool
}

func runLockCheck(pass *Pass) error {
	c := &lockChecker{
		pass:      pass,
		hot:       make(map[string]bool),
		decls:     make(map[*types.Func]*ast.FuncDecl),
		summaries: make(map[*types.Func]*lockSummary),
		edges:     make(map[string]map[string]token.Pos),
		reported:  make(map[string]bool),
	}
	c.collectHotLocks()
	c.collectDecls()
	c.computeSummaries()
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.walkFunc(fn.Body)
		}
	}
	c.reportCycles()
	return nil
}

func (c *lockChecker) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

// collectHotLocks indexes //dohlint:hotlock annotations on struct
// fields and package-level variables, rejecting the directive anywhere
// it does not name a mutex.
func (c *lockChecker) collectHotLocks() {
	for _, file := range c.pass.Files {
		if isTestFile(c.pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if !hasDirective(field.Doc, hotlockDirective) && !hasDirective(field.Comment, hotlockDirective) {
						continue
					}
					if len(field.Names) == 0 || !c.isMutexExprType(field.Type) {
						c.reportf(field.Pos(), "hotlock directive on something other than a named sync.Mutex/sync.RWMutex field")
						continue
					}
					for _, name := range field.Names {
						c.hot[n.Name.Name+"."+name.Name] = true
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if !hasDirective(n.Doc, hotlockDirective) && !hasDirective(vs.Doc, hotlockDirective) && !hasDirective(vs.Comment, hotlockDirective) {
						continue
					}
					for _, name := range vs.Names {
						obj := c.pass.TypesInfo.Defs[name]
						if obj == nil || !isMutexType(obj.Type()) {
							c.reportf(name.Pos(), "hotlock directive on something other than a named sync.Mutex/sync.RWMutex field")
							continue
						}
						c.hot["var:"+name.Name] = true
					}
				}
			}
			return true
		})
	}
}

func (c *lockChecker) isMutexExprType(typeExpr ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[typeExpr]
	return ok && isMutexType(tv.Type)
}

// isMutexType reports whether t (possibly behind pointers) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return isPkgNamed(t, "sync", "Mutex", "RWMutex")
}

// isPkgNamed reports whether t (behind any pointers) is one of the
// named types pkgPath.names.
func isPkgNamed(t types.Type, pkgPath string, names ...string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// syncIdentity names a lock/channel/WaitGroup-holding expression in a
// way that is stable across methods and instances: "Type.field" for
// struct fields (via the origin named type, so methods of generic
// types agree), "var:name" for package-level variables, and a
// declaration-site key for locals. "" means untrackable.
func syncIdentity(pass *Pass, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		fieldObj, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var)
		if !ok {
			return ""
		}
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				return "var:" + fieldObj.Name()
			}
		}
		bt := pass.TypesInfo.Types[e.X].Type
		for {
			p, ok := bt.(*types.Pointer)
			if !ok {
				break
			}
			bt = p.Elem()
		}
		if named, ok := bt.(*types.Named); ok {
			return named.Origin().Obj().Name() + "." + e.Sel.Name
		}
		return ""
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return ""
		}
		if pass.Pkg != nil && v.Parent() == pass.Pkg.Scope() {
			return "var:" + v.Name()
		}
		return fmt.Sprintf("local:%d:%s", v.Pos(), v.Name())
	}
	return ""
}

// mutexOp recognises calls of the form X.Lock(), X.RLock(),
// X.TryLock(), X.Unlock(), X.RUnlock() on sync.Mutex/RWMutex values
// and returns the lock identity and operation kind.
func (c *lockChecker) mutexOp(call *ast.CallExpr) (id string, op mutexOpKind, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn, isFn := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", 0, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = mutexAcquire
	case "Unlock", "RUnlock":
		op = mutexRelease
	default:
		return "", 0, false
	}
	return syncIdentity(c.pass, sel.X), op, true
}

// netBlockAllowlist names the members of the net/net\/http/crypto\/tls
// packages that never wait on the network: teardown, address
// accessors, deadline setters, pure parsing and header manipulation.
var netBlockAllowlist = map[string]bool{
	"Close": true, "CloseRead": true, "CloseWrite": true,
	"LocalAddr": true, "RemoteAddr": true, "Addr": true,
	"Network": true, "String": true, "Error": true,
	"Timeout": true, "Temporary": true, "Unwrap": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
	"SetReadBuffer": true, "SetWriteBuffer": true,
	"SetKeepAlive": true, "SetKeepAlivePeriod": true,
	"SetNoDelay": true, "SetLinger": true, "SetReuseAddr": true,
	"JoinHostPort": true, "SplitHostPort": true,
	"ParseIP": true, "ParseCIDR": true, "ParseMAC": true,
	"IPv4": true, "IPv4Mask": true, "CIDRMask": true, "Pipe": true,
	"Set": true, "Get": true, "Add": true, "Del": true,
	"Values": true, "Clone": true, "Context": true, "WithContext": true,
	"File": true, "SyscallConn": true, "ConnectionState": true,
	"NetConn": true, "VerifyHostname": true,
}

// blockingCallDesc classifies a call as a blocking operation and
// returns a short description, or "" when the call is not known to
// block. Same-package calls are handled separately through summaries.
func (c *lockChecker) blockingCallDesc(call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	pkg := fn.Pkg()
	sig, _ := fn.Type().(*types.Signature)
	isIface := false
	if sig != nil && sig.Recv() != nil {
		isIface = types.IsInterface(sig.Recv().Type())
	}
	if pkg != nil {
		switch pkg.Path() {
		case "time":
			if fn.Name() == "Sleep" {
				return "time.Sleep"
			}
		case "sync":
			if fn.Name() == "Wait" && sig != nil && sig.Recv() != nil {
				if isPkgNamed(sig.Recv().Type(), "sync", "WaitGroup") {
					return "sync.WaitGroup.Wait"
				}
				if isPkgNamed(sig.Recv().Type(), "sync", "Cond") {
					return "sync.Cond.Wait"
				}
			}
		case "net", "net/http", "crypto/tls":
			if !netBlockAllowlist[fn.Name()] {
				return fmt.Sprintf("network I/O (%s.%s)", pkg.Name(), fn.Name())
			}
		}
	}
	if isIface && (fn.Name() == "Query" || fn.Name() == "Exchange") {
		return fmt.Sprintf("Querier/Exchanger call (%s)", fn.Name())
	}
	return ""
}

// staticCallee resolves a call to a function declared in this package.
func (c *lockChecker) staticCallee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || c.pass.Pkg == nil || fn.Pkg() != c.pass.Pkg {
		return nil
	}
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	if _, declared := c.decls[fn]; !declared {
		return nil
	}
	return fn
}

func (c *lockChecker) collectDecls() {
	for _, file := range c.pass.Files {
		if isTestFile(c.pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := c.pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				c.decls[obj] = fn
			}
		}
	}
}

// computeSummaries derives per-function acquire sets and blocking
// flags, then closes them over same-package calls to a fixpoint.
// Bodies of go statements are excluded: the spawner does not hold what
// its goroutine later takes, nor does it wait on what the goroutine
// waits on.
func (c *lockChecker) computeSummaries() {
	for obj, fn := range c.decls {
		c.summaries[obj] = c.directSummary(fn.Body)
	}
	for changed := true; changed; {
		changed = false
		for _, sum := range c.summaries {
			for callee := range sum.callees {
				csum := c.summaries[callee]
				if csum == nil {
					continue
				}
				for id := range csum.acquires {
					if !sum.acquires[id] {
						sum.acquires[id] = true
						changed = true
					}
				}
				if sum.blocking == "" && csum.blocking != "" {
					sum.blocking = csum.blocking
					changed = true
				}
			}
		}
	}
}

func (c *lockChecker) directSummary(body *ast.BlockStmt) *lockSummary {
	sum := &lockSummary{
		acquires: make(map[string]bool),
		callees:  make(map[*types.Func]bool),
	}
	block := func(desc string) {
		if sum.blocking == "" {
			sum.blocking = desc
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // concurrent: not the caller's business
		case *ast.SendStmt:
			block("channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				block("channel receive")
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				block("select without default")
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					block("range over channel")
				}
			}
		case *ast.CallExpr:
			if id, op, ok := c.mutexOp(n); ok {
				if op == mutexAcquire && id != "" {
					sum.acquires[id] = true
				}
				return true
			}
			if desc := c.blockingCallDesc(n); desc != "" {
				block(desc)
				return true
			}
			if callee := c.staticCallee(n); callee != nil {
				sum.callees[callee] = true
			}
		}
		return true
	})
	return sum
}

// ── the flow-sensitive reporting walk ────────────────────────────────

// heldSet maps a held lock identity to the position it was acquired.
type heldSet map[string]token.Pos

func copyHeld(h heldSet) heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func intersectHeld(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

type lockWalker struct {
	c *lockChecker
	// funcLits queues literal bodies for their own walks: a closure
	// does not necessarily run where it is written, so it starts from
	// an empty held set.
	funcLits []*ast.FuncLit
	// suppressBlocking silences blocking-op reports while walking a
	// select's comm clauses — the select itself was already reported.
	suppressBlocking bool
}

func (c *lockChecker) walkFunc(body *ast.BlockStmt) {
	w := &lockWalker{c: c}
	w.stmts(body.List, make(heldSet))
	for i := 0; i < len(w.funcLits); i++ {
		w.stmts(w.funcLits[i].Body.List, make(heldSet))
	}
}

func (w *lockWalker) blockingOp(pos token.Pos, desc string, held heldSet) {
	if w.suppressBlocking {
		return
	}
	var hot []string
	for id := range held {
		if w.c.hot[id] {
			hot = append(hot, id)
		}
	}
	sort.Strings(hot)
	if len(hot) > 0 {
		w.c.reportf(pos, "blocking %s while hot lock %s is held", desc, strings.Join(hot, ", "))
	}
}

// addEdges records held→id acquisition edges, reporting an immediate
// self-deadlock when id is already held.
func (w *lockWalker) acquire(pos token.Pos, id string, held heldSet) {
	if id == "" {
		return
	}
	if _, already := held[id]; already {
		w.c.reportf(pos, "lock %s acquired while already held (sync mutexes are not reentrant)", id)
		return
	}
	for from := range held {
		w.c.addEdge(from, id, pos)
	}
	held[id] = pos
}

func (c *lockChecker) addEdge(from, to string, pos token.Pos) {
	m := c.edges[from]
	if m == nil {
		m = make(map[string]token.Pos)
		c.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// call applies one call expression's effects to held.
func (w *lockWalker) call(call *ast.CallExpr, held heldSet) {
	if id, op, ok := w.c.mutexOp(call); ok {
		switch op {
		case mutexAcquire:
			w.acquire(call.Pos(), id, held)
		case mutexRelease:
			delete(held, id)
		}
		return
	}
	if desc := w.c.blockingCallDesc(call); desc != "" {
		w.blockingOp(call.Pos(), desc, held)
		return
	}
	callee := w.c.staticCallee(call)
	if callee == nil {
		return
	}
	sum := w.c.summaries[callee]
	if sum == nil {
		return
	}
	for to := range sum.acquires {
		if _, already := held[to]; already {
			w.c.reportf(call.Pos(), "call to %s may acquire lock %s, which is already held", callee.Name(), to)
			continue
		}
		for from := range held {
			w.c.addEdge(from, to, call.Pos())
		}
	}
	if sum.blocking != "" {
		w.blockingOp(call.Pos(), fmt.Sprintf("call to %s (%s)", callee.Name(), sum.blocking), held)
	}
}

// scanExpr walks an expression for call effects and channel receives,
// queueing function literals for separate walks.
func (w *lockWalker) scanExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.funcLits = append(w.funcLits, n)
			return false
		case *ast.CallExpr:
			w.call(n, held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blockingOp(n.Pos(), "channel receive", held)
			}
		}
		return true
	})
}

// isTerminalCall recognises calls that never return: panic, os.Exit,
// runtime.Goexit, log.Fatal*.
func (w *lockWalker) isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := w.c.pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		fn, ok := w.c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			return strings.HasPrefix(fn.Name(), "Fatal")
		}
	}
	return false
}

// stmts walks a statement list, returning the held set at the fall-off
// point and whether control never reaches it.
func (w *lockWalker) stmts(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, s := range list {
		var terminated bool
		held, terminated = w.stmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.ExprStmt:
		w.scanExpr(s.X, held)
		return held, w.isTerminalCall(s.X)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
		w.blockingOp(s.Arrow, "channel send", held)
		return held, false
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
		return held, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
		return held, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave this path; fallthrough continues
		// into the next case body, which the switch walk joins anyway.
		return held, s.Tok != token.FALLTHROUGH
	case *ast.DeferStmt:
		if _, op, ok := w.c.mutexOp(s.Call); ok && op == mutexRelease {
			// Deferred unlock: the lock genuinely stays held until the
			// function returns, so keep it in the set.
			return held, false
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.funcLits = append(w.funcLits, lit)
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a, held)
		}
		return held, false
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.funcLits = append(w.funcLits, lit)
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a, held)
		}
		return held, false
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		bodyHeld, bodyTerm := w.stmts(s.Body.List, copyHeld(held))
		if s.Else == nil {
			if bodyTerm {
				return held, false
			}
			return intersectHeld(held, bodyHeld), false
		}
		elseHeld, elseTerm := w.stmt(s.Else, copyHeld(held))
		switch {
		case bodyTerm && elseTerm:
			return held, true
		case bodyTerm:
			return elseHeld, false
		case elseTerm:
			return bodyHeld, false
		default:
			return intersectHeld(bodyHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		bodyHeld, bodyTerm := w.stmts(s.Body.List, copyHeld(held))
		if s.Post != nil {
			w.stmt(s.Post, bodyHeld)
		}
		if bodyTerm {
			return held, false
		}
		return intersectHeld(held, bodyHeld), false
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		if t := w.c.pass.TypesInfo.Types[s.X].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.blockingOp(s.Pos(), "range over channel", held)
			}
		}
		bodyHeld, bodyTerm := w.stmts(s.Body.List, copyHeld(held))
		if bodyTerm {
			return held, false
		}
		return intersectHeld(held, bodyHeld), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.scanExpr(s.Tag, held)
		return w.clauses(s.Body.List, held, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		return w.clauses(s.Body.List, held, false)
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blockingOp(s.Pos(), "select without default", held)
		}
		return w.clauses(s.Body.List, held, true)
	}
	return held, false
}

// clauses joins the bodies of switch/select cases: the continuation
// held set is the intersection of every non-terminating clause exit,
// plus the entry set when no clause need run (a switch without
// default). exhaustive means exactly one clause always executes
// (select, or switch with default).
func (w *lockWalker) clauses(list []ast.Stmt, held heldSet, isSelect bool) (heldSet, bool) {
	hasDefault := false
	var exits []heldSet
	allTerm := true
	for _, clause := range list {
		var body []ast.Stmt
		ch := copyHeld(held)
		switch cc := clause.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.scanExpr(e, held)
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				// The comm op is the select's own blocking point,
				// already reported on the select statement.
				prev := w.suppressBlocking
				w.suppressBlocking = true
				ch, _ = w.stmt(cc.Comm, ch)
				w.suppressBlocking = prev
			}
			body = cc.Body
		default:
			continue
		}
		exit, term := w.stmts(body, ch)
		if !term {
			exits = append(exits, exit)
			allTerm = false
		}
	}
	exhaustive := isSelect || hasDefault
	if exhaustive && allTerm && len(list) > 0 {
		return held, true
	}
	var acc heldSet
	if !exhaustive {
		acc = copyHeld(held)
	}
	for _, e := range exits {
		if acc == nil {
			acc = e
		} else {
			acc = intersectHeld(acc, e)
		}
	}
	if acc == nil {
		acc = held
	}
	return acc, false
}

// reportCycles reports every acquisition edge that closes a cycle in
// the package lock graph. Both directions of an inversion are
// reported, each at the acquisition site that creates its edge.
func (c *lockChecker) reportCycles() {
	froms := make([]string, 0, len(c.edges))
	for from := range c.edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		tos := make([]string, 0, len(c.edges[from]))
		for to := range c.edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if c.pathExists(to, from, map[string]bool{}) {
				c.reportf(c.edges[from][to],
					"lock ordering inversion: %s acquired while %s is held, but elsewhere %s is acquired while %s is held",
					to, from, from, to)
			}
		}
	}
}

func (c *lockChecker) pathExists(from, to string, seen map[string]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for next := range c.edges[from] {
		if c.pathExists(next, to, seen) {
			return true
		}
	}
	return false
}
