package lint

import (
	"bytes"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// This file is the escape gate: the half of the noalloc contract the
// compiler itself proves. The noalloc analyzer rejects constructs that
// always allocate; the gate runs the gc compiler with -m=1 over each
// package containing //dohlint:noalloc annotations and fails if any
// escape diagnostic ("escapes to heap", "moved to heap") lands inside
// an annotated function — including diagnostics attributed to the
// caller's line when an inlined callee allocates.
//
// The compiler is invoked directly (`go tool compile -importcfg … -m=1`)
// rather than through `go build -gcflags=-m`, because the build cache
// swallows diagnostics on cache hits: a cached `go build` prints
// nothing and would green-light anything. A direct compile runs every
// time and is cheap — one compiler invocation per annotated package,
// with dependencies resolved from the export data `go list -export`
// already materialised.

// EscapeDiag is one -m escape diagnostic at a source position.
type EscapeDiag struct {
	File    string
	Line    int
	Col     int
	Message string
}

// escapeLineRE matches one compiler diagnostic line: file:line:col: msg.
// The file part is non-greedy up to the first :digits:digits: so
// absolute paths survive.
var escapeLineRE = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.*)$`)

// ParseEscapeOutput extracts escape diagnostics from gc -m output,
// ignoring the inlining/bounds-check chatter -m also emits. Exposed
// (and unit-tested) separately from the compile invocation so the
// parser is provable against canned compiler output.
func ParseEscapeOutput(out string) []EscapeDiag {
	var diags []EscapeDiag
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRE.FindStringSubmatch(strings.TrimRight(line, "\r"))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		lineNo, err1 := strconv.Atoi(m[2])
		col, err2 := strconv.Atoi(m[3])
		if err1 != nil || err2 != nil {
			continue
		}
		diags = append(diags, EscapeDiag{File: m[1], Line: lineNo, Col: col, Message: msg})
	}
	return diags
}

// funcRange is one annotated function's line extent in a file.
type funcRange struct {
	name       string
	start, end int
}

// EscapeGate compiles every package matched by patterns (default
// "./...") that contains //dohlint:noalloc annotations with -m=1 and
// returns a Diagnostic for each heap escape inside an annotated
// function, honouring dohlint:allow(noalloc) waivers. dir is the
// module root the patterns resolve against.
func EscapeGate(dir string, patterns ...string) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := exportMap(dir, patterns)
	if err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp("", "dohlint-escape")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	importcfg := filepath.Join(tmp, "importcfg")
	if err := writeImportcfg(importcfg, exports); err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkgDiags, err := escapeCheckPackage(t, importcfg, tmp)
		if err != nil {
			return nil, err
		}
		diags = append(diags, pkgDiags...)
	}
	return diags, nil
}

// writeImportcfg renders the packagefile lines `go tool compile`
// resolves imports from.
func writeImportcfg(path string, exports map[string]string) error {
	var b bytes.Buffer
	for imp, file := range exports {
		fmt.Fprintf(&b, "packagefile %s=%s\n", imp, file)
	}
	return os.WriteFile(path, b.Bytes(), 0o644)
}

// escapeCheckPackage runs the gate over one package: parse for
// annotations, compile with -m=1 if any, map escapes into annotated
// ranges.
func escapeCheckPackage(t *listedPackage, importcfg, tmp string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	// ranges[absfile] = annotated function extents; allowPass indexes
	// the dohlint:allow waivers shared with the noalloc analyzer.
	ranges := make(map[string][]funcRange)
	allowPass := &Pass{Analyzer: NoAlloc, Fset: fset}
	var absFiles []string
	annotated := false
	for _, name := range t.GoFiles {
		abs := filepath.Join(t.Dir, name)
		absFiles = append(absFiles, abs)
		f, err := parser.ParseFile(fset, abs, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		allowPass.noteAllowComments(f)
		for _, fn := range noallocFuncs(f) {
			annotated = true
			ranges[abs] = append(ranges[abs], funcRange{
				name:  fn.Name.Name,
				start: fset.Position(fn.Pos()).Line,
				end:   fset.Position(fn.End()).Line,
			})
		}
	}
	if !annotated {
		return nil, nil
	}
	args := []string{"tool", "compile",
		"-importcfg", importcfg,
		"-p", t.ImportPath,
		"-m=1",
		"-o", filepath.Join(tmp, "escape-check.a"),
	}
	args = append(args, absFiles...)
	cmd := exec.Command("go", args...)
	cmd.Dir = t.Dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		// -m diagnostics go to stderr with exit 0; a non-zero exit means
		// the package didn't compile, which the gate must surface rather
		// than pass silently.
		return nil, fmt.Errorf("go tool compile %s: %v\n%s", t.ImportPath, err, out.String())
	}
	var diags []Diagnostic
	for _, ed := range ParseEscapeOutput(out.String()) {
		file := ed.File
		if !filepath.IsAbs(file) {
			file = filepath.Join(t.Dir, file)
		}
		fr, ok := insideRange(ranges[file], ed.Line)
		if !ok {
			continue
		}
		if escapeWaived(allowPass, file, ed.Line) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      token.Position{Filename: file, Line: ed.Line, Column: ed.Col},
			Analyzer: "escape",
			Message:  fmt.Sprintf("%s inside //dohlint:noalloc function %s", ed.Message, fr.name),
		})
	}
	return diags, nil
}

// insideRange finds the annotated function covering line, if any.
func insideRange(ranges []funcRange, line int) (funcRange, bool) {
	for _, r := range ranges {
		if line >= r.start && line <= r.end {
			return r, true
		}
	}
	return funcRange{}, false
}

// escapeWaived reports whether a dohlint:allow waiver covers the line
// for the escape gate: an unscoped allow, or one scoped to noalloc or
// escape (the gate is the compiler-backed half of the noalloc
// contract, so either scope silences both halves).
func escapeWaived(p *Pass, file string, line int) bool {
	scopes, ok := p.allow[file][line]
	if !ok {
		return false
	}
	if scopes == nil {
		return true
	}
	for _, s := range scopes {
		if s == "noalloc" || s == "escape" {
			return true
		}
	}
	return false
}
