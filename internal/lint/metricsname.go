package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricsName polices the Prometheus metric surface:
//
//   - every registration on *metrics.Registry passes a compile-time
//     constant name (a const or literal — never a value assembled at
//     runtime, which would defeat grep and dashboards alike);
//   - names match dohpool_[a-z0-9_]+ — one namespace, lower snake case;
//   - counters end in _total; histograms end in a unit suffix
//     (_seconds, _bytes, _resolvers)
//     (the openmetrics unit conventions scrapers assume);
//   - no registration happens inside a //dohlint:noalloc function:
//     registering takes a lock and allocates family state, so it
//     belongs in constructors, not the serving path.
//
// The internal/metrics package itself is exempt (it implements the
// registry), as are test files (throwaway metrics are fine there).
var MetricsName = &Analyzer{
	Name: "metricsname",
	Doc:  "metric registrations use const dohpool_* names with conventional type suffixes, off the hot path",
	Run:  runMetricsName,
}

// metricNameRE is the required shape of every registered metric name.
var metricNameRE = regexp.MustCompile(`^dohpool_[a-z0-9_]+$`)

// registryMethods maps each *metrics.Registry registration method to
// the metric kind it creates, for suffix checking.
var registryMethods = map[string]string{
	"Counter":      "counter",
	"CounterVec":   "counter",
	"CounterFunc":  "counter",
	"Gauge":        "gauge",
	"GaugeVec":     "gauge",
	"GaugeFunc":    "gauge",
	"Histogram":    "histogram",
	"HistogramVec": "histogram",
}

func runMetricsName(pass *Pass) error {
	if pass.Pkg != nil && strings.HasSuffix(pass.Pkg.Path(), "internal/metrics") {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		noalloc := make(map[*ast.FuncDecl]bool)
		for _, fn := range noallocFuncs(file) {
			noalloc[fn] = true
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hot := noalloc[fn]
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, ok := registryCall(pass, call)
				if !ok {
					return true
				}
				if hot {
					pass.Reportf(call.Pos(), "metric registration inside //dohlint:noalloc function %s: registering locks and allocates; move it to a constructor", fn.Name.Name)
				}
				checkMetricName(pass, call, kind)
				return true
			})
		}
	}
	return nil
}

// registryCall reports whether call is a registration method on
// *metrics.Registry (matched by receiver type name and package suffix,
// so fixtures with their own metrics package exercise the rule) and,
// if so, which metric kind it registers.
func registryCall(pass *Pass, call *ast.CallExpr) (kind string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	kind, ok = registryMethods[sel.Sel.Name]
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != "Registry" {
		return "", false
	}
	pkg := named.Obj().Pkg()
	return kind, pkg != nil && strings.HasSuffix(pkg.Path(), "metrics")
}

// histogramUnitSuffixes are the recognised histogram units. A
// histogram's name must say what it counts; base units only (seconds,
// not milliseconds), per the Prometheus naming conventions, plus the
// domain unit _resolvers for per-pool resolver distributions.
var histogramUnitSuffixes = []string{"_seconds", "_bytes", "_resolvers"}

func hasHistogramUnitSuffix(name string) bool {
	for _, s := range histogramUnitSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// checkMetricName validates the registration's name argument: constant,
// namespaced, conventionally suffixed.
func checkMetricName(pass *Pass, call *ast.CallExpr, kind string) {
	if len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	tv := pass.TypesInfo.Types[arg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "metric name must be a compile-time constant string, got %s", types.ExprString(arg))
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRE.MatchString(name) {
		pass.Reportf(arg.Pos(), "metric name %q must match %s", name, metricNameRE)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "counter name %q must end in _total", name)
		}
	case "histogram":
		if !hasHistogramUnitSuffix(name) {
			pass.Reportf(arg.Pos(), "histogram name %q must end in a unit suffix (%s)", name, strings.Join(histogramUnitSuffixes, ", "))
		}
	}
}
