package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicCheck enforces atomic-access discipline: once any site in the
// package touches a variable through the package-level sync/atomic
// functions, every other access to that variable must be atomic too —
// a single plain load next to atomic stores is a data race the race
// detector only catches when the schedule cooperates, and on weak
// memory models it reads torn values silently.
//
// Identity follows the same scheme as lockcheck: struct fields are
// "Type.field" (instance-independent — if one shard's counter is
// atomic, all are), package-level variables are tracked by name.
// Composite-literal keys and the declaration itself are exempt
// (initialisation before the value is shared is the standard idiom).
//
// The analyzer also proves 64-bit alignment: a field passed to a
// 64-bit atomic must sit at an 8-byte-aligned offset under 32-bit
// layout rules (GOARCH=386), where the compiler only guarantees 4-byte
// alignment and a misaligned atomic faults at runtime. The typed
// wrappers (atomic.Int64, atomic.Uint64) carry their own alignment and
// access discipline and are always safe; preferring them is the fix
// this analyzer usually points at.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "fields touched via sync/atomic must be accessed atomically everywhere, with 32-bit-safe alignment",
	Run:  runAtomicCheck,
}

// atomicUse records where and how a variable is accessed atomically.
type atomicUse struct {
	firstPos token.Pos
	// field and recv support the alignment check; nil for package vars.
	field *types.Var
	index []int
	recv  types.Type
}

func runAtomicCheck(pass *Pass) error {
	tracked := make(map[string]*atomicUse)
	// insideAtomic marks the &x operands of atomic calls so the second
	// sweep does not report the atomic sites themselves.
	insideAtomic := make(map[ast.Node]bool)

	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPackageCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				id := syncIdentity(pass, u.X)
				if id == "" {
					continue
				}
				insideAtomic[u] = true
				use := tracked[id]
				if use == nil {
					use = &atomicUse{firstPos: u.X.Pos()}
					tracked[id] = use
				}
				if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok && use.field == nil {
					if selInfo, ok := pass.TypesInfo.Selections[sel]; ok {
						use.field, _ = selInfo.Obj().(*types.Var)
						use.index = selInfo.Index()
						use.recv = selInfo.Recv()
					}
				}
			}
			return true
		})
	}

	checkAtomicAlignment(pass, tracked)

	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if insideAtomic[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				id := syncIdentity(pass, n)
				if use, ok := tracked[id]; ok {
					pass.Reportf(n.Pos(), "%s is accessed atomically at %s but non-atomically here",
						id, pass.Fset.Position(use.firstPos))
					return false
				}
			case *ast.Ident:
				v, ok := pass.TypesInfo.Uses[n].(*types.Var)
				if !ok || pass.Pkg == nil || v.Parent() != pass.Pkg.Scope() {
					return true
				}
				if use, ok := tracked["var:"+v.Name()]; ok {
					pass.Reportf(n.Pos(), "var:%s is accessed atomically at %s but non-atomically here",
						v.Name(), pass.Fset.Position(use.firstPos))
				}
			}
			return true
		})
	}
	return nil
}

// isAtomicPackageCall reports whether call invokes one of the
// package-level sync/atomic functions (AddInt64, LoadUint32, ...).
// Methods of the typed wrappers have a receiver and are excluded: they
// cannot be mixed with plain access in the first place.
func isAtomicPackageCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// checkAtomicAlignment verifies every tracked 64-bit struct field sits
// at an 8-byte-aligned offset under 32-bit (GOARCH=386) layout, where
// the spec only guarantees word alignment and a misaligned 64-bit
// atomic panics at runtime.
func checkAtomicAlignment(pass *Pass, tracked map[string]*atomicUse) {
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		return
	}
	ids := make([]string, 0, len(tracked))
	for id := range tracked {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		use := tracked[id]
		if use.field == nil || use.recv == nil || !is64BitInt(use.field.Type()) {
			continue
		}
		offset, ok := fieldOffset32(sizes, use.recv, use.index)
		if !ok {
			continue
		}
		if offset%8 != 0 {
			pass.Reportf(use.field.Pos(),
				"64-bit atomic field %s sits at offset %d under 32-bit alignment rules; move it to the front of the struct or use the atomic.Int64/Uint64 types", id, offset)
		}
	}
}

func is64BitInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Int64 || b.Kind() == types.Uint64
}

// fieldOffset32 computes a field's byte offset from the start of its
// outermost struct under the given Sizes, following the selection's
// (possibly embedded) index path.
func fieldOffset32(sizes types.Sizes, recv types.Type, index []int) (int64, bool) {
	for {
		p, ok := recv.(*types.Pointer)
		if !ok {
			break
		}
		recv = p.Elem()
	}
	var total int64
	for _, idx := range index {
		st, ok := recv.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fields[i] = st.Field(i)
		}
		offsets := sizes.Offsetsof(fields)
		total += offsets[idx]
		recv = st.Field(idx).Type()
	}
	return total, true
}
