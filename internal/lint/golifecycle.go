package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLifecycle enforces goroutine-lifecycle hygiene in the long-lived
// packages (core, admin, udpbatch, loadgen): every go statement must be
// joined by a shutdown path, so that Close/Stop really quiesces the
// process and tests cannot leak goroutines that keep sockets and
// buffers alive past teardown.
//
// "Joined" is established structurally, using the same identity scheme
// as lockcheck so fields, package variables and locals all resolve:
//
//   - the goroutine body calls Done (possibly deferred) on a WaitGroup
//     that some function in the package Waits on, or
//   - the goroutine body closes a channel that some function in the
//     package receives from (<-ch, range, or a select case).
//
// Spawn targets are resolved through function literals, package-level
// functions and methods, and locals assigned a literal in the same
// function. A target the analyzer cannot resolve statically is
// reported too: an unresolvable spawn is unauditable by humans for the
// same reason.
//
// Genuine fire-and-forget goroutines — bounded hedged probes, an
// http.Server.Serve loop whose Close tears down the listener — are
// waived line-by-line with a scoped allow comment that documents why
// the goroutine cannot outlive anything that matters.
var GoLifecycle = &Analyzer{
	Name: "golifecycle",
	Doc:  "go statements in long-lived packages must be joined by a shutdown path",
	Run:  runGoLifecycle,
}

// lifecyclePackages lists the long-lived packages golifecycle gates.
var lifecyclePackages = []string{
	"internal/core",
	"internal/admin",
	"internal/udpbatch",
	"internal/loadgen",
}

func lifecycleGated(importPath string) bool {
	if importPath == "golifecycle" {
		return true // the fixture package
	}
	for _, p := range lifecyclePackages {
		if importPath == p || strings.HasSuffix(importPath, "/"+p) {
			return true
		}
	}
	return false
}

func runGoLifecycle(pass *Pass) error {
	importPath := ""
	if pass.Pkg != nil {
		importPath = pass.Pkg.Path()
	}
	if !lifecycleGated(importPath) {
		return nil
	}
	g := &lifecycleChecker{
		pass:    pass,
		waits:   make(map[string]bool),
		recvs:   make(map[string]bool),
		decls:   make(map[*types.Func]*ast.FuncDecl),
		visited: make(map[*ast.BlockStmt]bool),
	}
	g.collectEvidence()
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			goStmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			g.checkGoStmt(goStmt)
			return true
		})
	}
	return nil
}

type lifecycleChecker struct {
	pass *Pass
	// waits holds identities of WaitGroups some function Waits on.
	waits map[string]bool
	// recvs holds identities of channels some function receives from.
	recvs map[string]bool
	// decls maps package function objects to their declarations.
	decls map[*types.Func]*ast.FuncDecl
	// visited guards against join-evidence recursion through cyclic
	// call chains.
	visited map[*ast.BlockStmt]bool
}

// collectEvidence sweeps the package for the two join signals —
// WaitGroup.Wait calls and channel receives — and indexes function
// declarations for spawn-target resolution.
func (g *lifecycleChecker) collectEvidence() {
	for _, file := range g.pass.Files {
		if isTestFile(g.pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := g.pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					g.decls[obj] = fn
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if fn, ok := g.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Name() == "Wait" {
						if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
							isPkgNamed(sig.Recv().Type(), "sync", "WaitGroup") {
							if id := syncIdentity(g.pass, sel.X); id != "" {
								g.waits[id] = true
							}
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if id := syncIdentity(g.pass, n.X); id != "" {
						g.recvs[id] = true
					}
				}
			case *ast.RangeStmt:
				if t := g.pass.TypesInfo.Types[n.X].Type; t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						if id := syncIdentity(g.pass, n.X); id != "" {
							g.recvs[id] = true
						}
					}
				}
			}
			return true
		})
	}
}

// checkGoStmt resolves the spawned body and reports when no join
// evidence reaches it.
func (g *lifecycleChecker) checkGoStmt(goStmt *ast.GoStmt) {
	body, resolved := g.spawnBody(goStmt)
	if !resolved {
		g.pass.Reportf(goStmt.Pos(), "cannot statically resolve the goroutine target, so its lifecycle is unauditable; spawn a literal or named function, or waive this line")
		return
	}
	g.visited = map[*ast.BlockStmt]bool{}
	if !g.joined(body, 0) {
		g.pass.Reportf(goStmt.Pos(), "goroutine is not joined by any shutdown path (no WaitGroup.Done matched by a Wait, no close matched by a receive)")
	}
}

// spawnBody resolves the body the go statement runs: a literal, a
// package function/method, or a local variable assigned a literal in
// the enclosing function.
func (g *lifecycleChecker) spawnBody(goStmt *ast.GoStmt) (*ast.BlockStmt, bool) {
	switch fun := ast.Unparen(goStmt.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, true
	case *ast.Ident:
		switch obj := g.pass.TypesInfo.Uses[fun].(type) {
		case *types.Func:
			if decl, ok := g.decls[obj]; ok {
				return decl.Body, true
			}
		case *types.Var:
			if lit := g.literalAssignedTo(obj, goStmt); lit != nil {
				return lit.Body, true
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := g.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if orig := obj.Origin(); orig != nil {
				obj = orig
			}
			if decl, ok := g.decls[obj]; ok {
				return decl.Body, true
			}
		}
	}
	return nil, false
}

// literalAssignedTo finds the function literal assigned to local
// variable v in the file that contains the go statement (the
// `attempt := func(...) {...}; go attempt(...)` idiom).
func (g *lifecycleChecker) literalAssignedTo(v *types.Var, goStmt *ast.GoStmt) *ast.FuncLit {
	var file *ast.File
	for _, f := range g.pass.Files {
		if f.Pos() <= goStmt.Pos() && goStmt.Pos() <= f.End() {
			file = f
			break
		}
	}
	if file == nil {
		return nil
	}
	var lit *ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := g.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = g.pass.TypesInfo.Uses[id]
			}
			if obj != v {
				continue
			}
			if fl, ok := ast.Unparen(assign.Rhs[i]).(*ast.FuncLit); ok {
				lit = fl
			} else {
				lit = nil // reassigned to something unresolvable
			}
		}
		return true
	})
	return lit
}

// joined reports whether the goroutine body produces join evidence:
// a Done on a waited WaitGroup or a close of a received-from channel,
// directly or through one level of same-package calls (the body often
// just runs a named method whose defer does the signalling).
func (g *lifecycleChecker) joined(body *ast.BlockStmt, depth int) bool {
	if body == nil || g.visited[body] || depth > 3 {
		return false
	}
	g.visited[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if b, ok := g.pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "close" && len(call.Args) == 1 {
				if id := syncIdentity(g.pass, call.Args[0]); id != "" && g.recvs[id] {
					found = true
				}
				return true
			}
			if fn, ok := g.pass.TypesInfo.Uses[fun].(*types.Func); ok {
				if decl, ok := g.decls[fn]; ok && g.joined(decl.Body, depth+1) {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := g.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
				if fn.Name() == "Done" {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
						isPkgNamed(sig.Recv().Type(), "sync", "WaitGroup") {
						if id := syncIdentity(g.pass, fun.X); id != "" && g.waits[id] {
							found = true
						}
						return true
					}
				}
				if orig := fn.Origin(); orig != nil {
					fn = orig
				}
				if decl, ok := g.decls[fn]; ok && g.joined(decl.Body, depth+1) {
					found = true
				}
			}
		}
		return true
	})
	return found
}
