package lint

import (
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// BuildTag checks platform-constraint hygiene in packages that pin
// syscall or socket-option numbers (internal/udpbatch,
// internal/reuseport — but the rules are generic):
//
//   - a file declaring a pinned syscall number (an integer const named
//     sys* or SYS_*) must carry an explicit //go:build line pinning
//     both GOOS and GOARCH — syscall numbers vary per kernel *and* per
//     architecture;
//   - a file declaring a pinned socket-option number (so*) or invoking
//     syscall.Syscall*/RawSyscall* must pin at least GOOS;
//   - for every package-scope name, the platforms on which some file
//     references it must be a subset of the platforms on which some
//     file declares it — which is exactly the "every _linux.go needs a
//     portable sibling exporting the same names" rule, generalised,
//     and catches the cross-compile break before a GOOS=windows CI leg
//     does.
//
// Unlike the other analyzers this one is purely syntactic: it parses
// every .go file in the package directory, including files excluded
// from the current build configuration (which is the whole point), so
// it needs no type information and does not skip test files (a test
// file with a wrong tag breaks `go test` on the platforms it leaks
// onto).
var BuildTag = &Analyzer{
	Name: "buildtag",
	Doc:  "pinned syscall tables carry exact //go:build constraints; platform-constrained names have full-coverage siblings",
	Run:  runBuildTag,
}

// The platform matrix constraints are evaluated over. Wide enough to
// include every port the project cross-compiles in CI, small enough to
// stay exhaustive-checkable.
var (
	matrixGOOS   = []string{"linux", "darwin", "windows", "freebsd"}
	matrixGOARCH = []string{"amd64", "arm64", "386", "arm", "riscv64"}
)

// knownGOOS/knownGOARCH drive filename-implied constraints
// (foo_linux_amd64.go) and tag evaluation; supersets of the matrix.
var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}
var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// unixGOOS evaluates the "unix" build tag.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// platformSet is a bitset over the matrixGOOS × matrixGOARCH grid.
type platformSet uint32

func platformBit(osIdx, archIdx int) platformSet {
	return 1 << (osIdx*len(matrixGOARCH) + archIdx)
}

var universalSet platformSet = 1<<(len(matrixGOOS)*len(matrixGOARCH)) - 1

// describe renders the platforms in set \ within, for diagnostics.
func (s platformSet) describe() string {
	var out []string
	for i, goos := range matrixGOOS {
		for j, goarch := range matrixGOARCH {
			if s&platformBit(i, j) != 0 {
				out = append(out, goos+"/"+goarch)
			}
		}
	}
	if len(out) > 4 {
		out = append(out[:4], "…")
	}
	return strings.Join(out, ", ")
}

// pinsGOOS reports whether the set excludes at least one matrix GOOS
// entirely (i.e. the constraint actually constrains the OS).
func (s platformSet) pinsGOOS() bool {
	for i := range matrixGOOS {
		all := true
		for j := range matrixGOARCH {
			if s&platformBit(i, j) == 0 {
				all = false
				break
			}
		}
		if !all {
			return true
		}
	}
	return false
}

// pinsGOARCH reports whether, on some GOOS the set includes, at least
// one GOARCH is excluded — the constraint distinguishes architectures.
func (s platformSet) pinsGOARCH() bool {
	for i := range matrixGOOS {
		var have, miss bool
		for j := range matrixGOARCH {
			if s&platformBit(i, j) != 0 {
				have = true
			} else {
				miss = true
			}
		}
		if have && miss {
			return true
		}
	}
	return false
}

// taggedFile is one parsed file plus its resolved platform coverage.
type taggedFile struct {
	name     string // base name
	file     *ast.File
	coverage platformSet
	// explicit is the parsed //go:build expression, nil if the file has
	// none (filename constraints may still apply).
	explicit constraint.Expr
}

func runBuildTag(pass *Pass) error {
	files, err := parsePackageDir(pass)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return nil
	}
	for _, tf := range files {
		checkPinnedNumbers(pass, tf)
	}
	checkNameCoverage(pass, files)
	return nil
}

// parsePackageDir parses every .go file in the package directory —
// including ones the current build configuration excludes — grouped to
// the package under analysis (external foo_test packages ride along;
// their bare identifiers cannot name this package's decls).
func parsePackageDir(pass *Pass) ([]*taggedFile, error) {
	if pass.Dir == "" {
		return nil, nil
	}
	paths, err := filepath.Glob(filepath.Join(pass.Dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var files []*taggedFile
	for _, path := range paths {
		f, err := parser.ParseFile(pass.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			continue // files that don't parse are the compiler's problem, not buildtag's
		}
		pass.noteAllowComments(f)
		tf := &taggedFile{name: filepath.Base(path), file: f}
		tf.explicit = explicitConstraint(f)
		tf.coverage = fileCoverage(tf.name, tf.explicit)
		files = append(files, tf)
	}
	return files, nil
}

// explicitConstraint returns the file's parsed //go:build expression,
// or nil. Only comments above the package clause count, per the spec.
func explicitConstraint(f *ast.File) constraint.Expr {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				expr, err := constraint.Parse(c.Text)
				if err == nil {
					return expr
				}
			}
		}
	}
	return nil
}

// fileCoverage computes which matrix platforms build the file, from
// the explicit constraint AND the filename-implied one.
func fileCoverage(name string, expr constraint.Expr) platformSet {
	implOS, implArch := filenameConstraint(name)
	var set platformSet
	for i, goos := range matrixGOOS {
		if implOS != "" && implOS != goos {
			continue
		}
		for j, goarch := range matrixGOARCH {
			if implArch != "" && implArch != goarch {
				continue
			}
			if expr == nil || expr.Eval(tagEvaluator(goos, goarch)) {
				set |= platformBit(i, j)
			}
		}
	}
	return set
}

// filenameConstraint extracts the GOOS/GOARCH a file name implies:
// foo_linux.go, foo_amd64.go, foo_linux_amd64.go (with an optional
// _test suffix before .go).
func filenameConstraint(name string) (goos, goarch string) {
	base := strings.TrimSuffix(name, ".go")
	base = strings.TrimSuffix(base, "_test")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return "", ""
	}
	last := parts[len(parts)-1]
	if knownGOARCH[last] {
		goarch = last
		if len(parts) >= 3 && knownGOOS[parts[len(parts)-2]] {
			goos = parts[len(parts)-2]
		}
		return goos, goarch
	}
	if knownGOOS[last] {
		return last, ""
	}
	return "", ""
}

// tagEvaluator returns the build-tag truth function for one platform.
func tagEvaluator(goos, goarch string) func(string) bool {
	return func(tag string) bool {
		switch {
		case tag == goos || tag == goarch:
			return true
		case tag == "unix":
			return unixGOOS[goos]
		case strings.HasPrefix(tag, "go1"):
			return true // language-version tags: assume current toolchain
		case tag == "cgo":
			return false
		}
		return false
	}
}

// checkPinnedNumbers applies the pinned-number rules to one file.
func checkPinnedNumbers(pass *Pass, tf *taggedFile) {
	var syscallConst, sockoptConst token.Pos = token.NoPos, token.NoPos
	for _, decl := range tf.file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) || !isIntLiteral(vs.Values[i]) {
					continue
				}
				switch {
				case isPinnedSyscallName(name.Name):
					if syscallConst == token.NoPos {
						syscallConst = name.Pos()
					}
				case isPinnedSockoptName(name.Name):
					if sockoptConst == token.NoPos {
						sockoptConst = name.Pos()
					}
				}
			}
		}
	}
	rawSyscall := findRawSyscallCall(tf.file)

	if syscallConst != token.NoPos {
		switch {
		case tf.explicit == nil:
			pass.Reportf(syscallConst, "file %s pins syscall numbers but has no explicit //go:build constraint", tf.name)
		case !tf.coverage.pinsGOOS() || !tf.coverage.pinsGOARCH():
			pass.Reportf(syscallConst, "file %s pins syscall numbers but its //go:build constraint does not pin both GOOS and GOARCH (covers %s)", tf.name, tf.coverage.describe())
		}
	}
	for pos, what := range map[token.Pos]string{sockoptConst: "socket-option numbers", rawSyscall: "raw syscalls by number"} {
		if pos == token.NoPos {
			continue
		}
		switch {
		case tf.explicit == nil:
			pass.Reportf(pos, "file %s uses %s but has no explicit //go:build constraint", tf.name, what)
		case !tf.coverage.pinsGOOS():
			pass.Reportf(pos, "file %s uses %s but its //go:build constraint does not pin GOOS (covers %s)", tf.name, what, tf.coverage.describe())
		}
	}
}

// isPinnedSyscallName matches syscall-number const names: sysRecvmmsg,
// SYS_RECVMMSG.
func isPinnedSyscallName(name string) bool {
	return strings.HasPrefix(name, "SYS_") ||
		(strings.HasPrefix(name, "sys") && len(name) > 3 && name[3] >= 'A' && name[3] <= 'Z')
}

// isPinnedSockoptName matches socket-option const names: soReusePort,
// soDomain, SO_REUSEPORT.
func isPinnedSockoptName(name string) bool {
	return strings.HasPrefix(name, "SO_") ||
		(strings.HasPrefix(name, "so") && len(name) > 2 && name[2] >= 'A' && name[2] <= 'Z')
}

// findRawSyscallCall returns the position of the first
// syscall.Syscall*/RawSyscall* call in the file, or NoPos.
func findRawSyscallCall(f *ast.File) token.Pos {
	found := token.NoPos
	ast.Inspect(f, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "syscall" {
			return true
		}
		if strings.HasPrefix(sel.Sel.Name, "Syscall") || strings.HasPrefix(sel.Sel.Name, "RawSyscall") {
			found = call.Pos()
		}
		return true
	})
	return found
}

// isIntLiteral reports whether e is (possibly a parenthesised or
// unary-negated) integer literal.
func isIntLiteral(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT
	case *ast.UnaryExpr:
		return isIntLiteral(e.X)
	}
	return false
}

// checkNameCoverage enforces the declaration-coverage rule: a file must
// not reference a package-scope name on platforms where no file
// declares it.
func checkNameCoverage(pass *Pass, files []*taggedFile) {
	pkgName := files[0].file.Name.Name
	// declCoverage: package-scope name → union of declaring files' platforms.
	declCoverage := make(map[string]platformSet)
	declaredIn := make(map[string]map[*taggedFile]bool)
	for _, tf := range files {
		if tf.file.Name.Name != pkgName {
			continue
		}
		for _, name := range packageScopeNames(tf.file) {
			declCoverage[name] |= tf.coverage
			if declaredIn[name] == nil {
				declaredIn[name] = make(map[*taggedFile]bool)
			}
			declaredIn[name][tf] = true
		}
	}
	for _, tf := range files {
		if tf.file.Name.Name != pkgName {
			continue
		}
		reported := make(map[string]bool)
		forEachBareIdent(tf.file, func(id *ast.Ident) {
			name := id.Name
			decl, known := declCoverage[name]
			if !known || declaredIn[name][tf] || reported[name] {
				return
			}
			if decl == universalSet {
				return // declared everywhere: can't break a build
			}
			if missing := tf.coverage &^ decl; missing != 0 {
				reported[name] = true
				pass.Reportf(id.Pos(), "%s references %s, which no file declares on %s — add a portable sibling or tighten this file's //go:build",
					tf.name, name, missing.describe())
			}
		})
	}
}

// packageScopeNames lists the package-scope names a file declares
// (functions without receivers, types, vars, consts).
func packageScopeNames(f *ast.File) []string {
	var names []string
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil && d.Name.Name != "init" {
				names = append(names, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					names = append(names, s.Name.Name)
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.Name != "_" {
							names = append(names, n.Name)
						}
					}
				}
			}
		}
	}
	return names
}

// forEachBareIdent visits identifiers that could resolve to
// package-scope declarations: not selector fields, not the blank
// identifier, not declaration names themselves (those are handled by
// declCoverage union).
func forEachBareIdent(f *ast.File, fn func(*ast.Ident)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			ast.Inspect(n.X, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					fn(id)
				}
				return true
			})
			return false // skip Sel
		case *ast.KeyValueExpr:
			// Keys in composite literals are usually field names; skip
			// them, visit the value.
			ast.Inspect(n.Value, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					fn(id)
				}
				return true
			})
			return false
		case *ast.Ident:
			if n.Name != "_" {
				fn(n)
			}
		case *ast.ImportSpec:
			return false
		}
		return true
	})
}
