package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// NoAlloc enforces the //dohlint:noalloc annotation contract: the
// serving fast path's functions must not contain constructs the
// compiler is known to lower to heap allocations. The check is
// deliberately lexical and conservative — it catches the obvious
// regressions (a stray fmt.Sprintf, a closure, string concatenation)
// at vet time with a precise position; the escape gate (`dohlint
// escape`) then has the compiler itself prove the remainder, including
// the cases no syntax-level rule can decide (appends that grow,
// variables that leak through interfaces).
//
// Reported inside an annotated function:
//
//   - any call into package fmt (formatting allocates);
//   - string concatenation with a non-constant operand;
//   - make and new (use pooled or caller-provided buffers);
//   - function literals (closure capture escapes);
//   - go statements (goroutine start allocates its stack frame);
//   - string([]byte), []byte(string) and their rune twins, except as a
//     map index, delete key or comparison operand, which the compiler
//     rewrites allocation-free;
//   - taking the address of a composite literal;
//   - implicitly boxing a non-pointer value into an interface at a
//     call argument or return value.
//
// A line-scoped `// dohlint:allow(noalloc) — why` waiver documents the
// sanctioned exceptions: amortised growth paths, error returns that
// only box after a syscall already failed.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //dohlint:noalloc must not contain allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, fn := range noallocFuncs(file) {
			if fn.Body == nil {
				pass.Reportf(fn.Pos(), "function %s is annotated //dohlint:noalloc but has no body to check", fn.Name.Name)
				continue
			}
			checkNoAllocBody(pass, fn)
		}
	}
	return nil
}

// checkNoAllocBody walks one annotated function body. The walk tracks
// enough ancestry to recognise the allocation-free conversion forms
// (map index, delete, comparison).
func checkNoAllocBody(pass *Pass, fn *ast.FuncDecl) {
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //dohlint:noalloc function %s allocates", fn.Name.Name)
			return false // don't descend: the closure body is its own scope
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in //dohlint:noalloc function %s allocates", fn.Name.Name)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address of composite literal in //dohlint:noalloc function %s allocates", fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass, n) && !isConstant(pass, n) {
				pass.Reportf(n.Pos(), "string concatenation in //dohlint:noalloc function %s allocates", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, fn, n, stack)
		case *ast.ReturnStmt:
			checkBoxedReturns(pass, fn, n)
		}
		stack = append(stack, n)
		return true
	}
	ast.Inspect(fn.Body, visit)
}

// checkNoAllocCall handles the call-shaped rules: builtin allocators,
// fmt, conversions, and interface boxing of arguments.
func checkNoAllocCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	switch target := calleeOf(pass, call).(type) {
	case *types.Builtin:
		switch target.Name() {
		case "make":
			pass.Reportf(call.Pos(), "make in //dohlint:noalloc function %s allocates", fn.Name.Name)
		case "new":
			pass.Reportf(call.Pos(), "new in //dohlint:noalloc function %s allocates", fn.Name.Name)
		}
		return
	case *types.TypeName, *types.Nil:
		// Conversion: T(x). Only the string/byte-slice family allocates
		// in ways this analyzer polices.
		checkConversion(pass, fn, call, stack)
		return
	case *types.Func:
		pkg := target.Pkg()
		if pkg != nil && pkg.Path() == "fmt" {
			pass.Reportf(call.Pos(), "call to %s.%s in //dohlint:noalloc function %s allocates",
				pkg.Name(), target.Name(), fn.Name.Name)
			return
		}
		if pkg != nil && pkg.Path() == "runtime" && target.Name() == "KeepAlive" {
			return // compiler intrinsic: its any parameter never boxes
		}
	}
	checkBoxedArgs(pass, fn, call)
}

// calleeOf resolves what a call expression invokes: a *types.Func for
// ordinary and method calls, *types.Builtin for builtins, a
// *types.TypeName when the "call" is a conversion, nil when unknown
// (calls through function-typed values).
func calleeOf(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.InterfaceType, *ast.StructType, *ast.FuncType:
		// Composite type conversion like []byte(s): report through the
		// conversion path by synthesising a TypeName-shaped answer.
		return conversionMarker
	case *ast.IndexExpr:
		// Generic instantiation: resolve the underlying identifier.
		if id, ok := fun.X.(*ast.Ident); ok {
			return pass.TypesInfo.Uses[id]
		}
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			return pass.TypesInfo.Uses[sel.Sel]
		}
	}
	return nil
}

// conversionMarker is calleeOf's sentinel for conversions written with
// composite type syntax ([]byte(s)), which have no object to resolve.
var conversionMarker = types.NewTypeName(token.NoPos, nil, "<conversion>", nil)

// checkConversion reports string ↔ byte/rune-slice conversions outside
// the compiler's allocation-free contexts: indexing a map, the key of
// delete, or either side of a comparison.
func checkConversion(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	src := pass.TypesInfo.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	dst := tv.Type
	if !conversionAllocates(src, dst) {
		return
	}
	if inAllocationFreeContext(pass, call, stack) {
		return
	}
	pass.Reportf(call.Pos(), "conversion %s → %s in //dohlint:noalloc function %s allocates (outside map-index/delete/comparison contexts)",
		src, dst, fn.Name.Name)
}

// conversionAllocates reports whether a conversion from src to dst
// copies its operand onto the heap: string([]byte), []byte(string) and
// the rune variants.
func conversionAllocates(src, dst types.Type) bool {
	isString := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isString(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isString(dst))
}

// inAllocationFreeContext reports whether the conversion's immediate
// use is one the compiler rewrites without allocating: m[string(b)],
// delete(m, string(b)), or string(b) == x.
func inAllocationFreeContext(pass *Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.IndexExpr:
		if parent.Index == call {
			_, isMap := pass.TypesInfo.Types[parent.X].Type.Underlying().(*types.Map)
			return isMap
		}
	case *ast.BinaryExpr:
		return parent.Op == token.EQL || parent.Op == token.NEQ
	case *ast.CallExpr:
		if b, ok := calleeOf(pass, parent).(*types.Builtin); ok && b.Name() == "delete" {
			return len(parent.Args) == 2 && parent.Args[1] == call
		}
	}
	return false
}

// checkBoxedArgs reports call arguments implicitly converted to an
// interface parameter from a non-pointer concrete type — the boxing
// the runtime services with a heap allocation. Pointer-shaped values
// (pointers, maps, channels, funcs, unsafe.Pointer) box for free.
func checkBoxedArgs(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			param = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if s, okSlice := params.At(params.Len() - 1).Type().(*types.Slice); okSlice {
				param = s.Elem()
			}
		}
		if param == nil {
			continue
		}
		if boxingAllocates(pass.TypesInfo.Types[arg].Type, param) && !isConstant(pass, arg) {
			pass.Reportf(arg.Pos(), "argument boxes a non-pointer value into %s in //dohlint:noalloc function %s, which allocates",
				param, fn.Name.Name)
		}
	}
}

// checkBoxedReturns applies the boxing rule to return values against
// the function's result types (error results being the common case).
func checkBoxedReturns(pass *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return // bare return or single multi-value call: nothing implicit to box here
	}
	for i, expr := range ret.Results {
		if boxingAllocates(pass.TypesInfo.Types[expr].Type, results.At(i).Type()) && !isConstant(pass, expr) {
			pass.Reportf(expr.Pos(), "return value boxes a non-pointer value into %s in //dohlint:noalloc function %s, which allocates",
				results.At(i).Type(), fn.Name.Name)
		}
	}
}

// boxingAllocates reports whether implicitly converting a value of
// type from into parameter/result type to heap-allocates: to must be
// an interface, from a concrete type that is not pointer-shaped.
func boxingAllocates(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, isIface := to.Underlying().(*types.Interface); !isIface {
		return false
	}
	if _, isIface := from.Underlying().(*types.Interface); isIface {
		return false // interface → interface: no new allocation
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false // pointer-shaped: the interface word holds it directly
	case *types.Basic:
		if b := from.Underlying().(*types.Basic); b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil {
			return false
		}
	}
	if sz := types.SizesFor("gc", "amd64"); sz != nil && sz.Sizeof(from) == 0 {
		return false // zero-size values box to a static sentinel
	}
	return true
}

func isStringType(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstant(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() != constant.Unknown
}
