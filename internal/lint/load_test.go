package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The loader edge cases: directories with nothing buildable, files the
// build context excludes, imports with no export data behind them, and
// patterns go list cannot resolve. These are the failure modes the
// fixture harness and the escape gate lean on without exercising.

func lintModuleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadDirEmptyPackage(t *testing.T) {
	root := lintModuleRoot(t)

	t.Run("no files at all", func(t *testing.T) {
		dir := t.TempDir()
		_, err := LoadDir(root, dir)
		if err == nil || !strings.Contains(err.Error(), "no buildable Go files") {
			t.Fatalf("want 'no buildable Go files' error, got %v", err)
		}
	})

	t.Run("only non-Go files", func(t *testing.T) {
		dir := writeFiles(t, map[string]string{
			"README.md": "prose\n",
			"notes.txt": "notes\n",
		})
		_, err := LoadDir(root, dir)
		if err == nil || !strings.Contains(err.Error(), "no buildable Go files") {
			t.Fatalf("want 'no buildable Go files' error, got %v", err)
		}
	})

	t.Run("only build-excluded files", func(t *testing.T) {
		dir := writeFiles(t, map[string]string{
			"ignored.go": "//go:build neverbuildme\n\npackage empty\n",
		})
		_, err := LoadDir(root, dir)
		if err == nil || !strings.Contains(err.Error(), "no buildable Go files") {
			t.Fatalf("want 'no buildable Go files' error, got %v", err)
		}
	})
}

func TestLoadDirExcludesConstrainedFiles(t *testing.T) {
	root := lintModuleRoot(t)
	dir := writeFiles(t, map[string]string{
		"keep.go":    "package mixed\n\nfunc keep() int { return 1 }\n",
		"skipped.go": "//go:build neverbuildme\n\npackage mixed\n\nfunc clash() int { return broken }\n",
	})
	pkg, err := LoadDir(root, dir)
	if err != nil {
		t.Fatalf("LoadDir must ignore constrained files entirely: %v", err)
	}
	if len(pkg.Files) != 1 || pkg.GoFiles[0] != "keep.go" {
		t.Fatalf("want exactly keep.go selected, got %v", pkg.GoFiles)
	}
}

// TestLoadDirMissingDependency covers the vendored-or-absent-deps case:
// an import no export data can be materialised for must surface as a
// load error naming the import, not a panic or a silently partial
// package.
func TestLoadDirMissingDependency(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	root := lintModuleRoot(t)
	dir := writeFiles(t, map[string]string{
		"dep.go": "package deps\n\nimport \"dohpool/internal/doesnotexist\"\n\nvar _ = doesnotexist.Thing\n",
	})
	_, err := LoadDir(root, dir)
	if err == nil {
		t.Fatal("want an error for an unresolvable import")
	}
	if !strings.Contains(err.Error(), "doesnotexist") {
		t.Fatalf("error should name the missing import: %v", err)
	}
}

func TestLoadBadPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	root := lintModuleRoot(t)
	_, err := Load(root, "./internal/nosuchpackage/...")
	if err == nil {
		t.Fatal("want an error for a pattern matching nothing")
	}
}

// TestLoadSinglePackage pins the happy path Load contract the vet-tool
// and standalone modes build on: syntax, types and file lists all
// populated for a real package.
func TestLoadSinglePackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list and type-checks")
	}
	root := lintModuleRoot(t)
	pkgs, err := Load(root, "./internal/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want one package, got %d", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.ImportPath != "dohpool/internal/metrics" || pkg.Pkg == nil || pkg.TypesInfo == nil || len(pkg.Files) == 0 {
		t.Fatalf("incomplete load: %+v", pkg)
	}
}
