// Package noallocfix seeds one violation of every noalloc rule, plus
// the negative cases the analyzer must leave alone.
package noallocfix

import (
	"fmt"
	"runtime"
)

var seen = map[string]int{}

func helper() {}

func consume(x any) { _ = x }

// bad trips every construct rule, one per line.
//
//dohlint:noalloc
func bad(b []byte, s string) string {
	formatted := fmt.Sprintf("%d", len(b)) // want `call to fmt\.Sprintf in //dohlint:noalloc function bad allocates`
	buf := make([]byte, 8)                 // want `make in //dohlint:noalloc function bad allocates`
	_ = buf
	p := new(int) // want `new in //dohlint:noalloc function bad allocates`
	_ = p
	f := func() {} // want `closure in //dohlint:noalloc function bad allocates`
	f()
	go helper()        // want `go statement in //dohlint:noalloc function bad allocates`
	joined := s + "-x" // want `string concatenation in //dohlint:noalloc function bad allocates`
	_ = joined
	t := &struct{ n int }{1} // want `address of composite literal in //dohlint:noalloc function bad allocates`
	_ = t
	copied := string(b) // want `conversion .* allocates`
	_ = copied
	return formatted
}

// boxed trips the interface-boxing rules at a call argument and a
// return value.
//
//dohlint:noalloc
func boxed(v int) any {
	consume(v) // want `argument boxes a non-pointer value`
	return v   // want `return value boxes a non-pointer value`
}

// good exercises every allocation-free form the analyzer must accept:
// map index, delete and comparison conversions, pointer boxing, and the
// runtime.KeepAlive intrinsic.
//
//dohlint:noalloc
func good(b []byte) int {
	if _, ok := seen[string(b)]; ok {
		delete(seen, string(b))
	}
	if string(b) == "done" {
		return 1
	}
	consume(&seen)
	runtime.KeepAlive(b)
	return len(b)
}

// waived shows the documented escape hatch: the allocation is
// sanctioned by a scoped allow comment.
//
//dohlint:noalloc
func waived() []byte {
	// dohlint:allow(noalloc) — fixture: amortised growth stand-in
	return make([]byte, 1)
}

// unannotated may allocate freely — no directive, no checks.
func unannotated() string {
	return fmt.Sprintf("%v", make([]int, 4))
}
