// Package lockfix seeds the lockcheck fixture: a lock-order inversion
// between two mutexes, blocking operations of every recognised kind
// under //dohlint:hotlock mutexes, and the negative cases the analyzer
// must stay silent on (early-unlock branches, cold locks, waivers).
package lockfix

import (
	"net"
	"sync"
	"time"
)

// Querier mirrors the production resolver-invocation interface.
type Querier interface {
	Query(name string) error
}

type server struct {
	//dohlint:hotlock
	mu sync.Mutex
	//dohlint:hotlock
	rw   sync.RWMutex
	cold sync.Mutex
	q    Querier
	out  chan int
	in   chan int
}

// ab and ba seed the lock-order inversion: mu→cold here, cold→mu below.
func (s *server) ab() {
	s.mu.Lock()
	s.cold.Lock() // want `lock ordering inversion: server.cold acquired while server.mu is held`
	s.cold.Unlock()
	s.mu.Unlock()
}

func (s *server) ba() {
	s.cold.Lock()
	s.mu.Lock() // want `lock ordering inversion: server.mu acquired while server.cold is held`
	s.mu.Unlock()
	s.cold.Unlock()
}

func (s *server) sleepy() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking time.Sleep while hot lock server.mu is held`
	s.mu.Unlock()
}

func (s *server) sends() {
	s.rw.RLock()
	s.out <- 1 // want `blocking channel send while hot lock server.rw is held`
	s.rw.RUnlock()
}

func (s *server) recvs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.in // want `blocking channel receive while hot lock server.mu is held`
}

func (s *server) dials() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = net.Dial("udp", "127.0.0.1:53") // want `blocking network I/O \(net.Dial\) while hot lock server.mu is held`
}

func (s *server) queries() {
	s.mu.Lock()
	_ = s.q.Query("example.org.") // want `blocking Querier/Exchanger call \(Query\) while hot lock server.mu is held`
	s.mu.Unlock()
}

// helperBlocks is clean on its own: the sleep happens with nothing
// held. Its blocking behaviour must still reach callers via summaries.
func (s *server) helperBlocks() {
	time.Sleep(time.Millisecond)
}

func (s *server) callsHelper() {
	s.mu.Lock()
	s.helperBlocks() // want `blocking call to helperBlocks \(time.Sleep\) while hot lock server.mu is held`
	s.mu.Unlock()
}

func (s *server) reacquires() {
	s.mu.Lock()
	s.mu.Lock() // want `lock server.mu acquired while already held`
	s.mu.Unlock()
	s.mu.Unlock()
}

// branchy must stay silent: the early branch unlocks before it sleeps
// and terminates, so neither sleep runs with the lock held.
func (s *server) branchy(ok bool) {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// selectDone must stay silent too: every select case returns, so code
// after the if never runs with the lock released twice, and the
// blocking select happens only after the unlock.
func (s *server) selectDone(done chan struct{}) int {
	s.mu.Lock()
	if s.out != nil {
		s.mu.Unlock()
		select {
		case <-done:
			return 1
		case v := <-s.in:
			return v
		}
	}
	s.mu.Unlock()
	return 0
}

// coldSleep is not reported: cold is not a hot lock.
func (s *server) coldSleep() {
	s.cold.Lock()
	time.Sleep(time.Millisecond)
	s.cold.Unlock()
}

// waived shows the escape hatch for a sanctioned exception.
func (s *server) waived() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // dohlint:allow(lockcheck) — fixture: sanctioned sleep
	s.mu.Unlock()
}

type misuse struct {
	//dohlint:hotlock
	n int // want `hotlock directive on something other than a named sync.Mutex/sync.RWMutex field`
}

func (m *misuse) use() int { return m.n }
