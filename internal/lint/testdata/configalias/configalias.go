// Package cfgfix seeds flat/grouped Config alias drift: a deprecated
// field whose counterpart is gone, one with a type mismatch, one the
// resolved() fold ignores, and one with a malformed notice.
package cfgfix

// SubConfig is the grouped spelling of the flat knobs below.
type SubConfig struct {
	Size  int
	Level int
}

// Config mirrors the dohpool root surface: grouped sub-structs plus
// deprecated flat aliases.
type Config struct {
	Sub SubConfig

	// Size is the working alias: counterpart exists, types agree,
	// resolved() folds it.
	//
	// Deprecated: use Sub.Size.
	Size int
	// Level drifted: the grouped field became an int.
	//
	// Deprecated: use Sub.Level.
	Level float64 // want `deprecated Config field Level has type float64 but grouped counterpart Sub\.Level has type int`
	// Gone points at a counterpart nobody declares.
	//
	// Deprecated: use Sub.Missing.
	Gone int // want `grouped counterpart Sub\.Missing does not exist`
	// Stray has a notice that names nothing.
	//
	// Deprecated: use the grouped spelling instead.
	Stray int // want `deprecation notice names no Group\.Field counterpart`
	// Ignored has a healthy counterpart but resolved() never reads it.
	//
	// Deprecated: use Sub.Size.
	Ignored int // want `deprecated Config field Ignored is not consumed in resolved\(\)`
}

func pickInt(grouped, flat int) int {
	if grouped != 0 {
		return grouped
	}
	return flat
}

func (c Config) resolved() Config {
	out := c
	out.Sub.Size = pickInt(c.Sub.Size, c.Size)
	out.Size = out.Sub.Size
	// Level and its counterpart are both read, so only the type
	// mismatch is reported for them.
	out.Sub.Level = pickInt(c.Sub.Level, int(c.Level))
	return out
}
