// Package buildtagfix seeds build-constraint violations around pinned
// syscall tables and platform-coverage drift.
package buildtagfix

// A pinned syscall number in a file with no //go:build line at all.
const sysFixture = 299 // want `pins syscall numbers but has no explicit //go:build constraint`
