//go:build linux && amd64

package buildtagfix

// Fully pinned syscall table: compliant.
const sysPinned = 299

// pinnedOnly is referenced by nothing portable, so its narrow coverage
// is fine.
func pinnedOnly() int { return sysPinned }
