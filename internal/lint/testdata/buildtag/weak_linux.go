//go:build linux

package buildtagfix

// Pinned per-arch syscall number under an OS-only constraint: valid on
// linux/amd64, silently wrong on linux/arm64.
const sysWeak = 307 // want `does not pin both GOOS and GOARCH`
