package buildtagfix

func use() int {
	return impl() // want `references impl, which no file declares on`
}
