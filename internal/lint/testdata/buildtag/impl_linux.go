//go:build linux

package buildtagfix

// A socket-option number under an explicit OS pin: compliant.
const soFixture = 15

// impl has no portable sibling — referencing it from an unconstrained
// file is the seeded coverage break.
func impl() int { return soFixture }
