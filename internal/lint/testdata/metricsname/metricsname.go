// Package metricsfix seeds metric-registration violations: dynamic
// names, namespace breaks, wrong type suffixes, and a registration on
// an annotated hot path.
package metricsfix

import "dohpool/internal/metrics"

const reads = "dohpool_fixture_reads_total"

func register(reg *metrics.Registry, dyn string) {
	reg.Counter(reads, "const name: ok")
	reg.Counter("dohpool_fixture_writes_total", "literal name: ok")
	reg.Counter(dyn, "dynamic name")                             // want `metric name must be a compile-time constant string`
	reg.Counter("dohpool_fixture_writes", "bad suffix")          // want `counter name "dohpool_fixture_writes" must end in _total`
	reg.Histogram("dohpool_fixture_sizes", "bad", nil)           // want `histogram name "dohpool_fixture_sizes" must end in a unit suffix`
	reg.Histogram("dohpool_fixture_wait_seconds", "", nil)       // ok
	reg.Histogram("dohpool_fixture_frame_bytes", "ok", nil)      // ok
	reg.Histogram("dohpool_fixture_quorum_resolvers", "ok", nil) // ok: domain unit
	reg.Gauge("Dohpool_Fixture_Bad", "bad namespace")            // want `metric name "Dohpool_Fixture_Bad" must match`
	reg.Gauge("fixture_depth", "bad namespace")                  // want `metric name "fixture_depth" must match`
	// dohlint:allow(metricsname) — fixture: grandfathered suffix
	reg.Histogram("dohpool_fixture_quorum_size", "waived", nil)
}

// hot must not register at all, whatever the name.
//
//dohlint:noalloc
func hot(reg *metrics.Registry) {
	reg.Counter("dohpool_fixture_hot_total", "on the fast path") // want `metric registration inside //dohlint:noalloc function hot`
}
