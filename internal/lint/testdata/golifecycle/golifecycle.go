// Package golifecycle fixes the goroutine-lifecycle contract: spawns
// joined through a waited WaitGroup or a closed-then-received channel
// stay silent, leaks and unresolvable spawn targets are reported, and
// fire-and-forget survives only behind a scoped waiver. The package
// name doubles as the analyzer's fixture gate (see lifecycleGated).
package golifecycle

import "sync"

type worker struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// startJoined is joined through the WaitGroup Close waits on.
func (w *worker) startJoined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
	}()
}

// startClosed is joined through the done channel Close receives from.
func (w *worker) startClosed() {
	go w.run()
}

func (w *worker) run() {
	defer close(w.done)
}

func (w *worker) Close() {
	w.wg.Wait()
	<-w.done
}

func (w *worker) leak() {
	go func() {}() // want `goroutine is not joined by any shutdown path`
}

func (w *worker) leakNamed() {
	go orphan() // want `goroutine is not joined by any shutdown path`
}

func orphan() {}

// localJoin joins a fan-out on a function-local WaitGroup.
func (w *worker) localJoin() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// localLeak resolves the spawn target through the local literal — and
// finds no join inside it.
func (w *worker) localLeak() {
	attempt := func() {}
	go attempt() // want `goroutine is not joined by any shutdown path`
}

// dynamic spawns through a parameter the analyzer cannot resolve.
func (w *worker) dynamic(f func()) {
	go f() // want `cannot statically resolve the goroutine target`
}

// waived is the documented fire-and-forget escape hatch.
func (w *worker) waived() {
	// dohlint:allow(golifecycle) — fixture: sanctioned fire-and-forget
	go func() {}()
}
