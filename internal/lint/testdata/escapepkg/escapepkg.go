// Package escapepkg compiles cleanly and passes the syntax-level
// noalloc analyzer — no make, no conversions, no boxing — but breaks
// the contract in a way only the compiler's escape analysis proves:
// a local variable leaks through the returned pointer.
package escapepkg

// Leak returns the address of a local, which -m reports as
// "moved to heap: x". No syntax rule fires on this function.
//
//dohlint:noalloc
func Leak(n int) *int {
	x := n * 2
	return &x
}

// Stay keeps everything on the stack: the gate must not flag it.
//
//dohlint:noalloc
func Stay(n int) int {
	var buf [64]byte
	for i := range buf {
		buf[i] = byte(n + i)
	}
	return int(buf[n&63])
}
