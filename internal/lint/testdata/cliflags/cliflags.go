// Package cliflags (fixture) mirrors the real internal/cliflags shape
// against the real dohpool.Config, but leaves one grouped knob with no
// flag assignment — the drift the configalias analyzer must catch.
package cliflags // want `grouped Config field Serve\.UDPSockets has no cliflags assignment`

import "dohpool"

func apply(cfg *dohpool.Config) {
	cfg.Cache.Size = 1
	cfg.Cache.Shards = 1
	cfg.Cache.StaleWhileRevalidate = 1
	cfg.Refresh.Ahead = 0.5
	cfg.Refresh.MinHits = 1
	cfg.Health.HedgeDelay = 1
	cfg.Health.DisableHedging = true
	cfg.Health.BreakerThreshold = 1
	cfg.Health.BreakerCooldown = 1
	cfg.Trust.Window = 1
	cfg.Trust.MinScore = 0.5
	cfg.Chaos.Payload = "replace"
	cfg.Chaos.Resolvers = nil
	cfg.Chaos.Prob = 1
	cfg.Chaos.Seed = 1
	cfg.Chaos.Net = dohpool.NetChaosConfig{}
	cfg.Serve.UDPWorkers = 1
	cfg.Serve.UDPBatch = 1
	// Serve.UDPSockets deliberately missing.
	cfg.Serve.MaxTCPConns = 1
	cfg.Serve.DoHAddr = ":8443"
	cfg.Serve.DoTAddr = ":8853"
	cfg.Serve.TLSCert = "cert.pem"
	cfg.Serve.TLSKey = "key.pem"
	cfg.Serve.TLSSelfSigned = true
	cfg.Serve.AdminAddr = ":8053"
}
