// Package atomicfix seeds the atomiccheck fixture: mixed
// atomic/plain access to fields and package variables, a 64-bit field
// misaligned under 32-bit layout, and the always-safe typed wrappers.
package atomicfix

import "sync/atomic"

type counters struct {
	pad  uint32
	hits int64 // want `64-bit atomic field counters.hits sits at offset 4 under 32-bit alignment rules`
	ok   uint32
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddUint32(&c.ok, 1)
}

func (c *counters) read() int64 {
	return c.hits // want `counters.hits is accessed atomically at .* but non-atomically here`
}

func (c *counters) readOK() uint32 {
	return atomic.LoadUint32(&c.ok)
}

type aligned struct {
	hits uint64
	pad  uint32
}

func (a *aligned) bump() {
	atomic.AddUint64(&a.hits, 1)
}

func (a *aligned) mixed() {
	a.hits++ // want `aligned.hits is accessed atomically at .* but non-atomically here`
}

var global int32

func bumpGlobal() {
	atomic.AddInt32(&global, 1)
}

func readGlobal() int32 {
	return global // want `var:global is accessed atomically at .* but non-atomically here`
}

// typed wrappers carry their own discipline: never reported.
type typed struct{ n atomic.Int64 }

func (t *typed) ok() int64 {
	t.n.Add(1)
	return t.n.Load()
}

// initialisation in a composite literal happens before the value is
// shared and stays exempt.
func fresh() *counters {
	return &counters{hits: 0}
}

// waived documents a sanctioned pre-publication read.
func (c *counters) waived() int64 {
	return c.hits // dohlint:allow(atomiccheck) — fixture: pre-publication read
}
