// Package loading for dohlint's standalone mode, fixture tests and the
// escape gate. The module deliberately has no dependency on
// golang.org/x/tools, so instead of go/packages this loader drives the
// go command directly: `go list -json` names the target packages and
// `go list -deps -export -json` yields compiled export data for every
// dependency, which go/importer consumes while the targets themselves
// are type-checked from source (the analyzers need syntax trees with
// type information, not just export summaries).
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// LoadedPackage is one target package ready for analysis: parsed
// syntax, type information and its on-disk location.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	// GoFiles are the build-selected source file names (no directory).
	GoFiles []string
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
}

// goList runs `go list` with args from dir and decodes the JSON object
// stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportMap runs `go list -deps -export` over patterns and returns
// importpath → export-data file for every package that has one.
func exportMap(dir string, patterns []string) (map[string]string, error) {
	args := append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m, nil
}

// exportImporter resolves imports through compiled export data files,
// with optional import-path canonicalisation (the vet config's
// ImportMap).
type exportImporter struct {
	gc        types.Importer
	canonical map[string]string
}

// newExportImporter builds a types.Importer over path → export-file
// packageFile, canonicalising paths through importMap first (nil for
// the identity mapping).
func newExportImporter(fset *token.FileSet, packageFile map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		gc:        importer.ForCompiler(token.NewFileSet(), "gc", lookup),
		canonical: importMap,
	}
}

func (im *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if c, ok := im.canonical[path]; ok {
		path = c
	}
	return im.gc.Import(path)
}

// TypeCheck parses and type-checks one package from source files,
// resolving imports through export data. files are absolute paths;
// importMap may be nil.
func TypeCheck(fset *token.FileSet, importPath, dir string, files []string, packageFile, importMap map[string]string) (*LoadedPackage, error) {
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: newExportImporter(fset, packageFile, importMap),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	lp := &LoadedPackage{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Pkg:        pkg,
		TypesInfo:  info,
	}
	for _, f := range files {
		lp.GoFiles = append(lp.GoFiles, filepath.Base(f))
	}
	return lp, nil
}

// Load resolves patterns (e.g. "./...") relative to dir and returns
// every matched package parsed and type-checked, test files excluded
// (the go vet -vettool path covers those; see the package doc).
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,Name,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := exportMap(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*LoadedPackage
	fset := token.NewFileSet()
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		lp, err := TypeCheck(fset, t.ImportPath, t.Dir, files, exports, nil)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir
// (which may live under testdata, invisible to `go list` wildcards),
// using moduleDir's build context to resolve its imports. Files not
// matching the current build constraints are excluded from
// type-checking, mirroring a real build.
func LoadDir(moduleDir, dir string) (*LoadedPackage, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			files = append(files, filepath.Join(dir, name))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	// Collect the fixture's imports and materialise export data for
	// them (and their dependency closure) through the module proper.
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range af.Imports {
			path := imp.Path.Value
			importSet[path[1:len(path)-1]] = true
		}
	}
	var imports []string
	for p := range importSet {
		if p != "unsafe" {
			imports = append(imports, p)
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		if exports, err = exportMap(moduleDir, imports); err != nil {
			return nil, err
		}
	}
	return TypeCheck(fset, filepath.Base(dir), dir, files, exports, nil)
}
