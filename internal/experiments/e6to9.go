package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/chronos"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
	"dohpool/internal/testbed"
	"dohpool/internal/transport"
	"dohpool/internal/zone"
)

// E6Duplicates reproduces the Section IV requirement: duplicates in the
// combined pool must count as individual servers. When benign resolvers
// return overlapping sets (here: rotation disabled, so all three see the
// same four addresses), de-duplicating hands a single compromised
// resolver a far larger pool share.
func E6Duplicates(opts Options) (*Table, error) {
	opts.applyDefaults()
	tb, err := testbed.Start(testbed.Config{
		Rotation:  zone.RotateNone, // all resolvers see identical answers
		Adversary: testbed.AdversaryResolver,
		Plan:      attack.FixedPlan(3, 0),
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	gen, err := tb.Generator(testbed.GeneratorOptions{})
	if err != nil {
		return nil, err
	}
	ctx, cancel := ctxWithTimeout()
	defer cancel()
	pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
	if err != nil {
		return nil, err
	}

	withDup := core.Fraction(pool.Addrs, attack.IsAttackerAddr)
	deduped := core.Dedupe(pool.Addrs)
	withoutDup := core.Fraction(deduped, attack.IsAttackerAddr)

	t := &Table{
		ID:      "E6",
		Title:   "Section IV: duplicate handling under overlapping benign answers (N=3, 1 compromised)",
		Columns: []string{"pool variant", "size", "attacker fraction", "attacker reaches y=1/2"},
		Rows: [][]string{
			{"duplicates kept (paper)", strconv.Itoa(len(pool.Addrs)), f4(withDup),
				strconv.FormatBool(withDup >= 0.5)},
			{"deduplicated (ablation A2)", strconv.Itoa(len(deduped)), f4(withoutDup),
				strconv.FormatBool(withoutDup >= 0.5)},
		},
	}
	ok := withDup < 0.5 && withoutDup >= 0.5
	t.Notes = fmt.Sprintf(
		"keeping duplicates bounds the minority attacker at %.2f; deduplication lifts it to %.2f — "+
			"confirming the paper's requirement: %t", withDup, withoutDup, ok)
	if !ok {
		return t, errors.New("E6: duplicate-handling property not demonstrated")
	}
	return t, nil
}

// E7Chronos reproduces the paper's end-to-end story with the NTP layer:
// a plain single-resolver lookup under off-path attack hands Chronos a
// fully attacker-controlled pool (time shifted); the distributed-DoH pool
// with a compromised minority keeps the clock correct.
func E7Chronos(opts Options) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:    "E7",
		Title: "DoH pool + Chronos vs attacked plain DNS (malicious NTP shift 600s)",
		Columns: []string{"scenario", "pool attacker fraction", "chronos offset",
			"panicked", "clock captured"},
	}

	type scenario struct {
		name      string
		resolvers int
		plan      attack.Plan
		adversary testbed.AdversaryMode
	}
	scenarios := []scenario{
		{"plain DNS, 1 resolver, off-path attacked", 1,
			attack.FixedPlan(1, 0), testbed.AdversaryResolver},
		{"distributed DoH, N=3, 1 compromised", 3,
			attack.FixedPlan(3, 0), testbed.AdversaryResolver},
		{"distributed DoH, N=3, clean", 3,
			attack.Plan{}, testbed.AdversaryNone},
	}

	captures := make([]bool, 0, len(scenarios))
	for _, sc := range scenarios {
		tb, err := testbed.Start(testbed.Config{
			PoolSize:  9,
			Resolvers: sc.resolvers,
			Adversary: sc.adversary,
			Plan:      sc.plan,
			Seed:      opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		fleet, err := testbed.StartNTPFleet(testbed.NTPFleetConfig{BenignAddrs: tb.BenignAddrs})
		if err != nil {
			tb.Close()
			return nil, err
		}
		gen, err := tb.Generator(testbed.GeneratorOptions{})
		if err != nil {
			fleet.Close()
			tb.Close()
			return nil, err
		}
		ctx, cancel := ctxWithTimeout()
		pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		if err != nil {
			cancel()
			fleet.Close()
			tb.Close()
			return nil, fmt.Errorf("E7 %q: %w", sc.name, err)
		}
		frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr)

		// Default drift bound: Chronos' condition 2 rejects the 600 s
		// shift in sampling rounds; a fully attacker-controlled pool is
		// still captured via the panic routine's cropped average.
		cl, err := chronos.New(chronos.Config{
			Pool:    pool.Addrs,
			Sampler: fleet,
			Seed:    opts.Seed,
		})
		if err != nil {
			cancel()
			fleet.Close()
			tb.Close()
			return nil, err
		}
		res, err := cl.Poll(ctx)
		cancel()
		fleet.Close()
		tb.Close()
		if err != nil {
			return nil, fmt.Errorf("E7 %q poll: %w", sc.name, err)
		}
		captured := res.Offset > 300*time.Second || res.Offset < -300*time.Second
		captures = append(captures, captured)
		t.Rows = append(t.Rows, []string{
			sc.name, f4(frac), res.Offset.Round(time.Millisecond).String(),
			strconv.FormatBool(res.Panicked), strconv.FormatBool(captured),
		})
	}

	ok := captures[0] && !captures[1] && !captures[2]
	t.Notes = fmt.Sprintf(
		"plain DNS loses the clock, distributed DoH keeps it despite one compromised resolver: %t", ok)
	if !ok {
		return t, errors.New("E7: end-to-end property not demonstrated")
	}
	return t, nil
}

// E8Majority reproduces the Section II majority filter: addresses
// injected by a resolver minority are excluded, and (ablation A4) benign
// rotation does cost availability — rotated benign addresses may miss the
// majority threshold too.
func E8Majority(opts Options) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:    "E8",
		Title: "Section II majority filter (N=5, 2 compromised)",
		Columns: []string{"rotation", "pool size", "majority size",
			"attacker addrs in majority", "benign addrs excluded"},
	}

	for _, rot := range []zone.RotationPolicy{zone.RotateNone, zone.RotateRoundRobin} {
		tb, err := testbed.Start(testbed.Config{
			Resolvers: 5,
			Rotation:  rot,
			Adversary: testbed.AdversaryResolver,
			Plan:      attack.FixedPlan(5, 0, 1),
			Seed:      opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		gen, err := tb.Generator(testbed.GeneratorOptions{WithMajority: true})
		if err != nil {
			tb.Close()
			return nil, err
		}
		ctx, cancel := ctxWithTimeout()
		pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		cancel()
		tb.Close()
		if err != nil {
			return nil, fmt.Errorf("E8 rotation=%v: %w", rot, err)
		}

		attackerInMajority := 0
		for _, a := range pool.Majority {
			if attack.IsAttackerAddr(a) {
				attackerInMajority++
			}
		}
		// Benign addresses present in the pool but excluded from the
		// majority set (availability cost of the filter under rotation).
		majority := make(map[string]bool, len(pool.Majority))
		for _, a := range pool.Majority {
			majority[a.String()] = true
		}
		excluded := 0
		for _, a := range core.Dedupe(pool.Addrs) {
			if !attack.IsAttackerAddr(a) && !majority[a.String()] {
				excluded++
			}
		}
		t.Rows = append(t.Rows, []string{
			rot.String(), strconv.Itoa(len(pool.Addrs)), strconv.Itoa(len(pool.Majority)),
			strconv.Itoa(attackerInMajority), strconv.Itoa(excluded),
		})
		if attackerInMajority > 0 {
			t.Notes = "FAIL: attacker address survived the majority vote"
			return t, errors.New("E8: majority filter admitted attacker address")
		}
	}
	t.Notes = "minority-injected addresses never pass the vote; rotation (A4) can exclude benign addresses — " +
		"the availability trade-off of majority filtering"
	return t, nil
}

// E9Overhead measures what the paper's Section V claims is cheap: pool
// generation latency as N grows (concurrent vs sequential fan-out, A3)
// and the latency of the backward-compatible DNS front-end against a
// plain direct DNS query.
func E9Overhead(opts Options) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:      "E9",
		Title:   "overhead: median pool-generation latency vs N (loopback)",
		Columns: []string{"configuration", "N", "median latency", "vs plain DNS"},
	}

	const rounds = 15
	median := func(samples []time.Duration) time.Duration {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		return samples[len(samples)/2]
	}

	// Baseline: one plain-DNS UDP query straight to an authoritative
	// server.
	base, err := testbed.Start(testbed.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	var plainSamples []time.Duration
	udp := &transport.UDP{}
	for i := 0; i < rounds; i++ {
		q, err := dnswire.NewQuery(base.Domain(), dnswire.TypeA)
		if err != nil {
			base.Close()
			return nil, err
		}
		ctx, cancel := ctxWithTimeout()
		start := time.Now()
		if _, err := udp.Exchange(ctx, q, base.Auth[0].Addr()); err != nil {
			cancel()
			base.Close()
			return nil, err
		}
		plainSamples = append(plainSamples, time.Since(start))
		cancel()
	}
	base.Close()
	plain := median(plainSamples)
	t.Rows = append(t.Rows, []string{"plain DNS (single query)", "1", plain.String(), "1.0x"})

	ratio := func(d time.Duration) string {
		if plain <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(d)/float64(plain))
	}

	for _, n := range []int{1, 3, 5, 9, 15} {
		for _, sequential := range []bool{false, true} {
			if sequential && n == 1 {
				continue
			}
			tb, err := testbed.Start(testbed.Config{
				Resolvers:            n,
				DisableResolverCache: true,
				Seed:                 opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			gen, err := tb.Generator(testbed.GeneratorOptions{Sequential: sequential})
			if err != nil {
				tb.Close()
				return nil, err
			}
			var samples []time.Duration
			for i := 0; i < rounds; i++ {
				ctx, cancel := ctxWithTimeout()
				start := time.Now()
				if _, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
					cancel()
					tb.Close()
					return nil, fmt.Errorf("E9 N=%d: %w", n, err)
				}
				samples = append(samples, time.Since(start))
				cancel()
			}
			tb.Close()
			mode := "concurrent"
			if sequential {
				mode = "sequential (A3)"
			}
			med := median(samples)
			t.Rows = append(t.Rows, []string{
				"distributed DoH, " + mode, strconv.Itoa(n), med.String(), ratio(med),
			})
		}
	}

	// Simulated WAN: resolver i answers after 20ms + i*5ms, which is
	// where the concurrent fan-out pays: max(RTT) vs sum(RTT).
	for _, n := range []int{3, 5} {
		for _, sequential := range []bool{false, true} {
			tb, err := testbed.Start(testbed.Config{
				Resolvers:      n,
				WANLatencyBase: 20 * time.Millisecond,
				WANLatencyStep: 5 * time.Millisecond,
				Seed:           opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			gen, err := tb.Generator(testbed.GeneratorOptions{Sequential: sequential})
			if err != nil {
				tb.Close()
				return nil, err
			}
			var samples []time.Duration
			for i := 0; i < 5; i++ { // WAN rounds are slow; fewer samples
				ctx, cancel := ctxWithTimeout()
				start := time.Now()
				if _, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
					cancel()
					tb.Close()
					return nil, fmt.Errorf("E9 WAN N=%d: %w", n, err)
				}
				samples = append(samples, time.Since(start))
				cancel()
			}
			tb.Close()
			mode := "concurrent"
			if sequential {
				mode = "sequential (A3)"
			}
			t.Rows = append(t.Rows, []string{
				"simulated WAN 20-" + strconv.Itoa(20+5*(n-1)) + "ms, " + mode,
				strconv.Itoa(n), median(samples).Round(time.Millisecond).String(), "-",
			})
		}
	}

	// The backward-compatible DNS frontend.
	tb, err := testbed.Start(testbed.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	gen, err := tb.Generator(testbed.GeneratorOptions{})
	if err != nil {
		tb.Close()
		return nil, err
	}
	fe, err := core.NewFrontend("127.0.0.1:0", gen, 0)
	if err != nil {
		tb.Close()
		return nil, err
	}
	var feSamples []time.Duration
	for i := 0; i < rounds; i++ {
		q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
		if err != nil {
			fe.Close()
			tb.Close()
			return nil, err
		}
		ctx, cancel := ctxWithTimeout()
		start := time.Now()
		if _, err := udp.Exchange(ctx, q, fe.Addr()); err != nil {
			cancel()
			fe.Close()
			tb.Close()
			return nil, err
		}
		feSamples = append(feSamples, time.Since(start))
		cancel()
	}
	fe.Close()
	tb.Close()
	med := median(feSamples)
	t.Rows = append(t.Rows, []string{"DNS frontend (legacy app view)", "3", med.String(), ratio(med)})

	t.Notes = "concurrent fan-out keeps latency ~flat in N (slowest resolver dominates); " +
		"sequential grows linearly — the A3 ablation; absolute numbers are loopback-only"
	return t, nil
}
