package experiments

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/chronos"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
	"dohpool/internal/testbed"
)

// E10PoolJoin reproduces the caveat the paper raises in Section IV:
// "attackers can try to join the NTP pool themselves and operate
// malicious NTP servers. Hence, for the overall NTP ecosystem to
// maintain security a distributed mechanism on the NTP layer should also
// be used, such as the Chronos proposal."
//
// The DNS layer is completely clean here (no resolver or path is
// attacked); instead a fraction f of the pool's NTP servers are
// attacker-operated. Distributed DoH cannot help — the pool faithfully
// reflects the (partly malicious) registry — and it is Chronos' crop
// that decides the outcome: safe below ~1/3, captured above.
func E10PoolJoin(opts Options) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:    "E10",
		Title: "Section IV caveat: attacker joins the NTP pool (DNS layer clean, shift 600s)",
		Columns: []string{"malicious pool servers", "fraction f", "chronos offset",
			"clock captured", "expected (crop 1/3)"},
	}

	const poolSize = 12
	captured := make([]bool, 0, 4)
	for _, malicious := range []int{0, 3, 8, 10} {
		tb, err := testbed.Start(testbed.Config{
			PoolSize:   poolSize,
			MaxAnswers: -1, // full RRset so the pool mirrors the registry
			Seed:       opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		// The first `malicious` registry addresses are attacker-operated
		// NTP servers behind benign-looking IPs.
		fleet, err := testbed.StartNTPFleet(testbed.NTPFleetConfig{
			BenignAddrs:     tb.BenignAddrs,
			MaliciousBenign: tb.BenignAddrs[:malicious],
		})
		if err != nil {
			tb.Close()
			return nil, err
		}
		gen, err := tb.Generator(testbed.GeneratorOptions{})
		if err != nil {
			fleet.Close()
			tb.Close()
			return nil, err
		}
		ctx, cancel := ctxWithTimeout()
		pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		if err != nil {
			cancel()
			fleet.Close()
			tb.Close()
			return nil, fmt.Errorf("E10 malicious=%d: %w", malicious, err)
		}

		// Chronos runs at its real operating point: the default drift
		// bound (condition 2) rejects a 600 s shift in normal rounds, so
		// the panic routine's cropped average over the WHOLE pool decides
		// — safe below the 1/3 crop threshold, captured above.
		cl, err := chronos.New(chronos.Config{
			Pool:    pool.Addrs,
			Sampler: fleet,
			Seed:    opts.Seed,
		})
		if err != nil {
			cancel()
			fleet.Close()
			tb.Close()
			return nil, err
		}
		// Poll repeatedly: a single lucky draw is not the property; the
		// attacker wins if it EVER captures the clock.
		worst := time.Duration(0)
		for i := 0; i < 10; i++ {
			res, err := cl.Poll(ctx)
			if err != nil {
				continue
			}
			if res.Offset > worst {
				worst = res.Offset
			}
		}
		cancel()
		fleet.Close()
		tb.Close()

		f := float64(malicious) / poolSize
		isCaptured := worst > 300*time.Second
		captured = append(captured, isCaptured)
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(malicious) + "/" + strconv.Itoa(poolSize), f4(f),
			worst.Round(time.Millisecond).String(), strconv.FormatBool(isCaptured),
			strconv.FormatBool(f > 1.0/3),
		})
	}

	ok := !captured[0] && !captured[1] && captured[2] && captured[3]
	t.Notes = fmt.Sprintf("DNS-layer consensus cannot filter registry-level malice; Chronos' 1/3 crop "+
		"threshold decides — matching the paper's call for defence at both layers: %t "+
		"(an attacker shifting by less than the drift bound per poll is Chronos' residual exposure, "+
		"out of scope here)", ok)
	if !ok {
		return t, errors.New("E10: layer-separation property not demonstrated")
	}
	return t, nil
}

// E11CachePersistence quantifies what a single won off-path race buys
// the attacker in each deployment: with one resolver, one win poisons
// 100% of every pool until the TTL expires; with N distributed
// resolvers, the same win stays bounded at 1/N for the same window.
func E11CachePersistence(opts Options) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:    "E11",
		Title: "cache poisoning persistence: what one won race buys (TTL 300s window)",
		Columns: []string{"deployment", "lookups after poisoning", "attacker fraction per lookup",
			"after TTL expiry"},
	}

	for _, n := range []int{1, 3, 5} {
		tb, err := testbed.Start(testbed.Config{Resolvers: n, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		forger := attack.NewForger(tb.Domain(), attack.PayloadReplace)
		if err := attack.PoisonCache(tb.Resolvers[0].Cache(), forger,
			tb.Domain(), dnswire.TypeA, 4, 300); err != nil {
			tb.Close()
			return nil, err
		}
		gen, err := tb.Generator(testbed.GeneratorOptions{})
		if err != nil {
			tb.Close()
			return nil, err
		}

		const lookups = 5
		ctx, cancel := ctxWithTimeout()
		frac := -1.0
		stable := true
		for i := 0; i < lookups; i++ {
			pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
			if err != nil {
				cancel()
				tb.Close()
				return nil, fmt.Errorf("E11 N=%d lookup %d: %w", n, i, err)
			}
			got := core.Fraction(pool.Addrs, attack.IsAttackerAddr)
			if frac < 0 {
				frac = got
			} else if got != frac {
				stable = false
			}
		}

		// TTL expiry (modelled by a flush) heals the deployment.
		tb.FlushResolverCaches()
		pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		cancel()
		if err != nil {
			tb.Close()
			return nil, err
		}
		healed := core.Fraction(pool.Addrs, attack.IsAttackerAddr)
		tb.Close()

		row := []string{
			fmt.Sprintf("N=%d", n), strconv.Itoa(lookups), f4(frac), f4(healed),
		}
		t.Rows = append(t.Rows, row)
		want := 1.0 / float64(n)
		if !stable || frac != want || healed != 0 {
			t.Notes = fmt.Sprintf("FAIL at N=%d: frac=%v stable=%t healed=%v", n, frac, stable, healed)
			return t, errors.New("E11: persistence property violated")
		}
	}
	t.Notes = "one won race persists for the full TTL in every deployment, but distribution caps the " +
		"persistent damage at 1/N instead of 100%"
	return t, nil
}
