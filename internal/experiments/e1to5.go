package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"strconv"
	"time"

	"dohpool/internal/analysis"
	"dohpool/internal/attack"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
	"dohpool/internal/testbed"
)

const defaultTimeout = 30 * time.Second

func ctxWithTimeout() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), defaultTimeout)
}

func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// E1Pipeline reproduces Figure 1: 3 authoritative servers, 3 DoH
// resolvers, client-side combination; it verifies the 5-step flow and
// that the combined answer is the concatenation of N truncated lists.
func E1Pipeline(opts Options) (*Table, error) {
	opts.applyDefaults()
	tb, err := testbed.Start(testbed.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	gen, err := tb.Generator(testbed.GeneratorOptions{})
	if err != nil {
		return nil, err
	}
	ctx, cancel := ctxWithTimeout()
	defer cancel()
	pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E1",
		Title:   "Figure 1 pipeline: distributed DoH pool generation",
		Columns: []string{"component", "answers", "rtt", "detail"},
	}
	for _, r := range pool.Results {
		status := "ok"
		if r.Err != nil {
			status = r.Err.Error()
		}
		t.Rows = append(t.Rows, []string{
			r.Endpoint.Name,
			strconv.Itoa(len(r.Addrs)),
			r.RTT.Round(100 * time.Microsecond).String(),
			status,
		})
	}
	t.Rows = append(t.Rows, []string{
		"combined pool",
		strconv.Itoa(len(pool.Addrs)),
		"-",
		fmt.Sprintf("K=%d, N*K=%d, unique=%d",
			pool.TruncateLength, pool.TruncateLength*pool.Responding(), len(core.Dedupe(pool.Addrs))),
	})
	ok := len(pool.Addrs) == pool.TruncateLength*pool.Responding()
	t.Notes = fmt.Sprintf("pool size equals N*K: %t (paper: combination of N truncated lists)", ok)
	if !ok {
		return t, errors.New("E1: pool size != N*K")
	}
	return t, nil
}

// E2FractionBound reproduces Section III-a: compromising m of N resolvers
// yields pool fraction exactly m/N, so reaching fraction y requires
// x = m/N >= y. Measured over the real pipeline for every m.
func E2FractionBound(opts Options) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:      "E2",
		Title:   "Section III-a: attacker pool fraction vs compromised resolver fraction",
		Columns: []string{"N", "m (compromised)", "x = m/N", "measured pool fraction", "reaches y=1/2", "reaches y=2/3"},
	}

	violations := 0
	for _, n := range []int{3, 5, 9} {
		tb, err := testbed.Start(testbed.Config{
			Resolvers:            n,
			Adversary:            testbed.AdversaryResolver,
			DisableResolverCache: true,
			Seed:                 opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		gen, err := tb.Generator(testbed.GeneratorOptions{})
		if err != nil {
			tb.Close()
			return nil, err
		}
		for m := 0; m <= n; m++ {
			idx := make([]int, m)
			for i := range idx {
				idx[i] = i
			}
			tb.SetPlan(attack.FixedPlan(n, idx...))
			tb.FlushResolverCaches()
			ctx, cancel := ctxWithTimeout()
			pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
			cancel()
			if err != nil {
				tb.Close()
				return nil, fmt.Errorf("E2 N=%d m=%d: %w", n, m, err)
			}
			frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr)
			want := float64(m) / float64(n)
			if frac != want {
				violations++
			}
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(n), strconv.Itoa(m), f4(want), f4(frac),
				strconv.FormatBool(frac >= 0.5), strconv.FormatBool(frac >= 2.0/3),
			})
		}
		tb.Close()
	}
	t.Notes = fmt.Sprintf("measured fraction == m/N in all rows: %t — crossover to y happens exactly at x=y",
		violations == 0)
	if violations > 0 {
		return t, fmt.Errorf("E2: %d rows violated the fraction bound", violations)
	}
	return t, nil
}

// E3AttackProbability reproduces Section III-b: the attack success
// probability p^M with M = ceil(xN) for x = 1/2 (pool majority), compared
// against the exact binomial tail and a Monte-Carlo run over the real
// pipeline for N = 3.
func E3AttackProbability(opts Options) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:    "E3",
		Title: "Section III-b: P(attack success) vs N and p_attack (x = 1/2)",
		Columns: []string{"N", "p_attack", "M=ceil(N/2)", "paper p^M",
			"binomial tail", "simulated", "pipeline MC (N=3)"},
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Pipeline Monte-Carlo for N=3 only (each trial costs 3 TLS
	// exchanges).
	pipeline := make(map[float64]analysis.Estimate)
	{
		const n = 3
		tb, err := testbed.Start(testbed.Config{
			Resolvers:            n,
			Adversary:            testbed.AdversaryResolver,
			DisableResolverCache: true,
			Seed:                 opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		gen, err := tb.Generator(testbed.GeneratorOptions{})
		if err != nil {
			tb.Close()
			return nil, err
		}
		for _, p := range []float64{0.1, 0.3, 0.5} {
			est, err := analysis.MonteCarlo(opts.PipelineTrials, func(int) (bool, error) {
				tb.SetPlan(attack.BernoulliPlan(n, p, rng))
				ctx, cancel := ctxWithTimeout()
				defer cancel()
				pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
				if err != nil {
					return false, err
				}
				return core.Fraction(pool.Addrs, attack.IsAttackerAddr) >= 0.5, nil
			})
			if err != nil {
				tb.Close()
				return nil, fmt.Errorf("E3 pipeline MC p=%v: %w", p, err)
			}
			pipeline[p] = est
		}
		tb.Close()
	}

	disagreements := 0
	for _, n := range []int{1, 3, 5, 7, 9, 11, 13, 15} {
		for _, p := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
			m, err := analysis.RequiredResolverCount(n, 0.5)
			if err != nil {
				return nil, err
			}
			paper, err := analysis.PaperSuccessProbability(p, n, 0.5)
			if err != nil {
				return nil, err
			}
			tail, err := analysis.BinomialTail(n, m, p)
			if err != nil {
				return nil, err
			}
			// Fast direct simulation of the resolver-compromise model.
			sim, err := analysis.MonteCarlo(opts.Trials, func(int) (bool, error) {
				return attack.BernoulliPlan(n, p, rng).CountCompromised() >= m, nil
			})
			if err != nil {
				return nil, err
			}
			if tail < sim.Low || tail > sim.High {
				disagreements++
			}
			pipeCell := "-"
			if n == 3 {
				if est, ok := pipeline[p]; ok {
					pipeCell = est.String()
					if tail < est.Low || tail > est.High {
						disagreements++
					}
				}
			}
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(n), f2(p), strconv.Itoa(m),
				f4(paper), f4(tail), f4(sim.Rate), pipeCell,
			})
		}
	}
	t.Notes = fmt.Sprintf(
		"binomial tail outside the 95%% CI of simulation in %d cells (expect a few by chance); "+
			"paper's p^M lower-bounds the tail and both fall exponentially in N — the key-size analogy",
		disagreements)
	return t, nil
}

// E4OffPath reproduces the motivating attack comparison: an off-path DNS
// attacker with per-query success probability p poisons a single-resolver
// lookup with probability ~p, but needs a majority of N distributed DoH
// paths — probability ~ binomial tail — to own the combined pool.
func E4OffPath(opts Options) (*Table, error) {
	opts.applyDefaults()
	// p must differ from 1/2: at exactly p=0.5 the majority binomial tail
	// is 0.5 for every odd N and the contrast disappears.
	const p = 0.3
	t := &Table{
		ID:      "E4",
		Title:   "off-path attacker (per-query success p=0.3): plain single resolver vs distributed DoH",
		Columns: []string{"N resolvers", "trials", "pool majority poisoned", "analytical tail"},
	}
	for _, n := range []int{1, 3, 5} {
		tb, err := testbed.Start(testbed.Config{
			Resolvers:            n,
			Adversary:            testbed.AdversaryOffPath,
			OffPathProb:          p,
			DisableResolverCache: true,
			Seed:                 opts.Seed + int64(n),
		})
		if err != nil {
			return nil, err
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		tb.SetPlan(attack.FixedPlan(n, all...)) // attacker races every path
		gen, err := tb.Generator(testbed.GeneratorOptions{})
		if err != nil {
			tb.Close()
			return nil, err
		}
		m, err := analysis.RequiredResolverCount(n, 0.5)
		if err != nil {
			tb.Close()
			return nil, err
		}
		est, err := analysis.MonteCarlo(opts.PipelineTrials, func(int) (bool, error) {
			ctx, cancel := ctxWithTimeout()
			defer cancel()
			pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
			if err != nil {
				return false, err
			}
			return core.Fraction(pool.Addrs, attack.IsAttackerAddr) >= 0.5, nil
		})
		tb.Close()
		if err != nil {
			return nil, fmt.Errorf("E4 N=%d: %w", n, err)
		}
		tail, err := analysis.BinomialTail(n, m, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(n), strconv.Itoa(est.Trials), est.String(), f4(tail),
		})
	}
	t.Notes = "single resolver falls at ~p; N=3/5 distributed DoH reduce success toward the binomial tail"
	return t, nil
}

// E5Truncation reproduces footnote 2: the response-inflation attack that
// broke Chronos' pool is neutralised by truncation (the attacker still
// owns only its resolver share), while an empty poisoned answer degrades
// to denial of service, not poisoning.
func E5Truncation(opts Options) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:      "E5",
		Title:   "footnote 2: inflation vs truncation; empty answer = DoS (N=3, 1 compromised)",
		Columns: []string{"attack payload", "truncation", "K", "pool size", "attacker fraction", "outcome"},
	}

	run := func(payload attack.Payload) (*core.Pool, error) {
		tb, err := testbed.Start(testbed.Config{
			Adversary: testbed.AdversaryResolver,
			Plan:      attack.FixedPlan(3, 0),
			Payload:   payload,
			Seed:      opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		defer tb.Close()
		gen, err := tb.Generator(testbed.GeneratorOptions{})
		if err != nil {
			return nil, err
		}
		ctx, cancel := ctxWithTimeout()
		defer cancel()
		return gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
	}

	// Inflation with truncation ON (the paper's design).
	pool, err := run(attack.PayloadInflate)
	if err != nil {
		return nil, fmt.Errorf("E5 inflate: %w", err)
	}
	frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr)
	t.Rows = append(t.Rows, []string{
		"inflate x" + strconv.Itoa(attack.InflateCount), "on",
		strconv.Itoa(pool.TruncateLength), strconv.Itoa(len(pool.Addrs)),
		f4(frac), "bounded at resolver share",
	})

	// Ablation A1: truncation OFF — combine the raw lists.
	rawPool := combineRaw(pool)
	rawFrac := core.Fraction(rawPool, attack.IsAttackerAddr)
	t.Rows = append(t.Rows, []string{
		"inflate x" + strconv.Itoa(attack.InflateCount), "off (ablation A1)",
		"-", strconv.Itoa(len(rawPool)), f4(rawFrac), "attacker overwhelms pool",
	})

	// Empty answer: DoS, not poisoning.
	_, err = run(attack.PayloadEmpty)
	outcome := "lookup fails safe (DoS, no poisoning)"
	if err == nil {
		outcome = "UNEXPECTED: lookup succeeded"
	} else if !errors.Is(err, core.ErrEmptyAnswer) {
		outcome = "failed: " + err.Error()
	}
	t.Rows = append(t.Rows, []string{"empty answer", "on", "0", "0", "0.0000", outcome})

	ok := frac <= 1.0/3+1e-9 && rawFrac > 0.5
	t.Notes = fmt.Sprintf(
		"truncation caps the attacker at its resolver share (%.2f) while the no-truncation ablation lets it take %.2f: %t",
		frac, rawFrac, ok)
	if !ok {
		return t, errors.New("E5: truncation property violated")
	}
	return t, nil
}

// combineRaw concatenates the untruncated per-resolver lists of a pool —
// what Algorithm 1 would produce with truncation disabled (ablation A1).
func combineRaw(pool *core.Pool) []netip.Addr {
	var out []netip.Addr
	for _, r := range pool.Results {
		if r.Err == nil {
			out = append(out, r.Addrs...)
		}
	}
	return out
}
