package experiments

import (
	"strings"
	"testing"
)

// fastOpts keeps CI cost low; correctness of the statistics themselves is
// covered by the analysis package tests.
var fastOpts = Options{Trials: 200, PipelineTrials: 30, Seed: 7}

func checkTable(t *testing.T, tbl *Table) {
	t.Helper()
	if tbl.ID == "" || tbl.Title == "" {
		t.Error("table missing ID/title")
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("table has no rows")
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Errorf("row %d has %d cells, want %d", i, len(row), len(tbl.Columns))
		}
	}
	text := tbl.Render()
	if !strings.Contains(text, tbl.ID) {
		t.Error("Render misses ID")
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "|") {
		t.Error("Markdown misses table syntax")
	}
}

func TestE1(t *testing.T) {
	tbl, err := E1Pipeline(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
	if len(tbl.Rows) != 4 { // 3 resolvers + combined
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestE2(t *testing.T) {
	tbl, err := E2FractionBound(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
	// 3 N values: rows = (3+1)+(5+1)+(9+1) = 20.
	if len(tbl.Rows) != 20 {
		t.Errorf("rows = %d, want 20", len(tbl.Rows))
	}
}

func TestE3(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline Monte-Carlo in short mode")
	}
	tbl, err := E3AttackProbability(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
	if len(tbl.Rows) != 8*5 {
		t.Errorf("rows = %d, want 40", len(tbl.Rows))
	}
}

func TestE4(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline Monte-Carlo in short mode")
	}
	tbl, err := E4OffPath(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
}

func TestE5(t *testing.T) {
	tbl, err := E5Truncation(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
}

func TestE6(t *testing.T) {
	tbl, err := E6Duplicates(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
}

func TestE7(t *testing.T) {
	tbl, err := E7Chronos(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
}

func TestE8(t *testing.T) {
	tbl, err := E8Majority(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
}

func TestE9(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep in short mode")
	}
	tbl, err := E9Overhead(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
}

func TestE10(t *testing.T) {
	tbl, err := E10PoolJoin(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
}

func TestE11(t *testing.T) {
	tbl, err := E11CachePersistence(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
}

func TestAllRegistryComplete(t *testing.T) {
	runners := All()
	if len(runners) != 12 {
		t.Fatalf("registry has %d experiments, want 12", len(runners))
	}
	seen := make(map[string]bool)
	for _, r := range runners {
		if r.ID == "" || r.Desc == "" || r.Run == nil {
			t.Errorf("runner %+v incomplete", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		ID: "X", Title: "csv",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1,5", `say "hi"`}, {"2", "plain"}},
	}
	got := tbl.CSV()
	want := "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n2,plain\n"
	if got != want {
		t.Fatalf("CSV:\n got %q\nwant %q", got, want)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{
		ID: "X", Title: "alignment",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"wide-cell-value", "b"}},
		Notes:   "n",
	}
	out := tbl.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, row, note
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[len(lines)-1], "note: ") {
		t.Error("notes line missing")
	}
}

func TestE12(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-engine chaos run in short mode")
	}
	tbl, err := E12LiveChaos(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl)
	if len(tbl.Rows) != 3 { // replace, inflate, empty
		t.Errorf("rows = %d, want 3", len(tbl.Rows))
	}
}
