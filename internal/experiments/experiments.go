// Package experiments regenerates every evaluation artefact of the paper:
// the Figure 1 end-to-end pipeline and the analytical claims of Sections
// III and IV, each validated against the real loopback testbed. Each
// experiment returns a Table whose rows are the series a reader would
// compare against the paper; cmd/experiments prints them and
// EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated experiment artefact.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (E1…E9, A1…A4).
	ID string
	// Title describes the paper artefact being reproduced.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, formatted.
	Rows [][]string
	// Notes carries the pass/fail verdict and caveats.
	Notes string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavoured markdown (EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "\n*%s*\n", t.Notes)
	}
	return sb.String()
}

// CSV renders the table as RFC 4180 CSV (for plotting pipelines).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Runner is a named experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(opts Options) (*Table, error)
}

// Options tunes experiment cost globally.
type Options struct {
	// Trials is the Monte-Carlo trial count per data point (default
	// 1000; benches drop it for speed).
	Trials int
	// PipelineTrials is the trial count for Monte-Carlo runs over the
	// real network testbed (default 200 — each trial is ~N TLS
	// exchanges).
	PipelineTrials int
	// Seed drives all randomness.
	Seed int64
}

func (o *Options) applyDefaults() {
	if o.Trials <= 0 {
		o.Trials = 1000
	}
	if o.PipelineTrials <= 0 {
		o.PipelineTrials = 200
	}
	if o.Seed == 0 {
		o.Seed = 20201019 // the paper's arXiv date
	}
}

// All returns every experiment in order.
func All() []Runner {
	return []Runner{
		{"E1", "Figure 1 pipeline end-to-end", E1Pipeline},
		{"E2", "Section III-a fraction bound x >= y", E2FractionBound},
		{"E3", "Section III-b attack probability p^ceil(xN)", E3AttackProbability},
		{"E4", "off-path attack: single resolver vs distributed DoH", E4OffPath},
		{"E5", "footnote 2: inflation defeated, empty answer = DoS", E5Truncation},
		{"E6", "Section IV: duplicates must count individually", E6Duplicates},
		{"E7", "Section IV: DoH pool + Chronos end-to-end time security", E7Chronos},
		{"E8", "Section II: majority filter", E8Majority},
		{"E9", "overhead: latency vs N, DoH vs plain DNS", E9Overhead},
		{"E10", "extension — Section IV caveat: attacker joins the NTP pool", E10PoolJoin},
		{"E11", "extension — cache-poisoning persistence, 1 vs N resolvers", E11CachePersistence},
		{"E12", "extension — live engine under chaos: minority bound + trust quarantine", E12LiveChaos},
	}
}
