package experiments

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
	"dohpool/internal/testbed"
)

// E12LiveChaos is the live-engine analogue of E6–E9: where those
// experiments measure one-shot Algorithm 1 runs in offline tables, this
// one runs the full production stack — TTL cache, refresh-ahead
// regeneration, hedging, trust scoring — against a fully compromised
// resolver minority (1 of 3) for several TTL cycles and asserts, at
// every sampled instant, the paper's Section III-a bound: the poisoned
// pool fraction never exceeds the compromised resolver fraction (1/3).
// With trust enforcement on, the engine must do strictly better than the
// bound in steady state: the compromised resolver is quarantined and the
// served pool comes out clean. The empty payload (footnote-2 truncation
// DoS) additionally must cost at most one failed generation before
// quarantine restores service.
func E12LiveChaos(opts Options) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:    "E12",
		Title: "extension — live engine under chaos (N=3, resolver 0 compromised, TTL 1s, refresh-ahead 0.5)",
		Columns: []string{"payload", "samples", "max poisoned fraction", "bound 1/3 held",
			"steady-state fraction", "compromised quarantined", "failed lookups"},
	}

	const bound = 1.0 / 3
	for _, payload := range []attack.Payload{attack.PayloadReplace, attack.PayloadInflate, attack.PayloadEmpty} {
		row, err := e12Run(opts, payload, bound)
		if err != nil {
			return t, fmt.Errorf("E12 payload=%v: %w", payload, err)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "truncation alone caps the attacker at the minority bound on the very first generation; " +
		"trust quarantine then drives the live fraction to zero within one refresh cycle, and the " +
		"empty-answer DoS costs at most one failed generation"
	return t, nil
}

// e12Run drives one payload through a refresh-ahead engine and samples
// the served pool across TTL cycles.
func e12Run(opts Options, payload attack.Payload, bound float64) ([]string, error) {
	tb, err := testbed.Start(testbed.Config{
		Adversary:            testbed.AdversaryResolver,
		Plan:                 attack.FixedPlan(3, 0),
		Payload:              payload,
		TTL:                  1, // 1s pool TTL: several full cycles per run
		DisableResolverCache: true,
		Seed:                 opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	eng, err := tb.Engine(testbed.GeneratorOptions{QueryTimeout: 3 * time.Second}, core.EngineConfig{
		RefreshAhead:    0.5,
		RefreshMinHits:  0,
		RefreshInterval: 100 * time.Millisecond,
		TrustWindow:     4,
		TrustMinScore:   0.5,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var (
		samples     int
		maxFraction float64
		lastClean   float64 = -1
		failed      int
	)
	deadline := time.Now().Add(2500 * time.Millisecond)
	for time.Now().Before(deadline) {
		pool, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		if err != nil {
			// The empty payload legitimately kills the first
			// generation (footnote-2 DoS); anything beyond one strike
			// means quarantine failed to restore service.
			if !errors.Is(err, core.ErrEmptyAnswer) {
				return nil, err
			}
			failed++
			if failed > 1 {
				return nil, fmt.Errorf("truncation DoS persisted for %d lookups despite quarantine", failed)
			}
			continue
		}
		samples++
		frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr)
		if frac > maxFraction {
			maxFraction = frac
		}
		if frac > bound+1e-9 {
			return nil, fmt.Errorf("poisoned fraction %.3f exceeded the minority bound %.3f", frac, bound)
		}
		lastClean = frac
		time.Sleep(50 * time.Millisecond)
	}
	if samples < 10 {
		return nil, fmt.Errorf("only %d samples collected", samples)
	}
	if lastClean != 0 {
		return nil, fmt.Errorf("steady-state poisoned fraction %.3f, want 0 after quarantine", lastClean)
	}

	quarantined := false
	for _, tr := range eng.Trust() {
		if tr.Name == "resolver-0" && tr.Distrusted {
			quarantined = true
		}
	}
	if !quarantined {
		return nil, errors.New("compromised resolver-0 never distrusted")
	}

	return []string{
		payload.String(), strconv.Itoa(samples), f4(maxFraction),
		strconv.FormatBool(maxFraction <= bound+1e-9), f4(lastClean),
		strconv.FormatBool(quarantined), strconv.Itoa(failed),
	}, nil
}
