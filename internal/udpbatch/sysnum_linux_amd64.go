//go:build linux && amd64

package udpbatch

// The frozen syscall package predates sendmmsg(2) on amd64, so both
// batch syscall numbers are pinned here (arch/x86/entry/syscalls).
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
