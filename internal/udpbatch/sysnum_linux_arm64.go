//go:build linux && arm64

package udpbatch

// Batch syscall numbers for the arm64 generic syscall table.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
