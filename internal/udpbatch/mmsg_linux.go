//go:build linux && (amd64 || arm64)

package udpbatch

import (
	"fmt"
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

const mmsgSupported = true

// soDomain is SO_DOMAIN, absent from the frozen syscall package: the
// socket's address family as getsockopt reports it, used to pick the
// sockaddr family sendmmsg destinations must carry (an AF_INET6 socket
// — including a dual-stack wildcard bind — takes only v6, possibly
// v4-mapped, sockaddrs).
const soDomain = 0x27

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// kernel-reported datagram length, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// mmsgHalf is one direction's preallocated syscall state. Each half is
// owned by exactly one goroutine (Conn documents the reader/writer
// split), so no locking is needed. The RawConn callback is bound once
// at construction and communicates through the n/done/sysErr fields —
// building a fresh closure per call would put one closure plus its
// escaped captures on the heap every batch, and this path must stay
// allocation-free.
type mmsgHalf struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6

	n      int // datagrams staged for this call
	done   int // datagrams the kernel has accepted so far
	sysErr syscall.Errno
	fn     func(fd uintptr) bool
}

func newMMsgHalf(batch int, sysnum uintptr) *mmsgHalf {
	h := &mmsgHalf{
		hdrs:  make([]mmsghdr, batch),
		iovs:  make([]syscall.Iovec, batch),
		names: make([]syscall.RawSockaddrInet6, batch),
	}
	for i := range h.hdrs {
		h.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&h.names[i]))
		h.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(h.names[i]))
		h.hdrs[i].hdr.Iov = &h.iovs[i]
		h.hdrs[i].hdr.Iovlen = 1
	}
	h.fn = func(fd uintptr) bool {
		// Partial sends retry here: sendmmsg may accept fewer datagrams
		// than staged (socket buffer pressure), and each acceptance
		// advances done so the next pass resubmits exactly the remainder
		// — nothing staged is ever silently dropped.
		for h.done < h.n {
			accepted, errno := mmsgSyscall(sysnum, fd, &h.hdrs[h.done], h.n-h.done)
			switch errno {
			case 0:
				h.done += accepted
				if sysnum == sysRecvmmsg {
					// One recvmmsg per batch: whatever was immediately
					// readable is the batch; don't block for more.
					return true
				}
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false
			default:
				h.sysErr = errno
				return true
			}
		}
		return true
	}
	return h
}

// mmsgSyscall performs one raw recvmmsg/sendmmsg call for the batch
// slice starting at hdr. A variable rather than a direct call so the
// short-write unit test can interpose a kernel that accepts fewer
// datagrams than offered; the indirection is noise next to the syscall
// itself.
var mmsgSyscall = func(sysnum, fd uintptr, hdr *mmsghdr, n int) (int, syscall.Errno) {
	r1, _, errno := syscall.Syscall6(sysnum, fd,
		uintptr(unsafe.Pointer(hdr)), uintptr(n),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	return int(r1), errno
}

// stage resets the per-call fields for a batch of n datagrams.
func (h *mmsgHalf) stage(n int) {
	h.n = n
	h.done = 0
	h.sysErr = 0
}

// mmsgState drives recvmmsg/sendmmsg through the conn's RawConn, which
// keeps the runtime netpoller in charge of readiness, deadlines and
// close wake-ups: the syscalls themselves run with MSG_DONTWAIT and
// EAGAIN hands control back to the poller.
type mmsgState struct {
	rc syscall.RawConn
	r  *mmsgHalf
	w  *mmsgHalf
	v4 bool // AF_INET socket: destinations use sockaddr_in
}

func newMMsgState(c *net.UDPConn, batch int) (*mmsgState, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	s := &mmsgState{rc: rc, r: newMMsgHalf(batch, sysRecvmmsg), w: newMMsgHalf(batch, sysSendmmsg)}
	var domain int
	var sockErr error
	if err := rc.Control(func(fd uintptr) {
		domain, sockErr = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, soDomain)
	}); err != nil {
		return nil, err
	}
	if sockErr != nil {
		return nil, sockErr
	}
	s.v4 = domain == syscall.AF_INET
	return s, nil
}

// readBatch is the recvmmsg receive half of the batch fast path.
//
//dohlint:noalloc
func (s *mmsgState) readBatch(dgs []*Datagram) (int, error) {
	h := s.r
	n := len(dgs)
	if n > len(h.hdrs) {
		n = len(h.hdrs)
	}
	if n == 0 {
		return 0, nil
	}
	for i := 0; i < n; i++ {
		buf := dgs[i].Buf
		h.iovs[i].Base = &buf[0]
		h.iovs[i].SetLen(len(buf))
		h.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(h.names[i]))
		h.hdrs[i].len = 0
	}
	h.stage(n)
	err := s.rc.Read(h.fn)
	runtime.KeepAlive(dgs)
	if err != nil {
		return 0, err
	}
	if h.sysErr != 0 {
		return 0, h.sysErr // dohlint:allow(noalloc) — errno boxes only after the syscall already failed
	}
	got := h.done
	for i := 0; i < got; i++ {
		dgs[i].N = int(h.hdrs[i].len)
		rawToAddr(&h.names[i], dgs[i].Addr)
	}
	return got, nil
}

// writeBatch is the sendmmsg send half, chunked to the staged capacity.
//
//dohlint:noalloc
func (s *mmsgState) writeBatch(dgs []*Datagram) (int, error) {
	total := 0
	for total < len(dgs) {
		chunk := dgs[total:]
		if len(chunk) > len(s.w.hdrs) {
			chunk = chunk[:len(s.w.hdrs)]
		}
		n, err := s.writeChunk(chunk)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// writeChunk stages and sends up to one mmsghdr table of datagrams.
//
//dohlint:noalloc
func (s *mmsgState) writeChunk(dgs []*Datagram) (int, error) {
	h := s.w
	staged := 0
	var stageErr error
	for i, dg := range dgs {
		h.iovs[i].Base = &dg.Buf[0]
		h.iovs[i].SetLen(dg.N)
		namelen, err := s.addrToRaw(dg.Addr, &h.names[i])
		if err != nil {
			// An unconvertible destination must not sink the datagrams
			// staged before it: send the good prefix, then report the
			// error with the sent count pointing exactly at the bad
			// datagram, so a skip-one-and-retry caller drops only it.
			stageErr = err
			break
		}
		h.hdrs[i].hdr.Namelen = namelen
		staged = i + 1
	}
	if staged == 0 {
		return 0, stageErr
	}
	h.stage(staged)
	err := s.rc.Write(h.fn)
	runtime.KeepAlive(dgs)
	if err == nil && h.sysErr != 0 {
		err = h.sysErr // dohlint:allow(noalloc) — errno boxes only after the syscall already failed
	}
	if err == nil {
		err = stageErr
	}
	return h.done, err
}

// rawToAddr rewrites dst in place from the kernel-filled sockaddr,
// reusing dst.IP's backing so the conversion allocates nothing.
//
//dohlint:noalloc
func rawToAddr(sa *syscall.RawSockaddrInet6, dst *net.UDPAddr) {
	if sa.Family == syscall.AF_INET {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		dst.IP = append(dst.IP[:0], sa4.Addr[:]...)
		dst.Port = int(p[0])<<8 | int(p[1])
	} else {
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		dst.IP = append(dst.IP[:0], sa.Addr[:]...)
		dst.Port = int(p[0])<<8 | int(p[1])
	}
	dst.Zone = ""
}

// addrToRaw fills sa with a's sockaddr form in the socket's own family,
// v4-mapping IPv4 destinations on an AF_INET6 socket.
//
//dohlint:noalloc
func (s *mmsgState) addrToRaw(a *net.UDPAddr, sa *syscall.RawSockaddrInet6) (uint32, error) {
	ip4 := a.IP.To4()
	if s.v4 {
		if ip4 == nil {
			// dohlint:allow(noalloc) — malformed destination, already off the fast path
			return 0, fmt.Errorf("udpbatch: %v is not an IPv4 destination for an AF_INET socket", a.IP)
		}
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		sa4.Family = syscall.AF_INET
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		p[0], p[1] = byte(a.Port>>8), byte(a.Port)
		copy(sa4.Addr[:], ip4)
		return syscall.SizeofSockaddrInet4, nil
	}
	sa.Family = syscall.AF_INET6
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0], p[1] = byte(a.Port>>8), byte(a.Port)
	sa.Scope_id = 0
	sa.Flowinfo = 0
	if ip4 != nil {
		var mapped [16]byte
		mapped[10], mapped[11] = 0xFF, 0xFF
		copy(mapped[12:], ip4)
		sa.Addr = mapped
	} else {
		if len(a.IP) != 16 {
			// dohlint:allow(noalloc) — malformed destination, already off the fast path
			return 0, fmt.Errorf("udpbatch: destination IP %v has length %d", a.IP, len(a.IP))
		}
		copy(sa.Addr[:], a.IP)
	}
	return syscall.SizeofSockaddrInet6, nil
}
