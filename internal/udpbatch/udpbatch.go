// Package udpbatch moves batches of UDP datagrams with one syscall per
// batch where the platform allows it. On Linux (amd64/arm64) it drives
// recvmmsg(2)/sendmmsg(2) through the net.UDPConn's RawConn in
// non-blocking mode, so the runtime netpoller still handles readiness
// and deadline/close semantics; everywhere else — and whenever the
// batch size is 1 — it degrades to the portable one-datagram-per-
// syscall net API with identical semantics. The DNS frontend sits on
// this to amortise syscall cost across datagram bursts without forking
// its serving loop per platform.
package udpbatch

import (
	"net"
	"net/netip"
)

// DefaultBatch is the batch size used when a caller passes 0: large
// enough that a flood amortises syscalls well, small enough that the
// per-Conn preallocated buffers stay negligible.
const DefaultBatch = 16

// Datagram is one datagram's buffer and peer address, owned by the
// caller and reused across calls so the steady state allocates nothing.
type Datagram struct {
	// Buf is the payload backing. ReadBatch fills it (a datagram longer
	// than the buffer is truncated by the kernel, exactly as with
	// ReadFromUDP); WriteBatch sends Buf[:N].
	Buf []byte
	// N is the payload length: set by ReadBatch, read by WriteBatch.
	N int
	// Addr is the peer. ReadBatch fills it IN PLACE — callers must
	// provide a non-nil *net.UDPAddr whose IP has capacity 16 so the
	// rewrite cannot allocate. WriteBatch reads it as the destination.
	Addr *net.UDPAddr
}

// Conn wraps a *net.UDPConn with batched reads and writes. Read state
// and write state are disjoint, so one reader goroutine and one writer
// goroutine may use a Conn concurrently; multiple concurrent readers
// (or writers) must not.
type Conn struct {
	udp   *net.UDPConn
	batch int
	mmsg  *mmsgState // nil when the platform path is unavailable or batch == 1
}

// New wraps c for batched I/O with the given batch size (0 uses
// DefaultBatch, 1 forces the portable single-syscall path even on
// Linux).
func New(c *net.UDPConn, batch int) (*Conn, error) {
	if batch <= 0 {
		batch = DefaultBatch
	}
	conn := &Conn{udp: c, batch: batch}
	if batch > 1 && mmsgSupported {
		st, err := newMMsgState(c, batch)
		if err != nil {
			// Raw access denied (exotic socket): fall back silently.
			conn.batch = 1
		} else {
			conn.mmsg = st
		}
	}
	if conn.mmsg == nil {
		conn.batch = 1
	}
	return conn, nil
}

// Batching reports whether the platform batch path is active.
func (c *Conn) Batching() bool { return c.mmsg != nil }

// BatchSize returns how many datagrams one ReadBatch/WriteBatch call can
// move: the configured batch on the Linux path, 1 on the portable path.
func (c *Conn) BatchSize() int { return c.batch }

// ReadBatch blocks until at least one datagram arrives, then fills as
// many of dgs as are immediately readable (at most BatchSize) and
// returns the count. Errors are those of the underlying conn (including
// closure and deadlines).
func (c *Conn) ReadBatch(dgs []*Datagram) (int, error) {
	if c.mmsg != nil {
		return c.mmsg.readBatch(dgs)
	}
	if len(dgs) == 0 {
		return 0, nil
	}
	dg := dgs[0]
	n, ap, err := c.udp.ReadFromUDPAddrPort(dg.Buf)
	if err != nil {
		return 0, err
	}
	dg.N = n
	setAddr(dg.Addr, ap)
	return 1, nil
}

// WriteBatch sends every datagram in dgs and returns how many went out.
// A send error stops the batch and reports the remaining count through
// (sent, err).
func (c *Conn) WriteBatch(dgs []*Datagram) (int, error) {
	if c.mmsg != nil {
		return c.mmsg.writeBatch(dgs)
	}
	for i, dg := range dgs {
		if _, err := c.udp.WriteToUDPAddrPort(dg.Buf[:dg.N], dg.Addr.AddrPort()); err != nil {
			return i, err
		}
	}
	return len(dgs), nil
}

// setAddr rewrites dst in place from the kernel-reported address,
// reusing dst.IP's backing so the conversion allocates nothing (the
// netip read/write variants are used on the portable path for the same
// reason: the *net.UDPAddr-returning forms allocate a fresh address per
// call).
func setAddr(dst *net.UDPAddr, ap netip.AddrPort) {
	a := ap.Addr()
	if a.Is4() {
		b := a.As4()
		dst.IP = append(dst.IP[:0], b[:]...)
	} else {
		b := a.As16()
		dst.IP = append(dst.IP[:0], b[:]...)
	}
	dst.Port = int(ap.Port())
	dst.Zone = a.Zone()
}
