package udpbatch

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

// newTestDatagrams builds n reusable datagrams with preallocated
// address backing, as the frontend does.
func newTestDatagrams(n, bufSize int) []*Datagram {
	dgs := make([]*Datagram, n)
	for i := range dgs {
		dgs[i] = &Datagram{
			Buf:  make([]byte, bufSize),
			Addr: &net.UDPAddr{IP: make(net.IP, 0, 16)},
		}
	}
	return dgs
}

func listenPair(t *testing.T, network, addr string) (*net.UDPConn, *net.UDPConn) {
	t.Helper()
	a, err := net.ListenUDP(network, &net.UDPAddr{IP: net.ParseIP(addr)})
	if err != nil {
		t.Skipf("listen %s %s: %v", network, addr, err)
	}
	b, err := net.ListenUDP(network, &net.UDPAddr{IP: net.ParseIP(addr)})
	if err != nil {
		a.Close()
		t.Skipf("listen %s %s: %v", network, addr, err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func testRoundTrip(t *testing.T, network, addr string, batch int) {
	ca, cb := listenPair(t, network, addr)
	sender, err := New(ca, batch)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := New(cb, batch)
	if err != nil {
		t.Fatal(err)
	}

	const total = 10
	out := newTestDatagrams(total, 64)
	dst := cb.LocalAddr().(*net.UDPAddr)
	for i, dg := range out {
		payload := fmt.Sprintf("datagram-%d", i)
		dg.N = copy(dg.Buf, payload)
		dg.Addr = dst
	}
	sent, err := sender.WriteBatch(out)
	if err != nil || sent != total {
		t.Fatalf("WriteBatch = (%d, %v), want (%d, nil)", sent, err, total)
	}

	in := newTestDatagrams(receiver.BatchSize(), 64)
	got := map[string]bool{}
	cb.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(got) < total {
		n, err := receiver.ReadBatch(in)
		if err != nil {
			t.Fatalf("ReadBatch after %d datagrams: %v", len(got), err)
		}
		for i := 0; i < n; i++ {
			got[string(in[i].Buf[:in[i].N])] = true
			if in[i].Addr.Port != ca.LocalAddr().(*net.UDPAddr).Port {
				t.Fatalf("peer port %d, want %d", in[i].Addr.Port, ca.LocalAddr().(*net.UDPAddr).Port)
			}
			// The reply direction must work with the kernel-filled addr.
			reply := &Datagram{Buf: []byte("ack"), N: 3, Addr: in[i].Addr}
			if _, err := receiver.WriteBatch([]*Datagram{reply}); err != nil {
				t.Fatalf("reply to %v: %v", in[i].Addr, err)
			}
		}
	}
	for i := 0; i < total; i++ {
		if !got[fmt.Sprintf("datagram-%d", i)] {
			t.Fatalf("datagram-%d never arrived", i)
		}
	}

	// Drain the acks on the sender side to confirm reply reachability.
	ca.SetReadDeadline(time.Now().Add(5 * time.Second))
	ackBuf := newTestDatagrams(sender.BatchSize(), 16)
	acks := 0
	for acks < total {
		n, err := sender.ReadBatch(ackBuf)
		if err != nil {
			t.Fatalf("ack read after %d: %v", acks, err)
		}
		for i := 0; i < n; i++ {
			if string(ackBuf[i].Buf[:ackBuf[i].N]) != "ack" {
				t.Fatalf("unexpected ack payload %q", ackBuf[i].Buf[:ackBuf[i].N])
			}
		}
		acks += n
	}
}

func TestRoundTripPortablePath(t *testing.T) {
	// batch 1 forces the single-syscall fallback on every platform.
	testRoundTrip(t, "udp4", "127.0.0.1", 1)
}

func TestRoundTripBatchIPv4(t *testing.T) {
	testRoundTrip(t, "udp4", "127.0.0.1", 8)
}

func TestRoundTripBatchIPv6(t *testing.T) {
	testRoundTrip(t, "udp6", "::1", 8)
}

func TestBatchingReported(t *testing.T) {
	ca, _ := listenPair(t, "udp4", "127.0.0.1")
	one, err := New(ca, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Batching() || one.BatchSize() != 1 {
		t.Fatal("batch 1 must use the portable path")
	}
	many, err := New(ca, 8)
	if err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS == "linux" && (runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64") {
		if !many.Batching() || many.BatchSize() != 8 {
			t.Fatal("mmsg path not active on linux")
		}
	} else if many.Batching() {
		t.Fatal("mmsg path claimed on unsupported platform")
	}
}

func TestReadBatchErrorOnClose(t *testing.T) {
	ca, _ := listenPair(t, "udp4", "127.0.0.1")
	c, err := New(ca, 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.ReadBatch(newTestDatagrams(c.BatchSize(), 64))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	ca.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ReadBatch returned nil after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadBatch did not unblock on close")
	}
}

func TestBatchPathsAllocateNothing(t *testing.T) {
	if !mmsgSupported {
		t.Skip("mmsg path unavailable")
	}
	ca, cb := listenPair(t, "udp4", "127.0.0.1")
	sender, err := New(ca, 4)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := New(cb, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sender.Batching() {
		t.Skip("raw batching unavailable")
	}
	dst := cb.LocalAddr().(*net.UDPAddr)
	out := newTestDatagrams(1, 32)
	out[0].N = copy(out[0].Buf, "ping")
	out[0].Addr = dst
	in := newTestDatagrams(4, 32)
	cb.SetReadDeadline(time.Now().Add(10 * time.Second))
	if n := testing.AllocsPerRun(100, func() {
		if _, err := sender.WriteBatch(out); err != nil {
			t.Fatal(err)
		}
		if _, err := receiver.ReadBatch(in); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("batch round trip allocates %v per run, want 0", n)
	}
}
