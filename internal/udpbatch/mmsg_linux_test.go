//go:build linux && (amd64 || arm64)

package udpbatch

import (
	"fmt"
	"net"
	"syscall"
	"testing"
	"time"
)

// hookMMsgSyscall swaps the raw mmsg syscall for fn and restores the
// real one when the test ends.
func hookMMsgSyscall(t *testing.T, fn func(sysnum, fd uintptr, hdr *mmsghdr, n int) (int, syscall.Errno)) {
	t.Helper()
	real := mmsgSyscall
	mmsgSyscall = fn
	t.Cleanup(func() { mmsgSyscall = real })
}

// TestSendmmsgShortWriteRetries forces the kernel-accepts-fewer path:
// every sendmmsg is clamped to one datagram, so a batched WriteBatch
// only completes if the send loop resubmits the remainder after each
// short acceptance. Before the retry loop, this scenario silently
// dropped everything past the first accepted datagram.
func TestSendmmsgShortWriteRetries(t *testing.T) {
	ca, cb := listenPair(t, "udp4", "127.0.0.1")
	sender, err := New(ca, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !sender.Batching() {
		t.Skip("mmsg path unavailable")
	}

	real := mmsgSyscall
	sendCalls := 0
	hookMMsgSyscall(t, func(sysnum, fd uintptr, hdr *mmsghdr, n int) (int, syscall.Errno) {
		if sysnum == sysSendmmsg {
			sendCalls++
			if n > 1 {
				n = 1 // the kernel "accepts" one datagram per call
			}
		}
		return real(sysnum, fd, hdr, n)
	})

	const total = 8
	out := newTestDatagrams(total, 64)
	dst := cb.LocalAddr().(*net.UDPAddr)
	for i, dg := range out {
		dg.N = copy(dg.Buf, fmt.Sprintf("short-%d", i))
		dg.Addr = dst
	}
	sent, err := sender.WriteBatch(out)
	if err != nil || sent != total {
		t.Fatalf("WriteBatch = (%d, %v), want (%d, nil)", sent, err, total)
	}
	if sendCalls < total {
		t.Fatalf("sendmmsg invoked %d times; %d short acceptances require >= %d", sendCalls, total, total)
	}

	got := map[string]bool{}
	buf := make([]byte, 64)
	cb.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(got) < total {
		n, _, err := cb.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("after %d datagrams: %v", len(got), err)
		}
		got[string(buf[:n])] = true
	}
}

// TestWriteBatchBadAddressSendsStagedPrefix plants an unconvertible
// destination mid-batch on an AF_INET socket: the datagrams staged
// before it must still be sent and counted, and the returned count must
// point exactly at the bad datagram so a skip-one caller drops only it.
func TestWriteBatchBadAddressSendsStagedPrefix(t *testing.T) {
	ca, cb := listenPair(t, "udp4", "127.0.0.1")
	sender, err := New(ca, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !sender.Batching() {
		t.Skip("mmsg path unavailable")
	}

	const total = 5
	const bad = 2
	out := newTestDatagrams(total, 64)
	dst := cb.LocalAddr().(*net.UDPAddr)
	for i, dg := range out {
		dg.N = copy(dg.Buf, fmt.Sprintf("prefix-%d", i))
		dg.Addr = dst
	}
	// A pure IPv6 destination cannot be expressed on an AF_INET socket.
	out[bad].Addr = &net.UDPAddr{IP: net.ParseIP("2001:db8::1"), Port: dst.Port}

	sent, err := sender.WriteBatch(out)
	if err == nil {
		t.Fatal("WriteBatch succeeded with an unconvertible destination")
	}
	if sent != bad {
		t.Fatalf("WriteBatch sent %d, want the staged prefix %d (error must point at the bad datagram)", sent, bad)
	}

	got := map[string]bool{}
	buf := make([]byte, 64)
	cb.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(got) < bad {
		n, _, err := cb.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("after %d datagrams: %v", len(got), err)
		}
		got[string(buf[:n])] = true
	}
	for i := 0; i < bad; i++ {
		if !got[fmt.Sprintf("prefix-%d", i)] {
			t.Fatalf("staged datagram %d was never sent", i)
		}
	}
}
