//go:build !linux || (!amd64 && !arm64)

package udpbatch

import (
	"errors"
	"net"
)

const mmsgSupported = false

var errUnsupported = errors.New("udpbatch: mmsg batching unsupported on this platform")

// mmsgState is never instantiated off the Linux amd64/arm64 path; the
// stubs keep the portable build compiling.
type mmsgState struct{}

func newMMsgState(*net.UDPConn, int) (*mmsgState, error) { return nil, errUnsupported }

func (*mmsgState) readBatch([]*Datagram) (int, error) { return 0, errUnsupported }

func (*mmsgState) writeBatch([]*Datagram) (int, error) { return 0, errUnsupported }
