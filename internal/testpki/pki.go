// Package testpki provides a self-contained certificate authority for the
// loopback testbed. Every DoH resolver gets its own leaf certificate; the
// client trusts only the CA. This reproduces the trust model the paper
// relies on: the channel to each DoH resolver is authenticated, so the
// off-path attacker cannot impersonate a resolver — only compromise it or
// the paths *behind* it.
package testpki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net"
	"time"
)

// CA is an in-memory certificate authority.
type CA struct {
	cert *x509.Certificate
	key  *ecdsa.PrivateKey
	pool *x509.CertPool

	serial int64
	now    func() time.Time
}

// NewCA creates a fresh CA valid for 24 hours around now.
func NewCA() (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate CA key: %w", err)
	}
	now := time.Now()
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "dohpool testbed CA"},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("create CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("parse CA cert: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &CA{cert: cert, key: key, pool: pool, serial: 1, now: time.Now}, nil
}

// Pool returns a cert pool containing only this CA, for client
// tls.Config.RootCAs.
func (ca *CA) Pool() *x509.CertPool { return ca.pool }

// CertPEM returns the CA certificate PEM-encoded, so out-of-process
// clients (dohquery -ca, dohpoold -ca) can trust the testbed.
func (ca *CA) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.cert.Raw})
}

// PoolFromPEM builds a cert pool from PEM bytes (the counterpart of
// CertPEM for external processes).
func PoolFromPEM(pemBytes []byte) (*x509.CertPool, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pemBytes) {
		return nil, errors.New("no certificates found in PEM input")
	}
	return pool, nil
}

// IssueServer issues a leaf certificate for the given DNS names and, when
// any name parses as an IP, the corresponding IP SANs. It returns a
// ready-to-use tls.Certificate.
func (ca *CA) IssueServer(names ...string) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("generate leaf key: %w", err)
	}
	ca.serial++
	now := ca.now()
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(ca.serial),
		Subject:      pkix.Name{CommonName: firstOr(names, "dohpool testbed server")},
		NotBefore:    now.Add(-time.Hour),
		NotAfter:     now.Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	for _, name := range names {
		if ip := net.ParseIP(name); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, name)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("sign leaf: %w", err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der, ca.cert.Raw},
		PrivateKey:  key,
	}, nil
}

// ServerTLS builds a server-side tls.Config for the given SANs, with h2
// advertised (RFC 8484 recommends HTTP/2).
func (ca *CA) ServerTLS(names ...string) (*tls.Config, error) {
	cert, err := ca.IssueServer(names...)
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		NextProtos:   []string{"h2", "http/1.1"},
		MinVersion:   tls.VersionTLS12,
	}, nil
}

// ClientTLS builds a client-side tls.Config trusting only this CA.
func (ca *CA) ClientTLS() *tls.Config {
	return &tls.Config{
		RootCAs:    ca.pool,
		NextProtos: []string{"h2", "http/1.1"},
		MinVersion: tls.VersionTLS12,
	}
}

// SelfSignedServer is the -tls-self-signed dev mode: a throwaway CA is
// created, one server leaf is issued for the given SANs (defaults to
// loopback names when none are given), and the CA certificate is
// returned PEM-encoded so clients can be handed the trust anchor. The
// key material never leaves the process; this is for development and
// testbeds, not deployment.
func SelfSignedServer(names ...string) (*tls.Config, []byte, error) {
	ca, err := NewCA()
	if err != nil {
		return nil, nil, err
	}
	if len(names) == 0 {
		names = []string{"127.0.0.1", "::1", "localhost"}
	}
	cfg, err := ca.ServerTLS(names...)
	if err != nil {
		return nil, nil, err
	}
	return cfg, ca.CertPEM(), nil
}

func firstOr(names []string, def string) string {
	if len(names) > 0 {
		return names[0]
	}
	return def
}
