package testpki

import (
	"crypto/tls"
	"crypto/x509"
	"net"
	"testing"
)

func TestIssueServerCoversIPAndDNSNames(t *testing.T) {
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.IssueServer("127.0.0.1", "resolver.test")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(cert.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(leaf.IPAddresses) != 1 || !leaf.IPAddresses[0].Equal(net.IPv4(127, 0, 0, 1)) {
		t.Errorf("IP SANs = %v", leaf.IPAddresses)
	}
	if len(leaf.DNSNames) != 1 || leaf.DNSNames[0] != "resolver.test" {
		t.Errorf("DNS SANs = %v", leaf.DNSNames)
	}

	// The leaf must chain to the CA.
	opts := x509.VerifyOptions{Roots: ca.Pool()}
	if _, err := leaf.Verify(opts); err != nil {
		t.Fatalf("leaf does not verify against CA: %v", err)
	}
}

func TestLeafFromOtherCADoesNotVerify(t *testing.T) {
	ca1, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca2.IssueServer("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(cert.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leaf.Verify(x509.VerifyOptions{Roots: ca1.Pool()}); err == nil {
		t.Fatal("cross-CA leaf verified — trust separation broken")
	}
}

func TestTLSConfigs(t *testing.T) {
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ca.ServerTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(srv.Certificates) != 1 {
		t.Error("server config missing cert")
	}
	if srv.MinVersion != tls.VersionTLS12 {
		t.Error("weak TLS version allowed")
	}
	found := false
	for _, proto := range srv.NextProtos {
		if proto == "h2" {
			found = true
		}
	}
	if !found {
		t.Error("h2 not advertised (RFC 8484 recommends HTTP/2)")
	}

	cli := ca.ClientTLS()
	if cli.RootCAs == nil {
		t.Error("client config missing roots")
	}
	if cli.InsecureSkipVerify {
		t.Error("client config skips verification")
	}
}

func TestSerialNumbersAdvance(t *testing.T) {
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ca.IssueServer("a.test")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ca.IssueServer("b.test")
	if err != nil {
		t.Fatal(err)
	}
	leafA, err := x509.ParseCertificate(a.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	leafB, err := x509.ParseCertificate(b.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	if leafA.SerialNumber.Cmp(leafB.SerialNumber) == 0 {
		t.Fatal("serial numbers repeat")
	}
}
