package doh

import (
	"context"
	"encoding/base64"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/testpki"
)

// echoResponder answers every A query with a fixed address.
func echoResponder(addr string) QueryResponder {
	ip := netip.MustParseAddr(addr)
	return ResponderFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(q)
		resp.Header.RecursionAvailable = true
		resp.Answers = append(resp.Answers,
			dnswire.AddressRecord(q.Questions[0].Name, ip, 60))
		return resp, nil
	})
}

func startTLSServer(t *testing.T, responder QueryResponder) (*Server, *Client) {
	t.Helper()
	ca, err := testpki.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	tlsCfg, err := ca.ServerTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", tlsCfg, responder)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewClient(WithTLSConfig(ca.ClientTLS()))
	return srv, client
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestPOSTExchangeOverTLS(t *testing.T) {
	srv, client := startTLSServer(t, echoResponder("192.0.2.77"))
	resp, err := client.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	addrs := resp.AnswerAddrs()
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.77") {
		t.Fatalf("addrs = %v", addrs)
	}
	if srv.Handler().Requests() != 1 {
		t.Errorf("requests = %d", srv.Handler().Requests())
	}
}

func TestGETExchangeOverTLS(t *testing.T) {
	ca, err := testpki.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	tlsCfg, err := ca.ServerTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", tlsCfg, echoResponder("192.0.2.78"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	getClient := NewClient(WithTLSConfig(ca.ClientTLS()), WithMethod(MethodGET))
	resp, err := getClient.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatalf("GET answers = %v", resp.AnswerAddrs())
	}
}

func TestUntrustedCARejected(t *testing.T) {
	srv, _ := startTLSServer(t, echoResponder("192.0.2.79"))
	otherCA, err := testpki.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	badClient := NewClient(WithTLSConfig(otherCA.ClientTLS()))
	_, err = badClient.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err == nil {
		t.Fatal("exchange succeeded with untrusted CA — channel authentication broken")
	}
}

func TestServFailOnResolverError(t *testing.T) {
	failing := ResponderFunc(func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
		return nil, errors.New("backend exploded")
	})
	srv, client := startTLSServer(t, failing)
	resp, err := client.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("DoH must deliver SERVFAIL over HTTP 200, got transport error %v", err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode = %v, want SERVFAIL", resp.Header.RCode)
	}
}

func TestPlainHTTPServerForTests(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, echoResponder("192.0.2.80"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if !strings.HasPrefix(srv.URL(), "http://") {
		t.Fatalf("URL = %s", srv.URL())
	}
	client := NewClient()
	resp, err := client.Query(testCtx(t), srv.URL(), "x.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatal("no answer over plain HTTP")
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, echoResponder("192.0.2.81"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	cases := []struct {
		name       string
		method     string
		url        string
		body       string
		contentTyp string
		wantStatus int
	}{
		{"GET without dns param", http.MethodGet, srv.URL(), "", "", http.StatusBadRequest},
		{"GET with bad base64", http.MethodGet, srv.URL() + "?dns=!!!", "", "", http.StatusBadRequest},
		{"GET with garbage message", http.MethodGet, srv.URL() + "?dns=AAAA", "", "", http.StatusBadRequest},
		{"POST wrong content type", http.MethodPost, srv.URL(), "x", "text/plain", http.StatusUnsupportedMediaType},
		{"PUT not allowed", http.MethodPut, srv.URL(), "", "", http.StatusMethodNotAllowed},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(tt.method, tt.url, strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			if tt.contentTyp != "" {
				req.Header.Set("Content-Type", tt.contentTyp)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tt.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tt.wantStatus)
			}
		})
	}
	if srv.Handler().Failures() == 0 {
		t.Error("failure counter never incremented")
	}
}

func TestCacheControlReflectsTTL(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, echoResponder("192.0.2.82"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	query, err := dnswire.NewQuery("x.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := query.Encode()
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL(), strings.NewReader(string(wire)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", MediaType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "max-age=60" {
		t.Fatalf("Cache-Control = %q, want max-age=60", cc)
	}
}

// TestServerMediaTypeTolerance checks the POST Content-Type gate parses
// the media type per RFC 9110 instead of comparing bytes: parameters and
// case variants of application/dns-message are valid, other types are
// not.
func TestServerMediaTypeTolerance(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, echoResponder("192.0.2.85"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	query, err := dnswire.NewQuery("mt.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := query.Encode()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		contentType string
		wantStatus  int
	}{
		{"exact", "application/dns-message", http.StatusOK},
		{"with charset parameter", "application/dns-message; charset=utf-8", http.StatusOK},
		{"mixed case", "Application/DNS-Message", http.StatusOK},
		{"upper case with parameter", "APPLICATION/DNS-MESSAGE; q=1", http.StatusOK},
		{"wrong type", "text/plain", http.StatusUnsupportedMediaType},
		{"prefix but different type", "application/dns-message-x", http.StatusUnsupportedMediaType},
		{"empty", "", http.StatusUnsupportedMediaType},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodPost, srv.URL(), strings.NewReader(string(wire)))
			if err != nil {
				t.Fatal(err)
			}
			if tt.contentType != "" {
				req.Header.Set("Content-Type", tt.contentType)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tt.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tt.wantStatus)
			}
		})
	}
}

// TestClientMediaTypeTolerance checks the client accepts response
// Content-Type values with parameters and case variants — real DoH
// deployments send them — while still rejecting non-DNS types.
func TestClientMediaTypeTolerance(t *testing.T) {
	cases := []struct {
		name        string
		contentType string
		wantErr     bool
	}{
		{"with charset parameter", "application/dns-message; charset=utf-8", false},
		{"mixed case", "Application/DNS-Message", false},
		{"wrong type", "text/html", true},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			// A hand-rolled endpoint: decode the POST body, answer it,
			// and stamp the response with the Content-Type under test.
			mux := http.NewServeMux()
			mux.HandleFunc(DefaultPath, func(w http.ResponseWriter, r *http.Request) {
				body, err := io.ReadAll(r.Body)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				q, err := dnswire.Decode(body)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				resp := dnswire.NewResponse(q)
				resp.Answers = append(resp.Answers,
					dnswire.AddressRecord(q.Questions[0].Name, netip.MustParseAddr("192.0.2.86"), 60))
				wire, err := resp.Encode()
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				w.Header().Set("Content-Type", tt.contentType)
				_, _ = w.Write(wire)
			})
			hs := httptest.NewServer(mux)
			t.Cleanup(hs.Close)

			client := NewClient()
			resp, err := client.Query(testCtx(t), hs.URL+DefaultPath, "mt.test.", dnswire.TypeA)
			if tt.wantErr {
				if !errors.Is(err, ErrBadContentType) {
					t.Fatalf("err = %v, want ErrBadContentType", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("content type %q rejected: %v", tt.contentType, err)
			}
			if len(resp.AnswerAddrs()) != 1 {
				t.Fatalf("answers = %v", resp.AnswerAddrs())
			}
		})
	}
}

// TestGETWireIDIsZero is the RFC 8484 §4.1 cache-friendliness round
// trip: the GET client zeroes the transaction ID on the wire form (so
// identical questions produce identical URLs and the server's
// Cache-Control can yield HTTP cache hits), the server's ID-0 echo is
// accepted, and the POST path keeps its random ID.
func TestGETWireIDIsZero(t *testing.T) {
	var wireIDs []uint16
	capture := ResponderFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		wireIDs = append(wireIDs, q.Header.ID)
		return echoResponder("192.0.2.87").Respond(context.Background(), q)
	})
	srv, err := NewServer("127.0.0.1:0", nil, capture)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	query, err := dnswire.NewQuery("id0.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	query.Header.ID = 0xBEEF

	getClient := NewClient(WithMethod(MethodGET))
	resp, err := getClient.Exchange(testCtx(t), query, srv.URL())
	if err != nil {
		t.Fatalf("GET round trip with ID-0 wire form: %v", err)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatalf("answers = %v", resp.AnswerAddrs())
	}
	if query.Header.ID != 0xBEEF {
		t.Fatalf("caller's query mutated: ID = %#x", query.Header.ID)
	}

	postClient := NewClient()
	if _, err := postClient.Exchange(testCtx(t), query, srv.URL()); err != nil {
		t.Fatal(err)
	}

	if len(wireIDs) != 2 {
		t.Fatalf("server saw %d queries, want 2", len(wireIDs))
	}
	if wireIDs[0] != 0 {
		t.Errorf("GET wire ID = %#x, want 0 (RFC 8484 §4.1)", wireIDs[0])
	}
	if wireIDs[1] != 0xBEEF {
		t.Errorf("POST wire ID = %#x, want the caller's 0xBEEF", wireIDs[1])
	}
}

// TestOversizedGETRejected checks the GET ?dns= parameter is capped
// before base64 decoding, mirroring the POST body's 64 KiB bound.
func TestOversizedGETRejected(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, echoResponder("192.0.2.88"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	// One base64 character past the cap: would decode to > 64 KiB.
	huge := strings.Repeat("A", base64.RawURLEncoding.EncodedLen(dnswire.MaxMessageSize)+1)
	resp, err := http.Get(srv.URL() + "?dns=" + huge)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestURITooLong {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusRequestURITooLong)
	}
	if srv.Handler().Failures() != 1 {
		t.Errorf("failures = %d, want 1", srv.Handler().Failures())
	}
}

func TestClientValidatesQuestionEcho(t *testing.T) {
	// A malicious DoH server answering a different question must be
	// rejected client-side.
	evil := ResponderFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(q)
		resp.Questions = []dnswire.Question{{Name: "evil.test.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
		return resp, nil
	})
	srv, client := startTLSServer(t, evil)
	_, err := client.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err == nil {
		t.Fatal("client accepted a response for a different question")
	}
}

func TestConcurrentExchanges(t *testing.T) {
	srv, client := startTLSServer(t, echoResponder("192.0.2.83"))
	ctx := testCtx(t)
	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := client.Query(ctx, srv.URL(), "pool.ntp.test.", dnswire.TypeA)
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Handler().Requests(); got != n {
		t.Fatalf("requests = %d, want %d", got, n)
	}
}

func TestPaddingRoundTrip(t *testing.T) {
	// A padding client gets padded answers; the response still validates
	// and the HTTP body sizes are block-aligned.
	var bodySize int
	capture := ResponderFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		wire, err := q.Encode()
		if err != nil {
			return nil, err
		}
		bodySize = len(wire)
		resp := dnswire.NewResponse(q)
		resp.Answers = append(resp.Answers,
			dnswire.AddressRecord(q.Questions[0].Name, netip.MustParseAddr("192.0.2.90"), 60))
		return resp, nil
	})
	srv, err := NewServer("127.0.0.1:0", nil, capture)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	client := NewClient(WithPadding())
	resp, err := client.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if bodySize%dnswire.QueryPaddingBlock != 0 {
		t.Errorf("query body %d not padded to %d blocks", bodySize, dnswire.QueryPaddingBlock)
	}
	respWire, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(respWire)%dnswire.ResponsePaddingBlock != 0 {
		t.Errorf("response %d not padded to %d blocks", len(respWire), dnswire.ResponsePaddingBlock)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatal("padding corrupted the answer")
	}
}

func TestUnpaddedClientGetsUnpaddedResponse(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, echoResponder("192.0.2.91"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewClient()
	resp, err := client.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := resp.EDNSOptions()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range opts {
		if o.Code == dnswire.EDNSOptionPadding {
			t.Fatal("server padded a response to an unpadded client")
		}
	}
}
