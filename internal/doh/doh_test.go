package doh

import (
	"context"
	"errors"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/testpki"
)

// echoResponder answers every A query with a fixed address.
func echoResponder(addr string) QueryResponder {
	ip := netip.MustParseAddr(addr)
	return ResponderFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(q)
		resp.Header.RecursionAvailable = true
		resp.Answers = append(resp.Answers,
			dnswire.AddressRecord(q.Questions[0].Name, ip, 60))
		return resp, nil
	})
}

func startTLSServer(t *testing.T, responder QueryResponder) (*Server, *Client) {
	t.Helper()
	ca, err := testpki.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	tlsCfg, err := ca.ServerTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", tlsCfg, responder)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewClient(WithTLSConfig(ca.ClientTLS()))
	return srv, client
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestPOSTExchangeOverTLS(t *testing.T) {
	srv, client := startTLSServer(t, echoResponder("192.0.2.77"))
	resp, err := client.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	addrs := resp.AnswerAddrs()
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.77") {
		t.Fatalf("addrs = %v", addrs)
	}
	if srv.Handler().Requests() != 1 {
		t.Errorf("requests = %d", srv.Handler().Requests())
	}
}

func TestGETExchangeOverTLS(t *testing.T) {
	ca, err := testpki.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	tlsCfg, err := ca.ServerTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", tlsCfg, echoResponder("192.0.2.78"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	getClient := NewClient(WithTLSConfig(ca.ClientTLS()), WithMethod(MethodGET))
	resp, err := getClient.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatalf("GET answers = %v", resp.AnswerAddrs())
	}
}

func TestUntrustedCARejected(t *testing.T) {
	srv, _ := startTLSServer(t, echoResponder("192.0.2.79"))
	otherCA, err := testpki.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	badClient := NewClient(WithTLSConfig(otherCA.ClientTLS()))
	_, err = badClient.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err == nil {
		t.Fatal("exchange succeeded with untrusted CA — channel authentication broken")
	}
}

func TestServFailOnResolverError(t *testing.T) {
	failing := ResponderFunc(func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
		return nil, errors.New("backend exploded")
	})
	srv, client := startTLSServer(t, failing)
	resp, err := client.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("DoH must deliver SERVFAIL over HTTP 200, got transport error %v", err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode = %v, want SERVFAIL", resp.Header.RCode)
	}
}

func TestPlainHTTPServerForTests(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, echoResponder("192.0.2.80"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if !strings.HasPrefix(srv.URL(), "http://") {
		t.Fatalf("URL = %s", srv.URL())
	}
	client := NewClient()
	resp, err := client.Query(testCtx(t), srv.URL(), "x.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatal("no answer over plain HTTP")
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, echoResponder("192.0.2.81"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	cases := []struct {
		name       string
		method     string
		url        string
		body       string
		contentTyp string
		wantStatus int
	}{
		{"GET without dns param", http.MethodGet, srv.URL(), "", "", http.StatusBadRequest},
		{"GET with bad base64", http.MethodGet, srv.URL() + "?dns=!!!", "", "", http.StatusBadRequest},
		{"GET with garbage message", http.MethodGet, srv.URL() + "?dns=AAAA", "", "", http.StatusBadRequest},
		{"POST wrong content type", http.MethodPost, srv.URL(), "x", "text/plain", http.StatusUnsupportedMediaType},
		{"PUT not allowed", http.MethodPut, srv.URL(), "", "", http.StatusMethodNotAllowed},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(tt.method, tt.url, strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			if tt.contentTyp != "" {
				req.Header.Set("Content-Type", tt.contentTyp)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tt.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tt.wantStatus)
			}
		})
	}
	if srv.Handler().Failures() == 0 {
		t.Error("failure counter never incremented")
	}
}

func TestCacheControlReflectsTTL(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, echoResponder("192.0.2.82"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	query, err := dnswire.NewQuery("x.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := query.Encode()
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL(), strings.NewReader(string(wire)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", MediaType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "max-age=60" {
		t.Fatalf("Cache-Control = %q, want max-age=60", cc)
	}
}

func TestClientValidatesQuestionEcho(t *testing.T) {
	// A malicious DoH server answering a different question must be
	// rejected client-side.
	evil := ResponderFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(q)
		resp.Questions = []dnswire.Question{{Name: "evil.test.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
		return resp, nil
	})
	srv, client := startTLSServer(t, evil)
	_, err := client.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err == nil {
		t.Fatal("client accepted a response for a different question")
	}
}

func TestConcurrentExchanges(t *testing.T) {
	srv, client := startTLSServer(t, echoResponder("192.0.2.83"))
	ctx := testCtx(t)
	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := client.Query(ctx, srv.URL(), "pool.ntp.test.", dnswire.TypeA)
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Handler().Requests(); got != n {
		t.Fatalf("requests = %d, want %d", got, n)
	}
}

func TestPaddingRoundTrip(t *testing.T) {
	// A padding client gets padded answers; the response still validates
	// and the HTTP body sizes are block-aligned.
	var bodySize int
	capture := ResponderFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		wire, err := q.Encode()
		if err != nil {
			return nil, err
		}
		bodySize = len(wire)
		resp := dnswire.NewResponse(q)
		resp.Answers = append(resp.Answers,
			dnswire.AddressRecord(q.Questions[0].Name, netip.MustParseAddr("192.0.2.90"), 60))
		return resp, nil
	})
	srv, err := NewServer("127.0.0.1:0", nil, capture)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	client := NewClient(WithPadding())
	resp, err := client.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if bodySize%dnswire.QueryPaddingBlock != 0 {
		t.Errorf("query body %d not padded to %d blocks", bodySize, dnswire.QueryPaddingBlock)
	}
	respWire, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(respWire)%dnswire.ResponsePaddingBlock != 0 {
		t.Errorf("response %d not padded to %d blocks", len(respWire), dnswire.ResponsePaddingBlock)
	}
	if len(resp.AnswerAddrs()) != 1 {
		t.Fatal("padding corrupted the answer")
	}
}

func TestUnpaddedClientGetsUnpaddedResponse(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, echoResponder("192.0.2.91"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewClient()
	resp, err := client.Query(testCtx(t), srv.URL(), "pool.ntp.test.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := resp.EDNSOptions()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range opts {
		if o.Code == dnswire.EDNSOptionPadding {
			t.Fatal("server padded a response to an unpadded client")
		}
	}
}
