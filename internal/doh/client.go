package doh

import (
	"bytes"
	"context"
	"crypto/tls"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"dohpool/internal/dnswire"
	"dohpool/internal/transport"
)

// Client errors.
var (
	// ErrHTTPStatus reports a non-200 DoH response.
	ErrHTTPStatus = errors.New("doh server returned non-200 status")
	// ErrBadContentType reports a response without the DNS media type.
	ErrBadContentType = errors.New("doh response has wrong content type")
)

// Method selects how the client sends queries.
type Method int

// Query methods.
const (
	// MethodPOST sends the query in the request body (RFC 8484 §4.1).
	MethodPOST Method = iota + 1
	// MethodGET sends the query base64url-encoded in the URL. Cacheable by
	// HTTP intermediaries.
	MethodGET
)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTLSConfig sets the TLS configuration (testbed CA trust).
func WithTLSConfig(cfg *tls.Config) ClientOption {
	return func(c *Client) { c.tlsCfg = cfg }
}

// WithMethod selects GET or POST (default POST).
func WithMethod(m Method) ClientOption {
	return func(c *Client) { c.method = m }
}

// WithTimeout bounds each exchange (default transport.DefaultTimeout).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithHTTPClient injects a fully custom HTTP client (attack wrappers and
// tests).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.http = hc }
}

// WithPadding pads every query to the RFC 8467 recommended 128-octet
// blocks (RFC 7830 EDNS Padding), so the TLS record sizes of different
// pool domains are indistinguishable on the wire.
func WithPadding() ClientOption {
	return func(c *Client) { c.pad = true }
}

// Client queries DoH servers. One Client may talk to any number of
// servers; per-resolver identity lives in the URL passed to Exchange.
type Client struct {
	http    *http.Client
	tlsCfg  *tls.Config
	method  Method
	timeout time.Duration
	pad     bool
}

// NewClient builds a DoH client.
func NewClient(opts ...ClientOption) *Client {
	c := &Client{method: MethodPOST, timeout: transport.DefaultTimeout}
	for _, opt := range opts {
		opt(c)
	}
	if c.http == nil {
		tr := &http.Transport{
			TLSClientConfig:     c.tlsCfg,
			ForceAttemptHTTP2:   true,
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     30 * time.Second,
		}
		c.http = &http.Client{Transport: tr}
	}
	return c
}

// Exchange sends query to the DoH endpoint at url and returns the decoded,
// validated response.
func (c *Client) Exchange(ctx context.Context, query *dnswire.Message, url string) (*dnswire.Message, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	if c.pad {
		padded := query.Copy()
		if _, ok := padded.EDNSSize(); !ok {
			padded.SetEDNS(dnswire.DefaultEDNSSize)
		}
		if err := padded.PadTo(dnswire.QueryPaddingBlock); err == nil {
			query = padded
		}
	}
	wireQuery := query
	if c.method == MethodGET && query.Header.ID != 0 {
		// RFC 8484 §4.1: GET queries use DNS ID 0 on the wire so the
		// same question always produces the same URL — a random ID makes
		// every request a unique cache key and the server's
		// Cache-Control header can never yield an HTTP cache hit.
		wireQuery = query.Copy()
		wireQuery.Header.ID = 0
	}
	wire, err := wireQuery.Encode()
	if err != nil {
		return nil, fmt.Errorf("encode query: %w", err)
	}

	var req *http.Request
	switch c.method {
	case MethodGET:
		u := url + "?dns=" + base64.RawURLEncoding.EncodeToString(wire)
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	default:
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(wire))
		if err == nil {
			req.Header.Set("Content-Type", MediaType)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("build request: %w", err)
	}
	req.Header.Set("Accept", MediaType)

	httpResp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("doh exchange with %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %w", url, httpResp.StatusCode, ErrHTTPStatus)
	}
	if ct := httpResp.Header.Get("Content-Type"); !isDNSMediaType(ct) {
		return nil, fmt.Errorf("%s: content-type %q: %w", url, ct, ErrBadContentType)
	}
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, dnswire.MaxMessageSize+1))
	if err != nil {
		return nil, fmt.Errorf("read doh response: %w", err)
	}
	if len(body) > dnswire.MaxMessageSize {
		return nil, transport.ErrResponseTooLarge
	}
	resp, err := dnswire.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("decode doh response: %w", err)
	}
	// GET exchanges went out with ID 0 on the wire, so the echo comes
	// back as ID 0 — ValidateGET accepts it against the caller's query.
	validate := transport.Validate
	if c.method == MethodGET {
		validate = transport.ValidateGET
	}
	if err := validate(query, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Query is a convenience wrapper: build a query for (name, typ), exchange
// it with the endpoint, return the response.
func (c *Client) Query(ctx context.Context, url, name string, typ dnswire.Type) (*dnswire.Message, error) {
	query, err := dnswire.NewQuery(name, typ)
	if err != nil {
		return nil, err
	}
	return c.Exchange(ctx, query, url)
}
