// Package doh implements DNS-over-HTTPS per RFC 8484: a server wrapping a
// recursive resolver, and a client that queries such servers. These are
// the distributed DoH resolvers of the paper's step 2 — each one an
// independent vantage point with an authenticated channel to the client.
package doh

import (
	"context"
	"crypto/tls"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dohpool/internal/dnswire"
)

// MediaType is the RFC 8484 media type for DNS messages in HTTP bodies.
const MediaType = "application/dns-message"

// DefaultPath is the conventional DoH endpoint path.
const DefaultPath = "/dns-query"

// maxRequestBytes bounds POST bodies (a DNS message cannot exceed 64 KiB).
const maxRequestBytes = dnswire.MaxMessageSize

// isDNSMediaType reports whether a Content-Type header value names the
// RFC 8484 media type. Media types compare case-insensitively and may
// carry parameters (RFC 9110 §8.3.1) — "Application/DNS-Message" and
// "application/dns-message; charset=utf-8" are both the DNS media type,
// so byte equality against MediaType is the wrong test on either side
// of the exchange.
func isDNSMediaType(value string) bool {
	mt, _, err := mime.ParseMediaType(value)
	return err == nil && mt == MediaType
}

// QueryResponder answers decoded DNS queries; the recursive resolver
// satisfies it via a small adapter, and attack wrappers interpose here to
// model a compromised resolver.
type QueryResponder interface {
	Respond(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error)
}

// ResponderFunc adapts a function to QueryResponder.
type ResponderFunc func(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error)

// Respond implements QueryResponder.
func (f ResponderFunc) Respond(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	return f(ctx, query)
}

// Compile-time interface checks.
var (
	_ QueryResponder = ResponderFunc(nil)
	_ http.Handler   = (*Handler)(nil)
)

// Handler serves RFC 8484 DoH requests over HTTP.
type Handler struct {
	responder QueryResponder

	// Wire, when non-nil, gets first crack at every extracted query with
	// its raw bytes, before the message decoder runs. Returning true
	// means Wire wrote the complete HTTP response (headers and body);
	// returning false falls through to the regular decode → respond →
	// encode path. The frontend installs its wire-cache fast path here.
	Wire func(w http.ResponseWriter, query []byte) bool

	requests atomic.Uint64
	failures atomic.Uint64
}

// NewHandler wraps a responder in an RFC 8484 HTTP handler.
func NewHandler(responder QueryResponder) *Handler {
	return &Handler{responder: responder}
}

// Requests returns the number of DoH requests served.
func (h *Handler) Requests() uint64 { return h.requests.Load() }

// Failures returns the number of requests that could not be served.
func (h *Handler) Failures() uint64 { return h.failures.Load() }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.requests.Add(1)
	wire, status, err := extractQuery(r)
	if err != nil {
		h.failures.Add(1)
		http.Error(w, err.Error(), status)
		return
	}
	if h.Wire != nil && h.Wire(w, wire) {
		return
	}
	query, err := dnswire.Decode(wire)
	if err != nil {
		h.failures.Add(1)
		http.Error(w, "malformed DNS message", http.StatusBadRequest)
		return
	}
	resp, err := h.responder.Respond(r.Context(), query)
	if err != nil {
		// Per RFC 8484 §4.2.1, resolution failures still produce a DNS
		// response (SERVFAIL) with HTTP 200.
		resp = dnswire.NewErrorResponse(query, dnswire.RCodeServFail)
	}
	if queryPadded(query) {
		// RFC 8467 §4.2: a server MUST pad responses to clients that
		// padded their queries (468-octet blocks).
		padded := resp.Copy()
		if _, ok := padded.EDNSSize(); !ok {
			padded.SetEDNS(dnswire.DefaultEDNSSize)
		}
		if err := padded.PadTo(dnswire.ResponsePaddingBlock); err == nil {
			resp = padded
		}
	}
	respWire, err := resp.Encode()
	if err != nil {
		h.failures.Add(1)
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", MediaType)
	w.Header().Set("Cache-Control", "max-age="+strconv.FormatUint(uint64(resp.MinAnswerTTL(0)), 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(respWire)))
	_, _ = w.Write(respWire)
}

// queryPadded reports whether the client used the EDNS Padding option.
func queryPadded(query *dnswire.Message) bool {
	opts, err := query.EDNSOptions()
	if err != nil {
		return false
	}
	for _, o := range opts {
		if o.Code == dnswire.EDNSOptionPadding {
			return true
		}
	}
	return false
}

// extractQuery pulls the wire-format DNS query out of a GET ?dns= or POST
// body request per RFC 8484 §4.1.
func extractQuery(r *http.Request) ([]byte, int, error) {
	switch r.Method {
	case http.MethodGet:
		b64 := r.URL.Query().Get("dns")
		if b64 == "" {
			return nil, http.StatusBadRequest, errors.New("missing dns query parameter")
		}
		// Enforce the POST body's 64 KiB message cap before decoding:
		// base64url inflates by 4/3, so bounding the encoded form bounds
		// the decoded message and an oversized parameter never allocates
		// past dnswire.MaxMessageSize.
		if len(b64) > base64.RawURLEncoding.EncodedLen(maxRequestBytes) {
			return nil, http.StatusRequestURITooLong, errors.New("dns parameter exceeds maximum message size")
		}
		wire, err := base64.RawURLEncoding.DecodeString(b64)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("dns parameter: %w", err)
		}
		return wire, 0, nil
	case http.MethodPost:
		if ct := r.Header.Get("Content-Type"); !isDNSMediaType(ct) {
			return nil, http.StatusUnsupportedMediaType, fmt.Errorf("content-type %q", ct)
		}
		wire, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("read body: %w", err)
		}
		if len(wire) > maxRequestBytes {
			return nil, http.StatusRequestEntityTooLarge, errors.New("request too large")
		}
		return wire, 0, nil
	default:
		return nil, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method)
	}
}

// Server is a DoH resolver endpoint: an HTTPS listener serving a Handler.
type Server struct {
	handler *Handler
	httpSrv *http.Server
	ln      net.Listener
	done    chan struct{}
	useTLS  bool
}

// NewServer starts a DoH server on addr ("127.0.0.1:0" for ephemeral)
// using tlsCfg (nil serves plain HTTP — useful only for tests; the paper's
// security argument requires TLS).
func NewServer(addr string, tlsCfg *tls.Config, responder QueryResponder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	handler := NewHandler(responder)
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, handler)
	srv := &Server{
		handler: handler,
		httpSrv: &http.Server{
			Handler:           mux,
			TLSConfig:         tlsCfg,
			ReadHeaderTimeout: 5 * time.Second,
			// Handshake failures from probing clients are expected noise
			// in the adversarial testbed; keep them out of test output.
			ErrorLog: log.New(io.Discard, "", 0),
		},
		ln:     ln,
		done:   make(chan struct{}),
		useTLS: tlsCfg != nil,
	}
	go func() {
		defer close(srv.done)
		if tlsCfg != nil {
			_ = srv.httpSrv.ServeTLS(ln, "", "")
		} else {
			_ = srv.httpSrv.Serve(ln)
		}
	}()
	return srv, nil
}

// Addr returns the host:port the server listens on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the full DoH endpoint URL.
func (s *Server) URL() string {
	scheme := "https"
	if !s.useTLS {
		scheme = "http"
	}
	return scheme + "://" + s.Addr() + DefaultPath
}

// Handler exposes the underlying handler (for stats).
func (s *Server) Handler() *Handler { return s.handler }

// Close shuts the server down and waits for the serve loop to exit. It
// closes connections immediately: DoH exchanges are single
// request/response pairs, so there is nothing graceful to wait for in
// the testbed.
func (s *Server) Close() error {
	err := s.httpSrv.Close()
	<-s.done
	return err
}
