// Package metrics is a dependency-free instrumentation registry with
// Prometheus text-format exposition (version 0.0.4). It exists so the
// consensus engine, resolver health tracker, DNS frontend and pool cache
// can expose their runtime behaviour without pulling a client library
// into the module.
//
// Instruments are lock-free on the hot path (atomic counters, float-bits
// gauges, fixed-bucket histograms); the registry lock is only taken at
// creation and exposition time. Every instrument method is nil-receiver
// safe, so a component built without a registry pays one nil check per
// observation and nothing else:
//
//	var reg *metrics.Registry // nil: instrumentation disabled
//	c := reg.Counter("x_total", "...")
//	c.Inc() // no-op, no panic
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type names as they appear in Prometheus TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call New. A nil *Registry is a
// valid "instrumentation off" registry: every constructor returns a nil
// instrument whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// family is one named metric family: HELP/TYPE header plus its series.
type family struct {
	name string
	help string
	typ  string

	mu     sync.Mutex
	order  []string           // series keys in first-seen order
	series map[string]*series // key = rendered label pairs ("" for unlabeled)
}

// series is one (labelset → instrument) binding inside a family.
type series struct {
	labels    string // rendered `k="v",...` (no braces), "" when unlabeled
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
	fn        func() float64 // callback counters/gauges
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor returns the family registered under name, creating it on
// first use. A name reused with a different TYPE panics — that is a
// programming error, not a runtime condition.
func (r *Registry) familyFor(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %q registered as %s and %s", name, f.typ, typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// seriesFor returns the series under key, creating it with mk on first
// use.
func (f *family) seriesFor(key string, mk func() *series) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labels = key
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// --- Counter ----------------------------------------------------------

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the unlabeled counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, typeCounter)
	return f.seriesFor("", func() *series { return &series{counter: &Counter{}} }).counter
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	fam    *family
	labels []string
}

// CounterVec returns the labeled counter family registered under name.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.familyFor(name, help, typeCounter), labels: labelNames}
}

// With returns the counter for the given label values (positionally
// matching the vec's label names).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := renderLabels(v.labels, values)
	return v.fam.seriesFor(key, func() *series { return &series{counter: &Counter{}} }).counter
}

// WithFunc registers a callback-backed series under the given label
// values: fn is read at exposition time, like CounterFunc but labeled.
// Use it to surface per-component counters a subsystem already maintains
// (e.g. per-shard cache statistics). fn must be safe for concurrent use.
// Re-registering the same label values replaces the callback.
func (v *CounterVec) WithFunc(fn func() float64, values ...string) {
	if v == nil {
		return
	}
	key := renderLabels(v.labels, values)
	s := v.fam.seriesFor(key, func() *series { return &series{} })
	v.fam.mu.Lock()
	s.fn = fn
	v.fam.mu.Unlock()
}

// CounterFunc registers a callback-backed counter: fn is read at
// exposition time. Use it to surface counters a component already
// maintains (e.g. cache statistics) without double-counting. fn must be
// safe for concurrent use. Re-registering the same name replaces the
// callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.familyFor(name, help, typeCounter)
	s := f.seriesFor("", func() *series { return &series{} })
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// --- Gauge ------------------------------------------------------------

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; fine for low-rate gauges like in-flight
// counts).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns the unlabeled gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, typeGauge)
	return f.seriesFor("", func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	fam    *family
	labels []string
}

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.familyFor(name, help, typeGauge), labels: labelNames}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key := renderLabels(v.labels, values)
	return v.fam.seriesFor(key, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// GaugeFunc registers a callback-backed gauge read at exposition time.
// fn must be safe for concurrent use. Re-registering the same name
// replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.familyFor(name, help, typeGauge)
	s := f.seriesFor("", func() *series { return &series{} })
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// --- Histogram --------------------------------------------------------

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style (le = upper bound, +Inf implicit), tracking count and sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	count  atomic.Uint64
	sum    Gauge // float-bits accumulator reused for the sum
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Snapshot copies the histogram's state: the bucket upper bounds and the
// per-bucket (non-cumulative) counts, with counts one longer than bounds
// — the final element is the +Inf overflow bucket. Nil-safe.
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution from the bucket counts. Within the winning bucket the
// estimate interpolates geometrically between the bucket's bounds — the
// right interpolation for log-spaced ladders like LogBuckets, and a
// conservative one for linear ladders. Values landing in the +Inf
// overflow bucket return +Inf: a p999 beyond the histogram's range must
// fail a gate loudly, not report the last finite bound as if measured.
// Returns 0 when the histogram is nil or empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if cum+n >= rank {
			if i == len(h.bounds) {
				return math.Inf(1)
			}
			upper := h.bounds[i]
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			// Position of the target observation inside this bucket.
			frac := float64(rank-cum) / float64(n)
			if lower <= 0 {
				// First bucket (or a ladder starting at/below 0): no
				// geometric span to interpolate over; linear from lower.
				return lower + (upper-lower)*frac
			}
			return lower * math.Pow(upper/lower, frac)
		}
		cum += n
	}
	return math.Inf(1) // unreachable: total > 0 guarantees a bucket hits
}

// Histogram returns the histogram registered under name with the given
// bucket upper bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, typeHistogram)
	s := f.seriesFor("", func() *series {
		return &series{histogram: NewHistogram(buckets)}
	})
	return s.histogram
}

// NewHistogram builds a standalone (unregistered) histogram with the
// given bucket upper bounds — for consumers like the load generator that
// want the lock-free observation path and Quantile extraction without
// Prometheus exposition.
func NewHistogram(buckets []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// HistogramVec is a histogram family partitioned by label values; every
// series shares one bucket ladder.
type HistogramVec struct {
	fam     *family
	labels  []string
	buckets []float64
}

// HistogramVec returns the labeled histogram family registered under
// name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{
		fam:     r.familyFor(name, help, typeHistogram),
		labels:  labelNames,
		buckets: append([]float64(nil), buckets...),
	}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := renderLabels(v.labels, values)
	return v.fam.seriesFor(key, func() *series {
		return &series{histogram: NewHistogram(v.buckets)}
	}).histogram
}

// DurationBuckets is a general-purpose latency bucket ladder in seconds,
// from 100µs to 10s.
func DurationBuckets() []float64 {
	return []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// LogBuckets returns log-spaced bucket upper bounds from min to at least
// max, with perBucket bounds per decade (HDR-histogram style: constant
// relative error, so a p999 read keeps its precision across orders of
// magnitude where a linear ladder collapses the tail into one bucket).
// min must be positive and max greater than min; perDecade at least 1.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade < 1 {
		panic("metrics: LogBuckets wants 0 < min < max and perDecade >= 1")
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for b := min; ; b *= ratio {
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}

// --- exposition -------------------------------------------------------

// WritePrometheus renders every family in Prometheus text format
// (version 0.0.4): HELP and TYPE lines followed by one line per series,
// in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		// Snapshot series values under the family lock: fn is mutable
		// (Counter/GaugeFunc re-registration replaces it), so it must be
		// copied here, not read during rendering.
		f.mu.Lock()
		snap := make([]series, len(f.order))
		for i, k := range f.order {
			snap[i] = *f.series[k]
		}
		f.mu.Unlock()

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for i := range snap {
			writeSeries(&b, f, &snap[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.histogram != nil:
		h := s.histogram
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", f.name, labelPrefix(s.labels), formatFloat(bound), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, labelPrefix(s.labels), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, braced(s.labels), formatFloat(s.histogram.sum.Value()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, braced(s.labels), h.count.Load())
	case s.fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, braced(s.labels), formatFloat(s.fn()))
	case s.counter != nil:
		fmt.Fprintf(b, "%s%s %d\n", f.name, braced(s.labels), s.counter.Value())
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, braced(s.labels), formatFloat(s.gauge.Value()))
	}
}

// renderLabels renders `k="v",...` pairs; extra values beyond the label
// names are dropped, missing ones render empty.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

// braced wraps rendered label pairs in braces ("" stays "").
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// labelPrefix renders label pairs for merging with an le label.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
