package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "a test counter")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value() = %d, want 8000", got)
	}
}

func TestCounterVecSeries(t *testing.T) {
	r := New()
	v := r.CounterVec("requests_total", "requests", "proto")
	v.With("udp").Add(3)
	v.With("tcp").Inc()
	if v.With("udp") != v.With("udp") {
		t.Fatal("With is not memoized")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total requests",
		"# TYPE requests_total counter",
		`requests_total{proto="udp"} 3`,
		`requests_total{proto="tcp"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("inflight", "in-flight work")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value() = %v, want 3", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := New()
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("Value() = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive, Prometheus semantics
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not in its bucket:\n%s", b.String())
	}
}

func TestFuncInstruments(t *testing.T) {
	r := New()
	hits := uint64(41)
	r.CounterFunc("cache_hits_total", "hits", func() float64 { return float64(hits) })
	r.GaugeFunc("cache_entries", "entries", func() float64 { return 7 })
	hits++ // callbacks are read at exposition time
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "cache_hits_total 42") {
		t.Errorf("CounterFunc not read live:\n%s", out)
	}
	if !strings.Contains(out, "cache_entries 7") {
		t.Errorf("GaugeFunc missing:\n%s", out)
	}
}

func TestCounterVecWithFunc(t *testing.T) {
	r := New()
	shardHits := []uint64{10, 20}
	vec := r.CounterVec("cache_shard_hits_total", "per-shard hits", "shard")
	for i := range shardHits {
		i := i
		vec.WithFunc(func() float64 { return float64(shardHits[i]) }, strconv.Itoa(i))
	}
	shardHits[1] = 21 // callbacks are read at exposition time
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`cache_shard_hits_total{shard="0"} 10`,
		`cache_shard_hits_total{shard="1"} 21`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled WithFunc series missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheusText(out); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}

func TestFuncReregistrationDuringScrape(t *testing.T) {
	r := New()
	r.GaugeFunc("g", "", func() float64 { return 0 })
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			v := float64(i)
			r.GaugeFunc("g", "", func() float64 { return v })
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := r.WritePrometheus(&strings.Builder{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	r.CounterVec("y", "", "l").With("v").Add(2)
	g := r.Gauge("z", "")
	g.Set(1)
	g.Add(1)
	r.GaugeVec("w", "", "l").With("v").Inc()
	h := r.Histogram("v", "", []float64{1})
	h.Observe(0.5)
	r.CounterFunc("f", "", func() float64 { return 1 })
	r.GaugeFunc("g", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestMemoizedByName(t *testing.T) {
	r := New()
	a := r.Counter("same_total", "")
	b := r.Counter("same_total", "")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch on a reused name must panic")
		}
	}()
	r.Gauge("same_total", "")
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.CounterVec("esc_total", "", "url").With(`https://x/"q"` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{url="https://x/\"q\"\n"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestExpositionParsesAsPrometheusText(t *testing.T) {
	r := New()
	r.Counter("a_total", "help a").Inc()
	r.GaugeVec("b", "help b", "k").With("v").Set(1.5)
	r.Histogram("c_seconds", "help c", DurationBuckets()).Observe(0.2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheusText(b.String()); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
}

func TestInfinityFormatting(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Fatalf("formatFloat(+Inf) = %q", got)
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.0001, 10, 10)
	if b[0] != 0.0001 {
		t.Fatalf("first bound = %v, want 0.0001", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Fatalf("last bound = %v, must cover max 10", last)
	}
	ratio := math.Pow(10, 0.1)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v <= %v", i, b[i], b[i-1])
		}
		if r := b[i] / b[i-1]; math.Abs(r-ratio) > 1e-9 {
			t.Fatalf("bucket ratio at %d = %v, want %v", i, r, ratio)
		}
	}
	// 5 decades x 10 per decade, plus the starting bound.
	if len(b) != 51 {
		t.Fatalf("len = %d, want 51", len(b))
	}
	for _, bad := range []func(){
		func() { LogBuckets(0, 1, 10) },
		func() { LogBuckets(1, 1, 10) },
		func() { LogBuckets(0.001, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid LogBuckets args must panic")
				}
			}()
			bad()
		}()
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram(LogBuckets(0.0001, 10, 10))
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 1000 observations at ~1ms, 10 at ~100ms: p50 near 1ms, p999+ near 100ms.
	for i := 0; i < 1000; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.1)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.0005 || p50 > 0.002 {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 0.05 || p999 > 0.2 {
		t.Fatalf("p999 = %v, want ~100ms", p999)
	}
	if p50 > p999 {
		t.Fatalf("quantiles not monotone: p50=%v p999=%v", p50, p999)
	}
	if got := h.Quantile(-1); got > p50 {
		t.Fatalf("clamped q<0 = %v, should be at or below p50", got)
	}
	if got := h.Quantile(2); math.IsInf(got, 1) || got < p999 {
		t.Fatalf("clamped q>1 = %v, want max finite bucket estimate >= p999", got)
	}
}

func TestQuantileOverflowIsInf(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100) // lands in +Inf overflow bucket
	if got := h.Quantile(0.5); !math.IsInf(got, 1) {
		t.Fatalf("overflow-bucket quantile = %v, want +Inf", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", got)
	}
}

func TestQuantileFirstBucketLinear(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	got := h.Quantile(0.5)
	if got <= 0 || got > 10 {
		t.Fatalf("first-bucket quantile = %v, want in (0, 10]", got)
	}
}

func TestHistogramSnapshotAndSum(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	bounds, counts := h.Snapshot()
	if len(bounds) != 2 || len(counts) != 3 {
		t.Fatalf("snapshot shape = %d bounds / %d counts", len(bounds), len(counts))
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if got := h.Sum(); math.Abs(got-101) > 1e-9 {
		t.Fatalf("sum = %v, want 101", got)
	}
	var nilH *Histogram
	if b, c := nilH.Snapshot(); b != nil || c != nil {
		t.Fatal("nil snapshot must be nil")
	}
	if nilH.Sum() != 0 {
		t.Fatal("nil sum must be 0")
	}
}

func TestHistogramVec(t *testing.T) {
	r := New()
	v := r.HistogramVec("lat_seconds", "per-proto latency", []float64{0.001, 0.01}, "proto")
	v.With("udp").Observe(0.0005)
	v.With("udp").Observe(0.005)
	v.With("tcp").Observe(0.5)
	if a, b := v.With("udp"), v.With("udp"); a != b {
		t.Fatal("same label values must return the same histogram")
	}
	if got := v.With("udp").Count(); got != 2 {
		t.Fatalf("udp count = %d, want 2", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{proto="udp",le="0.001"} 1`,
		`lat_seconds_bucket{proto="udp",le="+Inf"} 2`,
		`lat_seconds_bucket{proto="tcp",le="+Inf"} 1`,
		`lat_seconds_count{proto="udp"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheusText(out); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, out)
	}
	var nilV *HistogramVec
	nilV.With("x").Observe(1) // must not panic
	var nilR *Registry
	nilR.HistogramVec("n", "", nil, "l").With("x").Observe(1)
}
