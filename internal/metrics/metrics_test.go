package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "a test counter")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value() = %d, want 8000", got)
	}
}

func TestCounterVecSeries(t *testing.T) {
	r := New()
	v := r.CounterVec("requests_total", "requests", "proto")
	v.With("udp").Add(3)
	v.With("tcp").Inc()
	if v.With("udp") != v.With("udp") {
		t.Fatal("With is not memoized")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total requests",
		"# TYPE requests_total counter",
		`requests_total{proto="udp"} 3`,
		`requests_total{proto="tcp"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("inflight", "in-flight work")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value() = %v, want 3", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := New()
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("Value() = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive, Prometheus semantics
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not in its bucket:\n%s", b.String())
	}
}

func TestFuncInstruments(t *testing.T) {
	r := New()
	hits := uint64(41)
	r.CounterFunc("cache_hits_total", "hits", func() float64 { return float64(hits) })
	r.GaugeFunc("cache_entries", "entries", func() float64 { return 7 })
	hits++ // callbacks are read at exposition time
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "cache_hits_total 42") {
		t.Errorf("CounterFunc not read live:\n%s", out)
	}
	if !strings.Contains(out, "cache_entries 7") {
		t.Errorf("GaugeFunc missing:\n%s", out)
	}
}

func TestCounterVecWithFunc(t *testing.T) {
	r := New()
	shardHits := []uint64{10, 20}
	vec := r.CounterVec("cache_shard_hits_total", "per-shard hits", "shard")
	for i := range shardHits {
		i := i
		vec.WithFunc(func() float64 { return float64(shardHits[i]) }, strconv.Itoa(i))
	}
	shardHits[1] = 21 // callbacks are read at exposition time
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`cache_shard_hits_total{shard="0"} 10`,
		`cache_shard_hits_total{shard="1"} 21`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled WithFunc series missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheusText(out); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}

func TestFuncReregistrationDuringScrape(t *testing.T) {
	r := New()
	r.GaugeFunc("g", "", func() float64 { return 0 })
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			v := float64(i)
			r.GaugeFunc("g", "", func() float64 { return v })
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := r.WritePrometheus(&strings.Builder{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	r.CounterVec("y", "", "l").With("v").Add(2)
	g := r.Gauge("z", "")
	g.Set(1)
	g.Add(1)
	r.GaugeVec("w", "", "l").With("v").Inc()
	h := r.Histogram("v", "", []float64{1})
	h.Observe(0.5)
	r.CounterFunc("f", "", func() float64 { return 1 })
	r.GaugeFunc("g", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestMemoizedByName(t *testing.T) {
	r := New()
	a := r.Counter("same_total", "")
	b := r.Counter("same_total", "")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch on a reused name must panic")
		}
	}()
	r.Gauge("same_total", "")
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.CounterVec("esc_total", "", "url").With(`https://x/"q"` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{url="https://x/\"q\"\n"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestExpositionParsesAsPrometheusText(t *testing.T) {
	r := New()
	r.Counter("a_total", "help a").Inc()
	r.GaugeVec("b", "help b", "k").With("v").Set(1.5)
	r.Histogram("c_seconds", "help c", DurationBuckets()).Observe(0.2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheusText(b.String()); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
}

func TestInfinityFormatting(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Fatalf("formatFloat(+Inf) = %q", got)
	}
}
