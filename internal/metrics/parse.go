package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidatePrometheusText checks that s is well-formed Prometheus text
// exposition (version 0.0.4): HELP/TYPE comments and sample lines of the
// form `name{label="value",...} value [timestamp]`, with every sample
// belonging to a family announced by a TYPE line. It is a syntax
// validator for tests and scrape debugging, not a full client parser.
func ValidatePrometheusText(s string) error {
	typed := make(map[string]string) // family -> type
	for i, line := range strings.Split(s, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, ok := typed[familyOf(name, typed)]; !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE line", lineNo, name)
		}
	}
	return nil
}

// familyOf strips histogram/summary sample suffixes to find the family a
// sample belongs to.
func familyOf(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if _, declared := typed[base]; declared {
				return base
			}
		}
	}
	return name
}

// parseSample validates one sample line and returns the metric name.
func parseSample(line string) (string, error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", fmt.Errorf("no metric name in %q", line)
	}
	name, rest := line[:i], line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest)
		if err != nil {
			return "", err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("expected value [timestamp] after %q, got %q", name, rest)
	}
	if fields[0] != "+Inf" && fields[0] != "-Inf" && fields[0] != "NaN" {
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
			return "", fmt.Errorf("bad sample value %q: %v", fields[0], err)
		}
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("bad timestamp %q: %v", fields[1], err)
		}
	}
	return name, nil
}

// parseLabels validates a `{k="v",...}` block starting at s[0] == '{' and
// returns the index one past the closing brace.
func parseLabels(s string) (int, error) {
	i := 1
	for {
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("empty label name in %q", s)
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("expected '=' in labels %q", s)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("expected '\"' in labels %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
