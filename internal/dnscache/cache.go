// Package dnscache provides a TTL-respecting, capacity-bounded cache for
// DNS responses. Each recursive resolver in the testbed owns one cache —
// cache independence across resolvers is part of what makes the paper's
// distributed-DoH consensus meaningful (a poisoned cache stays local to
// one resolver).
package dnscache

import (
	"container/list"
	"sync"
	"time"

	"dohpool/internal/dnswire"
)

// DefaultCapacity bounds the cache when no explicit capacity is given.
const DefaultCapacity = 4096

// Cache is a thread-safe LRU cache keyed by question, honouring record
// TTLs. The zero value is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent
	cap     int
	now     func() time.Time

	hits   uint64
	misses uint64
}

type entry struct {
	key     string
	msg     *dnswire.Message
	stored  time.Time
	expires time.Time
}

// Option configures a Cache.
type Option func(*Cache)

// WithCapacity bounds the number of cached responses.
func WithCapacity(n int) Option {
	return func(c *Cache) {
		if n > 0 {
			c.cap = n
		}
	}
}

// WithClock injects a time source for tests.
func WithClock(now func() time.Time) Option {
	return func(c *Cache) { c.now = now }
}

// New creates an empty cache.
func New(opts ...Option) *Cache {
	c := &Cache{
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		cap:     DefaultCapacity,
		now:     time.Now,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Put stores a response for the given question. The entry lives for the
// minimum answer TTL (or minTTL seconds when the answer section is empty,
// which covers negative responses per RFC 2308's spirit).
func (c *Cache) Put(q dnswire.Question, msg *dnswire.Message, minTTL uint32) {
	ttl := msg.MinAnswerTTL(minTTL)
	if ttl == 0 {
		return // uncacheable
	}
	key := q.Key()
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	e := &entry{
		key:     key,
		msg:     msg.Copy(),
		stored:  now,
		expires: now.Add(time.Duration(ttl) * time.Second),
	}
	c.entries[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
	}
}

// Get returns a copy of the cached response with TTLs decremented by the
// time spent in cache, or (nil, false) on miss or expiry.
func (c *Cache) Get(q dnswire.Question) (*dnswire.Message, bool) {
	key := q.Key()
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*entry)
	if !now.Before(e.expires) {
		c.lru.Remove(el)
		delete(c.entries, key)
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++

	msg := e.msg.Copy()
	age := uint32(now.Sub(e.stored) / time.Second)
	decrement := func(records []dnswire.Record) []dnswire.Record {
		out := make([]dnswire.Record, len(records))
		for i, r := range records {
			if r.TTL > age {
				r.TTL -= age
			} else {
				r.TTL = 1
			}
			out[i] = r
		}
		return out
	}
	msg.Answers = decrement(msg.Answers)
	msg.Authority = decrement(msg.Authority)
	return msg, true
}

// Flush removes every entry.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
}

// Len returns the number of live entries (including not-yet-evicted
// expired ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns cumulative hit and miss counters.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
