// Package dnscache provides a TTL-respecting, capacity-bounded cache for
// DNS responses. Each recursive resolver in the testbed owns one cache —
// cache independence across resolvers is part of what makes the paper's
// distributed-DoH consensus meaningful (a poisoned cache stays local to
// one resolver). The generic Store underneath also backs the consensus
// engine's pool cache in internal/core.
package dnscache

import (
	"time"

	"dohpool/internal/dnswire"
)

// DefaultCapacity bounds the cache when no explicit capacity is given.
const DefaultCapacity = 4096

// Cache is a thread-safe LRU cache keyed by question, honouring record
// TTLs. The zero value is not usable; call New.
type Cache struct {
	store *Store[*dnswire.Message]
}

// Option configures a Cache.
type Option func(*cacheConfig)

type cacheConfig struct {
	cap    int
	shards int
	now    func() time.Time
}

// WithCapacity bounds the number of cached responses.
func WithCapacity(n int) Option {
	return func(c *cacheConfig) {
		if n > 0 {
			c.cap = n
		}
	}
}

// WithShards splits the cache into n lock domains (rounded up to a power
// of two) so concurrent resolvers' hot paths stop contending on one
// mutex. The default of 1 keeps strict global LRU order.
func WithShards(n int) Option {
	return func(c *cacheConfig) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithClock injects a time source for tests.
func WithClock(now func() time.Time) Option {
	return func(c *cacheConfig) { c.now = now }
}

// New creates an empty cache.
func New(opts ...Option) *Cache {
	cfg := cacheConfig{cap: DefaultCapacity, shards: 1, now: time.Now}
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Cache{store: NewShardedStore[*dnswire.Message](cfg.cap, cfg.shards, cfg.now)}
}

// Put stores a response for the given question. The entry lives for the
// minimum answer TTL (or minTTL seconds when the answer section is empty,
// which covers negative responses per RFC 2308's spirit).
func (c *Cache) Put(q dnswire.Question, msg *dnswire.Message, minTTL uint32) {
	ttl := msg.MinAnswerTTL(minTTL)
	if ttl == 0 {
		return // uncacheable
	}
	c.store.Put(q.Key(), msg.Copy(), time.Duration(ttl)*time.Second)
}

// Get returns a copy of the cached response with TTLs decremented by the
// time spent in cache, or (nil, false) on miss or expiry.
func (c *Cache) Get(q dnswire.Question) (*dnswire.Message, bool) {
	cached, age, ok := c.store.Get(q.Key())
	if !ok {
		return nil, false
	}
	msg := cached.Copy()
	elapsed := uint32(age / time.Second)
	decrement := func(records []dnswire.Record) []dnswire.Record {
		out := make([]dnswire.Record, len(records))
		for i, r := range records {
			if r.TTL > elapsed {
				r.TTL -= elapsed
			} else {
				r.TTL = 1
			}
			out[i] = r
		}
		return out
	}
	msg.Answers = decrement(msg.Answers)
	msg.Authority = decrement(msg.Authority)
	return msg, true
}

// EvictExpired removes entries whose TTL has passed, returning how many
// were dropped (capacity-pressure hygiene between Get calls).
func (c *Cache) EvictExpired() int { return c.store.EvictExpired(0) }

// Flush removes every entry.
func (c *Cache) Flush() { c.store.Flush() }

// Len returns the number of live entries (including not-yet-evicted
// expired ones).
func (c *Cache) Len() int { return c.store.Len() }

// Stats returns the cumulative effectiveness counters.
func (c *Cache) Stats() Stats { return c.store.Stats() }
