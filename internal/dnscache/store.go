package dnscache

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Stats reports cache effectiveness. Hits counts fresh (and served-stale)
// lookups, Misses absent or expired ones, Evictions capacity-pressure
// removals, Expirations TTL-driven removals (lazy or via EvictExpired),
// Stale the subset of hits served past their TTL inside the
// stale-while-revalidate window.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Expirations uint64
	Stale       uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// add folds o into s (aggregating per-shard counters).
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Expirations += o.Expirations
	s.Stale += o.Stale
}

// RefreshOutcome records how the most recent background refresh of an
// entry ended.
type RefreshOutcome int32

// Refresh outcomes.
const (
	// RefreshNone: the entry has never been refreshed in the background.
	RefreshNone RefreshOutcome = iota
	// RefreshOK: the last background refresh replaced the value.
	RefreshOK
	// RefreshFailed: the last background refresh failed; the previous
	// value was kept.
	RefreshFailed
)

// String returns the admin-facing spelling of the outcome.
func (o RefreshOutcome) String() string {
	switch o {
	case RefreshOK:
		return "ok"
	case RefreshFailed:
		return "failed"
	default:
		return "none"
	}
}

// Store is a thread-safe TTL-aware LRU keyed by string, generic over the
// cached value. It is split into a power-of-two number of shards, each
// with its own lock, LRU list and statistics, so concurrent lookups on
// different keys never contend — and the fresh-hit fast path takes only a
// shard read-lock plus atomic counter updates, so even a single hot key
// scales with cores instead of serializing behind one mutex. The DNS
// message Cache and the consensus engine's pool cache are both built on
// it. The zero value is not usable; call NewStore or NewShardedStore.
type Store[V any] struct {
	shards []*shard[V]
	mask   uint32
	now    func() time.Time
}

// shard is one lock domain: a map + LRU list bounded to its slice of the
// store's capacity. Counters are atomics so the read-locked hit path can
// update them without lock promotion.
type shard[V any] struct {
	// The shard lock guards every cached-hit lookup.
	//dohlint:hotlock
	mu      sync.RWMutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent
	cap     int

	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	expirations atomic.Uint64
	stale       atomic.Uint64
}

// storeEntry fields stored/expires/val are written only under the shard's
// write lock; the metadata counters are atomics updated under the read
// lock (hits) or from refresh bookkeeping (refreshes, lastRefresh).
type storeEntry[V any] struct {
	key     string
	val     V
	stored  time.Time
	expires time.Time

	hits        atomic.Uint64
	refreshes   atomic.Uint64
	lastRefresh atomic.Int32 // RefreshOutcome
}

// DefaultShards returns the shard count NewShardedStore uses for a
// non-positive shard argument: the next power of two at or above
// GOMAXPROCS, capped at 256.
func DefaultShards() int {
	n := nextPow2(runtime.GOMAXPROCS(0))
	if n > 256 {
		n = 256
	}
	return n
}

// nextPow2 rounds n up to the nearest power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewStore builds a single-shard Store bounded to capacity entries (0 or
// negative uses DefaultCapacity) reading time from clock (nil uses
// time.Now). A single shard keeps strict global LRU order — the right
// choice for small caches; use NewShardedStore for concurrent hot paths.
func NewStore[V any](capacity int, clock func() time.Time) *Store[V] {
	return NewShardedStore[V](capacity, 1, clock)
}

// minShardCapacity is the smallest per-shard LRU the constructor will
// produce: below this, hash skew makes hot keys in one shard evict each
// other while sibling shards sit empty, so the shard count is halved
// until every shard holds at least this many entries.
const minShardCapacity = 8

// NewShardedStore builds a Store split into shards lock domains (rounded
// up to a power of two; non-positive uses DefaultShards) with a combined
// bound of capacity entries (0 or negative uses DefaultCapacity), reading
// time from clock (nil uses time.Now). Capacity is divided evenly across
// shards, so eviction order is LRU per shard, approximate LRU globally;
// a small capacity clamps the shard count so no shard's slice drops
// below minShardCapacity.
func NewShardedStore[V any](capacity, shards int, clock func() time.Time) *Store[V] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = nextPow2(shards)
	for shards > 1 && capacity/shards < minShardCapacity {
		shards >>= 1
	}
	if clock == nil {
		clock = time.Now
	}
	perShard := (capacity + shards - 1) / shards
	if perShard < 1 {
		perShard = 1
	}
	s := &Store[V]{
		shards: make([]*shard[V], shards),
		mask:   uint32(shards - 1),
		now:    clock,
	}
	for i := range s.shards {
		s.shards[i] = &shard[V]{
			entries: make(map[string]*list.Element),
			lru:     list.New(),
			cap:     perShard,
		}
	}
	return s
}

// shardFor hashes key (FNV-1a) onto one shard.
func (s *Store[V]) shardFor(key string) *shard[V] {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return s.shards[h&s.mask]
}

// shardForBytes is shardFor for a byte-view key (same FNV-1a, so both
// spellings of a key land on the same shard).
//
//dohlint:noalloc
func (s *Store[V]) shardForBytes(key []byte) *shard[V] {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return s.shards[h&s.mask]
}

// ShardCount returns the number of lock domains.
func (s *Store[V]) ShardCount() int { return len(s.shards) }

// Put stores val under key for ttl. A non-positive ttl is uncacheable and
// ignored. An existing entry is replaced in place — its hit and refresh
// metadata survive, so popularity tracking spans refreshes.
func (s *Store[V]) Put(key string, val V, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	now := s.now()
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*storeEntry[V])
		e.val = val
		e.stored = now
		e.expires = now.Add(ttl)
		sh.lru.MoveToFront(el)
		return
	}
	e := &storeEntry[V]{key: key, val: val, stored: now, expires: now.Add(ttl)}
	sh.entries[key] = sh.lru.PushFront(e)
	for sh.lru.Len() > sh.cap {
		sh.removeLocked(sh.lru.Back())
		sh.evictions.Add(1)
	}
}

// Get returns the value stored under key together with its age (time since
// Put). An expired entry is removed and reported as a miss.
func (s *Store[V]) Get(key string) (val V, age time.Duration, ok bool) {
	val, age, stale, ok := s.GetStale(key, 0)
	if stale {
		var zero V
		return zero, 0, false
	}
	return val, age, ok
}

// GetStale is Get with a stale-while-revalidate window: an entry whose TTL
// expired no more than maxStale ago is still returned, flagged stale, so
// the caller can serve it while refreshing in the background. Entries
// beyond the window are removed and reported as misses. Stale serves count
// as hits.
//
// The fresh-hit path runs under the shard's read lock with atomic counter
// updates; LRU promotion is skipped while the entry is already the
// shard's most recent, so a single hot key contends on nothing.
func (s *Store[V]) GetStale(key string, maxStale time.Duration) (val V, age time.Duration, stale, ok bool) {
	now := s.now()
	sh := s.shardFor(key)

	sh.mu.RLock()
	if el, found := sh.entries[key]; found {
		e := el.Value.(*storeEntry[V])
		if now.Before(e.expires) {
			val = e.val
			age = now.Sub(e.stored)
			atFront := sh.lru.Front() == el
			e.hits.Add(1)
			sh.hits.Add(1)
			sh.mu.RUnlock()
			if !atFront {
				sh.promote(key, el)
			}
			return val, age, false, true
		}
	}
	sh.mu.RUnlock()

	// Slow path: absent, expired or stale — take the write lock and
	// re-check, since the world may have changed between locks.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, found := sh.entries[key]
	if !found {
		sh.misses.Add(1)
		var zero V
		return zero, 0, false, false
	}
	e := el.Value.(*storeEntry[V])
	if !now.Before(e.expires) {
		if now.Sub(e.expires) >= maxStale {
			sh.removeLocked(el)
			sh.expirations.Add(1)
			sh.misses.Add(1)
			var zero V
			return zero, 0, false, false
		}
		stale = true
		sh.stale.Add(1)
	}
	sh.lru.MoveToFront(el)
	e.hits.Add(1)
	sh.hits.Add(1)
	return e.val, now.Sub(e.stored), stale, true
}

// Touch records a lookup served on key's behalf by an external fast
// path (the engine's pre-encoded wire cache): the entry's own popularity
// counter is bumped and its LRU position refreshed, exactly as a Get
// would, but the shard's hit/miss statistics are untouched — the fast
// path has its own counters, and a Touch is not a second lookup. The
// key is a byte view so the caller's per-datagram path stays
// allocation-free (the map index compiles to a no-copy lookup). A key
// not present is a no-op.
//
//dohlint:noalloc
func (s *Store[V]) Touch(key []byte) {
	sh := s.shardForBytes(key)
	sh.mu.RLock()
	el, found := sh.entries[string(key)]
	if !found {
		sh.mu.RUnlock()
		return
	}
	e := el.Value.(*storeEntry[V])
	e.hits.Add(1)
	atFront := sh.lru.Front() == el
	sh.mu.RUnlock()
	if !atFront {
		sh.mu.Lock()
		if sh.entries[string(key)] == el {
			sh.lru.MoveToFront(el)
		}
		sh.mu.Unlock()
	}
}

// promote moves el to the front of the shard's LRU under the write lock,
// tolerating concurrent removal (the entry must still be the one mapped
// under key).
func (sh *shard[V]) promote(key string, el *list.Element) {
	sh.mu.Lock()
	if sh.entries[key] == el {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
}

// RecordRefresh notes the outcome of a background refresh of key: the
// entry's refresh count is incremented and its last outcome replaced. A
// key no longer cached (evicted mid-refresh) is a no-op and reported
// false.
func (s *Store[V]) RecordRefresh(key string, ok bool) bool {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	el, found := sh.entries[key]
	if !found {
		return false
	}
	e := el.Value.(*storeEntry[V])
	e.refreshes.Add(1)
	outcome := RefreshFailed
	if ok {
		outcome = RefreshOK
	}
	e.lastRefresh.Store(int32(outcome))
	return true
}

// EvictExpired removes every entry whose TTL expired more than grace ago
// and returns how many were removed. Run it periodically to bound memory
// held by dead entries that Get never touches again; grace keeps entries
// alive for a stale-while-revalidate window.
func (s *Store[V]) EvictExpired(grace time.Duration) int {
	if grace < 0 {
		grace = 0
	}
	now := s.now()
	removed := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; {
			prev := el.Prev()
			e := el.Value.(*storeEntry[V])
			if now.Sub(e.expires) >= grace {
				sh.removeLocked(el)
				sh.expirations.Add(1)
				removed++
			}
			el = prev
		}
		sh.mu.Unlock()
	}
	return removed
}

// Remove deletes key if present.
func (s *Store[V]) Remove(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		sh.removeLocked(el)
	}
}

// Flush removes every entry (counters survive).
func (s *Store[V]) Flush() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.entries = make(map[string]*list.Element)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

// Len returns the number of live entries (including not-yet-collected
// expired ones).
func (s *Store[V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.lru.Len()
		sh.mu.RUnlock()
	}
	return n
}

// Stats returns a snapshot of the cumulative counters summed across
// shards.
func (s *Store[V]) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		out.add(sh.snapshot())
	}
	return out
}

// ShardStats returns each shard's counters individually, for hit-
// distribution introspection (a skewed distribution means the key space
// hashes badly or one shard holds the hot keys).
func (s *Store[V]) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.snapshot()
	}
	return out
}

// ShardStat returns shard i's counters alone — the allocation-free form
// of ShardStats for per-shard metric callbacks read on every scrape.
func (s *Store[V]) ShardStat(i int) Stats {
	return s.shards[i].snapshot()
}

func (sh *shard[V]) snapshot() Stats {
	return Stats{
		Hits:        sh.hits.Load(),
		Misses:      sh.misses.Load(),
		Evictions:   sh.evictions.Load(),
		Expirations: sh.expirations.Load(),
		Stale:       sh.stale.Load(),
	}
}

// Entry is a point-in-time view of one cached element.
type Entry[V any] struct {
	Key string
	Val V
	// Age is the time since the entry was stored (or last refreshed in
	// place).
	Age time.Duration
	// Remaining is the TTL left; negative once expired (the entry may
	// still be serveable inside a stale window).
	Remaining time.Duration
	// Hits counts lookups answered by this entry across its lifetime,
	// surviving in-place refreshes — the refresher's popularity signal.
	Hits uint64
	// Refreshes counts background refresh completions recorded against
	// the entry.
	Refreshes uint64
	// LastRefresh reports how the most recent background refresh ended.
	LastRefresh RefreshOutcome
}

// Entries snapshots the live entries for introspection endpoints,
// shard by shard, most recently used first within each shard. Values are
// the cached pointers/structs themselves — callers must not mutate them.
func (s *Store[V]) Entries() []Entry[V] {
	now := s.now()
	var out []Entry[V]
	for _, sh := range s.shards {
		sh.mu.RLock()
		if cap(out)-len(out) < sh.lru.Len() {
			grown := make([]Entry[V], len(out), len(out)+sh.lru.Len())
			copy(grown, out)
			out = grown
		}
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*storeEntry[V])
			out = append(out, Entry[V]{
				Key:         e.key,
				Val:         e.val,
				Age:         now.Sub(e.stored),
				Remaining:   e.expires.Sub(now),
				Hits:        e.hits.Load(),
				Refreshes:   e.refreshes.Load(),
				LastRefresh: RefreshOutcome(e.lastRefresh.Load()),
			})
		}
		sh.mu.RUnlock()
	}
	return out
}

// removeLocked must be called with the shard's write lock held.
func (sh *shard[V]) removeLocked(el *list.Element) {
	sh.lru.Remove(el)
	delete(sh.entries, el.Value.(*storeEntry[V]).key)
}
