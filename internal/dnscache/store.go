package dnscache

import (
	"container/list"
	"sync"
	"time"
)

// Stats reports cache effectiveness. Hits counts fresh (and served-stale)
// lookups, Misses absent or expired ones, Evictions capacity-pressure
// removals, Expirations TTL-driven removals (lazy or via EvictExpired),
// Stale the subset of hits served past their TTL inside the
// stale-while-revalidate window.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Expirations uint64
	Stale       uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Store is a thread-safe TTL-aware LRU keyed by string, generic over the
// cached value. The DNS message Cache and the consensus engine's pool
// cache are both built on it. The zero value is not usable; call NewStore.
type Store[V any] struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent
	cap     int
	now     func() time.Time
	stats   Stats
}

type storeEntry[V any] struct {
	key     string
	val     V
	stored  time.Time
	expires time.Time
}

// NewStore builds a Store bounded to capacity entries (0 or negative uses
// DefaultCapacity) reading time from clock (nil uses time.Now).
func NewStore[V any](capacity int, clock func() time.Time) *Store[V] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if clock == nil {
		clock = time.Now
	}
	return &Store[V]{
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		cap:     capacity,
		now:     clock,
	}
}

// Put stores val under key for ttl. A non-positive ttl is uncacheable and
// ignored. An existing entry is replaced.
func (s *Store[V]) Put(key string, val V, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.Remove(el)
		delete(s.entries, key)
	}
	e := &storeEntry[V]{key: key, val: val, stored: now, expires: now.Add(ttl)}
	s.entries[key] = s.lru.PushFront(e)
	for s.lru.Len() > s.cap {
		oldest := s.lru.Back()
		s.removeLocked(oldest)
		s.stats.Evictions++
	}
}

// Get returns the value stored under key together with its age (time since
// Put). An expired entry is removed and reported as a miss.
func (s *Store[V]) Get(key string) (val V, age time.Duration, ok bool) {
	val, age, stale, ok := s.GetStale(key, 0)
	if stale {
		var zero V
		return zero, 0, false
	}
	return val, age, ok
}

// GetStale is Get with a stale-while-revalidate window: an entry whose TTL
// expired no more than maxStale ago is still returned, flagged stale, so
// the caller can serve it while refreshing in the background. Entries
// beyond the window are removed and reported as misses. Stale serves count
// as hits.
func (s *Store[V]) GetStale(key string, maxStale time.Duration) (val V, age time.Duration, stale, ok bool) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	el, found := s.entries[key]
	if !found {
		s.stats.Misses++
		return val, 0, false, false
	}
	e := el.Value.(*storeEntry[V])
	if !now.Before(e.expires) {
		if now.Sub(e.expires) >= maxStale {
			s.removeLocked(el)
			s.stats.Expirations++
			s.stats.Misses++
			var zero V
			return zero, 0, false, false
		}
		stale = true
		s.stats.Stale++
	}
	s.lru.MoveToFront(el)
	s.stats.Hits++
	return e.val, now.Sub(e.stored), stale, true
}

// EvictExpired removes every entry whose TTL expired more than grace ago
// and returns how many were removed. Run it periodically to bound memory
// held by dead entries that Get never touches again; grace keeps entries
// alive for a stale-while-revalidate window.
func (s *Store[V]) EvictExpired(grace time.Duration) int {
	if grace < 0 {
		grace = 0
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for el := s.lru.Back(); el != nil; {
		prev := el.Prev()
		e := el.Value.(*storeEntry[V])
		if now.Sub(e.expires) >= grace {
			s.removeLocked(el)
			s.stats.Expirations++
			removed++
		}
		el = prev
	}
	return removed
}

// Remove deletes key if present.
func (s *Store[V]) Remove(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.removeLocked(el)
	}
}

// Flush removes every entry (counters survive).
func (s *Store[V]) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]*list.Element)
	s.lru.Init()
}

// Len returns the number of live entries (including not-yet-collected
// expired ones).
func (s *Store[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats returns a snapshot of the cumulative counters.
func (s *Store[V]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Entry is a point-in-time view of one cached element, most recently
// used first.
type Entry[V any] struct {
	Key string
	Val V
	// Age is the time since the entry was stored.
	Age time.Duration
	// Remaining is the TTL left; negative once expired (the entry may
	// still be serveable inside a stale window).
	Remaining time.Duration
}

// Entries snapshots the live entries in LRU order (most recent first),
// for introspection endpoints. Values are the cached pointers/structs
// themselves — callers must not mutate them.
func (s *Store[V]) Entries() []Entry[V] {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry[V], 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*storeEntry[V])
		out = append(out, Entry[V]{
			Key:       e.key,
			Val:       e.val,
			Age:       now.Sub(e.stored),
			Remaining: e.expires.Sub(now),
		})
	}
	return out
}

func (s *Store[V]) removeLocked(el *list.Element) {
	s.lru.Remove(el)
	delete(s.entries, el.Value.(*storeEntry[V]).key)
}
