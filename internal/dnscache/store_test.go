package dnscache

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestStorePutGetAge(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("k", 42, 10*time.Second)

	clk.advance(3 * time.Second)
	v, age, ok := s.Get("k")
	if !ok || v != 42 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if age != 3*time.Second {
		t.Errorf("age = %v, want 3s", age)
	}
}

func TestStoreExpiry(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("k", 1, 5*time.Second)
	clk.advance(5 * time.Second)
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("entry survived its TTL")
	}
	if s.Len() != 0 {
		t.Errorf("expired entry not removed, Len = %d", s.Len())
	}
	st := s.Stats()
	if st.Misses != 1 || st.Expirations != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreNonPositiveTTLUncacheable(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("zero", 1, 0)
	s.Put("neg", 2, -time.Second)
	if s.Len() != 0 {
		t.Fatalf("uncacheable TTLs stored, Len = %d", s.Len())
	}
}

func TestStoreGetStaleWindow(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[string](0, clk.now)
	s.Put("k", "v", 10*time.Second)

	// Fresh: not stale.
	v, _, stale, ok := s.GetStale("k", 30*time.Second)
	if !ok || stale || v != "v" {
		t.Fatalf("fresh GetStale = %q stale=%v ok=%v", v, stale, ok)
	}
	// 5s past expiry, inside the 30s window: served stale.
	clk.advance(15 * time.Second)
	v, age, stale, ok := s.GetStale("k", 30*time.Second)
	if !ok || !stale || v != "v" {
		t.Fatalf("in-window GetStale = %q stale=%v ok=%v", v, stale, ok)
	}
	if age != 15*time.Second {
		t.Errorf("stale age = %v", age)
	}
	// Past the window: gone.
	clk.advance(26 * time.Second)
	if _, _, _, ok := s.GetStale("k", 30*time.Second); ok {
		t.Fatal("entry served beyond the stale window")
	}
}

func TestStoreLRUEvictionCountsEvictions(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](2, clk.now)
	s.Put("a", 1, time.Minute)
	s.Put("b", 2, time.Minute)
	if _, _, ok := s.Get("a"); !ok { // touch a → b becomes the victim
		t.Fatal("a missing")
	}
	s.Put("c", 3, time.Minute)
	if _, _, ok := s.Get("b"); ok {
		t.Error("LRU victim b still cached")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestStoreEvictExpired(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	for i := 0; i < 4; i++ {
		s.Put("short"+strconv.Itoa(i), i, 10*time.Second)
	}
	s.Put("long", 99, time.Hour)

	clk.advance(20 * time.Second)
	if got := s.EvictExpired(0); got != 4 {
		t.Fatalf("EvictExpired removed %d, want 4", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if st := s.Stats(); st.Expirations != 4 {
		t.Errorf("expirations = %d", st.Expirations)
	}
}

func TestStoreEvictExpiredHonoursGrace(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("k", 1, 10*time.Second)
	clk.advance(15 * time.Second)
	// 5s past expiry; a 30s grace (stale window) keeps it.
	if got := s.EvictExpired(30 * time.Second); got != 0 {
		t.Fatalf("grace ignored, removed %d", got)
	}
	clk.advance(30 * time.Second)
	if got := s.EvictExpired(30 * time.Second); got != 1 {
		t.Fatalf("EvictExpired removed %d, want 1", got)
	}
}

func TestStoreHitRate(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	if r := s.Stats().HitRate(); r != 0 {
		t.Fatalf("empty hit rate = %v", r)
	}
	s.Put("k", 1, time.Minute)
	s.Get("k")
	s.Get("absent")
	if r := s.Stats().HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", r)
	}
}

func TestStoreRemoveAndFlush(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("a", 1, time.Minute)
	s.Put("b", 2, time.Minute)
	s.Remove("a")
	if _, _, ok := s.Get("a"); ok {
		t.Fatal("removed entry still present")
	}
	s.Flush()
	if s.Len() != 0 {
		t.Fatalf("Len after Flush = %d", s.Len())
	}
}

func TestShardedStoreRoundsToPowerOfTwo(t *testing.T) {
	clk := newFakeClock()
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		s := NewShardedStore[int](0, tc.in, clk.now)
		if got := s.ShardCount(); got != tc.want {
			t.Errorf("ShardCount(%d shards) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if s := NewShardedStore[int](0, 0, clk.now); s.ShardCount() != DefaultShards() {
		t.Errorf("default shards = %d, want %d", s.ShardCount(), DefaultShards())
	}
}

func TestShardedStoreClampsShardsForSmallCapacity(t *testing.T) {
	clk := newFakeClock()
	// 100 entries over 64 requested shards would leave ~1-entry shards
	// where colliding hot keys evict each other; the constructor halves
	// the shard count until every shard holds >= minShardCapacity.
	s := NewShardedStore[int](100, 64, clk.now)
	if got := s.ShardCount(); got != 8 {
		t.Errorf("ShardCount(cap=100, shards=64) = %d, want 8 (100/8 >= %d)", got, minShardCapacity)
	}
	// A capacity below the floor still yields one usable shard.
	if got := NewShardedStore[int](2, 16, clk.now).ShardCount(); got != 1 {
		t.Errorf("ShardCount(cap=2, shards=16) = %d, want 1", got)
	}
}

func TestShardedStoreSpreadsAndAggregates(t *testing.T) {
	clk := newFakeClock()
	s := NewShardedStore[int](1024, 8, clk.now)
	const n = 200
	for i := 0; i < n; i++ {
		s.Put("key"+strconv.Itoa(i), i, time.Minute)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, _, ok := s.Get("key" + strconv.Itoa(i))
		if !ok || v != i {
			t.Fatalf("Get(key%d) = %d, %v", i, v, ok)
		}
	}
	st := s.Stats()
	if st.Hits != n || st.Misses != 0 {
		t.Fatalf("aggregate stats = %+v", st)
	}
	// Per-shard stats must sum to the aggregate and touch >1 shard.
	var sum uint64
	populated := 0
	for _, ss := range s.ShardStats() {
		sum += ss.Hits
		if ss.Hits > 0 {
			populated++
		}
	}
	if sum != n {
		t.Errorf("shard hit sum = %d, want %d", sum, n)
	}
	if populated < 2 {
		t.Errorf("only %d shard(s) saw hits; keys are not spreading", populated)
	}
	if len(s.Entries()) != n {
		t.Errorf("Entries = %d, want %d", len(s.Entries()), n)
	}
}

func TestStoreEntryMetadataTracksHitsAndRefreshes(t *testing.T) {
	clk := newFakeClock()
	s := NewShardedStore[int](0, 4, clk.now)
	s.Put("k", 1, 10*time.Second)
	for i := 0; i < 3; i++ {
		if _, _, ok := s.Get("k"); !ok {
			t.Fatal("miss")
		}
	}
	if !s.RecordRefresh("k", false) {
		t.Fatal("RecordRefresh on live key reported missing")
	}
	// An in-place refresh (overwrite) preserves hit/refresh metadata.
	clk.advance(8 * time.Second)
	s.Put("k", 2, 10*time.Second)
	if !s.RecordRefresh("k", true) {
		t.Fatal("RecordRefresh on refreshed key reported missing")
	}

	entries := s.Entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.Hits != 3 {
		t.Errorf("Hits = %d, want 3 (metadata lost across overwrite)", e.Hits)
	}
	if e.Refreshes != 2 {
		t.Errorf("Refreshes = %d, want 2", e.Refreshes)
	}
	if e.LastRefresh != RefreshOK {
		t.Errorf("LastRefresh = %v, want RefreshOK", e.LastRefresh)
	}
	if e.Age != 0 {
		t.Errorf("Age = %v, want 0 (reset by overwrite)", e.Age)
	}
	if s.RecordRefresh("absent", true) {
		t.Error("RecordRefresh on absent key reported success")
	}
}

func TestRefreshOutcomeStrings(t *testing.T) {
	for _, tc := range []struct {
		o    RefreshOutcome
		want string
	}{{RefreshNone, "none"}, {RefreshOK, "ok"}, {RefreshFailed, "failed"}} {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.o, got, tc.want)
		}
	}
}

func TestShardedStoreParallelHotKey(t *testing.T) {
	// The fresh-hit fast path must be safe (and scale) under heavy
	// concurrent access to a single key mixed with writers; run with
	// -race to make this meaningful.
	s := NewShardedStore[int](128, 8, nil)
	s.Put("hot", 1, time.Hour)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if v, _, ok := s.Get("hot"); !ok || v != 1 {
					t.Errorf("hot key lost: %d %v", v, ok)
					return
				}
				s.Put("cold"+strconv.Itoa(g)+"-"+strconv.Itoa(i%16), i, time.Minute)
				s.Get("cold" + strconv.Itoa(g) + "-" + strconv.Itoa(i%16))
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Hits == 0 {
		t.Error("no hits recorded")
	}
	e := s.Entries()
	found := false
	for _, en := range e {
		if en.Key == "hot" {
			found = true
			if en.Hits != 8*500 {
				t.Errorf("hot hits = %d, want %d", en.Hits, 8*500)
			}
		}
	}
	if !found {
		t.Error("hot key missing from Entries")
	}
}

func TestStoreOverwriteResetsTTL(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("k", 1, 10*time.Second)
	clk.advance(8 * time.Second)
	s.Put("k", 2, 10*time.Second)
	clk.advance(8 * time.Second)
	v, age, ok := s.Get("k")
	if !ok || v != 2 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if age != 8*time.Second {
		t.Errorf("age = %v, want 8s (reset at overwrite)", age)
	}
}
