package dnscache

import (
	"strconv"
	"testing"
	"time"
)

func TestStorePutGetAge(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("k", 42, 10*time.Second)

	clk.advance(3 * time.Second)
	v, age, ok := s.Get("k")
	if !ok || v != 42 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if age != 3*time.Second {
		t.Errorf("age = %v, want 3s", age)
	}
}

func TestStoreExpiry(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("k", 1, 5*time.Second)
	clk.advance(5 * time.Second)
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("entry survived its TTL")
	}
	if s.Len() != 0 {
		t.Errorf("expired entry not removed, Len = %d", s.Len())
	}
	st := s.Stats()
	if st.Misses != 1 || st.Expirations != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreNonPositiveTTLUncacheable(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("zero", 1, 0)
	s.Put("neg", 2, -time.Second)
	if s.Len() != 0 {
		t.Fatalf("uncacheable TTLs stored, Len = %d", s.Len())
	}
}

func TestStoreGetStaleWindow(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[string](0, clk.now)
	s.Put("k", "v", 10*time.Second)

	// Fresh: not stale.
	v, _, stale, ok := s.GetStale("k", 30*time.Second)
	if !ok || stale || v != "v" {
		t.Fatalf("fresh GetStale = %q stale=%v ok=%v", v, stale, ok)
	}
	// 5s past expiry, inside the 30s window: served stale.
	clk.advance(15 * time.Second)
	v, age, stale, ok := s.GetStale("k", 30*time.Second)
	if !ok || !stale || v != "v" {
		t.Fatalf("in-window GetStale = %q stale=%v ok=%v", v, stale, ok)
	}
	if age != 15*time.Second {
		t.Errorf("stale age = %v", age)
	}
	// Past the window: gone.
	clk.advance(26 * time.Second)
	if _, _, _, ok := s.GetStale("k", 30*time.Second); ok {
		t.Fatal("entry served beyond the stale window")
	}
}

func TestStoreLRUEvictionCountsEvictions(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](2, clk.now)
	s.Put("a", 1, time.Minute)
	s.Put("b", 2, time.Minute)
	if _, _, ok := s.Get("a"); !ok { // touch a → b becomes the victim
		t.Fatal("a missing")
	}
	s.Put("c", 3, time.Minute)
	if _, _, ok := s.Get("b"); ok {
		t.Error("LRU victim b still cached")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestStoreEvictExpired(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	for i := 0; i < 4; i++ {
		s.Put("short"+strconv.Itoa(i), i, 10*time.Second)
	}
	s.Put("long", 99, time.Hour)

	clk.advance(20 * time.Second)
	if got := s.EvictExpired(0); got != 4 {
		t.Fatalf("EvictExpired removed %d, want 4", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if st := s.Stats(); st.Expirations != 4 {
		t.Errorf("expirations = %d", st.Expirations)
	}
}

func TestStoreEvictExpiredHonoursGrace(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("k", 1, 10*time.Second)
	clk.advance(15 * time.Second)
	// 5s past expiry; a 30s grace (stale window) keeps it.
	if got := s.EvictExpired(30 * time.Second); got != 0 {
		t.Fatalf("grace ignored, removed %d", got)
	}
	clk.advance(30 * time.Second)
	if got := s.EvictExpired(30 * time.Second); got != 1 {
		t.Fatalf("EvictExpired removed %d, want 1", got)
	}
}

func TestStoreHitRate(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	if r := s.Stats().HitRate(); r != 0 {
		t.Fatalf("empty hit rate = %v", r)
	}
	s.Put("k", 1, time.Minute)
	s.Get("k")
	s.Get("absent")
	if r := s.Stats().HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", r)
	}
}

func TestStoreRemoveAndFlush(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("a", 1, time.Minute)
	s.Put("b", 2, time.Minute)
	s.Remove("a")
	if _, _, ok := s.Get("a"); ok {
		t.Fatal("removed entry still present")
	}
	s.Flush()
	if s.Len() != 0 {
		t.Fatalf("Len after Flush = %d", s.Len())
	}
}

func TestStoreOverwriteResetsTTL(t *testing.T) {
	clk := newFakeClock()
	s := NewStore[int](0, clk.now)
	s.Put("k", 1, 10*time.Second)
	clk.advance(8 * time.Second)
	s.Put("k", 2, 10*time.Second)
	clk.advance(8 * time.Second)
	v, age, ok := s.Get("k")
	if !ok || v != 2 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if age != 8*time.Second {
		t.Errorf("age = %v, want 8s (reset at overwrite)", age)
	}
}
