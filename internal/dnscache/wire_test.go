package dnscache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testWireEntry(ttl uint32, stored time.Time) *WireEntry {
	return &WireEntry{
		Full:      []byte{0, 0, 0x80, 0, 0, 1, 0, 1, 0, 0, 0, 0},
		Truncated: []byte{0, 0, 0x82, 0, 0, 1, 0, 0, 0, 0, 0, 0},
		TTL:       ttl,
		Stored:    stored,
		Expires:   stored.Add(time.Duration(ttl) * time.Second),
	}
}

func TestWireCachePutGetInvalidate(t *testing.T) {
	now := time.Now()
	c := NewWireCache(64, 4, func() time.Time { return now })
	key := "pool.ntp.org.|1"
	if _, ok := c.Get([]byte(key)); ok {
		t.Fatal("hit on empty cache")
	}
	e := testWireEntry(60, now)
	c.Put(key, e)
	got, ok := c.Get([]byte(key))
	if !ok || got != e {
		t.Fatal("stored entry not returned")
	}
	c.Invalidate(key)
	if _, ok := c.Get([]byte(key)); ok {
		t.Fatal("hit after Invalidate")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestWireCacheExpiry(t *testing.T) {
	now := time.Now()
	c := NewWireCache(64, 1, func() time.Time { return now })
	c.Put("k|1", testWireEntry(5, now))
	if _, ok := c.Get([]byte("k|1")); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(5 * time.Second) // exactly at expiry: dead
	if _, ok := c.Get([]byte("k|1")); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry not removed, len=%d", c.Len())
	}
}

func TestWireCacheCapacityBound(t *testing.T) {
	now := time.Now()
	c := NewWireCache(16, 1, func() time.Time { return now })
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("key-%d|1", i), testWireEntry(60, now))
	}
	if n := c.Len(); n > 16 {
		t.Fatalf("len=%d exceeds capacity 16", n)
	}
}

func TestWireCacheCapacitySweepPrefersExpired(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	c := NewWireCache(16, 1, clock)
	c.Put("live|1", testWireEntry(3600, now))
	for i := 0; i < 15; i++ {
		c.Put(fmt.Sprintf("dead-%d|1", i), testWireEntry(1, now))
	}
	now = now.Add(2 * time.Second)
	c.Put("fresh|1", testWireEntry(3600, now))
	if _, ok := c.Get([]byte("live|1")); !ok {
		t.Fatal("live entry evicted while expired entries were resident")
	}
	if _, ok := c.Get([]byte("fresh|1")); !ok {
		t.Fatal("fresh entry not stored")
	}
}

func TestWireCacheGetAllocatesNothing(t *testing.T) {
	now := time.Now()
	c := NewWireCache(64, 4, func() time.Time { return now })
	c.Put("pool.ntp.org.|1", testWireEntry(60, now))
	key := []byte("pool.ntp.org.|1")
	miss := []byte("other.example.|28")
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := c.Get(key); !ok {
			t.Fatal("miss on stored key")
		}
		if _, ok := c.Get(miss); ok {
			t.Fatal("hit on absent key")
		}
	}); n != 0 {
		t.Fatalf("Get allocates %v per run, want 0", n)
	}
}

func TestWireCacheConcurrent(t *testing.T) {
	c := NewWireCache(256, 8, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key-%d|1", i%32)
				switch i % 3 {
				case 0:
					c.Put(key, testWireEntry(60, time.Now()))
				case 1:
					c.Get([]byte(key))
				default:
					c.Invalidate(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestWireEntryForm(t *testing.T) {
	e := &WireEntry{Full: make([]byte, 700), Truncated: make([]byte, 31)}
	if w, tc := e.Form(700); tc || len(w) != 700 {
		t.Fatal("full form should fit exactly at its own length")
	}
	if w, tc := e.Form(699); !tc || len(w) != 31 {
		t.Fatal("one byte short must yield the truncated form")
	}
}
